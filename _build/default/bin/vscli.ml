(* vscli — command-line driver for the view-synchrony simulator.

   Subcommands:
     experiment   regenerate the paper's tables (all or selected)
     campaign     run a randomized fault campaign and check the properties
     trace        run a campaign and dump the annotated event trace *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Faults = Vs_harness.Faults
module Oracle = Vs_harness.Oracle
module Vc = Vs_harness.Vsync_cluster
module Ec = Vs_harness.Evs_cluster
open Cmdliner

(* ---------- experiment ---------- *)

let experiments =
  [
    ("e1", Vs_exp.Exp_modes.tables);
    ("e2e3", Vs_exp.Exp_figures.tables);
    ("e4", Vs_exp.Exp_join.tables);
    ("e5", Vs_exp.Exp_classify.tables);
    ("e6", Vs_exp.Exp_transfer.tables);
    ("e7", Vs_exp.Exp_file.tables);
    ("e8", Vs_exp.Exp_db.tables);
    ("e9e10", Vs_exp.Exp_overhead.tables);
    ("e11", Vs_exp.Exp_loss.tables);
  ]

let experiment_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (CI-sized).")
  in
  let names =
    Arg.(
      value
      & pos_all (enum (List.map (fun (n, _) -> (n, n)) experiments)) []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiments to run (e1 e2e3 e4 e5 e6 e7 e8 e9e10 e11); all by \
             default.")
  in
  let run quick names =
    let selected =
      match names with
      | [] -> experiments
      | names -> List.filter (fun (n, _) -> List.mem n names) experiments
    in
    List.iter
      (fun (name, tables) ->
        Printf.printf "### %s\n\n%!" (String.uppercase_ascii name);
        let t : ?quick:bool -> unit -> Vs_stats.Table.t list = tables in
        List.iter Vs_stats.Table.print (t ~quick ()))
      selected
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation tables.")
    Term.(const run $ quick $ names)

(* ---------- campaign ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let nodes_arg =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let duration_arg =
  Arg.(
    value & opt float 6.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Fault-injection window.")

let campaign_cmd =
  let evs =
    Arg.(
      value & flag
      & info [ "evs" ]
          ~doc:"Run enriched view synchrony (checks Properties 6.1/6.3 too).")
  in
  let run seed nodes duration evs =
    let seed64 = Int64.of_int seed in
    let node_list = List.init nodes (fun i -> i) in
    let script rng =
      Faults.random_script rng ~nodes:node_list ~start:1.0 ~duration
        ~mean_gap:0.5 ()
    in
    let rng = Vs_util.Rng.create (Int64.add seed64 999L) in
    let errors, summary =
      if evs then begin
        let c = Ec.create ~seed:seed64 ~n:nodes () in
        Ec.run_script c (script rng);
        Ec.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Ec.run c ~until:(duration +. 4.0);
        ( Oracle.check_all (Ec.oracle c)
          @ Ec.check_total_order c @ Ec.check_structure c,
          Printf.sprintf
            "deliveries=%d installs=%d distinct-views=%d e-view-changes=%d"
            (Oracle.total_deliveries (Ec.oracle c))
            (Oracle.total_installs (Ec.oracle c))
            (Oracle.distinct_views (Ec.oracle c))
            (Ec.eview_changes_total c) )
      end
      else begin
        let c = Vc.create ~seed:seed64 ~n:nodes () in
        Vc.run_script c (script rng);
        Vc.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Vc.run c ~until:(duration +. 4.0);
        ( Oracle.check_all (Vc.oracle c),
          Printf.sprintf "deliveries=%d installs=%d distinct-views=%d stable=%b"
            (Oracle.total_deliveries (Vc.oracle c))
            (Oracle.total_installs (Vc.oracle c))
            (Oracle.distinct_views (Vc.oracle c))
            (Vc.stable_view_reached c) )
      end
    in
    Printf.printf "campaign: seed=%d nodes=%d duration=%.1fs %s\n" seed nodes
      duration
      (if evs then "(EVS)" else "(plain VS)");
    Printf.printf "run: %s\n" summary;
    if errors = [] then
      print_endline "properties: all hold (agreement, uniqueness, integrity, order)"
    else begin
      Printf.printf "VIOLATIONS (%d):\n" (List.length errors);
      List.iter (fun e -> print_endline ("  " ^ e)) errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a randomized fault campaign and check the view-synchrony \
          properties against the oracle.")
    Term.(const run $ seed_arg $ nodes_arg $ duration_arg $ evs)

(* ---------- trace ---------- *)

let trace_cmd =
  let components =
    Arg.(
      value
      & opt (list string) [ "vsync"; "evs"; "faults"; "net" ]
      & info [ "components" ] ~docv:"LIST"
          ~doc:"Trace components to show (vsync, evs, mode, fd, net, faults).")
  in
  let limit =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum entries printed.")
  in
  let run seed nodes duration components limit =
    let seed64 = Int64.of_int seed in
    let c = Ec.create ~seed:seed64 ~n:nodes () in
    let rng = Vs_util.Rng.create (Int64.add seed64 999L) in
    Ec.run_script c
      (Faults.random_script rng
         ~nodes:(List.init nodes (fun i -> i))
         ~start:1.0 ~duration ~mean_gap:0.5 ());
    Ec.run c ~until:(duration +. 3.0);
    let entries =
      List.filter
        (fun e -> List.mem e.Trace.component components)
        (Trace.entries (Sim.trace (Ec.sim c)))
    in
    List.iteri
      (fun i e ->
        if i < limit then Format.printf "%a@." Trace.pp_entry e)
      entries;
    if List.length entries > limit then
      Printf.printf "... (%d more entries)\n" (List.length entries - limit)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run an EVS campaign and dump the event trace.")
    Term.(const run $ seed_arg $ nodes_arg $ duration_arg $ components $ limit)

let () =
  let info =
    Cmd.info "vscli" ~version:"1.0.0"
      ~doc:
        "Enriched view synchrony simulator — reproduction of 'On \
         Programming with View Synchrony' (ICDCS 1996)."
  in
  exit (Cmd.eval (Cmd.group info [ experiment_cmd; campaign_cmd; trace_cmd ]))
