examples/ordering_demo.ml: Hashtbl List Printf String Vs_net Vs_sim Vs_vsync
