examples/ordering_demo.mli:
