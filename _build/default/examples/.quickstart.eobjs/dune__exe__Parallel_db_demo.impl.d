examples/parallel_db_demo.ml: Evs_core List Printf String Vs_apps Vs_net Vs_sim Vs_vsync
