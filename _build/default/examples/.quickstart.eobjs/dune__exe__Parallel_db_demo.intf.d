examples/parallel_db_demo.mli:
