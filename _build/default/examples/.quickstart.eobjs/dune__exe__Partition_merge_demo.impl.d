examples/partition_merge_demo.ml: Evs_core List Printf Vs_apps Vs_net Vs_sim Vs_vsync
