examples/partition_merge_demo.mli:
