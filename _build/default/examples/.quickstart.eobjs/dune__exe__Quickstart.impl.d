examples/quickstart.ml: Evs_core List Printf Vs_apps Vs_net Vs_sim Vs_vsync
