examples/quickstart.mli:
