examples/replicated_file_demo.ml: Evs_core List Printf Vs_apps Vs_net Vs_sim Vs_store Vs_vsync
