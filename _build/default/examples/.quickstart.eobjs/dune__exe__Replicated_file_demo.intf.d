examples/replicated_file_demo.mli:
