(* Quickstart: a replicated counter on enriched view synchrony.

   Three processes join a group, increment a shared counter, survive a
   partition with divergence, and converge after the merge.  Run with:

     dune exec examples/quickstart.exe *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Counter = Vs_apps.Counter
module Endpoint = Vs_vsync.Endpoint

let show sim counters heading =
  Printf.printf "\n-- %s (t = %.2fs)\n" heading (Sim.now sim);
  List.iter
    (fun c ->
      if Counter.is_alive c then
        Printf.printf "   %s  mode=%s  value=%d\n"
          (Proc_id.to_string (Counter.me c))
          (Mode.to_string (Counter.mode c))
          (Counter.value c))
    counters

let () =
  (* Everything runs on a deterministic discrete-event simulator: create
     the engine, a network with (configurable) delays, and one counter
     replica per node. *)
  let sim = Sim.create ~seed:2026L () in
  let net = Counter.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let counters =
    List.map
      (fun node ->
        Counter.create sim net ~me:(Proc_id.initial node) ~universe
          ~config:Endpoint.default_config ())
      universe
  in
  (* Processes boot in singleton views, find each other through the
     failure detector, agree on a common view and settle. *)
  ignore (Sim.run ~until:1.0 sim);
  show sim counters "after boot: one view, everyone Normal";

  (* External operations are served in Normal mode. *)
  let c0 = List.nth counters 0 and c1 = List.nth counters 1 in
  (match Counter.increment c0 ~by:40 with
  | Ok () -> print_endline "\n   p0.increment 40 -> accepted"
  | Error `Not_serving -> print_endline "\n   p0.increment 40 -> REFUSED");
  ignore (Sim.run ~until:1.5 sim);
  show sim counters "after increment: totally-ordered update applied everywhere";

  (* A partition splits the group; both sides keep serving (the counter is
     a partitionable object) and diverge. *)
  print_endline "\n   >>> network partitions into {p0} | {p1,p2}";
  Net.set_partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (Sim.run ~until:2.5 sim);
  ignore (Counter.increment c0 ~by:1);
  ignore (Counter.increment c1 ~by:2);
  ignore (Sim.run ~until:3.0 sim);
  show sim counters "divergence: 41 on one side, 42 on the other";

  (* The merge is a view change; the members classify the shared-state
     problem (state merging), exchange reports and adopt the maximum. *)
  print_endline "\n   >>> partition heals";
  Net.heal net;
  ignore (Sim.run ~until:4.5 sim);
  show sim counters "after merge: high-water mark wins, everyone Normal again";

  print_endline "\ndone."
