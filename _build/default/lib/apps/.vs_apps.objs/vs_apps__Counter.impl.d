lib/apps/counter.ml: Evs_core Group_object Hashtbl List Vs_gms Vs_net Vs_sim Vs_vsync
