lib/apps/group_object.ml: Evs_core List Option Printf Vs_gms Vs_net Vs_sim Vs_util Vs_vsync
