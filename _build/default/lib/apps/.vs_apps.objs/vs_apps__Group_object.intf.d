lib/apps/group_object.mli: Evs_core Vs_gms Vs_net Vs_sim Vs_vsync
