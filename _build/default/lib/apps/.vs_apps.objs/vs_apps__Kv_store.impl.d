lib/apps/kv_store.ml: Evs_core Group_object Hashtbl Int List Map Option String Vs_gms Vs_net Vs_sim Vs_vsync
