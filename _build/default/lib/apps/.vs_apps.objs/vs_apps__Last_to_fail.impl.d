lib/apps/last_to_fail.ml: Int List Printf String Vs_gms Vs_net Vs_store Vs_util
