lib/apps/last_to_fail.mli: Vs_gms Vs_net Vs_store
