lib/apps/parallel_db.ml: Evs_core Group_object Hashtbl List Option Vs_gms Vs_net Vs_sim Vs_vsync
