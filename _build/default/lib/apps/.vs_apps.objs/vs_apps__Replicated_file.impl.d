lib/apps/replicated_file.ml: Evs_core Group_object Hashtbl List String Vs_gms Vs_net Vs_sim Vs_store Vs_vsync
