lib/apps/replicated_file.mli: Evs_core Group_object Vs_net Vs_sim Vs_store Vs_vsync
