lib/apps/state_transfer.mli: Evs_core Group_object Vs_net Vs_sim Vs_vsync
