(** Replicated high-water-mark counter — the quickstart group object.

    Increments are multicast in total order and applied by every member, so
    replicas in one view agree.  Concurrent partitions may diverge; on any
    shared-state problem the members exchange reports and adopt the maximum
    (a monotone counter's natural merge), which uniformly solves transfer
    (the joiner adopts the group's value), creation (the survivors' maximum
    is restored) and merging (partitions converge to the highest count). *)

module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint

type payload
(** Wire messages of the counter object. *)

type ann
(** Flush annotation (settled flag + value). *)

type net = (payload, ann) Evs_core.Evs.net

val make_net : Vs_sim.Sim.t -> Vs_net.Net.config -> net

type t

val create :
  Vs_sim.Sim.t ->
  net ->
  me:Proc_id.t ->
  universe:int list ->
  ?observer:(Group_object.observation -> unit) ->
  config:Endpoint.config ->
  unit ->
  t

val me : t -> Proc_id.t

val value : t -> int
(** Local replica value (readable in any mode). *)

val mode : t -> Mode.t

val increment : t -> by:int -> (unit, [ `Not_serving ]) result
(** External operation: allowed only in Normal mode. *)

val obj : t -> (payload, ann) Group_object.t
(** The underlying group-object runtime (for tests and the harness). *)

val is_alive : t -> bool

val leave : t -> unit

val kill : t -> unit
