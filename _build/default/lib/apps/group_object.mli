(** Group-object runtime: the application model of Section 3 made concrete.

    A group object couples an enriched-view-synchrony endpoint with a mode
    machine and the shared-state classifier, and structures the application
    after the Section 6.2 methodology:

    - the object declares its Normal-mode condition ({!spec.target_of}) and
      when a view change requires settling ({!spec.reconfigure_policy});
    - on every view change the runtime steps the mode machine; if the
      process lands in Settling it classifies the shared-state problem from
      the enriched view and hands it to the application's [on_settle], which
      runs the internal operations (state transfer / creation / merge);
    - the application calls {!complete_settling} when its internal
      operations succeed; the runtime performs the Reconcile transition and
      merges the subviews of the process's sv-set (external operations run
      within a subview; a completed internal operation merges the subviews
      involved);
    - {!begin_joint_settling} merges the view's sv-sets first, marking the
      processes engaged in the joint reconstruction so that later arrivals
      can tell a creation-in-progress from a rebirth (the paper's case (ii)
      vs (iii)). *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History
module Endpoint = Vs_vsync.Endpoint

type 'ann spec = {
  target_of : Proc_id.t list -> Mode.target;
      (** the Normal-mode condition on a membership (e.g. quorum) *)
  reconfigure_policy : Mode.reconfigure_policy;
  settled_ann : 'ann option -> bool;
      (** whether a member reporting this annotation holds settled state —
          refines the classification of singleton subviews *)
}

type ('a, 'ann) callbacks = {
  on_mode : Mode.Machine.step -> unit;
      (** a mode transition was taken (not called for no-change steps) *)
  on_settle : Classify.problem -> 'ann Evs.eview_event -> unit;
      (** the process entered (or re-entered) Settling: run internal ops *)
  on_message : sender:Proc_id.t -> 'a -> unit;
  on_eview : 'ann Evs.eview_event -> unit;  (** every e-view event, raw *)
}

type observation =
  | Obs_mode of Mode.Machine.step
  | Obs_settle of {
      problem : Classify.problem;  (** the enriched-view classification *)
      eview : E_view.t;
    }
(** What an external observer (the experiment harness) sees of the runtime:
    every mode transition and every settle with its local classification. *)

type ('a, 'ann) t

val create :
  Vs_sim.Sim.t ->
  ('a, 'ann) Evs.net ->
  me:Proc_id.t ->
  universe:int list ->
  config:Endpoint.config ->
  spec:'ann spec ->
  callbacks:('a, 'ann) callbacks ->
  ?observer:(observation -> unit) ->
  unit ->
  ('a, 'ann) t

val me : ('a, 'ann) t -> Proc_id.t

val evs : ('a, 'ann) t -> ('a, 'ann) Evs.t

val eview : ('a, 'ann) t -> E_view.t

val mode : ('a, 'ann) t -> Mode.t

val machine : ('a, 'ann) t -> Mode.Machine.t

val history : ('a, 'ann) t -> History.t

val multicast : ('a, 'ann) t -> ?order:Endpoint.order -> 'a -> unit

val set_annotation : ('a, 'ann) t -> 'ann option -> unit

val would_serve_all : ('a, 'ann) t -> Proc_id.t list -> bool
(** The spec's Normal condition as a predicate (what the classifier uses). *)

val classify_now : ('a, 'ann) t -> Classify.problem
(** Classify the current enriched view with the object's predicates. *)

val begin_joint_settling : ('a, 'ann) t -> unit
(** If this process is the view coordinator, request an SV-SetMerge of all
    the view's sv-sets, marking the joint reconstruction. *)

val complete_settling : ('a, 'ann) t -> unit
(** Internal operations finished: take the Reconcile transition and — if
    this process is the smallest member of its sv-set — request the
    SubviewMerge of the sv-set's subviews.  No-op if not Settling. *)

val is_alive : ('a, 'ann) t -> bool

val leave : ('a, 'ann) t -> unit

val kill : ('a, 'ann) t -> unit
