(** Determining the last process(es) to fail (Skeen [11]), for state
    creation after total failures.

    "Identifying which local state is to be used for recreation of the
    others may require determining the last process to fail" (Section 4).
    Every process persists the identifier of each view it installs; after a
    total failure the recovering processes exchange their persisted logs.
    The processes whose recorded last view is maximal were the last
    operational group — their persisted application state is the freshest —
    so recreation adopts a survivor of that view if one is present, and must
    otherwise wait for one to recover.

    The module is a pure decision procedure over persisted logs plus the
    persistence helpers; the demo application and tests drive it through
    the store. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

(** {2 Persistence} *)

val record_view : Vs_store.Store.t -> node:int -> View.t -> unit
(** Append a view installation to the node's persisted log. *)

val persisted_log : Vs_store.Store.t -> node:int -> View.Id.t list
(** The node's persisted view identifiers, oldest first. *)

val wipe : Vs_store.Store.t -> node:int -> unit

(** {2 Decision procedure} *)

type report = { r_proc : Proc_id.t; r_last : View.Id.t option }
(** A recovering process's claim: the last view its node persisted. *)

type decision =
  | Adopt_from of Proc_id.t list
      (** the reporters that were in the maximal (last) view: any of them
          holds the freshest state *)
  | Wait_for of Proc_id.t list
      (** no reporter was in the maximal view known so far: recreation must
          wait for (a later incarnation of) one of these processes *)
  | Fresh_start
      (** nobody has any persisted history: create the initial state *)

val decide : known_last_views:(View.Id.t * View.t) list -> report list -> decision
(** [known_last_views] maps view ids to compositions (reporters supply the
    full view from their logs); the maximal view id among all reports is the
    last gasp of the previous incarnation of the group.  If some reporter's
    node was a member of it, adopt from those; otherwise name the members
    that must be awaited. *)

val decide_from_store :
  Vs_store.Store.t -> reporters:Proc_id.t list -> decision
(** Convenience: read every reporter's persisted log from the store and
    decide. *)
