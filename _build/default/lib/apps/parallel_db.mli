(** Parallel-lookup replicated database — the paper's second example group
    object (Section 3).

    The database (keys [0 .. keyspace-1], fully replicated) answers look-up
    queries in parallel: each member scans only the key range assigned to it
    by the {e responsibility table}, the object's shared global state.  The
    single external operation works in {e any} view, so Reduced mode does
    not exist; but every view change invalidates the table and forces
    Settling, during which the coordinator redistributes the key space and
    members adopt the new table ("an inconsistency in this global state
    could result in some portion of the database not being searched at all
    or being searched multiple times").

    For experiment E8 the object can be built with [gate_on_settling:false]:
    members then keep answering with their stale ranges during view changes,
    and the resulting missed / duplicated key scans are what the experiment
    counts. *)

module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint

type payload

type ann

type net = (payload, ann) Evs_core.Evs.net

val make_net : Vs_sim.Sim.t -> Vs_net.Net.config -> net

type scan = {
  scan_member : Proc_id.t;
  scan_issuer : Proc_id.t; (** the query's issuer *)
  scan_query : int;        (** query identifier, per issuer *)
  scan_lo : int;
  scan_hi : int;           (** range scanned: [lo, hi) *)
}

type t

val create :
  Vs_sim.Sim.t ->
  net ->
  me:Proc_id.t ->
  universe:int list ->
  config:Endpoint.config ->
  keyspace:int ->
  ?gate_on_settling:bool ->
  ?on_scan:(scan -> unit) ->
  ?observer:(Group_object.observation -> unit) ->
  unit ->
  t
(** [on_scan] lets the harness observe every range scan a member performs —
    the raw material for E8's coverage accounting.  [gate_on_settling]
    defaults to [true] (the correct behaviour). *)

val me : t -> Proc_id.t

val mode : t -> Mode.t

val lookup : t -> needle:int -> (int, [ `Not_serving ]) result
(** External operation, issued at this member: multicast the query; returns
    its query id.  Results arrive asynchronously (see {!result_of}).
    Refused while the issuer itself is settling (when gating is on). *)

val result_of : t -> int -> (int list, [ `Pending ]) result
(** Hits collected so far for a query id; [Ok] once every key range of the
    responding view has been covered. *)

val my_range : t -> (int * int) option
(** This member's currently-assigned [lo, hi) range, if the table is set. *)

val obj : t -> (payload, ann) Group_object.t

val is_alive : t -> bool

val kill : t -> unit
