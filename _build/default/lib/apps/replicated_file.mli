(** Quorum-voted replicated file — the paper's first example group object
    (Section 3).

    Each replica carries a vote; a set of processes defines a {e quorum}
    when it holds a majority of all votes, which can happen in at most one
    concurrent view.  The mode interpretation is the paper's:

    - a quorum view is Normal mode: reads and writes are served;
    - a non-quorum view is Reduced mode: reads (possibly stale) only;
    - a view in which some replicas are out of date is Settling: replicas
      exchange version reports, the freshest holder ships the content to the
      laggards, and everyone reconciles.

    With respect to writes the object behaves as a one-copy file: a write
    needs a quorum, any later quorum intersects it, and the settling
    protocol adopts the highest version found — so no divergence can arise
    and the state-merging problem is structurally absent (writes are
    primary-partition-like, reads remain available everywhere; experiment
    E7 measures that trade-off, claim C3).

    Content is persisted per node, so processes recovering from a total
    failure solve the state-creation problem by the same version-report
    protocol over their persisted replicas. *)

module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint

type payload

type ann

type net = (payload, ann) Evs_core.Evs.net

val make_net : Vs_sim.Sim.t -> Vs_net.Net.config -> net

type config = {
  votes : int -> int;    (** votes held by a node's replica *)
  total_votes : int;     (** sum over the universe *)
}

val uniform_votes : universe:int list -> config
(** One vote per node. *)

type t

val create :
  Vs_sim.Sim.t ->
  net ->
  me:Proc_id.t ->
  universe:int list ->
  ?observer:(Group_object.observation -> unit) ->
  config:Endpoint.config ->
  file:config ->
  store:Vs_store.Store.t ->
  unit ->
  t
(** A recovering process re-reads its persisted replica from [store]. *)

val me : t -> Proc_id.t

val mode : t -> Mode.t

val read : t -> (string * int, [ `Not_serving ]) result
(** External operation: (content, version).  Served in Normal and Reduced
    mode — stale data is allowed for reads. *)

val write : t -> string -> (unit, [ `Not_serving ]) result
(** External operation: served only in Normal mode (quorum present and
    settled).  The write is applied when its totally-ordered message is
    delivered; the version number is assigned at delivery. *)

val version : t -> int

val obj : t -> (payload, ann) Group_object.t

val is_alive : t -> bool

val leave : t -> unit

val kill : t -> unit
