(** State-transfer strategies (Section 5 of the paper, claim C2).

    The object's state is an opaque blob.  When a joiner must be brought up
    to date, the donor — the smallest member holding settled state — ships
    it under one of two strategies:

    - {!Blocking}: the whole blob is transferred before the joiner
      reconciles; service at the joiner is unavailable for the entire
      transfer (the Isis strategy of blocking on state transfer, moved to
      the application layer since our runtime never blocks view
      installations);
    - {!Two_piece}: "split the state into two parts: a (small) piece that
      needs to be transferred in synchrony with the join event; another
      (large) piece that can be transferred concurrently with application
      activity in the new view" — the joiner reconciles as soon as the sync
      piece arrives and the bulk streams in the background in chunks.

    Experiment E6 measures the reconcile latency (availability gap) and the
    full-transfer completion time of both strategies against the state
    size. *)

module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint

type strategy =
  | Blocking
  | Two_piece of { sync_bytes : int; chunk_bytes : int }

type payload

type ann

type net = (payload, ann) Evs_core.Evs.net

val make_net : Vs_sim.Sim.t -> Vs_net.Net.config -> net

type t

val create :
  Vs_sim.Sim.t ->
  net ->
  me:Proc_id.t ->
  universe:int list ->
  ?observer:(Group_object.observation -> unit) ->
  ?bootstrap:bool ->
  config:Endpoint.config ->
  strategy:strategy ->
  state_bytes:int ->
  unit ->
  t
(** [state_bytes] is the size of the blob a settled member holds.
    [bootstrap] (default true) marks processes allowed to fabricate the
    initial state when no full copy exists; a joiner created with
    [~bootstrap:false] instead waits until it meets a donor — its
    boot-time singleton view is indistinguishable from a total failure, so
    the distinction must come from the outside. *)

val me : t -> Proc_id.t

val mode : t -> Mode.t

val holds_full_state : t -> bool
(** Whether the whole blob (sync piece and bulk) has arrived. *)

val reconciled_at : t -> float option
(** Virtual time this process last completed a Reconcile transition. *)

val full_state_at : t -> float option
(** Virtual time the full blob last became available locally. *)

val obj : t -> (payload, ann) Group_object.t

val is_alive : t -> bool

val kill : t -> unit
