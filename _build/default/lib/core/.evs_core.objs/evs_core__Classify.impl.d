lib/core/classify.pp.ml: E_view List Option Ppx_deriving_runtime Printf String Vs_gms Vs_net Vs_util
