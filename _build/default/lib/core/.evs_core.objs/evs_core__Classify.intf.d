lib/core/classify.pp.mli: E_view Ppx_deriving_runtime Vs_gms Vs_net
