lib/core/e_view.pp.ml: List Option Ppx_deriving_runtime Printf Result String Vs_gms Vs_net Vs_util
