lib/core/e_view.pp.mli: Ppx_deriving_runtime Vs_gms Vs_net
