lib/core/evs.pp.ml: E_view List Option Printf Result Vs_gms Vs_net Vs_sim Vs_vsync
