lib/core/evs.pp.mli: E_view Vs_gms Vs_net Vs_sim Vs_vsync
