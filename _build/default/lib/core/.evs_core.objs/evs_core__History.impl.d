lib/core/history.pp.ml: List Mode Vs_gms Vs_net Vs_util
