lib/core/history.pp.mli: Mode Vs_gms Vs_net
