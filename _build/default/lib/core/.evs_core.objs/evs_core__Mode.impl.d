lib/core/mode.pp.ml: Format Int List Option Ppx_deriving_runtime Printf
