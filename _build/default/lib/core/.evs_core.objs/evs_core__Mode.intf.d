lib/core/mode.pp.mli: Format Ppx_deriving_runtime
