module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Listx = Vs_util.Listx

type prior_state = Was_normal | Was_reduced | Was_settling | Was_fresh
[@@deriving eq, ord, show]

type creation_kind = No_creation | Rebirth | In_progress
[@@deriving eq, ord, show]

type problem = {
  transfer : bool;
  creation : creation_kind;
  merging : bool;
  clusters : int;
}
[@@deriving eq, ord, show]

let no_problem =
  { transfer = false; creation = No_creation; merging = false; clusters = 1 }

(* The [clusters] convention, enforced across every classifier: it counts
   the up-to-date clusters in S_N, so it is 0 exactly when S_N is empty
   (every creation verdict) and >= 1 otherwise; [merging] holds iff there
   are at least two.  [no_problem] is the one-cluster case. *)
let well_formed p =
  if p.creation <> No_creation then
    p.clusters = 0 && (not p.transfer) && not p.merging
  else p.clusters >= 1 && p.merging = (p.clusters >= 2)

let shape p = (p.transfer, p.creation, p.merging)

let problem_to_string p =
  let tags =
    (if p.transfer then [ "transfer" ] else [])
    @ (match p.creation with
      | No_creation -> []
      | Rebirth -> [ "creation(rebirth)" ]
      | In_progress -> [ "creation(in-progress)" ])
    @ if p.merging then [ Printf.sprintf "merging(%d)" p.clusters ] else []
  in
  match tags with
  | [] -> Printf.sprintf "none(%d cluster)" p.clusters
  | tags -> String.concat "+" tags

(* ---------- oracle ---------- *)

let exact ~members ~prior =
  let infos = List.map (fun p -> (p, prior p)) members in
  let s_n =
    List.filter (fun (_, (st, _)) -> equal_prior_state st Was_normal) infos
  in
  let s_r =
    List.filter (fun (_, (st, _)) -> not (equal_prior_state st Was_normal)) infos
  in
  if s_n = [] then begin
    let in_progress =
      List.exists (fun (_, (st, _)) -> equal_prior_state st Was_settling) s_r
    in
    {
      transfer = false;
      creation = (if in_progress then In_progress else Rebirth);
      merging = false;
      clusters = 0;
    }
  end
  else begin
    (* Clusters: members of S_N grouped by the view they come from. *)
    let cluster_count =
      List.filter_map (fun (p, (_, vid)) -> Some (Option.value vid ~default:(View.Id.initial p))) s_n
      |> Listx.sorted_set ~cmp:View.Id.compare
      |> List.length
    in
    {
      transfer = s_r <> [];
      creation = No_creation;
      merging = cluster_count >= 2;
      clusters = cluster_count;
    }
  end

(* ---------- enriched views (Section 6.2) ---------- *)

let enriched ~eview ~would_serve_all ?(settled = fun _ -> true) () =
  let counts_as_cluster (sv : E_view.subview) =
    would_serve_all sv.E_view.sv_members
    && (match sv.E_view.sv_members with
       | [ p ] -> settled p (* a fresh joiner's singleton is not a cluster *)
       | _ -> true)
  in
  let cluster_subviews =
    List.filter counts_as_cluster eview.E_view.structure.E_view.subviews
  in
  match cluster_subviews with
  | [] ->
      (* No up-to-date cluster.  An sv-set that satisfies the Normal
         condition as a whole marks a creation protocol that was running
         when the view changed (the paper's case (ii)); otherwise the state
         must be recreated from scratch (case (iii)). *)
      let in_progress =
        List.exists
          (fun ss -> would_serve_all (E_view.svset_members ss eview))
          eview.E_view.structure.E_view.svsets
      in
      {
        transfer = false;
        creation = (if in_progress then In_progress else Rebirth);
        merging = false;
        clusters = 0;
      }
  | _ :: _ ->
      let s_n =
        List.concat_map (fun sv -> sv.E_view.sv_members) cluster_subviews
        |> Proc_id.sort
      in
      let cluster_count = List.length cluster_subviews in
      {
        transfer =
          not
            (Listx.equal_set ~cmp:Proc_id.compare s_n
               (E_view.members eview));
        creation = No_creation;
        merging = cluster_count >= 2;
        clusters = cluster_count;
      }

(* ---------- flat views (Section 4) ---------- *)

type flat_knowledge = {
  fk_members : Proc_id.t list;
  fk_me : Proc_id.t;
  fk_my_prior : prior_state;
  fk_my_prior_members : Proc_id.t list;
}

let flat k =
  let members = Proc_id.sort k.fk_members in
  let prior_members = Proc_id.sort k.fk_my_prior_members in
  let strangers = Listx.diff ~cmp:Proc_id.compare members prior_members in
  match k.fk_my_prior with
  | Was_normal ->
      (* Survivors of my view shared my mode (the mode function depends only
         on the view), so they form one up-to-date cluster with me.  Each
         stranger is either stale (transfer) or a member of another
         up-to-date cluster (merging) — locally indistinguishable. *)
      if strangers = [] then [ no_problem ]
      else
        [
          { transfer = true; creation = No_creation; merging = false; clusters = 1 };
          { transfer = false; creation = No_creation; merging = true; clusters = 2 };
          { transfer = true; creation = No_creation; merging = true; clusters = 2 };
        ]
  | Was_reduced | Was_settling | Was_fresh ->
      (* I am in S_R myself, so if any up-to-date cluster exists there is a
         transfer problem; if none does it is a creation problem — and a
         flat view cannot tell (the paper's Section 4 example). *)
      if strangers = [] then begin
        let kind =
          if equal_prior_state k.fk_my_prior Was_settling then In_progress
          else Rebirth
        in
        [ { transfer = false; creation = kind; merging = false; clusters = 0 } ]
      end
      else
        [
          { transfer = false; creation = Rebirth; merging = false; clusters = 0 };
          { transfer = false; creation = In_progress; merging = false; clusters = 0 };
          { transfer = true; creation = No_creation; merging = false; clusters = 1 };
          { transfer = true; creation = No_creation; merging = true; clusters = 2 };
        ]

let flat_one_at_a_time k =
  let members = Proc_id.sort k.fk_members in
  let prior_members = Proc_id.sort k.fk_my_prior_members in
  let strangers = Listx.diff ~cmp:Proc_id.compare members prior_members in
  (* Under the Isis restriction (views grow by at most one member, primary
     partition), a process can classify exactly: alone means creation, a
     newcomer — itself or another — means transfer from the incumbents. *)
  if List.length members = 1 then
    [ { transfer = false; creation = Rebirth; merging = false; clusters = 0 } ]
  else if equal_prior_state k.fk_my_prior Was_fresh then
    [ { transfer = true; creation = No_creation; merging = false; clusters = 1 } ]
  else if strangers <> [] then
    [ { transfer = true; creation = No_creation; merging = false; clusters = 1 } ]
  else if equal_prior_state k.fk_my_prior Was_normal then [ no_problem ]
  else
    [ { transfer = true; creation = No_creation; merging = false; clusters = 1 } ]
