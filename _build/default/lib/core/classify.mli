(** Shared-state problem classification (Sections 4 and 6.2 of the paper).

    When a view change puts a process into Settling mode it must determine
    {e which} shared-state problem it faces.  Splitting the new view into
    [S_R] (members whose state is not authoritative: previously Reduced,
    still Settling, or freshly joined/recovered) and [S_N] (members
    previously Normal, i.e. holding up-to-date state), with [S_N] further
    split into {e clusters} of members that shared a view:

    - {e state transfer}: [S_R] and [S_N] both non-empty;
    - {e state creation}: [S_N] empty, [S_R] non-empty — either a rebirth
      after total failure or interrupting a creation already in progress;
    - {e state merging}: [S_N] spans at least two clusters (possibly
      together with a transfer problem).

    Three classifiers share the {!problem} verdict type:

    - {!exact} is the omniscient oracle (the harness knows every process's
      prior mode and view) — the ground truth for experiment E5;
    - {!enriched} reasons locally from the subview/sv-set structure, the way
      Section 6.2 prescribes, and is exact when the application follows the
      merge-at-reconcile methodology;
    - {!flat} reasons locally from a traditional flat view — the member list
      and the process's own past — and generally returns several possible
      verdicts: the ambiguity the paper's Section 4 identifies. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type prior_state = Was_normal | Was_reduced | Was_settling | Was_fresh
[@@deriving eq, ord, show]

type creation_kind =
  | No_creation
  | Rebirth      (** the state disappeared and must be recreated *)
  | In_progress  (** a creation protocol was already running *)
[@@deriving eq, ord, show]

type problem = {
  transfer : bool;
  creation : creation_kind;
  merging : bool;
  clusters : int;
      (** Number of up-to-date clusters in [S_N].  Convention (uniform
          across all classifiers, checked by {!well_formed}): [0] exactly
          when [S_N] is empty — i.e. for every creation verdict — and
          [>= 1] otherwise, with [merging] holding iff [clusters >= 2].
          Local classifiers that cannot count report the lower bound
          ([1], or [2] when merging is possible). *)
}
[@@deriving eq, ord, show]

val no_problem : problem
(** Everyone up to date: no transfer/creation/merging, [clusters = 1]. *)

val well_formed : problem -> bool
(** The [clusters] convention above: creation verdicts carry [clusters = 0]
    and no other flag; everything else carries [clusters >= 1] with
    [merging = (clusters >= 2)].  Every verdict built by {!exact},
    {!enriched}, {!flat} and {!flat_one_at_a_time} satisfies it. *)

val shape : problem -> bool * creation_kind * bool
(** The (transfer, creation, merging) triple — what classifiers can be
    compared on, since the exact cluster count is unknowable locally. *)

val problem_to_string : problem -> string

(** {2 Oracle} *)

val exact :
  members:Proc_id.t list ->
  prior:(Proc_id.t -> prior_state * View.Id.t option) ->
  problem
(** Ground truth from global knowledge: [prior p] gives the mode [p] was in
    just before this view's cut, and the view it came from ([None] for fresh
    processes). *)

(** {2 Local reasoning with enriched views} *)

val enriched :
  eview:E_view.t ->
  would_serve_all:(Proc_id.t list -> bool) ->
  ?settled:(Proc_id.t -> bool) ->
  unit ->
  problem
(** [would_serve_all ms] is the application's Normal-mode condition on a
    member set (e.g. "defines a quorum").  A subview satisfying it is an
    up-to-date cluster; an sv-set satisfying it while no single subview does
    signals a creation in progress.  [settled] (default: everyone) refines
    singleton subviews for applications whose Normal condition is trivially
    true: a fresh joiner's singleton subview is not a cluster. *)

(** {2 Local reasoning with flat views} *)

type flat_knowledge = {
  fk_members : Proc_id.t list;        (** new view composition *)
  fk_me : Proc_id.t;
  fk_my_prior : prior_state;          (** my own mode before the change *)
  fk_my_prior_members : Proc_id.t list;  (** my previous view's composition *)
}

val flat : flat_knowledge -> problem list
(** All verdicts consistent with what a flat view reveals, in a
    deterministic order.  A singleton list means the process could classify
    exactly; several candidates is the ambiguity of Section 4.  (Assumes
    survivors of the process's own prior view shared its mode — the paper's
    view-determined mode function; mid-view settling divergence can make
    even this set miss, which experiment E5 measures as the wrong-rate.) *)

val flat_one_at_a_time : flat_knowledge -> problem list
(** The flat classifier under the Isis restriction that consecutive views
    grow by at most one member (Section 5 discussion): the newcomer, if any,
    is the only possibly-fresh process, which removes most ambiguity at the
    cost experiment E4 quantifies. *)
