module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Listx = Vs_util.Listx

module Subview_id = struct
  type t =
    | Fresh of Proc_id.t
    | Merged of { view : View.Id.t; seq : int }
    | Split of { base : t; view : View.Id.t }
  [@@deriving eq, ord, show]

  let rec to_string = function
    | Fresh p -> "sv:" ^ Proc_id.to_string p
    | Merged { view; seq } ->
        Printf.sprintf "sv:%s/%d" (View.Id.to_string view) seq
    | Split { base; view } ->
        Printf.sprintf "%s|%s" (to_string base) (View.Id.to_string view)
end

module Svset_id = struct
  type t =
    | Fresh of Proc_id.t
    | Merged of { view : View.Id.t; seq : int }
    | Split of { base : t; view : View.Id.t }
  [@@deriving eq, ord, show]

  let rec to_string = function
    | Fresh p -> "ss:" ^ Proc_id.to_string p
    | Merged { view; seq } ->
        Printf.sprintf "ss:%s/%d" (View.Id.to_string view) seq
    | Split { base; view } ->
        Printf.sprintf "%s|%s" (to_string base) (View.Id.to_string view)
end

type subview = { sv_id : Subview_id.t; sv_members : Proc_id.t list }
[@@deriving eq, show]

type svset = { ss_id : Svset_id.t; ss_subviews : Subview_id.t list }
[@@deriving eq, show]

type structure = { subviews : subview list; svsets : svset list }
[@@deriving eq, show]

type t = { view : View.t; structure : structure; eseq : int } [@@deriving eq, show]

type member_tag = { m_sv : Subview_id.t; m_ss : Svset_id.t }

type member_report = { r_tag : member_tag option; r_prior : View.Id.t option }

let sort_subviews svs =
  List.sort (fun a b -> Subview_id.compare a.sv_id b.sv_id) svs

let sort_svsets sss =
  List.sort (fun a b -> Svset_id.compare a.ss_id b.ss_id) sss

let initial p =
  {
    view = View.singleton p;
    structure =
      {
        subviews = [ { sv_id = Subview_id.Fresh p; sv_members = [ p ] } ];
        svsets =
          [ { ss_id = Svset_id.Fresh p; ss_subviews = [ Subview_id.Fresh p ] } ];
      };
    eseq = 0;
  }

let rebuild view reports =
  (* Each member's effective report: fresh joiners get singleton identities,
     and their "prior view" defaults to their own initial view so that
     grouping keys are always defined. *)
  let report_of p =
    match List.assoc_opt p reports with
    | Some { r_tag = Some tag; r_prior } ->
        (tag, Option.value r_prior ~default:(View.Id.initial p))
    | Some { r_tag = None; r_prior } ->
        ( { m_sv = Subview_id.Fresh p; m_ss = Svset_id.Fresh p },
          Option.value r_prior ~default:(View.Id.initial p) )
    | None ->
        ( { m_sv = Subview_id.Fresh p; m_ss = Svset_id.Fresh p },
          View.Id.initial p )
  in
  let tagged = List.map (fun p -> (p, report_of p)) view.View.members in
  (* Members sharing a reported subview id from the same prior view shared
     that subview; equal ids arriving from different prior views are
     fragments of a subview split by a partition and must remain distinct
     (subviews grow only under application control), so each fragment's id
     is qualified with the view it came through. *)
  let by_sv =
    Listx.group_by
      ~key:(fun (_, (tag, _)) -> tag.m_sv)
      ~cmp_key:Subview_id.compare tagged
  in
  let subviews =
    List.concat_map
      (fun (sv_id, group) ->
        let fragments =
          Listx.group_by
            ~key:(fun (_, (_, prior)) -> prior)
            ~cmp_key:View.Id.compare group
        in
        match fragments with
        | [ (_, only) ] ->
            [ (sv_id, { sv_id; sv_members = Proc_id.sort (List.map fst only) }) ]
        | _ ->
            List.map
              (fun (prior, frag) ->
                let qualified = Subview_id.Split { base = sv_id; view = prior } in
                ( qualified,
                  { sv_id = qualified; sv_members = Proc_id.sort (List.map fst frag) }
                ))
              fragments)
      by_sv
  in
  let subviews = List.map snd subviews in
  (* A subview's sv-set identity comes from its members' (identical by
     construction) reports, qualified the same way when fragments of one
     sv-set meet from different prior views. *)
  let svset_report_of_subview sv =
    match sv.sv_members with
    | p :: _ ->
        let tag, prior = report_of p in
        (tag.m_ss, prior)
    | [] -> assert false
  in
  let by_ss =
    Listx.group_by
      ~key:(fun sv -> fst (svset_report_of_subview sv))
      ~cmp_key:Svset_id.compare subviews
  in
  let svsets =
    List.concat_map
      (fun (ss_id, group) ->
        let fragments =
          Listx.group_by
            ~key:(fun sv -> snd (svset_report_of_subview sv))
            ~cmp_key:View.Id.compare group
        in
        match fragments with
        | [ (_, only) ] ->
            [
              {
                ss_id;
                ss_subviews =
                  List.sort Subview_id.compare
                    (List.map (fun sv -> sv.sv_id) only);
              };
            ]
        | _ ->
            List.map
              (fun (prior, frag) ->
                {
                  ss_id = Svset_id.Split { base = ss_id; view = prior };
                  ss_subviews =
                    List.sort Subview_id.compare
                      (List.map (fun sv -> sv.sv_id) frag);
                })
              fragments)
      by_ss
  in
  {
    view;
    structure = { subviews = sort_subviews subviews; svsets = sort_svsets svsets };
    eseq = 0;
  }

type snapshot_report = { sr_snapshot : t option; sr_prior : View.Id.t option }

let members t = t.view.View.members

let find_subview sv_id t =
  List.find_opt (fun sv -> Subview_id.equal sv.sv_id sv_id) t.structure.subviews

let subview_of p t =
  List.find_opt
    (fun sv -> List.exists (Proc_id.equal p) sv.sv_members)
    t.structure.subviews

let svset_of_subview sv_id t =
  List.find_opt
    (fun ss -> List.exists (Subview_id.equal sv_id) ss.ss_subviews)
    t.structure.svsets

let svset_members ss t =
  List.concat_map
    (fun sv_id ->
      match find_subview sv_id t with
      | Some sv -> sv.sv_members
      | None -> [])
    ss.ss_subviews
  |> Proc_id.sort

let is_degenerate t =
  match (t.structure.subviews, t.structure.svsets) with
  | [ sv ], [ _ ] ->
      Listx.equal_set ~cmp:Proc_id.compare sv.sv_members t.view.View.members
  | _ -> false

let apply_svset_merge t ids =
  let ids = Listx.sorted_set ~cmp:Svset_id.compare ids in
  let existing, rest =
    List.partition
      (fun ss -> List.exists (Svset_id.equal ss.ss_id) ids)
      t.structure.svsets
  in
  if List.length existing < 2 then Error `No_effect
  else begin
    let eseq = t.eseq + 1 in
    let new_id = Svset_id.Merged { view = t.view.View.id; seq = eseq } in
    let merged =
      {
        ss_id = new_id;
        ss_subviews =
          List.concat_map (fun ss -> ss.ss_subviews) existing
          |> Listx.sorted_set ~cmp:Subview_id.compare;
      }
    in
    let structure =
      { t.structure with svsets = sort_svsets (merged :: rest) }
    in
    Ok ({ t with structure; eseq }, new_id)
  end

let apply_subview_merge t ids =
  let ids = Listx.sorted_set ~cmp:Subview_id.compare ids in
  let existing, rest =
    List.partition
      (fun sv -> List.exists (Subview_id.equal sv.sv_id) ids)
      t.structure.subviews
  in
  if List.length existing < 2 then Error `No_effect
  else begin
    (* All existing subviews must live in the same sv-set (Section 6.1:
       otherwise the call has no effect). *)
    let homes =
      List.filter_map (fun sv -> svset_of_subview sv.sv_id t) existing
      |> List.map (fun ss -> ss.ss_id)
      |> Listx.sorted_set ~cmp:Svset_id.compare
    in
    match homes with
    | [ home_id ] ->
        let eseq = t.eseq + 1 in
        let new_id = Subview_id.Merged { view = t.view.View.id; seq = eseq } in
        let merged =
          {
            sv_id = new_id;
            sv_members =
              List.concat_map (fun sv -> sv.sv_members) existing
              |> Proc_id.sort;
          }
        in
        let merged_ids = List.map (fun sv -> sv.sv_id) existing in
        let fix_svset ss =
          if Svset_id.equal ss.ss_id home_id then
            {
              ss with
              ss_subviews =
                new_id
                :: List.filter
                     (fun id ->
                       not (List.exists (Subview_id.equal id) merged_ids))
                     ss.ss_subviews
                |> Listx.sorted_set ~cmp:Subview_id.compare;
            }
          else ss
        in
        let structure =
          {
            subviews = sort_subviews (merged :: rest);
            svsets = sort_svsets (List.map fix_svset t.structure.svsets);
          }
        in
        Ok ({ t with structure; eseq }, new_id)
    | _ -> Error `No_effect
  end

let validate t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let all_sv_members =
    List.concat_map (fun sv -> sv.sv_members) t.structure.subviews
  in
  let* () =
    if
      Listx.equal_set ~cmp:Proc_id.compare
        (Proc_id.sort all_sv_members)
        t.view.View.members
      && List.length all_sv_members = List.length t.view.View.members
    then Ok ()
    else err "subviews do not partition the membership"
  in
  let* () =
    if List.for_all (fun sv -> sv.sv_members <> []) t.structure.subviews then
      Ok ()
    else err "empty subview"
  in
  let all_ss_subviews =
    List.concat_map (fun ss -> ss.ss_subviews) t.structure.svsets
  in
  let sv_ids = List.map (fun sv -> sv.sv_id) t.structure.subviews in
  let* () =
    if
      Listx.equal_set ~cmp:Subview_id.compare
        (Listx.sorted_set ~cmp:Subview_id.compare all_ss_subviews)
        (Listx.sorted_set ~cmp:Subview_id.compare sv_ids)
      && List.length all_ss_subviews = List.length sv_ids
    then Ok ()
    else err "sv-sets do not partition the subviews"
  in
  if List.for_all (fun ss -> ss.ss_subviews <> []) t.structure.svsets then
    Ok ()
  else err "empty sv-set"

let to_string t =
  let subview_str sv_id =
    match find_subview sv_id t with
    | Some sv ->
        Printf.sprintf "[%s]"
          (String.concat "," (List.map Proc_id.to_string sv.sv_members))
    | None -> "[?]"
  in
  let svset_str ss =
    Printf.sprintf "{%s}" (String.concat "" (List.map subview_str ss.ss_subviews))
  in
  Printf.sprintf "%s:%d %s"
    (View.Id.to_string t.view.View.id)
    t.eseq
    (String.concat "" (List.map svset_str t.structure.svsets))

(* Per prior-view group, the freshest snapshot (highest eseq; ties are
   equal by total order) assigns every member its identities; members
   absent from it — impossible for a correct reporter, handled defensively —
   get fresh singletons. *)
let rebuild_from_snapshots view raw =
  let prior_of p =
    match List.assoc_opt p raw with
    | Some { sr_prior = Some vid; _ } -> vid
    | Some { sr_prior = None; _ } | None -> View.Id.initial p
  in
  let groups =
    Listx.group_by ~key:prior_of ~cmp_key:View.Id.compare view.View.members
  in
  let reports =
    List.concat_map
      (fun (prior, group_members) ->
        let best =
          List.fold_left
            (fun best p ->
              match List.assoc_opt p raw with
              | Some { sr_snapshot = Some snap; _ }
                when View.Id.equal snap.view.View.id prior -> (
                  match best with
                  | Some b when b.eseq >= snap.eseq -> best
                  | Some _ | None -> Some snap)
              | Some _ | None -> best)
            None group_members
        in
        List.map
          (fun p ->
            let tag =
              match best with
              | Some snap -> (
                  match subview_of p snap with
                  | Some sv -> (
                      match svset_of_subview sv.sv_id snap with
                      | Some ss -> Some { m_sv = sv.sv_id; m_ss = ss.ss_id }
                      | None -> None)
                  | None -> None)
              | None -> None
            in
            (p, { r_tag = tag; r_prior = Some prior }))
          group_members)
      groups
  in
  rebuild view reports
