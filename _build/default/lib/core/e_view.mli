(** Enriched views: views structured into subviews and subview-sets.

    This is the data model of Section 6.1 of the paper.  Within a view,
    every process belongs to exactly one subview and every subview to
    exactly one sv-set.  Subviews and sv-sets shrink arbitrarily (failures)
    but grow only through the application-driven merge operations, and their
    identity survives view changes (Property 6.3): processes that shared a
    subview (sv-set) before a view change still share it after.

    Identifiers: a process's boot-time singleton subview (sv-set) is named
    after the process itself; a merge creates an identifier stamped with the
    view and the e-view change number that produced it, which every member
    computes identically because e-view changes are totally ordered. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

module Subview_id : sig
  type t =
    | Fresh of Proc_id.t
    | Merged of { view : View.Id.t; seq : int }
    | Split of { base : t; view : View.Id.t }
        (** When a partition splits a subview and the fragments later meet
            again in one view, they must stay distinct (subviews grow only
            under application control): each fragment's identifier is
            qualified by the view it came through. *)
  [@@deriving eq, ord, show]

  val to_string : t -> string
end

module Svset_id : sig
  type t =
    | Fresh of Proc_id.t
    | Merged of { view : View.Id.t; seq : int }
    | Split of { base : t; view : View.Id.t }
  [@@deriving eq, ord, show]

  val to_string : t -> string
end

type subview = { sv_id : Subview_id.t; sv_members : Proc_id.t list }
[@@deriving eq, show]
(** [sv_members] sorted and non-empty. *)

type svset = { ss_id : Svset_id.t; ss_subviews : Subview_id.t list }
[@@deriving eq, show]
(** [ss_subviews] sorted and non-empty. *)

type structure = { subviews : subview list; svsets : svset list }
[@@deriving eq, show]
(** Both lists sorted by identifier. *)

type t = { view : View.t; structure : structure; eseq : int } [@@deriving eq, show]
(** An enriched view: [eseq] counts e-view changes within [view] (0 at view
    installation). *)

(** {2 Construction} *)

type member_tag = { m_sv : Subview_id.t; m_ss : Svset_id.t }
(** What each member reports about itself at a view change. *)

type member_report = {
  r_tag : member_tag option;  (** [None] for a fresh joiner *)
  r_prior : View.Id.t option; (** the view the member comes from *)
}

val initial : Proc_id.t -> t
(** The enriched singleton view a process boots in. *)

val rebuild : View.t -> (Proc_id.t * member_report) list -> t
(** Build the successor structure after a view change from each member's
    reported subview/sv-set identity; members without a report get fresh
    singletons.  This is the deterministic computation that implements
    Property 6.3: members reporting the same identity {e from the same prior
    view} share a subview (sv-set); equal identities arriving from different
    prior views are fragments of a split and stay apart, with qualified
    identifiers. *)

type snapshot_report = {
  sr_snapshot : t option;     (** the member's enriched view at flush time *)
  sr_prior : View.Id.t option;
}

val rebuild_from_snapshots : View.t -> (Proc_id.t * snapshot_report) list -> t
(** Like {!rebuild}, but each member reports its whole enriched view.  Within
    a prior-view group the snapshot with the highest [eseq] wins and assigns
    every group member its subview/sv-set: e-view changes are totally
    ordered, so the latest snapshot subsumes the others — this is what makes
    the structure immune to a member having flush-acked before an in-flight
    merge reached it (the merge it missed was synchronised into its view by
    the flush, and the freshest peer's snapshot accounts for it). *)

val apply_svset_merge :
  t -> Svset_id.t list -> (t * Svset_id.t, [ `No_effect ]) result
(** SV-SetMerge (Section 6.1): union the given sv-sets into a new one.
    [`No_effect] if fewer than two of the identifiers still exist. *)

val apply_subview_merge :
  t -> Subview_id.t list -> (t * Subview_id.t, [ `No_effect ]) result
(** SubviewMerge: union the given subviews into a new subview.  No effect
    unless at least two of them exist and all existing ones belong to the
    same sv-set; the result stays in that sv-set. *)

(** {2 Queries} *)

val members : t -> Proc_id.t list

val subview_of : Proc_id.t -> t -> subview option

val svset_of_subview : Subview_id.t -> t -> svset option

val svset_members : svset -> t -> Proc_id.t list
(** Union of the member sets of the sv-set's subviews. *)

val find_subview : Subview_id.t -> t -> subview option

val is_degenerate : t -> bool
(** One sv-set containing one subview containing every member — the case
    equivalent to a traditional flat view. *)

val validate : t -> (unit, string) result
(** Check the structural invariants: subviews partition the membership,
    sv-sets partition the subviews, lists sorted, ids consistent. *)

val to_string : t -> string
(** E.g. "v3@p0{[p0,p1][p2]}{[p3]}" — sv-sets in braces, subviews in
    brackets. *)
