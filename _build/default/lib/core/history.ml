module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type event =
  | Deliver of { sender : Proc_id.t; seq : int; vid : View.Id.t }
  | View_event of View.t
  | Eview_event of { vid : View.Id.t; eseq : int }
  | Mode_event of { mode : Mode.t; cause : Mode.transition option }

type entry = { time : float; event : event }

type t = {
  owner : Proc_id.t;
  mutable rev_entries : entry list;
  mutable count : int;
}

let create owner = { owner; rev_entries = []; count = 0 }

let owner t = t.owner

let record t ~time event =
  t.rev_entries <- { time; event } :: t.rev_entries;
  t.count <- t.count + 1

let events t = List.rev t.rev_entries

let length t = t.count

let prefix t i = Vs_util.Listx.take i (events t)

let first_event_is_view t =
  match List.rev t.rev_entries with
  | { event = View_event _; _ } :: _ -> true
  | _ -> false

let views t =
  List.filter_map
    (fun e -> match e.event with View_event v -> Some v | _ -> None)
    (events t)

let deliveries_in_view t vid =
  List.filter_map
    (fun e ->
      match e.event with
      | Deliver { sender; seq; vid = v } when View.Id.equal v vid ->
          Some (sender, seq)
      | _ -> None)
    (events t)

let current_mode t =
  let rec find = function
    | { event = Mode_event { mode; _ }; _ } :: _ -> Some mode
    | _ :: rest -> find rest
    | [] -> None
  in
  find t.rev_entries

type mode_function = entry list -> Mode.t

let evaluate t f = f (events t)
