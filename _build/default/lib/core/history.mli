(** Process histories (Section 3 of the paper).

    The history [h_p] of a process is the sequence of delivery and view
    events it observes, starting with the view event of joining the group.
    The mode of a process after its [i]-th event is a function of the
    history prefix [h_p^i]; a process re-evaluates its mode function on
    every event.

    The harness records one of these per process; tests use them to check
    the paper's assumptions (first event is a view, mode depends only on the
    current view across view changes) and the delivery properties. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type event =
  | Deliver of { sender : Proc_id.t; seq : int; vid : View.Id.t }
      (** delivery of the [seq]-th recorded message from [sender] in view
          [vid] (an application-level identity, not the wire sequence) *)
  | View_event of View.t
  | Eview_event of { vid : View.Id.t; eseq : int }
  | Mode_event of { mode : Mode.t; cause : Mode.transition option }

type entry = { time : float; event : event }

type t

val create : Proc_id.t -> t

val owner : t -> Proc_id.t

val record : t -> time:float -> event -> unit

val events : t -> entry list
(** Oldest first. *)

val length : t -> int

val prefix : t -> int -> entry list
(** [prefix t i] is [h_p^i], the first [i] events. *)

val first_event_is_view : t -> bool
(** The paper's assumption: a history starts with a view event. *)

val views : t -> View.t list
(** The sequence of views installed, oldest first. *)

val deliveries_in_view : t -> View.Id.t -> (Proc_id.t * int) list
(** Message identities delivered within a given view, in delivery order. *)

val current_mode : t -> Mode.t option
(** Mode after the last recorded mode event. *)

type mode_function = entry list -> Mode.t
(** A mode function in the paper's sense: from a history prefix to a mode. *)

val evaluate : t -> mode_function -> Mode.t
(** Apply a mode function to the full recorded history. *)
