type t = Normal | Reduced | Settling [@@deriving eq, ord, show]

(* No [@@deriving] here: the generated code opens Ppx_deriving_runtime,
   whose re-exported Stdlib [Failure] exception would capture the
   constructor patterns. *)
type transition = Failure | Repair | Reconfigure | Reconcile

let transition_index = function
  | Failure -> 0
  | Repair -> 1
  | Reconfigure -> 2
  | Reconcile -> 3

let equal_transition a b = transition_index a = transition_index b

let compare_transition a b =
  Int.compare (transition_index a) (transition_index b)

let to_string = function
  | Normal -> "N"
  | Reduced -> "R"
  | Settling -> "S"

let transition_to_string = function
  | Failure -> "Failure"
  | Repair -> "Repair"
  | Reconfigure -> "Reconfigure"
  | Reconcile -> "Reconcile"

let pp_transition ppf tr = Format.pp_print_string ppf (transition_to_string tr)

let edge ~from ~into =
  match (from, into) with
  | Normal, Reduced -> Some Failure
  | Normal, Settling -> Some Reconfigure
  | Reduced, Settling -> Some Repair
  | Settling, Reduced -> Some Failure
  | Settling, Settling -> Some Reconfigure
  | Settling, Normal -> Some Reconcile
  | Normal, Normal | Reduced, Reduced -> None
  | Reduced, Normal -> None

let is_legal ~from ~into =
  equal from into || Option.is_some (edge ~from ~into)

type target = Serve_all | Serve_reduced [@@deriving eq, show]

type reconfigure_policy = On_any_change | On_expansion | Never

module Machine = struct
  type mode = t

  type step = { from_mode : mode; into_mode : mode; cause : transition option }

  type nonrec t = { mutable current : mode; mutable rev_history : step list }

  let create ?(initial = Settling) () = { current = initial; rev_history = [] }

  let mode m = m.current

  let take m into =
    let from = m.current in
    (* [edge] yields the Figure-1 cause; staying in Normal or Reduced is a
       causeless no-op, while Settling -> Settling is a genuine Reconfigure
       edge. *)
    let cause = edge ~from ~into in
    if cause = None && not (equal from into) then
      invalid_arg
        (Printf.sprintf "Mode.Machine: illegal transition %s -> %s"
           (to_string from) (to_string into));
    let step = { from_mode = from; into_mode = into; cause } in
    m.current <- into;
    m.rev_history <- step :: m.rev_history;
    step

  (* The derivation rule: a view change first fixes the service target; a
     target of Serve_reduced forces Reduced immediately (Failure), while a
     target of Serve_all can be served only after passing through Settling —
     either because we come from Reduced (Repair) or because the change
     itself requires state reconstruction (Reconfigure). *)
  let on_view_change m ~target ~expanded ~policy =
    match (target, m.current) with
    | Serve_reduced, _ -> take m Reduced
    | Serve_all, Reduced -> take m Settling
    | Serve_all, Settling -> take m Settling
    | Serve_all, Normal ->
        let needs_settling =
          match policy with
          | On_any_change -> true
          | On_expansion -> expanded
          | Never -> false
        in
        if needs_settling then take m Settling else take m Normal

  let reconcile m =
    match m.current with
    | Settling -> Ok (take m Normal)
    | Normal | Reduced -> Error `Not_settling

  let history m = List.rev m.rev_history

  let transition_counts m =
    let bump acc tr =
      let n = try List.assoc tr acc with Not_found -> 0 in
      (tr, n + 1) :: List.remove_assoc tr acc
    in
    List.fold_left
      (fun acc step ->
        match step.cause with Some tr -> bump acc tr | None -> acc)
      [] (history m)
    |> List.sort (fun (a, _) (b, _) -> compare_transition a b)
end
