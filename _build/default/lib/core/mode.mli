(** Execution modes and transitions of the application model (Section 3,
    Figure 1 of the paper).

    A group-object process is always in one of three modes: NORMAL (all
    external operations), REDUCED (a subset of external operations) or
    SETTLING (internal operations only).  The legal transitions are exactly
    the six edges of Figure 1:

    {v
      Normal   --Failure-->     Reduced
      Normal   --Reconfigure--> Settling
      Reduced  --Repair-->      Settling
      Settling --Failure-->     Reduced
      Settling --Reconfigure--> Settling
      Settling --Reconcile-->   Normal
    v}

    Reconcile is the only transition that is synchronous with the
    computation — it happens when the application finishes solving its
    shared-state problem — so the {!Machine} exposes it as an explicit call,
    while the others are derived from view-change events. *)

type t = Normal | Reduced | Settling [@@deriving eq, ord, show]

type transition = Failure | Repair | Reconfigure | Reconcile

val equal_transition : transition -> transition -> bool

val compare_transition : transition -> transition -> int

val pp_transition : Format.formatter -> transition -> unit

val to_string : t -> string

val transition_to_string : transition -> string

val edge : from:t -> into:t -> transition option
(** The Figure-1 edge between two distinct modes, if legal; [None] when
    [from = into] (staying put) or when the move is illegal (e.g. Reduced →
    Normal, which must pass through Settling). *)

val is_legal : from:t -> into:t -> bool
(** Staying in the same mode is legal; otherwise an edge must exist. *)

(** {2 Service targets}

    The mode function of the paper depends on the current view; we factor it
    as a {e target}: can this membership support all external operations, or
    only the reduced subset?  (E.g. "defines a quorum" for the replicated
    file.)  The machine derives the actual mode, inserting the mandatory
    pass through Settling. *)

type target = Serve_all | Serve_reduced [@@deriving eq, show]

type reconfigure_policy =
  | On_any_change   (** every view change needs settling (the parallel
                        database of Section 3) *)
  | On_expansion    (** only views with new members need settling (the
                        replicated file: a shrinking quorum keeps going) *)
  | Never           (** state is view-independent *)

(** {2 Mode machine} *)

module Machine : sig
  type mode = t

  type step = {
    from_mode : mode;
    into_mode : mode;
    cause : transition option;  (** [None] when the mode did not change *)
  }

  type nonrec t

  val create : ?initial:mode -> unit -> t
  (** A fresh process starts Settling: it must obtain the shared state
      before serving. *)

  val mode : t -> mode

  val on_view_change :
    t -> target:target -> expanded:bool -> policy:reconfigure_policy -> step
  (** Derive and take the transition triggered by a view change.
      [expanded] is whether the new view contains processes that were not in
      the previous one. *)

  val reconcile : t -> (step, [ `Not_settling ]) result
  (** The application finished its internal operations: Settling → Normal. *)

  val history : t -> step list
  (** Every step taken, oldest first (including no-change steps). *)

  val transition_counts : t -> (transition * int) list
  (** How many times each Figure-1 edge was taken — the empirical transition
      matrix of experiment E1. *)
end
