lib/exp/app_fleet.ml: Evs_core Hashtbl List Option Vs_gms Vs_harness Vs_net Vs_sim Vs_util
