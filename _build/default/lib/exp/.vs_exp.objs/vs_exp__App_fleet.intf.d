lib/exp/app_fleet.mli: Evs_core Vs_gms Vs_harness Vs_net Vs_sim
