lib/exp/exp_classify.ml: App_fleet Evs_core Int64 List Printf Vs_apps Vs_gms Vs_harness Vs_net Vs_sim Vs_stats Vs_store Vs_util Vs_vsync
