lib/exp/exp_db.ml: App_fleet Array Hashtbl Int64 List Vs_apps Vs_harness Vs_net Vs_sim Vs_stats Vs_util Vs_vsync
