lib/exp/exp_figures.ml: Evs_core List String Vs_harness Vs_net Vs_sim Vs_stats
