lib/exp/exp_join.ml: Int64 List Vs_harness Vs_sim Vs_stats Vs_util Vs_vsync
