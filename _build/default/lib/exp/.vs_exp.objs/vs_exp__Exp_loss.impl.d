lib/exp/exp_loss.ml: Float Int64 List Printf Vs_harness Vs_net Vs_sim Vs_stats Vs_vsync
