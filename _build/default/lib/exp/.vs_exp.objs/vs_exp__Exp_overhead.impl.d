lib/exp/exp_overhead.ml: Evs_core Int64 List Vs_harness Vs_net Vs_sim Vs_stats Vs_util Vs_vsync
