lib/exp/exp_transfer.ml: List Vs_apps Vs_net Vs_sim Vs_stats Vs_vsync
