module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History
module Faults = Vs_harness.Faults
module Sim = Vs_sim.Sim

type 'app t = {
  nodes : int list;
  make : node:int -> inc:int -> 'app;
  kill : 'app -> unit;
  is_alive : 'app -> bool;
  me : 'app -> Proc_id.t;
  history : 'app -> History.t;
  current : (int, 'app) Hashtbl.t;     (* node -> live instance *)
  next_inc : (int, int) Hashtbl.t;
  mutable rev_all : 'app list;
}

let boot t node =
  let inc = Option.value ~default:0 (Hashtbl.find_opt t.next_inc node) in
  Hashtbl.replace t.next_inc node (inc + 1);
  let app = t.make ~node ~inc in
  Hashtbl.replace t.current node app;
  t.rev_all <- app :: t.rev_all

let create ~sim:_ ~nodes ~make ~kill ~is_alive ~me ~history =
  let t =
    {
      nodes;
      make;
      kill;
      is_alive;
      me;
      history;
      current = Hashtbl.create 16;
      next_inc = Hashtbl.create 16;
      rev_all = [];
    }
  in
  List.iter (boot t) nodes;
  t

let live t =
  List.filter_map
    (fun node ->
      match Hashtbl.find_opt t.current node with
      | Some app when t.is_alive app -> Some app
      | Some _ | None -> None)
    t.nodes

let on_node t node =
  match Hashtbl.find_opt t.current node with
  | Some app when t.is_alive app -> Some app
  | Some _ | None -> None

let all_ever t = List.rev t.rev_all

let history_of t proc =
  List.find_map
    (fun app ->
      if Proc_id.equal (t.me app) proc then Some (t.history app) else None)
    t.rev_all

let apply_action t action net_action =
  match action with
  | Faults.Partition _ | Faults.Heal -> net_action action
  | Faults.Crash node -> (
      match on_node t node with
      | Some app ->
          t.kill app;
          Hashtbl.remove t.current node
      | None -> ())
  | Faults.Recover node -> (
      match on_node t node with Some _ -> () | None -> boot t node)

let run_script t sim script ~net_action =
  Faults.schedule sim script ~apply:(fun action ->
      Sim.record sim ~component:"faults" (Faults.to_string action);
      apply_action t action net_action)

(* Walk the history backwards from the View_event of [vid]: the first
   Mode_event before it is the mode the process was in at the cut. *)
let prior_state_of t proc ~vid =
  match history_of t proc with
  | None -> (Classify.Was_fresh, None)
  | Some h ->
      let events = History.events h in
      (* Find the index of the install of [vid]; if absent (the process
         died first), analyse the whole history. *)
      let rec find_ix i = function
        | { History.event = History.View_event v; _ } :: _
          when View.Id.equal v.View.id vid ->
            Some i
        | _ :: rest -> find_ix (i + 1) rest
        | [] -> None
      in
      let horizon =
        match find_ix 0 events with
        | Some i -> Vs_util.Listx.take i events
        | None -> events
      in
      let rec scan mode prior = function
        | [] -> (mode, prior)
        | { History.event; _ } :: rest ->
            let mode, prior =
              match event with
              | History.Mode_event { mode = m; _ } ->
                  let state =
                    match m with
                    | Mode.Normal -> Classify.Was_normal
                    | Mode.Reduced -> Classify.Was_reduced
                    | Mode.Settling -> Classify.Was_settling
                  in
                  (state, prior)
              | History.View_event v -> (mode, Some v.View.id)
              | History.Deliver _ | History.Eview_event _ -> (mode, prior)
            in
            scan mode prior rest
      in
      scan Classify.Was_fresh None horizon
