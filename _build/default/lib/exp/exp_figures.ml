(* Experiments E2 and E3 — Figures 2 and 3 as executable scenarios.

   E2 replays the paper's Figure 2 shape: a group whose application has
   merged everyone into one subview is partitioned, evolves on both sides,
   and re-merges — the enriched views printed at each stage show the
   subview/sv-set structure being preserved (fragments shrink, never
   auto-join).

   E3 replays Figure 3: within a single view, an SV-SetMerge of three
   sv-sets followed by a SubviewMerge of two subviews — two e-view changes,
   totally ordered at all members. *)

module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Cluster = Vs_harness.Evs_cluster
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

let all_svset_ids ev =
  List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets

let all_subview_ids ev =
  List.map (fun sv -> sv.E_view.sv_id) ev.E_view.structure.E_view.subviews

let structure_at c node =
  match Cluster.evs_on c node with
  | Some e -> E_view.to_string (Evs.eview e)
  | None -> "(down)"

let coordinator_merge_all c =
  match Cluster.evs_on c 0 with
  | Some e ->
      let ev = Evs.eview e in
      if List.length (all_svset_ids ev) >= 2 then
        Evs.svset_merge e (all_svset_ids ev);
      ignore (Sim.run ~until:(Sim.now (Cluster.sim c) +. 0.3) (Cluster.sim c));
      (match Cluster.evs_on c 0 with
      | Some e ->
          let ev = Evs.eview e in
          if List.length (all_subview_ids ev) >= 2 then
            Evs.subview_merge e (all_subview_ids ev)
      | None -> ());
      ignore (Sim.run ~until:(Sim.now (Cluster.sim c) +. 0.3) (Cluster.sim c))
  | None -> ()

let run_figure2 () =
  let table =
    Table.create
      ~title:
        "E2 / Figure 2 — subview & sv-set structure across view changes \
         ({sv-set}, [subview])"
      ~columns:[ "stage"; "structure at p0"; "structure at p2" ]
  in
  let c = Cluster.create ~seed:202L ~n:4 () in
  Cluster.run c ~until:1.0;
  Table.add_row table
    [ "v1: all joined (singletons)"; structure_at c 0; structure_at c 2 ];
  coordinator_merge_all c;
  Table.add_row table
    [ "v1: app merged everyone"; structure_at c 0; structure_at c 2 ];
  Cluster.apply_action c (Faults.Partition [ [ 0; 1 ]; [ 2; 3 ] ]);
  Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 1.5);
  Table.add_row table
    [ "v2,v2': partition {01}|{23}"; structure_at c 0; structure_at c 2 ];
  Cluster.apply_action c Faults.Heal;
  Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 1.5);
  Table.add_row table
    [ "v3: merged (fragments apart)"; structure_at c 0; structure_at c 2 ];
  coordinator_merge_all c;
  Table.add_row table
    [ "v3: app re-merged"; structure_at c 0; structure_at c 2 ];
  let violations =
    List.length (Cluster.check_structure c)
    + List.length (Cluster.check_total_order c)
  in
  Table.add_row table
    [ "property violations"; Table.fint violations; Table.fint violations ];
  table

let run_figure3 () =
  let table =
    Table.create
      ~title:
        "E3 / Figure 3 — e-view changes within one view (SV-SetMerge then \
         SubviewMerge)"
      ~columns:[ "eseq"; "cause"; "structure (identical at all members)" ]
  in
  let c = Cluster.create ~seed:203L ~n:3 () in
  Cluster.run c ~until:1.0;
  let snapshot cause =
    let s0 = structure_at c 0 and s1 = structure_at c 1 and s2 = structure_at c 2 in
    let agreed = String.equal s0 s1 && String.equal s1 s2 in
    let eseq =
      match Cluster.evs_on c 0 with
      | Some e -> (Evs.eview e).E_view.eseq
      | None -> -1
    in
    Table.add_row table
      [
        Table.fint eseq;
        cause;
        (if agreed then s0 else "DISAGREEMENT: " ^ s0 ^ " / " ^ s1 ^ " / " ^ s2);
      ]
  in
  snapshot "view installed";
  (match Cluster.evs_on c 0 with
  | Some e -> Evs.svset_merge e (all_svset_ids (Evs.eview e))
  | None -> ());
  Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 0.3);
  snapshot "SV-SetMerge(3 sv-sets)";
  (match Cluster.evs_on c 0 with
  | Some e -> (
      match all_subview_ids (Evs.eview e) with
      | a :: b :: _ -> Evs.subview_merge e [ a; b ]
      | _ -> ())
  | None -> ());
  Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 0.3);
  snapshot "SubviewMerge(2 subviews)";
  let violations = List.length (Cluster.check_total_order c) in
  Table.add_row table
    [ "-"; "total-order violations"; Table.fint violations ];
  table

let tables ?quick:_ () = [ run_figure2 (); run_figure3 () ]
