(* Experiment E4 — claim C1: merging two partitions of k members each under
   batch admission takes a single view change, while the Isis-style
   one-member-at-a-time restriction costs on the order of k view changes in
   each partition (~2k extra installation events in total).

   Two clusters of 2k nodes are booted under a partition into two halves;
   once both halves are stable the partition heals and we count the view
   installations and the virtual time needed to reach the merged view. *)

module Sim = Vs_sim.Sim
module Endpoint = Vs_vsync.Endpoint
module Cluster = Vs_harness.Vsync_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

type sample = {
  installs_total : int;     (* installation events after the heal, summed *)
  installs_per_proc : float;
  merge_latency : float;
}

let run_once ~one_at_a_time ~k =
  let n = 2 * k in
  let config = { Endpoint.default_config with Endpoint.one_at_a_time } in
  let c = Cluster.create ~seed:(Int64.of_int (400 + k)) ~config ~n () in
  let nodes = List.init n (fun i -> i) in
  let left = Vs_util.Listx.take k nodes and right = Vs_util.Listx.drop k nodes in
  Cluster.apply_action c (Faults.Partition [ left; right ]);
  (* Let both halves assemble (one-at-a-time needs ~k rounds for that too,
     so give it room). *)
  let assembly_deadline = 2.0 +. (0.6 *. float_of_int k) in
  Cluster.run c ~until:assembly_deadline;
  let before = Oracle.total_installs (Cluster.oracle c) in
  let heal_time = Sim.now (Cluster.sim c) in
  Cluster.apply_action c Faults.Heal;
  (* Run until the merged view is stable, in small steps to timestamp it. *)
  let deadline = heal_time +. 4.0 +. (0.8 *. float_of_int k) in
  let rec wait () =
    if Cluster.stable_view_reached c then Sim.now (Cluster.sim c)
    else if Sim.now (Cluster.sim c) >= deadline then infinity
    else begin
      Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 0.05);
      wait ()
    end
  in
  let stable_at = wait () in
  let installs_total = Oracle.total_installs (Cluster.oracle c) - before in
  {
    installs_total;
    installs_per_proc = float_of_int installs_total /. float_of_int n;
    merge_latency = stable_at -. heal_time;
  }

let run ?(quick = false) () =
  let ks = if quick then [ 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let table =
    Table.create
      ~title:
        "E4 / claim C1 — merging two k-member partitions: batch admission \
         vs Isis one-at-a-time"
      ~columns:
        [
          "k";
          "batch installs/proc";
          "isis installs/proc";
          "install ratio";
          "batch latency (s)";
          "isis latency (s)";
        ]
  in
  List.iter
    (fun k ->
      let batch = run_once ~one_at_a_time:false ~k in
      let isis = run_once ~one_at_a_time:true ~k in
      let ratio =
        if batch.installs_per_proc > 0. then
          isis.installs_per_proc /. batch.installs_per_proc
        else nan
      in
      Table.add_row table
        [
          Table.fint k;
          Table.ffloat batch.installs_per_proc;
          Table.ffloat isis.installs_per_proc;
          Table.ffloat ratio;
          Table.ffloat ~decimals:3 batch.merge_latency;
          Table.ffloat ~decimals:3 isis.merge_latency;
        ])
    ks;
  table

let tables ?quick () = [ run ?quick () ]
