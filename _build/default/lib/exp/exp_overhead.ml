(* Experiments E9 and E10 — the run-time cost of the machinery.

   E9: the same fault-and-traffic campaign over plain view synchrony and
   over enriched view synchrony (with the application merging structure
   after every change, the worst case): extra messages, bytes and events
   attributable to the subview/sv-set machinery.  The paper claims the
   extension "requires minor modifications ... and can be implemented
   efficiently" [2]; this quantifies it.

   E10: the cost of a view change itself — messages and virtual latency of
   merging two halves of a group, against group size, with and without
   unstable message backlog (the flush must then carry the synchronisation
   set). *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Endpoint = Vs_vsync.Endpoint
module Vc = Vs_harness.Vsync_cluster
module Ec = Vs_harness.Evs_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

(* ---------- E9 ---------- *)

type e9_sample = { msgs : int; bytes : int; installs : int; echanges : int }

let e9_script seed nodes duration =
  let rng = Vs_util.Rng.create seed in
  Faults.random_script rng ~nodes ~start:1.0 ~duration ~mean_gap:0.7 ()

let run_plain ~seed ~duration =
  let c = Vc.create ~seed ~n:5 () in
  Vc.run_script c (e9_script (Int64.add seed 1L) [ 0; 1; 2; 3; 4 ] duration);
  Vc.pump_traffic c ~start:0.5 ~until:duration ~mean_gap:0.05;
  Vc.run c ~until:(duration +. 3.0);
  let s = Vc.net_stats c in
  {
    msgs = s.Net.sent;
    bytes = s.Net.bytes_sent;
    installs = Oracle.total_installs (Vc.oracle c);
    echanges = 0;
  }

let run_evs ~seed ~duration =
  let c = Ec.create ~seed ~n:5 () in
  Ec.run_script c (e9_script (Int64.add seed 1L) [ 0; 1; 2; 3; 4 ] duration);
  Ec.pump_traffic c ~start:0.5 ~until:duration ~mean_gap:0.05;
  (* Worst-case structure maintenance: the coordinator merges after every
     change. *)
  let sim = Ec.sim c in
  let merge_tick () =
    List.iter
      (fun e ->
        let ev = Evs.eview e in
        match Proc_id.min_member (E_view.members ev) with
        | Some m when Proc_id.equal m (Evs.me e) ->
            let sss =
              List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets
            in
            if List.length sss >= 2 then Evs.svset_merge e sss
            else begin
              let svs =
                List.map (fun sv -> sv.E_view.sv_id)
                  ev.E_view.structure.E_view.subviews
              in
              if List.length svs >= 2 then Evs.subview_merge e svs
            end
        | Some _ | None -> ())
      (Ec.live c)
  in
  let rec arm t0 =
    if t0 < duration then begin
      ignore (Sim.at sim t0 merge_tick);
      arm (t0 +. 0.25)
    end
  in
  arm 0.7;
  Ec.run c ~until:(duration +. 3.0);
  let s = Ec.net_stats c in
  {
    msgs = s.Net.sent;
    bytes = s.Net.bytes_sent;
    installs = Oracle.total_installs (Ec.oracle c);
    echanges = Ec.eview_changes_total c;
  }

let run_e9 ?(quick = false) () =
  let duration = if quick then 4.0 else 12.0 in
  let plain = run_plain ~seed:901L ~duration in
  let evs = run_evs ~seed:901L ~duration in
  let table =
    Table.create
      ~title:
        "E9 — EVS run-time overhead vs plain view synchrony (same campaign, \
         5 nodes; EVS re-merges structure after every change)"
      ~columns:[ "metric"; "plain VS"; "EVS"; "overhead" ]
  in
  let pct a b =
    if a = 0 then "-"
    else Table.fpct ((float_of_int b -. float_of_int a) /. float_of_int a)
  in
  Table.add_row table
    [ "messages sent"; Table.fint plain.msgs; Table.fint evs.msgs; pct plain.msgs evs.msgs ];
  Table.add_row table
    [ "bytes sent"; Table.fint plain.bytes; Table.fint evs.bytes; pct plain.bytes evs.bytes ];
  Table.add_row table
    [
      "view installations";
      Table.fint plain.installs;
      Table.fint evs.installs;
      pct plain.installs evs.installs;
    ];
  Table.add_row table
    [ "within-view e-view changes"; "0"; Table.fint evs.echanges; "-" ];
  table

(* ---------- E10 ---------- *)

let run_merge ?(stability = true) ~n ~backlog () =
  let config =
    {
      Endpoint.default_config with
      Endpoint.stability_interval =
        (if stability then Endpoint.default_config.Endpoint.stability_interval
         else None);
    }
  in
  let c =
    Vc.create
      ~seed:(Int64.of_int (1000 + n + if backlog then 1 else 0))
      ~config ~n ()
  in
  let nodes = List.init n (fun i -> i) in
  let half = n / 2 in
  let left = Vs_util.Listx.take half nodes
  and right = Vs_util.Listx.drop half nodes in
  Vc.apply_action c (Faults.Partition [ left; right ]);
  Vc.run c ~until:2.0;
  if backlog then begin
    (* Traffic before the merge: the flush must synchronise whatever has
       not become stable.  A short delivery pause lets stability gossip
       (when enabled) trim most of it. *)
    List.iter
      (fun node ->
        for _ = 1 to 10 do
          Vc.multicast_from c ~node ()
        done)
      nodes;
    Vc.run c ~until:2.3
  end;
  let stats_before = Vc.net_stats c in
  let heal_time = Sim.now (Vc.sim c) in
  Vc.apply_action c Faults.Heal;
  let deadline = heal_time +. 5.0 in
  let rec wait () =
    if Vc.stable_view_reached c then Sim.now (Vc.sim c)
    else if Sim.now (Vc.sim c) >= deadline then infinity
    else begin
      Vc.run c ~until:(Sim.now (Vc.sim c) +. 0.02);
      wait ()
    end
  in
  let stable_at = wait () in
  let stats_after = Vc.net_stats c in
  ( stable_at -. heal_time,
    stats_after.Net.sent - stats_before.Net.sent,
    stats_after.Net.bytes_sent - stats_before.Net.bytes_sent )

let run_e10 ?(quick = false) () =
  let sizes = if quick then [ 4; 8 ] else [ 2; 4; 8; 16; 24 ] in
  let table =
    Table.create
      ~title:
        "E10 — view-agreement (flush) cost of merging two halves, vs group \
         size"
      ~columns:
        [
          "group size";
          "merge latency (s)";
          "messages";
          "bytes";
          "latency w/ backlog";
          "messages w/ backlog";
          "bytes w/ backlog";
        ]
  in
  List.iter
    (fun n ->
      let lat, msgs, bytes = run_merge ~n ~backlog:false () in
      let lat_b, msgs_b, bytes_b = run_merge ~n ~backlog:true () in
      Table.add_row table
        [
          Table.fint n;
          Table.ffloat ~decimals:3 lat;
          Table.fint msgs;
          Table.fint bytes;
          Table.ffloat ~decimals:3 lat_b;
          Table.fint msgs_b;
          Table.fint bytes_b;
        ])
    sizes;
  table

(* Ablation: the flush's synchronisation bytes with and without stability
   tracking — DESIGN.md calls out the untrimmed per-view message log as a
   simplification; this measures what the stability protocol buys back. *)
let run_e10_stability ?(quick = false) () =
  let sizes = if quick then [ 8 ] else [ 4; 8; 16 ] in
  let table =
    Table.create
      ~title:
        "E10b — ablation: flush bytes for a merge with message backlog, \
         with vs without stability tracking"
      ~columns:
        [
          "group size";
          "bytes (stability on)";
          "bytes (stability off)";
          "saved";
        ]
  in
  List.iter
    (fun n ->
      let _, _, bytes_on = run_merge ~stability:true ~n ~backlog:true () in
      let _, _, bytes_off = run_merge ~stability:false ~n ~backlog:true () in
      Table.add_row table
        [
          Table.fint n;
          Table.fint bytes_on;
          Table.fint bytes_off;
          (if bytes_off = 0 then "-"
           else
             Table.fpct
               (float_of_int (bytes_off - bytes_on) /. float_of_int bytes_off));
        ])
    sizes;
  table

let tables ?quick () =
  [ run_e9 ?quick (); run_e10 ?quick (); run_e10_stability ?quick () ]
