(* Experiment E6 — claim C2: blocking vs two-piece state transfer.

   A two-member group holds a blob of state; a joiner arrives and must be
   brought up to date.  Under the blocking strategy the joiner resumes
   service only when the whole blob has arrived; under the two-piece
   strategy a small synchronous piece restores service immediately while
   the bulk streams concurrently.  The network models bandwidth
   (byte_delay), so the blocking reconcile latency grows linearly with the
   state size while the two-piece one stays flat — the trade-off the paper
   argues for in Section 5. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Endpoint = Vs_vsync.Endpoint
module St = Vs_apps.State_transfer
module Table = Vs_stats.Table

type sample = { reconcile : float; full : float; bytes_sent : int }

(* 20 MB/s links. *)
let net_config = { Net.default_config with Net.byte_delay = 5e-8 }

let run_once ~strategy ~state_bytes =
  let sim = Sim.create ~seed:606L () in
  let net = St.make_net sim net_config in
  let universe = [ 0; 1; 2 ] in
  let mk ?bootstrap node =
    St.create sim net ~me:(Proc_id.initial node) ~universe ?bootstrap
      ~config:Endpoint.default_config ~strategy ~state_bytes ()
  in
  let _a = mk 0 and _b = mk 1 in
  ignore (Sim.run ~until:1.5 sim);
  let bytes_before = (Net.stats net).Net.bytes_sent in
  let join_time = Sim.now sim in
  let c = mk ~bootstrap:false 2 in
  (* Give the bulk room: size / bandwidth plus protocol slack. *)
  let horizon =
    join_time +. 5.0 +. (3.0 *. float_of_int state_bytes *. 5e-8)
  in
  ignore (Sim.run ~until:horizon sim);
  match (St.reconciled_at c, St.full_state_at c) with
  | Some r, Some f ->
      Some
        {
          reconcile = r -. join_time;
          full = f -. join_time;
          bytes_sent = (Net.stats net).Net.bytes_sent - bytes_before;
        }
  | _ -> None

let run ?(quick = false) () =
  let sizes =
    if quick then [ 100_000; 1_000_000 ]
    else [ 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  let table =
    Table.create
      ~title:
        "E6 / claim C2 — joiner availability gap: blocking vs two-piece \
         state transfer (20 MB/s links)"
      ~columns:
        [
          "state size (bytes)";
          "blocking reconcile (s)";
          "blocking full (s)";
          "two-piece reconcile (s)";
          "two-piece full (s)";
          "reconcile speedup";
        ]
  in
  List.iter
    (fun state_bytes ->
      let blocking = run_once ~strategy:St.Blocking ~state_bytes in
      let two_piece =
        run_once
          ~strategy:(St.Two_piece { sync_bytes = 1024; chunk_bytes = 65536 })
          ~state_bytes
      in
      match (blocking, two_piece) with
      | Some b, Some t ->
          Table.add_row table
            [
              Table.fint state_bytes;
              Table.ffloat ~decimals:4 b.reconcile;
              Table.ffloat ~decimals:4 b.full;
              Table.ffloat ~decimals:4 t.reconcile;
              Table.ffloat ~decimals:4 t.full;
              Table.ffloat (b.reconcile /. t.reconcile);
            ]
      | _ ->
          Table.add_row table
            [ Table.fint state_bytes; "-"; "-"; "-"; "-"; "incomplete" ])
    sizes;
  table

let tables ?quick () = [ run ?quick () ]
