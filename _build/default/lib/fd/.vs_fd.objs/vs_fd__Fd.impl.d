lib/fd/fd.ml: Hashtbl List Printf String Vs_net Vs_sim
