lib/fd/fd.mli: Vs_net Vs_sim
