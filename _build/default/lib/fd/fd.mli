(** Heartbeat failure detector.

    Each process periodically sends heartbeats to every node in the universe
    and considers a peer reachable while heartbeats from it are fresher than
    [timeout].  Under message delay or partitions this produces exactly the
    false suspicions of the paper's asynchronous model: a slow process is
    indistinguishable from a crashed one.

    The detector does not own the wire: the stack injects [send_heartbeat]
    (so heartbeats share the protocol's network message type) and calls
    {!heartbeat_received} when one arrives. *)

type t

type config = {
  period : float;   (** heartbeat emission interval *)
  timeout : float;  (** silence after which a peer is suspected *)
}

val default_config : config
(** period 30 ms, timeout 100 ms. *)

val create :
  Vs_sim.Sim.t ->
  me:Vs_net.Proc_id.t ->
  universe:int list ->
  config:config ->
  send_heartbeat:(dst_node:int -> unit) ->
  on_change:(Vs_net.Proc_id.t list -> unit) ->
  t
(** Start heartbeating.  [universe] is the set of node ids that may ever host
    a group member.  [on_change] fires with the new sorted reachable set
    whenever it changes; the set always contains [me]. *)

val heartbeat_received : t -> from:Vs_net.Proc_id.t -> unit

val forget : t -> Vs_net.Proc_id.t -> unit
(** Drop a peer immediately (graceful leave announcements). *)

val reachable : t -> Vs_net.Proc_id.t list
(** Current sorted reachable set, including [me]. *)

val stop : t -> unit
(** Cease heartbeating and suspecting (process leaving or crashed). *)
