lib/gms/estimator.pp.ml: List Vs_net Vs_sim
