lib/gms/estimator.pp.mli: Vs_net Vs_sim
