lib/gms/view.pp.ml: List Ppx_deriving_runtime Printf String Vs_net
