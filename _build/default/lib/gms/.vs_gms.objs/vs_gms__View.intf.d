lib/gms/view.pp.mli: Ppx_deriving_runtime Vs_net
