module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id

type t = {
  sim : Sim.t;
  stability : float;
  nag_period : float;
  achieved : unit -> Proc_id.t list;
  on_target : Proc_id.t list -> unit;
  mutable candidate : Proc_id.t list;  (* latest reachable set *)
  mutable settle_timer : Sim.handle option;
  mutable nag_timer : Sim.handle option;
  mutable emitted : Proc_id.t list option;
  mutable stopped : bool;
}

let cancel_timer = function Some h -> Sim.cancel h | None -> ()

let same = List.equal Proc_id.equal

let rec emit t =
  if not t.stopped then begin
    t.emitted <- Some t.candidate;
    t.on_target t.candidate;
    schedule_nag t
  end

and schedule_nag t =
  cancel_timer t.nag_timer;
  let handle =
    Sim.after t.sim t.nag_period (fun () ->
        if not t.stopped then
          match t.emitted with
          | Some target when not (same target (t.achieved ())) ->
              if same target t.candidate then emit t else schedule_nag t
          | Some _ | None -> ())
  in
  t.nag_timer <- Some handle

let create sim ~stability ~nag_period ~achieved ~on_target =
  if stability < 0. || nag_period <= 0. then
    invalid_arg "Estimator.create: bad timing parameters";
  {
    sim;
    stability;
    nag_period;
    achieved;
    on_target;
    candidate = [];
    settle_timer = None;
    nag_timer = None;
    emitted = None;
    stopped = false;
  }

let update t reachable =
  if not t.stopped then begin
    let reachable = Proc_id.sort reachable in
    if not (same reachable t.candidate) then begin
      t.candidate <- reachable;
      cancel_timer t.settle_timer;
      let handle =
        Sim.after t.sim t.stability (fun () ->
            if (not t.stopped) && not (same t.candidate (t.achieved ())) then
              emit t)
      in
      t.settle_timer <- Some handle
    end
  end

let target t = t.emitted

let stop t =
  t.stopped <- true;
  cancel_timer t.settle_timer;
  cancel_timer t.nag_timer
