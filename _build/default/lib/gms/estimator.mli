(** Membership estimator: a stability filter between the failure detector and
    the view-agreement protocol.

    Raw reachability flaps while partitions form or heal; proposing a view
    per flap wastes rounds and can livelock.  The estimator emits a target
    membership only once the reachable set has stayed unchanged for
    [stability] time, and re-emits it every [nag_period] while the target
    differs from what the caller reports as achieved — the retry mechanism
    that recovers from lost proposals or crashed coordinators. *)

type t

val create :
  Vs_sim.Sim.t ->
  stability:float ->
  nag_period:float ->
  achieved:(unit -> Vs_net.Proc_id.t list) ->
  on_target:(Vs_net.Proc_id.t list -> unit) ->
  t
(** [achieved ()] must return the membership of the caller's currently
    installed view; nagging stops once the target matches it. *)

val update : t -> Vs_net.Proc_id.t list -> unit
(** Feed a new reachable set (from the failure detector). *)

val target : t -> Vs_net.Proc_id.t list option
(** Last emitted target, if any. *)

val stop : t -> unit
