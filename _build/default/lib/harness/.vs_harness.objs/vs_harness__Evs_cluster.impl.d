lib/harness/evs_cluster.ml: Evs_core Faults Hashtbl Int List Option Oracle Printf String Vs_gms Vs_net Vs_sim Vs_util Vs_vsync
