lib/harness/evs_cluster.mli: Evs_core Faults Oracle Vs_gms Vs_net Vs_sim Vs_vsync
