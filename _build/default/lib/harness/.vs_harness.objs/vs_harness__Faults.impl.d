lib/harness/faults.ml: Hashtbl List Printf String Vs_sim Vs_util
