lib/harness/faults.mli: Vs_sim Vs_util
