lib/harness/oracle.ml: Hashtbl List Option Printf String Vs_gms Vs_net Vs_util
