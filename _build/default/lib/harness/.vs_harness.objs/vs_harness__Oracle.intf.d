lib/harness/oracle.mli: Vs_gms Vs_net
