lib/harness/vsync_cluster.ml: Faults Hashtbl Int List Oracle Vs_gms Vs_net Vs_sim Vs_util Vs_vsync
