lib/harness/vsync_cluster.mli: Faults Oracle Vs_gms Vs_net Vs_sim Vs_vsync
