(** Fault-injection scripts.

    A script is a time-ordered list of environment actions — partitions,
    heals, crashes, recoveries.  Clusters interpret the actions; the
    {!random_script} generator produces reproducible churn campaigns for the
    randomized property tests and the experiments, always ending with a heal
    and full recovery followed by a quiet tail so runs can be checked in a
    stabilized state. *)

type action =
  | Partition of int list list  (** connectivity components (node ids) *)
  | Heal
  | Crash of int                (** kill the incarnation on a node *)
  | Recover of int              (** start a fresh incarnation on a node *)

type script = (float * action) list

val to_string : action -> string

val schedule :
  Vs_sim.Sim.t -> script -> apply:(action -> unit) -> unit
(** Schedule every action at its absolute virtual time. *)

val random_script :
  Vs_util.Rng.t ->
  nodes:int list ->
  start:float ->
  duration:float ->
  mean_gap:float ->
  ?crash_weight:float ->
  ?partition_weight:float ->
  unit ->
  script
(** Random churn: events spaced exponentially with [mean_gap], drawn among
    crash / recover / partition / heal with the given weights (defaults 1.0
    each; recover and heal get natural weights from pending state).  The
    script keeps at least one node alive, ends by [start +. duration] with
    a heal and recovery of every crashed node. *)
