lib/net/net.pp.ml: Hashtbl List Option Printf Proc_id String Vs_sim Vs_util
