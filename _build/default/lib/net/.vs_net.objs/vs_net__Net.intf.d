lib/net/net.pp.mli: Proc_id Vs_sim
