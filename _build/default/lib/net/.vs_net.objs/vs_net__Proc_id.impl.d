lib/net/proc_id.pp.ml: List Map Ppx_deriving_runtime Printf Set Vs_util
