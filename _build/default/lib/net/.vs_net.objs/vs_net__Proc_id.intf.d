lib/net/proc_id.pp.mli: Map Ppx_deriving_runtime Set
