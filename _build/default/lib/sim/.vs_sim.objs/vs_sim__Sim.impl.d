lib/sim/sim.ml: List Printf Trace Vs_util
