lib/sim/sim.mli: Trace Vs_util
