lib/sim/trace.ml: Format List String
