type entry = { time : float; component : string; message : string }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t ~time ~component message =
  t.rev_entries <- { time; component; message } :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let by_component t component =
  List.filter (fun e -> String.equal e.component component) (entries t)

let length t = t.count

let clear t =
  t.rev_entries <- [];
  t.count <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f] %-8s %s" e.time e.component e.message
