(** Append-only trace of simulation events.

    Protocol layers record interesting transitions (view installs, mode
    changes, message drops) here; tests and the experiment harness read the
    trace back as the ground-truth chronicle of a run. *)

type entry = {
  time : float;        (** virtual time of the event *)
  component : string;  (** e.g. "vsync", "fd", "net" *)
  message : string;
}

type t

val create : unit -> t

val record : t -> time:float -> component:string -> string -> unit

val entries : t -> entry list
(** All entries, oldest first. *)

val by_component : t -> string -> entry list

val length : t -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
