lib/stats/summary.mli:
