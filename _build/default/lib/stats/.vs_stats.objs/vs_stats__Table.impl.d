lib/stats/table.ml: Buffer List Printf String
