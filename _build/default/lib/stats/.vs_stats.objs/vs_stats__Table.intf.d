lib/stats/table.mli:
