(** Descriptive statistics over float samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** +inf when empty. *)

val max_value : t -> float
(** -inf when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.95]; nearest-rank on the sorted samples, 0 when empty. *)

val stddev : t -> float

val of_list : float list -> t
