type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns (%s)"
         (List.length row) (List.length t.columns) t.title);
  t.rev_rows <- row :: t.rev_rows

let add_rows t rows = List.iter (add_row t) rows

let to_string t =
  let rows = List.rev t.rev_rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length t.columns)
      rows
  in
  let rec rstrip s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ' ' then rstrip (String.sub s 0 (n - 1)) else s
  in
  let render_row row =
    rstrip
      (String.concat "  "
         (List.map2
            (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
            widths row))
  in
  let header = render_row t.columns in
  let rule = String.make (String.length header) '-' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ "\n");
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (to_string t);
  print_newline ()

let fint = string_of_int

let ffloat ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fpct x = Printf.sprintf "%.1f%%" (100. *. x)

let fbool b = if b then "yes" else "no"
