(** Plain-text result tables.

    Every experiment in bench/main.ml renders its rows through one of these,
    so the output in bench_output.txt lines up with the tables promised in
    EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_rows : t -> string list list -> unit

val to_string : t -> string

val print : t -> unit
(** Render to stdout with a trailing blank line. *)

(** {2 Cell formatting helpers} *)

val fint : int -> string

val ffloat : ?decimals:int -> float -> string

val fpct : float -> string
(** A ratio in [0,1] rendered as a percentage. *)

val fbool : bool -> string
