lib/store/store.ml: Hashtbl List String
