lib/store/store.mli:
