(** Per-node stable storage.

    Models the "permanent part of the local state that survives across
    failures" of Section 3: data written here is keyed by node (not by
    incarnation), so a recovered process finds what its predecessor wrote.
    Used by the replicated file (versioned content) and by the last-to-fail
    protocol (persisted view histories) to solve state creation after total
    failures. *)

type t

val create : unit -> t

val put : t -> node:int -> key:string -> string -> unit

val get : t -> node:int -> key:string -> string option

val delete : t -> node:int -> key:string -> unit

val keys : t -> node:int -> string list
(** Sorted keys present on a node. *)

val wipe_node : t -> node:int -> unit
(** Simulate disk loss on a node. *)
