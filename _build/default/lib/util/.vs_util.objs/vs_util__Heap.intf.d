lib/util/heap.mli:
