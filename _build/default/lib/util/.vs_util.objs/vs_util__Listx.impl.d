lib/util/listx.ml: Hashtbl List
