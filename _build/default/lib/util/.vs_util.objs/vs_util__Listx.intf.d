lib/util/listx.mli:
