lib/util/rng.mli:
