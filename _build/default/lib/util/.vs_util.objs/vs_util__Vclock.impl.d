lib/util/vclock.ml: Format Map
