lib/util/vclock.mli: Format Map
