type 'a t = {
  mutable data : 'a option array;
  mutable size : int;
  cmp : 'a -> 'a -> int;
}

let create ~cmp = { data = Array.make 16 None; size = 0; cmp }

let length t = t.size

let is_empty t = t.size = 0

let get t i =
  match t.data.(i) with
  | Some x -> x
  | None -> assert false

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp (get t l) (get t i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp (get t r) (get t smallest) < 0 then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let push t x =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    root
  end

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0

let to_list t =
  let rec loop acc i =
    if i < 0 then acc else loop (get t i :: acc) (i - 1)
  in
  loop [] (t.size - 1)
