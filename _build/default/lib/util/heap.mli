(** Imperative binary min-heap.

    The comparison function is fixed at creation.  Used as the simulator's
    event queue, so [pop] must be stable with respect to the comparison:
    callers encode tie-breaking (e.g. an insertion sequence number) in the
    elements themselves. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order, not sorted). *)
