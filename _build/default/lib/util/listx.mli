(** List helpers used across the protocol stack.

    Views and subviews are represented as sorted, duplicate-free lists of
    process identifiers; the sorted-set operations here keep that invariant
    explicit. *)

val dedup_sorted : cmp:('a -> 'a -> int) -> 'a list -> 'a list
(** Remove adjacent duplicates of an already-sorted list. *)

val sorted_set : cmp:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort and remove duplicates. *)

val union : cmp:('a -> 'a -> int) -> 'a list -> 'a list -> 'a list
(** Union of two sorted sets. *)

val inter : cmp:('a -> 'a -> int) -> 'a list -> 'a list -> 'a list
(** Intersection of two sorted sets. *)

val diff : cmp:('a -> 'a -> int) -> 'a list -> 'a list -> 'a list
(** [diff a b]: elements of sorted set [a] not in sorted set [b]. *)

val subset : cmp:('a -> 'a -> int) -> 'a list -> 'a list -> bool
(** [subset a b] iff sorted set [a] is included in sorted set [b]. *)

val equal_set : cmp:('a -> 'a -> int) -> 'a list -> 'a list -> bool

val mem : cmp:('a -> 'a -> int) -> 'a -> 'a list -> bool

val group_by : key:('a -> 'k) -> cmp_key:('k -> 'k -> int) -> 'a list -> ('k * 'a list) list
(** Group elements by key; groups are sorted by key, elements keep their
    original relative order. *)

val init : int -> (int -> 'a) -> 'a list

val take : int -> 'a list -> 'a list

val drop : int -> 'a list -> 'a list
