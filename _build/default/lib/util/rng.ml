type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64, Steele et al.; passes BigCrush and needs only one word of
   state, which keeps [split] trivial. *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let float t = Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let bool t p = float t < p

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let exponential t mean = -.mean *. log (1. -. float t)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
