(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from one of these
    generators, so a run is fully reproducible from its seed.  [split]
    derives an independent stream, which lets components own private
    generators without perturbing each other's sequences. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** Duplicate the generator state (both copies produce the same stream). *)

val split : t -> t
(** Derive a statistically independent generator, advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)
