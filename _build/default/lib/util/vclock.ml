type ordering = Equal | Before | After | Concurrent

module Make (K : Map.OrderedType) = struct
  module M = Map.Make (K)

  type t = int M.t

  let empty = M.empty

  let get k t = match M.find_opt k t with Some v -> v | None -> 0

  let tick k t = M.add k (get k t + 1) t

  let merge a b = M.union (fun _ x y -> Some (max x y)) a b

  let leq a b = M.for_all (fun k v -> v <= get k b) a

  let compare_causal a b =
    match (leq a b, leq b a) with
    | true, true -> Equal
    | true, false -> Before
    | false, true -> After
    | false, false -> Concurrent

  let to_list t = M.bindings t

  let pp pp_key ppf t =
    let pp_entry ppf (k, v) = Format.fprintf ppf "%a:%d" pp_key k v in
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_entry) (M.bindings t)
end
