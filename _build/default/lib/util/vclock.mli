(** Vector clocks over an ordered key type.

    Used to timestamp replica state in the mergeable key-value store
    (last-writer-wins needs a causality check to tell divergence from
    dominance) and in the causal-cut tests for Property 6.2. *)

type ordering = Equal | Before | After | Concurrent

module Make (K : Map.OrderedType) : sig
  type t

  val empty : t

  val tick : K.t -> t -> t
  (** Increment [K]'s component. *)

  val get : K.t -> t -> int
  (** Component value, 0 if absent. *)

  val merge : t -> t -> t
  (** Component-wise maximum. *)

  val leq : t -> t -> bool
  (** [leq a b] iff every component of [a] is <= the one in [b]. *)

  val compare_causal : t -> t -> ordering

  val to_list : t -> (K.t * int) list

  val pp : (Format.formatter -> K.t -> unit) -> Format.formatter -> t -> unit
end
