lib/vsync/endpoint.ml: Float Hashtbl List Printf Queue String Vs_fd Vs_gms Vs_net Vs_sim Vs_util Wire
