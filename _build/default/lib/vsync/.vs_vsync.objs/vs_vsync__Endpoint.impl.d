lib/vsync/endpoint.ml: Hashtbl List Printf String Vs_fd Vs_gms Vs_net Vs_sim Vs_util Wire
