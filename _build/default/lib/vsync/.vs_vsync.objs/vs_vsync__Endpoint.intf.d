lib/vsync/endpoint.mli: Vs_fd Vs_gms Vs_net Vs_sim Wire
