lib/vsync/wire.ml: List Vs_gms Vs_net
