lib/vsync/wire.mli: Vs_gms Vs_net
