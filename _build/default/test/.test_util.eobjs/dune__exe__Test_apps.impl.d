test/test_apps.ml: Alcotest Evs_core Fun List Option Vs_apps Vs_gms Vs_net Vs_sim Vs_store Vs_vsync
