test/test_core.ml: Alcotest Evs_core Gen List Option Printf QCheck QCheck_alcotest Vs_gms Vs_net Vs_util
