test/test_evs.ml: Alcotest Evs_core Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Vs_gms Vs_harness Vs_net Vs_sim Vs_util Vs_vsync
