test/test_evs.mli:
