test/test_fd.ml: Alcotest Hashtbl List Vs_fd Vs_net Vs_sim
