test/test_fd.mli:
