test/test_gms.ml: Alcotest List Vs_gms Vs_net Vs_sim
