test/test_gms.mli:
