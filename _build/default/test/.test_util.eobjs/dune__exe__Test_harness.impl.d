test/test_harness.ml: Alcotest Hashtbl Int64 List QCheck QCheck_alcotest String Vs_gms Vs_harness Vs_net Vs_stats Vs_util
