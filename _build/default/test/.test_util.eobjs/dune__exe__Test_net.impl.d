test/test_net.ml: Alcotest List String Vs_net Vs_sim
