test/test_sim.ml: Alcotest Buffer Float List Printf QCheck QCheck_alcotest Vs_sim Vs_util
