test/test_util.ml: Alcotest Int List Option QCheck QCheck_alcotest Vs_util
