test/test_vsync.ml: Alcotest Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Vs_gms Vs_harness Vs_net Vs_sim Vs_util Vs_vsync
