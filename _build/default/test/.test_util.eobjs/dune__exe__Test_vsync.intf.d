test/test_vsync.mli:
