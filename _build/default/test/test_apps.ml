(* Tests for the group objects: the replicated counter, the quorum-voted
   file (paper example 1), the parallel-lookup database (paper example 2),
   the mergeable KV store, the state-transfer strategies and the
   last-to-fail decision procedure. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint
module Store = Vs_store.Store
module Go = Vs_apps.Group_object
module Counter = Vs_apps.Counter
module Rf = Vs_apps.Replicated_file
module Pdb = Vs_apps.Parallel_db
module Kv = Vs_apps.Kv_store
module St = Vs_apps.State_transfer
module Ltf = Vs_apps.Last_to_fail

let check = Alcotest.check

let cfg = Endpoint.default_config

(* ---------- Counter ---------- *)

let counter_cluster ?(seed = 13L) n =
  let sim = Sim.create ~seed () in
  let net = Counter.make_net sim Net.default_config in
  let universe = List.init n (fun i -> i) in
  let cs =
    List.map
      (fun node ->
        Counter.create sim net ~me:(Proc_id.initial node) ~universe ~config:cfg ())
      universe
  in
  (sim, net, cs)

let test_counter_quickstart () =
  let sim, _net, cs = counter_cluster 3 in
  ignore (Sim.run ~until:1.0 sim);
  List.iter
    (fun c ->
      check Alcotest.bool "serving" true (Mode.equal (Counter.mode c) Mode.Normal))
    cs;
  (match Counter.increment (List.hd cs) ~by:5 with
  | Ok () -> ()
  | Error `Not_serving -> Alcotest.fail "increment refused in Normal mode");
  ignore (Sim.run ~until:1.5 sim);
  List.iter (fun c -> check Alcotest.int "replicated" 5 (Counter.value c)) cs

let test_counter_refuses_while_settling () =
  let sim, net, cs = counter_cluster 3 in
  ignore (Sim.run ~until:1.0 sim);
  (* A partition provokes settling at its survivors for a moment. *)
  Net.set_partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (Sim.run ~until:1.18 sim);
  (* Whichever process is settling during the reconfiguration window must
     refuse external operations. *)
  List.iter
    (fun c ->
      match (Counter.mode c, Counter.increment c ~by:1) with
      | Mode.Settling, Error `Not_serving -> ()
      | Mode.Settling, Ok () -> Alcotest.fail "served while settling"
      | (Mode.Normal | Mode.Reduced), _ -> ())
    cs;
  ignore (Sim.run ~until:3.0 sim)

let test_counter_divergence_merges_to_max () =
  let sim, net, cs = counter_cluster 3 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Counter.increment (List.hd cs) ~by:2);
  ignore (Sim.run ~until:1.3 sim);
  Net.set_partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (Sim.run ~until:2.3 sim);
  (match cs with
  | c0 :: c1 :: _ ->
      ignore (Counter.increment c0 ~by:10);
      ignore (Counter.increment c1 ~by:100)
  | _ -> assert false);
  ignore (Sim.run ~until:2.8 sim);
  Net.heal net;
  ignore (Sim.run ~until:4.5 sim);
  List.iter
    (fun c ->
      check Alcotest.int "high-water mark wins" 102 (Counter.value c);
      check Alcotest.bool "back to Normal" true
        (Mode.equal (Counter.mode c) Mode.Normal))
    cs

let test_counter_join_transfer () =
  let sim = Sim.create ~seed:14L () in
  let net = Counter.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let c0 = Counter.create sim net ~me:(Proc_id.initial 0) ~universe ~config:cfg () in
  let c1 = Counter.create sim net ~me:(Proc_id.initial 1) ~universe ~config:cfg () in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Counter.increment c0 ~by:7);
  ignore (Sim.run ~until:1.3 sim);
  (* Late joiner must pick up the value through the settle protocol. *)
  let c2 = Counter.create sim net ~me:(Proc_id.initial 2) ~universe ~config:cfg () in
  ignore (Sim.run ~until:3.0 sim);
  check Alcotest.int "joiner transferred" 7 (Counter.value c2);
  check Alcotest.int "others unchanged" 7 (Counter.value c1);
  (* Figure-1 discipline held throughout. *)
  List.iter
    (fun c ->
      List.iter
        (fun (step : Mode.Machine.step) ->
          check Alcotest.bool "legal transition" true
            (Mode.is_legal ~from:step.Mode.Machine.from_mode
               ~into:step.Mode.Machine.into_mode))
        (Mode.Machine.history (Go.machine (Counter.obj c))))
    [ c0; c1; c2 ]

(* The Section 3 formalism, checked on real runs: every process history
   starts with the view event of joining the group, its installed views are
   monotone, and mode events follow only legal Figure-1 edges. *)
let test_histories_well_formed () =
  let sim = Sim.create ~seed:33L () in
  let net = Counter.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let c0 = Counter.create sim net ~me:(Proc_id.initial 0) ~universe ~config:cfg () in
  let c1 = Counter.create sim net ~me:(Proc_id.initial 1) ~universe ~config:cfg () in
  let c2 = Counter.create sim net ~me:(Proc_id.initial 2) ~universe ~config:cfg () in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Counter.increment c0 ~by:1);
  ignore (Sim.run ~until:1.5 sim);
  Counter.kill c2;
  ignore (Sim.run ~until:2.5 sim);
  let c2' = Counter.create sim net ~me:(Proc_id.make ~node:2 ~inc:1) ~universe ~config:cfg () in
  ignore (Sim.run ~until:4.0 sim);
  List.iter
    (fun c ->
      let h = Go.history (Counter.obj c) in
      let module History = Evs_core.History in
      check Alcotest.bool "first event is a view event (Section 3)" true
        (History.first_event_is_view h);
      let views = History.views h in
      let rec monotone = function
        | (a : View.t) :: (b : View.t) :: rest ->
            View.Id.compare a.View.id b.View.id < 0 && monotone (b :: rest)
        | _ -> true
      in
      check Alcotest.bool "installed views monotone" true (monotone views);
      check Alcotest.bool "history non-trivial" true (History.length h > 1))
    [ c0; c1; c2; c2' ]

(* ---------- Replicated file ---------- *)

let file_cluster ?(seed = 15L) ?votes n =
  let sim = Sim.create ~seed () in
  let net = Rf.make_net sim Net.default_config in
  let universe = List.init n (fun i -> i) in
  let store = Store.create () in
  let file =
    match votes with Some f -> f | None -> Rf.uniform_votes ~universe
  in
  let mk node inc =
    Rf.create sim net ~me:(Proc_id.make ~node ~inc) ~universe ~config:cfg ~file
      ~store ()
  in
  let fs = List.map (fun node -> mk node 0) universe in
  (sim, net, store, mk, fs)

let test_file_one_copy_semantics () =
  let sim, _net, _store, _mk, fs = file_cluster 5 in
  ignore (Sim.run ~until:1.0 sim);
  (match Rf.write (List.hd fs) "alpha" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "quorum write refused");
  ignore (Sim.run ~until:1.5 sim);
  List.iter
    (fun f ->
      match Rf.read f with
      | Ok (content, version) ->
          check Alcotest.string "content" "alpha" content;
          check Alcotest.int "version" 1 version
      | Error _ -> Alcotest.fail "read refused in Normal mode")
    fs

let test_file_minority_reduced () =
  let sim, net, _store, _mk, fs = file_cluster 5 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Rf.write (List.hd fs) "alpha");
  ignore (Sim.run ~until:1.5 sim);
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  ignore (Sim.run ~until:2.5 sim);
  let minority = List.hd fs and majority = List.nth fs 2 in
  check Alcotest.bool "minority reduced" true
    (Mode.equal (Rf.mode minority) Mode.Reduced);
  check Alcotest.bool "majority normal" true
    (Mode.equal (Rf.mode majority) Mode.Normal);
  (* Writes only with the quorum; reads everywhere (stale allowed). *)
  check Alcotest.bool "minority write refused" true
    (Rf.write minority "bad" = Error `Not_serving);
  (match Rf.write majority "beta" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "majority write refused");
  ignore (Sim.run ~until:3.0 sim);
  (match Rf.read minority with
  | Ok (content, _) -> check Alcotest.string "stale read allowed" "alpha" content
  | Error _ -> Alcotest.fail "minority read refused");
  (* Heal: the minority catches up. *)
  Net.heal net;
  ignore (Sim.run ~until:5.0 sim);
  List.iter
    (fun f ->
      match Rf.read f with
      | Ok (content, version) ->
          check Alcotest.string "caught up" "beta" content;
          check Alcotest.int "version 2" 2 version
      | Error _ -> Alcotest.fail "read refused after heal")
    fs

let test_file_total_failure_recreation () =
  let sim, _net, _store, mk, fs = file_cluster ~seed:16L 3 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Rf.write (List.hd fs) "persistent");
  ignore (Sim.run ~until:1.5 sim);
  List.iter Rf.kill fs;
  ignore (Sim.run ~until:2.0 sim);
  (* Everyone recovers as a new incarnation; the persisted replicas carry
     the state across the total failure (state creation). *)
  let fs' = List.map (fun node -> mk node 1) [ 0; 1; 2 ] in
  ignore (Sim.run ~until:4.0 sim);
  List.iter
    (fun f ->
      check Alcotest.bool "serving again" true (Mode.equal (Rf.mode f) Mode.Normal);
      match Rf.read f with
      | Ok (content, _) -> check Alcotest.string "recreated" "persistent" content
      | Error _ -> Alcotest.fail "read refused after recreation")
    fs'

let test_file_weighted_votes () =
  (* Node 0 holds 3 votes of 5: it forms a quorum alone. *)
  let votes = { Rf.votes = (fun node -> if node = 0 then 3 else 1); total_votes = 5 } in
  let sim, net, _store, _mk, fs = file_cluster ~seed:17L ~votes 3 in
  ignore (Sim.run ~until:1.0 sim);
  Net.set_partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (Sim.run ~until:2.5 sim);
  let heavy = List.hd fs and light = List.nth fs 1 in
  check Alcotest.bool "weighted node keeps quorum alone" true
    (Mode.equal (Rf.mode heavy) Mode.Normal);
  check Alcotest.bool "two light nodes lack quorum" true
    (Mode.equal (Rf.mode light) Mode.Reduced);
  check Alcotest.bool "write succeeds at heavy node" true
    (Rf.write heavy "solo" = Ok ())

let test_file_concurrent_writes_ordered () =
  let sim, _net, _store, _mk, fs = file_cluster ~seed:18L 3 in
  ignore (Sim.run ~until:1.0 sim);
  (* Two concurrent writers: total order makes every replica apply both in
     the same order, reaching version 2 with identical content. *)
  ignore (Rf.write (List.nth fs 1) "from-p1");
  ignore (Rf.write (List.nth fs 2) "from-p2");
  ignore (Sim.run ~until:1.5 sim);
  let contents =
    List.map
      (fun f -> match Rf.read f with Ok (c, v) -> (c, v) | Error _ -> ("", -1))
      fs
  in
  match contents with
  | (c0, v0) :: rest ->
      check Alcotest.int "two versions applied" 2 v0;
      List.iter
        (fun (c, v) ->
          check Alcotest.string "replicas agree" c0 c;
          check Alcotest.int "versions agree" v0 v)
        rest
  | [] -> assert false

(* ---------- Parallel database ---------- *)

let expected_hits keyspace needle =
  List.filter (fun k -> (k * 37 + 11) mod 256 = needle) (List.init keyspace Fun.id)

let test_pdb_lookup_exact_coverage () =
  let sim = Sim.create ~seed:19L () in
  let net = Pdb.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let keyspace = 1000 in
  let dbs =
    List.map
      (fun node ->
        Pdb.create sim net ~me:(Proc_id.initial node) ~universe ~config:cfg
          ~keyspace ())
      universe
  in
  ignore (Sim.run ~until:1.0 sim);
  List.iter
    (fun db -> check Alcotest.bool "has a range" true (Pdb.my_range db <> None))
    dbs;
  let issuer = List.hd dbs in
  let qid =
    match Pdb.lookup issuer ~needle:48 with
    | Ok qid -> qid
    | Error `Not_serving -> Alcotest.fail "lookup refused in stable view"
  in
  ignore (Sim.run ~until:1.5 sim);
  match Pdb.result_of issuer qid with
  | Ok hits ->
      check (Alcotest.list Alcotest.int) "exactly the matching keys"
        (expected_hits keyspace 48) hits
  | Error `Pending -> Alcotest.fail "coverage incomplete in stable view"

let test_pdb_ranges_partition_keyspace () =
  let sim = Sim.create ~seed:20L () in
  let net = Pdb.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3 ] in
  let keyspace = 103 (* deliberately not divisible *) in
  let dbs =
    List.map
      (fun node ->
        Pdb.create sim net ~me:(Proc_id.initial node) ~universe ~config:cfg
          ~keyspace ())
      universe
  in
  ignore (Sim.run ~until:1.0 sim);
  let ranges = List.filter_map Pdb.my_range dbs in
  check Alcotest.int "everyone assigned" 4 (List.length ranges);
  let total = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges in
  check Alcotest.int "ranges cover the keyspace" keyspace total;
  let sorted = List.sort compare ranges in
  let rec disjoint = function
    | (_, hi) :: ((lo', _) :: _ as rest) -> hi <= lo' && disjoint rest
    | _ -> true
  in
  check Alcotest.bool "ranges disjoint" true (disjoint sorted)

let test_pdb_rebalance_after_crash () =
  let sim = Sim.create ~seed:21L () in
  let net = Pdb.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let keyspace = 90 in
  let dbs =
    List.map
      (fun node ->
        Pdb.create sim net ~me:(Proc_id.initial node) ~universe ~config:cfg
          ~keyspace ())
      universe
  in
  ignore (Sim.run ~until:1.0 sim);
  Pdb.kill (List.nth dbs 2);
  ignore (Sim.run ~until:3.0 sim);
  let survivors = [ List.nth dbs 0; List.nth dbs 1 ] in
  let total =
    List.fold_left
      (fun acc db ->
        match Pdb.my_range db with Some (lo, hi) -> acc + (hi - lo) | None -> acc)
      0 survivors
  in
  check Alcotest.int "survivors cover whole keyspace" keyspace total;
  let qid =
    match Pdb.lookup (List.hd survivors) ~needle:11 with
    | Ok q -> q
    | Error _ -> Alcotest.fail "refused after rebalance"
  in
  ignore (Sim.run ~until:3.5 sim);
  match Pdb.result_of (List.hd survivors) qid with
  | Ok hits ->
      check (Alcotest.list Alcotest.int) "still exact" (expected_hits keyspace 11)
        hits
  | Error `Pending -> Alcotest.fail "incomplete after rebalance"

(* ---------- KV store ---------- *)

let kv_cluster ?(seed = 22L) ~policy n =
  let sim = Sim.create ~seed () in
  let net = Kv.make_net sim Net.default_config in
  let universe = List.init n (fun i -> i) in
  let kvs =
    List.map
      (fun node ->
        Kv.create sim net ~me:(Proc_id.initial node) ~universe ~config:cfg
          ~policy ())
      universe
  in
  (sim, net, kvs)

let test_kv_basic_replication () =
  let sim, _net, kvs = kv_cluster ~policy:Kv.Lww 3 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Kv.put (List.hd kvs) ~key:"a" ~value:"1");
  ignore (Sim.run ~until:1.5 sim);
  List.iter
    (fun kv ->
      check (Alcotest.option Alcotest.string) "replicated" (Some "1")
        (Option.map fst (Kv.get kv ~key:"a")))
    kvs

let test_kv_lww_merge () =
  let sim, net, kvs = kv_cluster ~seed:23L ~policy:Kv.Lww 4 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Kv.put (List.hd kvs) ~key:"shared" ~value:"base");
  ignore (Sim.run ~until:1.4 sim);
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  ignore (Sim.run ~until:2.4 sim);
  (* Both sides write; the right side writes more, so its stamps dominate. *)
  ignore (Kv.put (List.nth kvs 0) ~key:"shared" ~value:"left");
  ignore (Sim.run ~until:2.6 sim);
  ignore (Kv.put (List.nth kvs 2) ~key:"shared" ~value:"right-1");
  ignore (Sim.run ~until:2.8 sim);
  ignore (Kv.put (List.nth kvs 2) ~key:"shared" ~value:"right-2");
  ignore (Kv.put (List.nth kvs 2) ~key:"only-right" ~value:"x");
  ignore (Sim.run ~until:3.2 sim);
  Net.heal net;
  ignore (Sim.run ~until:5.0 sim);
  (* Convergence: all replicas identical. *)
  let snapshot kv =
    List.map (fun k -> (k, Option.map fst (Kv.get kv ~key:k))) (Kv.keys kv)
  in
  let reference = snapshot (List.hd kvs) in
  List.iter
    (fun kv ->
      check
        (Alcotest.list
           (Alcotest.pair Alcotest.string (Alcotest.option Alcotest.string)))
        "replicas converged" reference (snapshot kv))
    kvs;
  check (Alcotest.option Alcotest.string) "higher stamp wins" (Some "right-2")
    (Option.map fst (Kv.get (List.hd kvs) ~key:"shared"));
  check (Alcotest.option Alcotest.string) "disjoint keys union" (Some "x")
    (Option.map fst (Kv.get (List.hd kvs) ~key:"only-right"))

let test_kv_primary_subview_merge () =
  let sim, net, kvs = kv_cluster ~seed:24L ~policy:Kv.Primary_subview 5 in
  ignore (Sim.run ~until:1.0 sim);
  ignore (Kv.put (List.hd kvs) ~key:"k" ~value:"base");
  ignore (Sim.run ~until:1.4 sim);
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  ignore (Sim.run ~until:2.4 sim);
  ignore (Kv.put (List.nth kvs 0) ~key:"k" ~value:"minority");
  ignore (Kv.put (List.nth kvs 0) ~key:"minority-only" ~value:"m");
  ignore (Sim.run ~until:2.6 sim);
  ignore (Kv.put (List.nth kvs 2) ~key:"k" ~value:"majority");
  ignore (Sim.run ~until:3.0 sim);
  Net.heal net;
  ignore (Sim.run ~until:5.0 sim);
  (* The larger cluster's state wins wholesale: the minority's divergent
     writes — including its private key — are discarded. *)
  List.iter
    (fun kv ->
      check (Alcotest.option Alcotest.string) "primary value" (Some "majority")
        (Option.map fst (Kv.get kv ~key:"k"));
      check (Alcotest.option Alcotest.string) "minority write discarded" None
        (Option.map fst (Kv.get kv ~key:"minority-only")))
    kvs

let test_kv_custom_merge () =
  (* A custom merge that concatenates divergent values deterministically. *)
  let merge _key (va, sa) (vb, sb) =
    let lo = min va vb and hi = max va vb in
    ((if va = vb then va else lo ^ "+" ^ hi),
     if compare sa sb >= 0 then sa else sb)
  in
  let sim, net, kvs = kv_cluster ~seed:25L ~policy:(Kv.Custom merge) 4 in
  ignore (Sim.run ~until:1.0 sim);
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  ignore (Sim.run ~until:2.0 sim);
  ignore (Kv.put (List.nth kvs 0) ~key:"k" ~value:"A");
  ignore (Kv.put (List.nth kvs 2) ~key:"k" ~value:"B");
  ignore (Sim.run ~until:2.5 sim);
  Net.heal net;
  ignore (Sim.run ~until:4.5 sim);
  List.iter
    (fun kv ->
      check (Alcotest.option Alcotest.string) "custom merged" (Some "A+B")
        (Option.map fst (Kv.get kv ~key:"k")))
    kvs

(* ---------- State transfer ---------- *)

let transfer_scenario ~strategy ~state_bytes =
  let sim = Sim.create ~seed:26L () in
  let net = St.make_net sim Net.default_config in
  let universe = [ 0; 1; 2 ] in
  let mk ?bootstrap node =
    St.create sim net ~me:(Proc_id.initial node) ~universe ?bootstrap
      ~config:cfg ~strategy ~state_bytes ()
  in
  (* Two incumbents fabricate and settle first. *)
  let a = mk 0 and b = mk 1 in
  ignore (Sim.run ~until:1.5 sim);
  (* A joiner arrives; it must obtain the state, not fabricate it. *)
  let join_time = Sim.now sim in
  let c = mk ~bootstrap:false 2 in
  ignore (Sim.run ~until:8.0 sim);
  (sim, a, b, c, join_time)

let test_transfer_blocking () =
  let _sim, a, _b, c, join_time =
    transfer_scenario ~strategy:St.Blocking ~state_bytes:100_000
  in
  check Alcotest.bool "incumbent full" true (St.holds_full_state a);
  check Alcotest.bool "joiner got everything" true (St.holds_full_state c);
  match (St.reconciled_at c, St.full_state_at c) with
  | Some r, Some f ->
      check Alcotest.bool "joined then reconciled" true (r > join_time);
      (* Blocking: service resumes only with the full state. *)
      check Alcotest.bool "reconcile not before full state" true (r >= f)
  | _ -> Alcotest.fail "joiner never completed"

let test_transfer_two_piece () =
  let _sim, _a, _b, c, _join_time =
    transfer_scenario
      ~strategy:(St.Two_piece { sync_bytes = 512; chunk_bytes = 4096 })
      ~state_bytes:100_000
  in
  check Alcotest.bool "joiner eventually full" true (St.holds_full_state c);
  match (St.reconciled_at c, St.full_state_at c) with
  | Some r, Some f ->
      (* Two-piece: the joiner serves long before the bulk completes. *)
      check Alcotest.bool "reconciled strictly before full transfer" true (r < f)
  | _ -> Alcotest.fail "joiner never completed"

let test_transfer_creation_fabricates () =
  let sim = Sim.create ~seed:27L () in
  let net = St.make_net sim Net.default_config in
  let a =
    St.create sim net ~me:(Proc_id.initial 0) ~universe:[ 0 ] ~config:cfg
      ~strategy:St.Blocking ~state_bytes:1000 ()
  in
  ignore (Sim.run ~until:1.0 sim);
  check Alcotest.bool "lone process fabricates (creation)" true
    (St.holds_full_state a);
  check Alcotest.bool "and serves" true (Mode.equal (St.mode a) Mode.Normal)

(* ---------- Last to fail ---------- *)

let test_ltf_persistence_roundtrip () =
  let store = Store.create () in
  let v1 =
    View.make
      (View.Id.make ~epoch:1 ~proposer:(Proc_id.initial 0))
      [ Proc_id.initial 0; Proc_id.initial 1 ]
  in
  let v2 =
    View.make (View.Id.make ~epoch:2 ~proposer:(Proc_id.initial 0))
      [ Proc_id.initial 0 ]
  in
  Ltf.record_view store ~node:0 v1;
  Ltf.record_view store ~node:0 v2;
  check Alcotest.int "two views persisted" 2
    (List.length (Ltf.persisted_log store ~node:0));
  check Alcotest.bool "order preserved" true
    (View.Id.equal (List.nth (Ltf.persisted_log store ~node:0) 1) v2.View.id);
  Ltf.wipe store ~node:0;
  check Alcotest.int "wiped" 0 (List.length (Ltf.persisted_log store ~node:0))

let test_ltf_decisions () =
  let p n = Proc_id.initial n in
  let pr n i = Proc_id.make ~node:n ~inc:i in
  let vid e n = View.Id.make ~epoch:e ~proposer:(p n) in
  (* Nobody has history: fresh start. *)
  check Alcotest.bool "fresh start" true
    (Ltf.decide ~known_last_views:[]
       [
         { Ltf.r_proc = pr 0 1; r_last = None };
         { Ltf.r_proc = pr 1 1; r_last = None };
       ]
    = Ltf.Fresh_start);
  (* The group shrank before dying; the final survivor's node recovered:
     adopt from it. *)
  let v3 = View.make (vid 3 0) [ p 0 ] in
  let decision =
    Ltf.decide
      ~known_last_views:[ (v3.View.id, v3) ]
      [
        { Ltf.r_proc = pr 0 1; r_last = Some v3.View.id };
        { Ltf.r_proc = pr 1 1; r_last = Some (vid 2 0) };
      ]
  in
  (match decision with
  | Ltf.Adopt_from [ holder ] ->
      check Alcotest.bool "adopt from the last survivor" true
        (Proc_id.equal holder (pr 0 1))
  | _ -> Alcotest.fail "expected Adopt_from");
  (* The last view's members have not all recovered: wait. *)
  let v5 = View.make (vid 5 0) [ p 0; p 2 ] in
  let decision =
    Ltf.decide
      ~known_last_views:[ (v5.View.id, v5) ]
      [ { Ltf.r_proc = pr 0 1; r_last = Some v5.View.id } ]
  in
  match decision with
  | Ltf.Wait_for missing ->
      check Alcotest.int "one process awaited" 1 (List.length missing);
      check Alcotest.bool "it is node 2" true ((List.hd missing).Proc_id.node = 2)
  | _ -> Alcotest.fail "expected Wait_for"

let test_ltf_from_store_staggered_failure () =
  let store = Store.create () in
  let p n = Proc_id.initial n in
  let vid e = View.Id.make ~epoch:e ~proposer:(p 0) in
  (* History: {0,1,2} then {0,1} then {0}. Every member persists the views
     it installed. *)
  let v1 = View.make (vid 1) [ p 0; p 1; p 2 ] in
  let v2 = View.make (vid 2) [ p 0; p 1 ] in
  let v3 = View.make (vid 3) [ p 0 ] in
  List.iter (fun node -> Ltf.record_view store ~node v1) [ 0; 1; 2 ];
  List.iter (fun node -> Ltf.record_view store ~node v2) [ 0; 1 ];
  Ltf.record_view store ~node:0 v3;
  (* All three recover: node 0 was the last to fail. *)
  let reporters =
    [
      Proc_id.make ~node:0 ~inc:1;
      Proc_id.make ~node:1 ~inc:1;
      Proc_id.make ~node:2 ~inc:1;
    ]
  in
  (match Ltf.decide_from_store store ~reporters with
  | Ltf.Adopt_from [ holder ] ->
      check Alcotest.int "node 0 is the last to fail" 0 holder.Proc_id.node
  | _ -> Alcotest.fail "expected unique last-to-fail");
  (* Only node 1 recovers: it must wait for node 0. *)
  match Ltf.decide_from_store store ~reporters:[ Proc_id.make ~node:1 ~inc:1 ] with
  | Ltf.Wait_for missing ->
      check Alcotest.bool "waits for node 0" true
        (List.exists (fun (q : Proc_id.t) -> q.Proc_id.node = 0) missing)
  | _ -> Alcotest.fail "expected Wait_for node 0"

let () =
  Alcotest.run "vs_apps"
    [
      ( "counter",
        [
          Alcotest.test_case "quickstart" `Quick test_counter_quickstart;
          Alcotest.test_case "refuses while settling" `Quick
            test_counter_refuses_while_settling;
          Alcotest.test_case "divergence merges to max" `Quick
            test_counter_divergence_merges_to_max;
          Alcotest.test_case "join transfer" `Quick test_counter_join_transfer;
          Alcotest.test_case "histories well-formed (Sec. 3)" `Quick
            test_histories_well_formed;
        ] );
      ( "replicated_file",
        [
          Alcotest.test_case "one-copy semantics" `Quick test_file_one_copy_semantics;
          Alcotest.test_case "minority reduced" `Quick test_file_minority_reduced;
          Alcotest.test_case "total failure recreation" `Quick
            test_file_total_failure_recreation;
          Alcotest.test_case "weighted votes" `Quick test_file_weighted_votes;
          Alcotest.test_case "concurrent writes ordered" `Quick
            test_file_concurrent_writes_ordered;
        ] );
      ( "parallel_db",
        [
          Alcotest.test_case "exact coverage" `Quick test_pdb_lookup_exact_coverage;
          Alcotest.test_case "ranges partition keyspace" `Quick
            test_pdb_ranges_partition_keyspace;
          Alcotest.test_case "rebalance after crash" `Quick
            test_pdb_rebalance_after_crash;
        ] );
      ( "kv_store",
        [
          Alcotest.test_case "replication" `Quick test_kv_basic_replication;
          Alcotest.test_case "LWW merge" `Quick test_kv_lww_merge;
          Alcotest.test_case "primary-subview merge" `Quick
            test_kv_primary_subview_merge;
          Alcotest.test_case "custom merge" `Quick test_kv_custom_merge;
        ] );
      ( "state_transfer",
        [
          Alcotest.test_case "blocking" `Quick test_transfer_blocking;
          Alcotest.test_case "two-piece" `Quick test_transfer_two_piece;
          Alcotest.test_case "creation fabricates" `Quick
            test_transfer_creation_fabricates;
        ] );
      ( "last_to_fail",
        [
          Alcotest.test_case "persistence roundtrip" `Quick
            test_ltf_persistence_roundtrip;
          Alcotest.test_case "decisions" `Quick test_ltf_decisions;
          Alcotest.test_case "staggered failure" `Quick
            test_ltf_from_store_staggered_failure;
        ] );
    ]
