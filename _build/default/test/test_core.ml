(* Tests for the paper's core machinery: enriched-view algebra (Section 6.1),
   the mode machine of Figure 1, the shared-state classifiers (Sections 4 and
   6.2) and process histories (Section 3). *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History

let check = Alcotest.check

let p n = Proc_id.initial n
let vid epoch node = View.Id.make ~epoch ~proposer:(p node)

let assert_valid ev =
  match E_view.validate ev with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid e-view: %s" e

(* Build an e-view from (member, subview-tag, svset-tag, prior) tuples where
   tags are small ints naming fresh identities by representative process. *)
let build_eview view_id members specs =
  let view = View.make view_id members in
  let reports =
    List.map
      (fun (m, sv_rep, ss_rep, prior) ->
        ( m,
          {
            E_view.r_tag =
              Some
                {
                  E_view.m_sv = E_view.Subview_id.Fresh (p sv_rep);
                  m_ss = E_view.Svset_id.Fresh (p ss_rep);
                };
            r_prior = prior;
          } ))
      specs
  in
  E_view.rebuild view reports

(* ---------- E_view ---------- *)

let test_initial () =
  let ev = E_view.initial (p 0) in
  assert_valid ev;
  check Alcotest.bool "degenerate" true (E_view.is_degenerate ev);
  check Alcotest.int "eseq 0" 0 ev.E_view.eseq;
  check Alcotest.int "one subview" 1 (List.length ev.E_view.structure.E_view.subviews)

let test_rebuild_groups_by_tag () =
  let prior = Some (vid 1 0) in
  let ev =
    build_eview (vid 2 0) [ p 0; p 1; p 2; p 3 ]
      [ (p 0, 0, 0, prior); (p 1, 0, 0, prior); (p 2, 2, 0, prior); (p 3, 3, 3, prior) ]
  in
  assert_valid ev;
  check Alcotest.int "three subviews" 3
    (List.length ev.E_view.structure.E_view.subviews);
  check Alcotest.int "two sv-sets" 2
    (List.length ev.E_view.structure.E_view.svsets);
  (* p0 and p1 share their subview; p2 is separate but in the same sv-set. *)
  let sv0 = Option.get (E_view.subview_of (p 0) ev) in
  check
    (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "p0,p1 together" [ p 0; p 1 ] sv0.E_view.sv_members;
  let ss0 = Option.get (E_view.svset_of_subview sv0.E_view.sv_id ev) in
  check Alcotest.int "sv-set holds two subviews" 2
    (List.length ss0.E_view.ss_subviews);
  check
    (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "sv-set members" [ p 0; p 1; p 2 ]
    (E_view.svset_members ss0 ev)

let test_rebuild_fresh_members () =
  let view = View.make (vid 1 0) [ p 0; p 1 ] in
  let ev =
    E_view.rebuild view
      [ (p 0, { E_view.r_tag = None; r_prior = None }) ]
    (* p1 entirely unreported *)
  in
  assert_valid ev;
  check Alcotest.int "two singleton subviews" 2
    (List.length ev.E_view.structure.E_view.subviews);
  check Alcotest.int "two singleton sv-sets" 2
    (List.length ev.E_view.structure.E_view.svsets)

let test_rebuild_splits_stay_apart () =
  (* Both fragments report the same subview identity but from different
     prior views (a healed partition): they must not be re-merged. *)
  let ev =
    build_eview (vid 5 0) [ p 0; p 1; p 2; p 3 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 0, 0, Some (vid 3 0));
        (p 2, 0, 0, Some (vid 4 2));
        (p 3, 0, 0, Some (vid 4 2));
      ]
  in
  assert_valid ev;
  check Alcotest.int "fragments stay distinct subviews" 2
    (List.length ev.E_view.structure.E_view.subviews);
  check Alcotest.int "fragments stay distinct sv-sets" 2
    (List.length ev.E_view.structure.E_view.svsets);
  check Alcotest.bool "p0,p1 still together" true
    (Proc_id.equal (p 1)
       (List.nth (Option.get (E_view.subview_of (p 0) ev)).E_view.sv_members 1))

let test_svset_merge () =
  let prior = Some (vid 1 0) in
  let ev =
    build_eview (vid 2 0) [ p 0; p 1; p 2 ]
      [ (p 0, 0, 0, prior); (p 1, 1, 1, prior); (p 2, 2, 2, prior) ]
  in
  let ids = List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets in
  match E_view.apply_svset_merge ev ids with
  | Error `No_effect -> Alcotest.fail "merge should apply"
  | Ok (ev', new_id) ->
      assert_valid ev';
      check Alcotest.int "one sv-set" 1 (List.length ev'.E_view.structure.E_view.svsets);
      check Alcotest.int "subviews untouched" 3
        (List.length ev'.E_view.structure.E_view.subviews);
      check Alcotest.int "eseq bumped" 1 ev'.E_view.eseq;
      check Alcotest.bool "new id is Merged" true
        (match new_id with E_view.Svset_id.Merged _ -> true | _ -> false)

let test_subview_merge_same_svset () =
  let prior = Some (vid 1 0) in
  let ev =
    build_eview (vid 2 0) [ p 0; p 1; p 2 ]
      [ (p 0, 0, 0, prior); (p 1, 1, 0, prior); (p 2, 2, 2, prior) ]
  in
  let sv_of x = (Option.get (E_view.subview_of x ev)).E_view.sv_id in
  (match E_view.apply_subview_merge ev [ sv_of (p 0); sv_of (p 1) ] with
  | Error `No_effect -> Alcotest.fail "same-sv-set merge should apply"
  | Ok (ev', _) ->
      assert_valid ev';
      check Alcotest.int "two subviews left" 2
        (List.length ev'.E_view.structure.E_view.subviews);
      let merged = Option.get (E_view.subview_of (p 0) ev') in
      check
        (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
        "merged membership" [ p 0; p 1 ] merged.E_view.sv_members);
  (* Across sv-sets: the call has no effect (Section 6.1). *)
  match E_view.apply_subview_merge ev [ sv_of (p 0); sv_of (p 2) ] with
  | Error `No_effect -> ()
  | Ok _ -> Alcotest.fail "cross-sv-set merge must be refused"

let test_merge_with_vanished_ids () =
  let prior = Some (vid 1 0) in
  let ev =
    build_eview (vid 2 0) [ p 0; p 1 ]
      [ (p 0, 0, 0, prior); (p 1, 1, 1, prior) ]
  in
  let ghost = E_view.Svset_id.Fresh (p 9) in
  (* Only one real id among the arguments: no effect. *)
  (match E_view.apply_svset_merge ev [ ghost; E_view.Svset_id.Fresh (p 0) ] with
  | Error `No_effect -> ()
  | Ok _ -> Alcotest.fail "merge with one live id must be refused");
  (* Two real ids plus a ghost: applies to the survivors. *)
  match
    E_view.apply_svset_merge ev
      [ ghost; E_view.Svset_id.Fresh (p 0); E_view.Svset_id.Fresh (p 1) ]
  with
  | Ok (ev', _) ->
      assert_valid ev';
      check Alcotest.int "merged down to one" 1
        (List.length ev'.E_view.structure.E_view.svsets)
  | Error `No_effect -> Alcotest.fail "merge of two live ids must apply"

let test_rebuild_from_snapshots () =
  (* Three members of one prior view; p2's snapshot is stale (it flushed
     before a SubviewMerge reached it): the freshest snapshot must place
     everyone, keeping the merged pair together. *)
  let prior = vid 3 0 in
  let common = Some (vid 2 0) in
  let stale =
    build_eview prior [ p 0; p 1; p 2 ]
      [ (p 0, 0, 0, common); (p 1, 1, 0, common); (p 2, 2, 0, common) ]
  in
  let fresh =
    (* After the merge of p0's and p1's subviews. *)
    match
      E_view.apply_subview_merge stale
        [ E_view.Subview_id.Fresh (p 0); E_view.Subview_id.Fresh (p 1) ]
    with
    | Ok (ev, _) -> ev
    | Error `No_effect -> Alcotest.fail "setup merge failed"
  in
  let new_view = View.make (vid 4 0) [ p 0; p 1; p 2 ] in
  let raw =
    [
      (p 0, { E_view.sr_snapshot = Some fresh; sr_prior = Some prior });
      (p 1, { E_view.sr_snapshot = Some fresh; sr_prior = Some prior });
      (* p2 reports the pre-merge structure *)
      (p 2, { E_view.sr_snapshot = Some stale; sr_prior = Some prior });
    ]
  in
  let ev = E_view.rebuild_from_snapshots new_view raw in
  assert_valid ev;
  check Alcotest.int "two subviews (merged pair kept)" 2
    (List.length ev.E_view.structure.E_view.subviews);
  let sv0 = Option.get (E_view.subview_of (p 0) ev) in
  check
    (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "p0,p1 together despite p2's stale report" [ p 0; p 1 ]
    sv0.E_view.sv_members;
  (* The reverse skew — the freshest snapshot arriving from the laggard's
     peer — must place the laggard too. *)
  let raw_reversed =
    [
      (p 0, { E_view.sr_snapshot = Some stale; sr_prior = Some prior });
      (p 1, { E_view.sr_snapshot = Some fresh; sr_prior = Some prior });
      (p 2, { E_view.sr_snapshot = Some stale; sr_prior = Some prior });
    ]
  in
  let ev = E_view.rebuild_from_snapshots new_view raw_reversed in
  assert_valid ev;
  check Alcotest.int "same outcome" 2
    (List.length ev.E_view.structure.E_view.subviews)

let test_rebuild_from_snapshots_fresh_and_missing () =
  let new_view = View.make (vid 4 0) [ p 0; p 1 ] in
  let ev =
    E_view.rebuild_from_snapshots new_view
      [ (p 0, { E_view.sr_snapshot = None; sr_prior = None }) ]
  in
  assert_valid ev;
  check Alcotest.int "fresh singletons" 2
    (List.length ev.E_view.structure.E_view.subviews)

let test_degenerate_detection () =
  let prior = Some (vid 1 0) in
  let ev =
    build_eview (vid 2 0) [ p 0; p 1 ]
      [ (p 0, 0, 0, prior); (p 1, 0, 0, prior) ]
  in
  check Alcotest.bool "single full subview is degenerate" true
    (E_view.is_degenerate ev)

let eview_rebuild_property =
  (* Any assignment of tags and priors rebuilds into a valid structure. *)
  QCheck.Test.make ~name:"rebuild always yields a valid structure" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (int_bound 7) (int_bound 3) (int_bound 3)))
    (fun specs ->
      let members =
        Vs_util.Listx.sorted_set ~cmp:Proc_id.compare
          (List.map (fun (m, _, _) -> p m) specs)
      in
      let view = View.make (vid 9 0) members in
      let reports =
        List.map
          (fun (m, svt, prior) ->
            ( p m,
              {
                E_view.r_tag =
                  Some
                    {
                      E_view.m_sv = E_view.Subview_id.Fresh (p svt);
                      (* sv-set tag derived from subview tag so reports are
                         internally consistent, as real processes' are *)
                      m_ss = E_view.Svset_id.Fresh (p (svt / 2));
                    };
                r_prior = Some (vid (1 + prior) 0);
              } ))
          specs
      in
      let ev = E_view.rebuild view reports in
      E_view.validate ev = Ok ())

(* ---------- Mode (Figure 1) ---------- *)

let test_figure1_edges () =
  let open Mode in
  let edge_is from into expected =
    check Alcotest.bool
      (Printf.sprintf "%s->%s" (to_string from) (to_string into))
      true
      (match (edge ~from ~into, expected) with
      | Some t, Some t' -> equal_transition t t'
      | None, None -> true
      | _ -> false)
  in
  edge_is Normal Reduced (Some Failure);
  edge_is Normal Settling (Some Reconfigure);
  edge_is Reduced Settling (Some Repair);
  edge_is Settling Reduced (Some Failure);
  edge_is Settling Settling (Some Reconfigure);
  edge_is Settling Normal (Some Reconcile);
  edge_is Reduced Normal None;
  edge_is Normal Normal None;
  edge_is Reduced Reduced None;
  check Alcotest.bool "R->N illegal" false
    (Mode.is_legal ~from:Reduced ~into:Normal);
  check Alcotest.bool "stay legal" true (Mode.is_legal ~from:Normal ~into:Normal)

let test_machine_lifecycle () =
  let m = Mode.Machine.create () in
  check Alcotest.bool "fresh process settles" true
    (Mode.equal (Mode.Machine.mode m) Mode.Settling);
  (* Reconcile into Normal. *)
  (match Mode.Machine.reconcile m with
  | Ok step ->
      check Alcotest.bool "reconcile cause" true
        (step.Mode.Machine.cause = Some Mode.Reconcile)
  | Error `Not_settling -> Alcotest.fail "should reconcile");
  (* Quorum lost: Failure into Reduced. *)
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_reduced ~expanded:false
      ~policy:Mode.On_expansion
  in
  check Alcotest.bool "failure cause" true (step.Mode.Machine.cause = Some Mode.Failure);
  (* Quorum restored: Repair into Settling, never straight to Normal. *)
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:true
      ~policy:Mode.On_expansion
  in
  check Alcotest.bool "repair cause" true (step.Mode.Machine.cause = Some Mode.Repair);
  check Alcotest.bool "in settling" true
    (Mode.equal (Mode.Machine.mode m) Mode.Settling);
  (* Another change while settling: Reconfigure self-loop. *)
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:true
      ~policy:Mode.On_expansion
  in
  check Alcotest.bool "reconfigure self-loop" true
    (step.Mode.Machine.cause = Some Mode.Reconfigure);
  (* Reconcile works only from Settling. *)
  ignore (Mode.Machine.reconcile m);
  check Alcotest.bool "double reconcile refused" true
    (Mode.Machine.reconcile m = Error `Not_settling)

let test_machine_policies () =
  (* On_expansion: a pure shrink in Normal mode needs no settling. *)
  let m = Mode.Machine.create ~initial:Mode.Normal () in
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:false
      ~policy:Mode.On_expansion
  in
  check Alcotest.bool "shrink keeps Normal" true (step.Mode.Machine.cause = None);
  (* On_any_change: even a shrink forces settling (the parallel DB). *)
  let m = Mode.Machine.create ~initial:Mode.Normal () in
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:false
      ~policy:Mode.On_any_change
  in
  check Alcotest.bool "any change settles" true
    (step.Mode.Machine.cause = Some Mode.Reconfigure);
  (* Never: view changes do not disturb Normal. *)
  let m = Mode.Machine.create ~initial:Mode.Normal () in
  let step =
    Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:true
      ~policy:Mode.Never
  in
  check Alcotest.bool "never policy stays" true (step.Mode.Machine.cause = None)

let test_machine_history_and_counts () =
  let m = Mode.Machine.create () in
  ignore (Mode.Machine.reconcile m);
  ignore
    (Mode.Machine.on_view_change m ~target:Mode.Serve_reduced ~expanded:false
       ~policy:Mode.On_expansion);
  ignore
    (Mode.Machine.on_view_change m ~target:Mode.Serve_all ~expanded:true
       ~policy:Mode.On_expansion);
  ignore (Mode.Machine.reconcile m);
  let counts = Mode.Machine.transition_counts m in
  let count tr = try List.assoc tr counts with Not_found -> 0 in
  check Alcotest.int "reconciles" 2 (count Mode.Reconcile);
  check Alcotest.int "failures" 1 (count Mode.Failure);
  check Alcotest.int "repairs" 1 (count Mode.Repair);
  check Alcotest.int "history length" 4 (List.length (Mode.Machine.history m))

let machine_never_illegal_property =
  (* Whatever sequence of targets/policies arrives, the machine only takes
     Figure-1 edges. *)
  QCheck.Test.make ~name:"machine only takes legal transitions" ~count:300
    QCheck.(small_list (pair bool (pair bool (int_bound 2))))
    (fun ops ->
      let m = Mode.Machine.create () in
      List.iter
        (fun (serve_all, (expanded, policy_ix)) ->
          let target = if serve_all then Mode.Serve_all else Mode.Serve_reduced in
          let policy =
            match policy_ix with
            | 0 -> Mode.On_any_change
            | 1 -> Mode.On_expansion
            | _ -> Mode.Never
          in
          ignore (Mode.Machine.on_view_change m ~target ~expanded ~policy);
          if expanded then ignore (Mode.Machine.reconcile m))
        ops;
      List.for_all
        (fun (step : Mode.Machine.step) ->
          Mode.is_legal ~from:step.Mode.Machine.from_mode
            ~into:step.Mode.Machine.into_mode)
        (Mode.Machine.history m))

(* ---------- Classify ---------- *)

let majority_of n members = List.length members > n / 2

let test_exact_oracle () =
  let prior_of assoc q = List.assoc q assoc in
  (* Transfer: one fresh joiner among normals. *)
  let pr =
    prior_of
      [
        (p 0, (Classify.Was_normal, Some (vid 1 0)));
        (p 1, (Classify.Was_normal, Some (vid 1 0)));
        (p 2, (Classify.Was_fresh, None));
      ]
  in
  let v = Classify.exact ~members:[ p 0; p 1; p 2 ] ~prior:pr in
  check Alcotest.bool "transfer" true v.Classify.transfer;
  check Alcotest.bool "no merging" false v.Classify.merging;
  check Alcotest.int "one cluster" 1 v.Classify.clusters;
  (* Creation rebirth: everyone was reduced. *)
  let pr =
    prior_of
      [
        (p 0, (Classify.Was_reduced, Some (vid 1 0)));
        (p 1, (Classify.Was_fresh, None));
      ]
  in
  let v = Classify.exact ~members:[ p 0; p 1 ] ~prior:pr in
  check Alcotest.bool "creation" true (v.Classify.creation = Classify.Rebirth);
  (* Creation in progress: a settler among them. *)
  let pr =
    prior_of
      [
        (p 0, (Classify.Was_settling, Some (vid 1 0)));
        (p 1, (Classify.Was_fresh, None));
      ]
  in
  let v = Classify.exact ~members:[ p 0; p 1 ] ~prior:pr in
  check Alcotest.bool "in progress" true
    (v.Classify.creation = Classify.In_progress);
  (* Merging with transfer: two normal clusters plus a fresh process. *)
  let pr =
    prior_of
      [
        (p 0, (Classify.Was_normal, Some (vid 2 0)));
        (p 1, (Classify.Was_normal, Some (vid 2 0)));
        (p 2, (Classify.Was_normal, Some (vid 3 2)));
        (p 3, (Classify.Was_fresh, None));
      ]
  in
  let v = Classify.exact ~members:[ p 0; p 1; p 2; p 3 ] ~prior:pr in
  check Alcotest.bool "merging" true v.Classify.merging;
  check Alcotest.bool "and transfer" true v.Classify.transfer;
  check Alcotest.int "two clusters" 2 v.Classify.clusters;
  (* No problem: pure shrink of one normal cluster. *)
  let pr =
    prior_of
      [
        (p 0, (Classify.Was_normal, Some (vid 2 0)));
        (p 1, (Classify.Was_normal, Some (vid 2 0)));
      ]
  in
  let v = Classify.exact ~members:[ p 0; p 1 ] ~prior:pr in
  check Alcotest.bool "no problem" true
    (Classify.shape v = (false, Classify.No_creation, false))

let test_enriched_majority_example () =
  (* The Section 6.2 example: majority condition over a 5-node universe. *)
  let serve = majority_of 5 in
  (* Case (i): the new view contains a majority subview — transfer. *)
  let ev =
    build_eview (vid 4 0) [ p 0; p 1; p 2; p 3 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 0, 0, Some (vid 3 0));
        (p 2, 0, 0, Some (vid 3 0));
        (p 3, 3, 3, Some (vid 0 3));
      ]
  in
  let v = Classify.enriched ~eview:ev ~would_serve_all:serve () in
  check Alcotest.bool "case i: transfer" true v.Classify.transfer;
  check Alcotest.bool "case i: no creation" true
    (v.Classify.creation = Classify.No_creation);
  (* Case (ii): no majority subview but a majority sv-set — creation was in
     progress. *)
  let ev =
    build_eview (vid 4 0) [ p 0; p 1; p 2 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 1, 0, Some (vid 3 0));
        (p 2, 2, 0, Some (vid 3 0));
      ]
  in
  let v = Classify.enriched ~eview:ev ~would_serve_all:serve () in
  check Alcotest.bool "case ii: in-progress creation" true
    (v.Classify.creation = Classify.In_progress);
  (* Case (iii): neither — rebirth. *)
  let ev =
    build_eview (vid 4 0) [ p 0; p 1; p 2 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 1, 1, Some (vid 3 1));
        (p 2, 2, 2, Some (vid 3 2));
      ]
  in
  let v = Classify.enriched ~eview:ev ~would_serve_all:serve () in
  check Alcotest.bool "case iii: rebirth" true
    (v.Classify.creation = Classify.Rebirth)

let test_enriched_merging_and_settled () =
  (* Always-available object: clusters distinguished by the settled flag. *)
  let serve _ = true in
  let ev =
    build_eview (vid 4 0) [ p 0; p 1; p 2; p 3 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 0, 0, Some (vid 3 0));
        (p 2, 2, 2, Some (vid 3 2));
        (p 3, 3, 3, None);
      ]
  in
  let settled q = not (Proc_id.equal q (p 3)) in
  let v = Classify.enriched ~eview:ev ~would_serve_all:serve ~settled () in
  check Alcotest.int "two clusters (fresh joiner excluded)" 2 v.Classify.clusters;
  check Alcotest.bool "merging" true v.Classify.merging;
  check Alcotest.bool "transfer for the joiner" true v.Classify.transfer

let test_flat_ambiguity () =
  (* The paper's Section 4 example: a process coming from R-mode cannot
     distinguish transfer from creation. *)
  let k =
    {
      Classify.fk_members = [ p 0; p 1; p 2 ];
      fk_me = p 0;
      fk_my_prior = Classify.Was_reduced;
      fk_my_prior_members = [ p 0 ];
    }
  in
  let possibilities = Classify.flat k in
  check Alcotest.bool "ambiguous" true (List.length possibilities > 1);
  let shapes = List.map Classify.shape possibilities in
  check Alcotest.bool "transfer possible" true
    (List.exists (fun (t, _, _) -> t) shapes);
  check Alcotest.bool "creation possible" true
    (List.exists (fun (_, c, _) -> c <> Classify.No_creation) shapes)

let test_flat_exact_cases () =
  (* Shrink seen from Normal: locally classifiable. *)
  let k =
    {
      Classify.fk_members = [ p 0; p 1 ];
      fk_me = p 0;
      fk_my_prior = Classify.Was_normal;
      fk_my_prior_members = [ p 0; p 1; p 2 ];
    }
  in
  check Alcotest.int "singleton verdict" 1 (List.length (Classify.flat k));
  (* Alone after being reduced: rebirth, exactly. *)
  let k =
    {
      Classify.fk_members = [ p 0 ];
      fk_me = p 0;
      fk_my_prior = Classify.Was_reduced;
      fk_my_prior_members = [ p 0 ];
    }
  in
  match Classify.flat k with
  | [ v ] -> check Alcotest.bool "rebirth" true (v.Classify.creation = Classify.Rebirth)
  | other -> Alcotest.failf "expected singleton, got %d" (List.length other)

let test_flat_soundness_vs_oracle () =
  (* On the transfer scenario, the oracle's verdict shape must be among the
     flat possibilities (flat reasoning is sound, just ambiguous). *)
  let members = [ p 0; p 1; p 2 ] in
  let pr q =
    if Proc_id.equal q (p 2) then (Classify.Was_fresh, None)
    else (Classify.Was_normal, Some (vid 1 0))
  in
  let truth = Classify.exact ~members ~prior:pr in
  let k =
    {
      Classify.fk_members = members;
      fk_me = p 0;
      fk_my_prior = Classify.Was_normal;
      fk_my_prior_members = [ p 0; p 1 ];
    }
  in
  let shapes = List.map Classify.shape (Classify.flat k) in
  check Alcotest.bool "oracle shape among possibilities" true
    (List.mem (Classify.shape truth) shapes)

let test_flat_one_at_a_time () =
  (* Under the Isis restriction the classification is exact (Section 5). *)
  let k =
    {
      Classify.fk_members = [ p 0; p 1; p 2 ];
      fk_me = p 2;
      fk_my_prior = Classify.Was_fresh;
      fk_my_prior_members = [ p 2 ];
    }
  in
  (match Classify.flat_one_at_a_time k with
  | [ v ] -> check Alcotest.bool "joiner sees transfer" true v.Classify.transfer
  | other -> Alcotest.failf "expected singleton, got %d" (List.length other));
  let alone =
    {
      Classify.fk_members = [ p 0 ];
      fk_me = p 0;
      fk_my_prior = Classify.Was_fresh;
      fk_my_prior_members = [ p 0 ];
    }
  in
  match Classify.flat_one_at_a_time alone with
  | [ v ] ->
      check Alcotest.bool "alone means creation" true
        (v.Classify.creation = Classify.Rebirth)
  | other -> Alcotest.failf "expected singleton, got %d" (List.length other)

let test_classify_well_formed () =
  (* Every verdict any classifier builds obeys the clusters convention:
     creation verdicts carry clusters = 0 and no other flag, everything else
     clusters >= 1 with merging iff clusters >= 2. *)
  let assert_wf what v =
    check Alcotest.bool
      (Printf.sprintf "%s well-formed: %s" what (Classify.problem_to_string v))
      true (Classify.well_formed v)
  in
  assert_wf "no_problem" Classify.no_problem;
  let pr =
    fun q ->
      List.assoc q
        [
          (p 0, (Classify.Was_normal, Some (vid 2 0)));
          (p 1, (Classify.Was_normal, Some (vid 2 0)));
          (p 2, (Classify.Was_normal, Some (vid 3 2)));
          (p 3, (Classify.Was_fresh, None));
        ]
  in
  assert_wf "exact merge+transfer"
    (Classify.exact ~members:[ p 0; p 1; p 2; p 3 ] ~prior:pr);
  let pr_rebirth =
    fun q ->
      List.assoc q
        [
          (p 0, (Classify.Was_reduced, Some (vid 1 0)));
          (p 1, (Classify.Was_fresh, None));
        ]
  in
  assert_wf "exact rebirth" (Classify.exact ~members:[ p 0; p 1 ] ~prior:pr_rebirth);
  let ev =
    build_eview (vid 4 0) [ p 0; p 1; p 2; p 3 ]
      [
        (p 0, 0, 0, Some (vid 3 0));
        (p 1, 0, 0, Some (vid 3 0));
        (p 2, 2, 2, Some (vid 3 2));
        (p 3, 3, 3, None);
      ]
  in
  assert_wf "enriched"
    (Classify.enriched ~eview:ev ~would_serve_all:(fun _ -> true) ());
  let k =
    {
      Classify.fk_members = [ p 0; p 1; p 2 ];
      fk_me = p 0;
      fk_my_prior = Classify.Was_reduced;
      fk_my_prior_members = [ p 0 ];
    }
  in
  List.iter (assert_wf "flat possibility") (Classify.flat k);
  List.iter (assert_wf "flat one-at-a-time") (Classify.flat_one_at_a_time k)

(* Soundness of flat reasoning, as a property over arbitrary scenarios: for
   any assignment of prior states/views to members, the oracle's verdict
   shape is among the flat classifier's possibilities when evaluated from
   any member's standpoint. *)
let flat_soundness_property =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 7)
        (pair (int_bound 3) (int_bound 2)))
  in
  QCheck.Test.make ~name:"flat classifier is sound against the oracle"
    ~count:500 gen (fun specs ->
      let members =
        Vs_util.Listx.sorted_set ~cmp:Proc_id.compare
          (List.mapi (fun i _ -> p i) specs)
      in
      let assignment =
        List.mapi
          (fun i (state_ix, view_ix) ->
            let state =
              match state_ix with
              | 0 -> Classify.Was_normal
              | 1 -> Classify.Was_reduced
              | 2 -> Classify.Was_settling
              | _ -> Classify.Was_fresh
            in
            let prior =
              if state = Classify.Was_fresh then None else Some (vid (view_ix + 1) 0)
            in
            (p i, (state, prior)))
          specs
      in
      let prior q =
        match List.assoc_opt q assignment with
        | Some x -> x
        | None -> (Classify.Was_fresh, None)
      in
      let exact_verdict = Classify.exact ~members ~prior in
      Classify.well_formed exact_verdict
      &&
      let truth = Classify.shape exact_verdict in
      (* Check from every member's standpoint. *)
      List.for_all
        (fun me ->
          let my_state, my_prior_vid = prior me in
          (* The member's prior view composition: everyone sharing its prior
             view id (what it would know locally). *)
          let my_prior_members =
            match my_prior_vid with
            | None -> [ me ]
            | Some pv ->
                List.filter
                  (fun q ->
                    match prior q with
                    | _, Some pv' -> View.Id.equal pv pv'
                    | _, None -> false)
                  members
          in
          (* The flat model assumes survivors of one view shared its mode;
             restrict to assignments where that holds (mixed-mode prior
             views model mid-view divergence, which E5 measures but the
             soundness property does not promise). *)
          let assumption_holds =
            List.for_all
              (fun q -> fst (prior q) = my_state)
              my_prior_members
          in
          (not assumption_holds)
          ||
          let possibilities =
            Classify.flat
              {
                Classify.fk_members = members;
                fk_me = me;
                fk_my_prior = my_state;
                fk_my_prior_members = my_prior_members;
              }
          in
          List.for_all Classify.well_formed possibilities
          && List.mem truth (List.map Classify.shape possibilities))
        members)

(* ---------- History ---------- *)

let test_history () =
  let h = History.create (p 0) in
  check Alcotest.bool "empty history has no view" false
    (History.first_event_is_view h);
  let v = View.singleton (p 0) in
  History.record h ~time:0.0 (History.View_event v);
  History.record h ~time:0.1
    (History.Mode_event { mode = Mode.Settling; cause = None });
  History.record h ~time:0.2
    (History.Deliver { sender = p 0; seq = 1; vid = v.View.id });
  History.record h ~time:0.3
    (History.Mode_event { mode = Mode.Normal; cause = Some Mode.Reconcile });
  check Alcotest.bool "first event is a view (Section 3)" true
    (History.first_event_is_view h);
  check Alcotest.int "length" 4 (History.length h);
  check Alcotest.int "prefix" 2 (List.length (History.prefix h 2));
  check Alcotest.int "views" 1 (List.length (History.views h));
  check Alcotest.int "deliveries in view" 1
    (List.length (History.deliveries_in_view h v.View.id));
  check Alcotest.bool "current mode" true
    (History.current_mode h = Some Mode.Normal);
  (* A mode function over the history: Normal iff something was delivered. *)
  let mf entries =
    if
      List.exists
        (fun e -> match e.History.event with History.Deliver _ -> true | _ -> false)
        entries
    then Mode.Normal
    else Mode.Settling
  in
  check Alcotest.bool "mode function evaluates" true
    (Mode.equal (History.evaluate h mf) Mode.Normal)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "evs_core"
    [
      ( "e_view",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "rebuild groups by tag" `Quick test_rebuild_groups_by_tag;
          Alcotest.test_case "fresh members" `Quick test_rebuild_fresh_members;
          Alcotest.test_case "splits stay apart" `Quick test_rebuild_splits_stay_apart;
          Alcotest.test_case "svset merge" `Quick test_svset_merge;
          Alcotest.test_case "subview merge" `Quick test_subview_merge_same_svset;
          Alcotest.test_case "vanished ids" `Quick test_merge_with_vanished_ids;
          Alcotest.test_case "rebuild from snapshots" `Quick
            test_rebuild_from_snapshots;
          Alcotest.test_case "snapshots: fresh/missing" `Quick
            test_rebuild_from_snapshots_fresh_and_missing;
          Alcotest.test_case "degenerate" `Quick test_degenerate_detection;
          qt eview_rebuild_property;
        ] );
      ( "mode",
        [
          Alcotest.test_case "figure 1 edges" `Quick test_figure1_edges;
          Alcotest.test_case "machine lifecycle" `Quick test_machine_lifecycle;
          Alcotest.test_case "policies" `Quick test_machine_policies;
          Alcotest.test_case "history and counts" `Quick
            test_machine_history_and_counts;
          qt machine_never_illegal_property;
        ] );
      ( "classify",
        [
          Alcotest.test_case "exact oracle" `Quick test_exact_oracle;
          Alcotest.test_case "enriched majority (6.2)" `Quick
            test_enriched_majority_example;
          Alcotest.test_case "enriched merging + settled" `Quick
            test_enriched_merging_and_settled;
          Alcotest.test_case "verdicts well-formed" `Quick
            test_classify_well_formed;
          Alcotest.test_case "flat ambiguity (Section 4)" `Quick test_flat_ambiguity;
          Alcotest.test_case "flat exact cases" `Quick test_flat_exact_cases;
          Alcotest.test_case "flat soundness" `Quick test_flat_soundness_vs_oracle;
          Alcotest.test_case "flat one-at-a-time (Isis)" `Quick
            test_flat_one_at_a_time;
          QCheck_alcotest.to_alcotest flat_soundness_property;
        ] );
      ("history", [ Alcotest.test_case "section 3 histories" `Quick test_history ]);
    ]
