(* Tests for the enriched view synchrony service (Section 6): joins as
   singleton subviews, application-driven merges (Figure 3), structure
   preservation across partitions and merges (Figure 2), total order of
   e-view changes (Property 6.1) and randomized campaigns. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Endpoint = Vs_vsync.Endpoint
module Cluster = Vs_harness.Evs_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults

let check = Alcotest.check

let no_errors what errs =
  if errs <> [] then
    Alcotest.failf "%s: %d violations, first: %s" what (List.length errs)
      (List.hd errs)

let eview_of c node =
  match Cluster.evs_on c node with
  | Some e -> Evs.eview e
  | None -> Alcotest.failf "node %d down" node

let structure_string c node = E_view.to_string (eview_of c node)

let count_subviews ev = List.length ev.E_view.structure.E_view.subviews
let count_svsets ev = List.length ev.E_view.structure.E_view.svsets

let all_svset_ids ev =
  List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets

let all_subview_ids ev =
  List.map (fun sv -> sv.E_view.sv_id) ev.E_view.structure.E_view.subviews

(* ---------- joins ---------- *)

let test_join_creates_singletons () =
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:1.0;
  let ev = eview_of c 0 in
  check Alcotest.int "four members" 4 (List.length (E_view.members ev));
  (* "When a process first joins a group, it appears within the new view in
     a new sv-set containing a new subview containing only the process
     itself." *)
  check Alcotest.int "four singleton subviews" 4 (count_subviews ev);
  check Alcotest.int "four singleton sv-sets" 4 (count_svsets ev);
  (match E_view.validate ev with Ok () -> () | Error e -> Alcotest.fail e);
  check Alcotest.bool "not degenerate" false (E_view.is_degenerate ev)

(* ---------- Figure 3: two e-view changes within one view ---------- *)

let test_figure3_merges () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  let e0 = Option.get (Cluster.evs_on c 0) in
  (* First e-view change: SV-SetMerge of the three singleton sv-sets. *)
  Evs.svset_merge e0 (all_svset_ids (Evs.eview e0));
  Cluster.run c ~until:1.3;
  let ev = eview_of c 1 in
  check Alcotest.int "one sv-set after SV-SetMerge" 1 (count_svsets ev);
  check Alcotest.int "subviews untouched" 3 (count_subviews ev);
  check Alcotest.int "eseq 1" 1 ev.E_view.eseq;
  (* Second e-view change: SubviewMerge of two of the subviews. *)
  (match all_subview_ids ev with
  | a :: b :: _ -> Evs.subview_merge e0 [ a; b ]
  | _ -> Alcotest.fail "expected three subviews");
  Cluster.run c ~until:1.6;
  let ev = eview_of c 2 in
  check Alcotest.int "two subviews after SubviewMerge" 2 (count_subviews ev);
  check Alcotest.int "eseq 2" 2 ev.E_view.eseq;
  (* Everyone converged on the same structure, in the same order. *)
  check Alcotest.string "identical structures" (structure_string c 0)
    (structure_string c 1);
  check Alcotest.string "identical structures" (structure_string c 1)
    (structure_string c 2);
  no_errors "figure 3 total order" (Cluster.check_total_order c)

let test_full_merge_degenerates_to_flat_view () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  let e0 = Option.get (Cluster.evs_on c 0) in
  Evs.svset_merge e0 (all_svset_ids (Evs.eview e0));
  Cluster.run c ~until:1.3;
  Evs.subview_merge e0 (all_subview_ids (Evs.eview e0));
  Cluster.run c ~until:1.6;
  (* "The case where there is a single sv-set containing a single subview
     containing all of the processes degenerates to the traditional view
     abstraction." *)
  check Alcotest.bool "degenerate" true (E_view.is_degenerate (eview_of c 1))

let test_cross_svset_subview_merge_refused () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  let e0 = Option.get (Cluster.evs_on c 0) in
  let before = Evs.stats e0 in
  (* Subviews still live in distinct sv-sets: the merge has no effect. *)
  Evs.subview_merge e0 (all_subview_ids (Evs.eview e0));
  Cluster.run c ~until:1.3;
  check Alcotest.int "structure unchanged" 3 (count_subviews (eview_of c 0));
  let after = Evs.stats e0 in
  check Alcotest.bool "rejection counted" true
    (after.Evs.merges_rejected > before.Evs.merges_rejected)

(* ---------- Figure 2: preservation across view changes ---------- *)

let run_figure2 () =
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:1.0;
  (* Merge everyone into one subview. *)
  let e0 = Option.get (Cluster.evs_on c 0) in
  Evs.svset_merge e0 (all_svset_ids (Evs.eview e0));
  Cluster.run c ~until:1.3;
  Evs.subview_merge e0 (all_subview_ids (Evs.eview e0));
  Cluster.run c ~until:1.6;
  c

let test_figure2_partition_preserves_fragments () =
  let c = run_figure2 () in
  Cluster.apply_action c (Faults.Partition [ [ 0; 1 ]; [ 2; 3 ] ]);
  Cluster.run c ~until:3.0;
  (* Each side keeps its fragment as one subview (failures shrink
     compositions but never split survivors that stay together). *)
  let left = eview_of c 0 and right = eview_of c 2 in
  check Alcotest.int "left fragment united" 1 (count_subviews left);
  check Alcotest.int "right fragment united" 1 (count_subviews right);
  (* Merge: the fragments must appear as two distinct subviews in two
     distinct sv-sets — composition grows only under application control. *)
  Cluster.apply_action c Faults.Heal;
  Cluster.run c ~until:5.0;
  let merged = eview_of c 0 in
  check Alcotest.int "merged view has 4 members" 4
    (List.length (E_view.members merged));
  check Alcotest.int "two fragments" 2 (count_subviews merged);
  check Alcotest.int "two sv-sets" 2 (count_svsets merged);
  let sv_of x = (Option.get (E_view.subview_of x merged)).E_view.sv_id in
  check Alcotest.bool "p0,p1 together" true
    (E_view.Subview_id.equal (sv_of (Proc_id.initial 0)) (sv_of (Proc_id.initial 1)));
  check Alcotest.bool "p0,p2 apart" false
    (E_view.Subview_id.equal (sv_of (Proc_id.initial 0)) (sv_of (Proc_id.initial 2)));
  no_errors "figure 2 structure" (Cluster.check_structure c);
  no_errors "figure 2 total order" (Cluster.check_total_order c)

let test_crash_shrinks_subview () =
  let c = run_figure2 () in
  Cluster.apply_action c (Faults.Crash 3);
  Cluster.run c ~until:3.0;
  let ev = eview_of c 0 in
  check Alcotest.int "members" 3 (List.length (E_view.members ev));
  check Alcotest.int "still one subview" 1 (count_subviews ev);
  check Alcotest.int "subview shrank" 3
    (List.length (List.hd ev.E_view.structure.E_view.subviews).E_view.sv_members)

let test_rejoin_after_crash_is_fresh_singleton () =
  let c = run_figure2 () in
  Cluster.apply_action c (Faults.Crash 3);
  Cluster.run c ~until:3.0;
  Cluster.apply_action c (Faults.Recover 3);
  Cluster.run c ~until:5.0;
  let ev = eview_of c 0 in
  check Alcotest.int "four members again" 4 (List.length (E_view.members ev));
  (* The recovered process cannot silently reappear inside the old subview:
     it must come back as a fresh singleton. *)
  check Alcotest.int "veteran subview + fresh singleton" 2 (count_subviews ev);
  let fresh = Proc_id.make ~node:3 ~inc:1 in
  let sv = Option.get (E_view.subview_of fresh ev) in
  check
    (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "singleton" [ fresh ] sv.E_view.sv_members

(* ---------- merge requests racing view changes ---------- *)

let test_merge_racing_view_change_is_harmless () =
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:1.0;
  let e0 = Option.get (Cluster.evs_on c 0) in
  (* Issue the merge and kill a member in the same instant. *)
  Evs.svset_merge e0 (all_svset_ids (Evs.eview e0));
  Cluster.apply_action c (Faults.Crash 3);
  Cluster.run c ~until:3.0;
  (* Whatever happened — merge applied with the dead member's sv-set
     filtered out, or dropped with the view change — the structures remain
     consistent everywhere. *)
  no_errors "race total order" (Cluster.check_total_order c);
  no_errors "race structure" (Cluster.check_structure c);
  check Alcotest.string "survivors agree" (structure_string c 0)
    (structure_string c 1)

(* ---------- messaging through EVS ---------- *)

let test_messages_flow_through_evs () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  for _ = 1 to 5 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ~order:Endpoint.Total ()
  done;
  Cluster.run c ~until:2.0;
  check Alcotest.int "30 deliveries" 30 (Oracle.total_deliveries (Cluster.oracle c));
  no_errors "evs messaging" (Oracle.check_all (Cluster.oracle c))

(* ---------- app annotations ride along ---------- *)

let test_app_annotation_passthrough () =
  let sim = Sim.create ~seed:61L () in
  let net : (unit, string) Evs.net = Evs.make_net sim Net.default_config in
  let universe = [ 0; 1 ] in
  let seen = ref [] in
  let make node ann =
    let me = Proc_id.initial node in
    let callbacks =
      {
        Evs.on_eview =
          (fun ev ->
            if List.length (E_view.members ev.Evs.eview) = 2 then
              seen := ev.Evs.annotations :: !seen);
        on_message = (fun ~sender:_ () -> ());
      }
    in
    let e = Evs.create sim net ~me ~universe ~config:Endpoint.default_config ~callbacks in
    Evs.set_annotation e (Some ann);
    e
  in
  let _a = make 0 "alpha" and _b = make 1 "beta" in
  ignore (Sim.run ~until:2.0 sim);
  check Alcotest.int "both installs seen" 2 (List.length !seen);
  List.iter
    (fun anns ->
      check (Alcotest.option Alcotest.string) "p0 app annotation" (Some "alpha")
        (Option.join (List.assoc_opt (Proc_id.initial 0) anns)))
    !seen

(* ---------- subview-scoped multicast ---------- *)

let test_subview_scoped_multicast () =
  let sim = Sim.create ~seed:63L () in
  let net : (string, unit) Evs.net = Evs.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3 ] in
  let received = Hashtbl.create 8 in
  let endpoints = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let me = Proc_id.initial node in
      let callbacks =
        {
          Evs.on_eview = (fun _ -> ());
          on_message =
            (fun ~sender:_ msg -> Hashtbl.add received (node, msg) ());
        }
      in
      Hashtbl.replace endpoints node
        (Evs.create sim net ~me ~universe ~config:Endpoint.default_config
           ~callbacks))
    universe;
  ignore (Sim.run ~until:1.0 sim);
  (* Merge p0 and p1 into one subview. *)
  let e0 = Hashtbl.find endpoints 0 in
  let ev = Evs.eview e0 in
  let ss_of n =
    (Option.get
       (E_view.svset_of_subview
          (Option.get (E_view.subview_of (Proc_id.initial n) ev)).E_view.sv_id
          ev))
      .E_view.ss_id
  in
  Evs.svset_merge e0 [ ss_of 0; ss_of 1 ];
  ignore (Sim.run ~until:1.3 sim);
  let ev = Evs.eview e0 in
  let sv_of n =
    (Option.get (E_view.subview_of (Proc_id.initial n) ev)).E_view.sv_id
  in
  Evs.subview_merge e0 [ sv_of 0; sv_of 1 ];
  ignore (Sim.run ~until:1.6 sim);
  (* A scoped multicast from p0 must reach exactly its subview {p0, p1}. *)
  Evs.multicast_subview e0 "team-only";
  (* And a plain multicast reaches everyone. *)
  Evs.multicast e0 "broadcast";
  ignore (Sim.run ~until:2.0 sim);
  List.iter
    (fun node ->
      check Alcotest.bool
        (Printf.sprintf "node %d broadcast" node)
        true
        (Hashtbl.mem received (node, "broadcast"));
      let expected_scoped = node <= 1 in
      check Alcotest.bool
        (Printf.sprintf "node %d scoped" node)
        expected_scoped
        (Hashtbl.mem received (node, "team-only")))
    universe

(* ---------- randomized campaigns ---------- *)

let evs_campaign_property =
  QCheck.Test.make ~name:"EVS campaigns satisfy 2.x and 6.x properties"
    ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let c = Cluster.create ~seed:(Int64.of_int (seed + 50_000)) ~n:5 () in
      let rng = Vs_util.Rng.create (Int64.of_int (seed + 77)) in
      let script =
        Faults.random_script rng ~nodes:[ 0; 1; 2; 3; 4 ] ~start:1.0
          ~duration:4.0 ~mean_gap:0.5 ()
      in
      Cluster.run_script c script;
      Cluster.pump_traffic c ~start:0.5 ~until:5.5 ~mean_gap:0.04;
      (* Periodic application merges to exercise within-view e-view changes
         under churn. *)
      let sim = Cluster.sim c in
      let merge_tick () =
        List.iter
          (fun e ->
            let ev = Evs.eview e in
            match Proc_id.min_member (E_view.members ev) with
            | Some m when Proc_id.equal m (Evs.me e) ->
                if count_svsets ev >= 2 then Evs.svset_merge e (all_svset_ids ev)
                else if count_subviews ev >= 2 then
                  Evs.subview_merge e (all_subview_ids ev)
            | Some _ | None -> ())
          (Cluster.live c)
      in
      let rec arm t0 =
        if t0 < 6.0 then begin
          ignore (Sim.at sim t0 merge_tick);
          arm (t0 +. 0.35)
        end
      in
      arm 0.8;
      Cluster.run c ~until:9.0;
      Cluster.check_total_order c = []
      && Cluster.check_structure c = []
      && Oracle.check_all (Cluster.oracle c) = [])

let () =
  Alcotest.run "evs"
    [
      ( "joins",
        [ Alcotest.test_case "singleton subviews" `Quick test_join_creates_singletons ] );
      ( "figure 3",
        [
          Alcotest.test_case "two e-view changes" `Quick test_figure3_merges;
          Alcotest.test_case "degenerates to flat" `Quick
            test_full_merge_degenerates_to_flat_view;
          Alcotest.test_case "cross-sv-set merge refused" `Quick
            test_cross_svset_subview_merge_refused;
        ] );
      ( "figure 2",
        [
          Alcotest.test_case "partition preserves fragments" `Quick
            test_figure2_partition_preserves_fragments;
          Alcotest.test_case "crash shrinks subview" `Quick test_crash_shrinks_subview;
          Alcotest.test_case "rejoin is fresh singleton" `Quick
            test_rejoin_after_crash_is_fresh_singleton;
        ] );
      ( "races",
        [
          Alcotest.test_case "merge vs view change" `Quick
            test_merge_racing_view_change_is_harmless;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "flows through EVS" `Quick test_messages_flow_through_evs;
          Alcotest.test_case "app annotations" `Quick test_app_annotation_passthrough;
          Alcotest.test_case "subview-scoped multicast" `Quick
            test_subview_scoped_multicast;
        ] );
      ("campaigns", [ QCheck_alcotest.to_alcotest evs_campaign_property ]);
    ]
