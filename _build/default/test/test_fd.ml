(* Tests for the heartbeat failure detector: detection, false suspicion
   under partition, recovery with new incarnations, graceful forget. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Fd = Vs_fd.Fd

let check = Alcotest.check

type msg = Heartbeat

(* A minimal stack: each node runs one FD over a shared network. *)
type node = { proc : Proc_id.t; fd : Fd.t }

let make_stack ?(n = 3) ?(config = Fd.default_config) sim net =
  let universe = List.init n (fun i -> i) in
  let nodes = Hashtbl.create n in
  let boot node_id inc =
    let me = Proc_id.make ~node:node_id ~inc in
    let fd = ref None in
    Net.register net me (fun env ->
        match env.Net.payload with
        | Heartbeat -> (
            match !fd with
            | Some f -> Fd.heartbeat_received f ~from:env.Net.src
            | None -> ()));
    let f =
      Fd.create sim ~me ~universe ~config
        ~send_heartbeat:(fun ~dst_node ->
          Net.send_node net ~src:me ~dst_node Heartbeat)
        ~on_change:(fun _ -> ())
    in
    fd := Some f;
    Hashtbl.replace nodes node_id { proc = me; fd = f }
  in
  List.iter (fun i -> boot i 0) universe;
  (nodes, boot)

let reachable_nodes node =
  List.map (fun (p : Proc_id.t) -> p.Proc_id.node) (Fd.reachable node.fd)

let test_mutual_detection () =
  let sim = Sim.create ~seed:21L () in
  let net = Net.create sim Net.default_config in
  let nodes, _ = make_stack sim net in
  ignore (Sim.run ~until:0.5 sim);
  Hashtbl.iter
    (fun _ node ->
      check (Alcotest.list Alcotest.int) "everyone sees everyone" [ 0; 1; 2 ]
        (reachable_nodes node))
    nodes

let test_crash_detection () =
  let sim = Sim.create ~seed:22L () in
  let net = Net.create sim Net.default_config in
  let nodes, _ = make_stack sim net in
  ignore (Sim.run ~until:0.5 sim);
  let victim = Hashtbl.find nodes 2 in
  Fd.stop victim.fd;
  Net.crash net victim.proc;
  (* Suspicion must arrive within timeout + one period (plus slack). *)
  ignore (Sim.run ~until:(0.5 +. 0.100 +. 0.030 +. 0.050) sim);
  check (Alcotest.list Alcotest.int) "crash suspected" [ 0; 1 ]
    (reachable_nodes (Hashtbl.find nodes 0));
  check (Alcotest.list Alcotest.int) "suspected by all" [ 0; 1 ]
    (reachable_nodes (Hashtbl.find nodes 1))

let test_partition_false_suspicion_and_repair () =
  let sim = Sim.create ~seed:23L () in
  let net = Net.create sim Net.default_config in
  let nodes, _ = make_stack sim net in
  ignore (Sim.run ~until:0.5 sim);
  Net.set_partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (Sim.run ~until:1.0 sim);
  check (Alcotest.list Alcotest.int) "p0 alone" [ 0 ]
    (reachable_nodes (Hashtbl.find nodes 0));
  check (Alcotest.list Alcotest.int) "p1 sees majority side" [ 1; 2 ]
    (reachable_nodes (Hashtbl.find nodes 1));
  (* The suspicion was false: nobody crashed.  Healing repairs it. *)
  Net.heal net;
  ignore (Sim.run ~until:1.5 sim);
  check (Alcotest.list Alcotest.int) "heal restores reachability" [ 0; 1; 2 ]
    (reachable_nodes (Hashtbl.find nodes 0))

let test_recovery_new_incarnation () =
  let sim = Sim.create ~seed:24L () in
  let net = Net.create sim Net.default_config in
  let nodes, boot = make_stack sim net in
  ignore (Sim.run ~until:0.5 sim);
  let victim = Hashtbl.find nodes 2 in
  Fd.stop victim.fd;
  Net.crash net victim.proc;
  ignore (Sim.run ~until:1.0 sim);
  boot 2 1;
  ignore (Sim.run ~until:1.5 sim);
  let survivors = Fd.reachable (Hashtbl.find nodes 0).fd in
  check Alcotest.bool "new incarnation visible" true
    (List.exists (fun p -> Proc_id.equal p (Proc_id.make ~node:2 ~inc:1)) survivors);
  check Alcotest.bool "old incarnation gone" true
    (not (List.exists (fun p -> Proc_id.equal p (Proc_id.initial 2)) survivors))

let test_forget () =
  let sim = Sim.create ~seed:25L () in
  let net = Net.create sim Net.default_config in
  let nodes, _ = make_stack sim net in
  ignore (Sim.run ~until:0.5 sim);
  let n0 = Hashtbl.find nodes 0 in
  (* A leave announcement lets peers drop the process immediately, without
     waiting out the timeout... *)
  Fd.forget n0.fd (Hashtbl.find nodes 2).proc;
  check (Alcotest.list Alcotest.int) "forgotten immediately" [ 0; 1 ]
    (reachable_nodes n0);
  (* ...but a live peer that keeps heartbeating comes right back. *)
  ignore (Sim.run ~until:1.0 sim);
  check (Alcotest.list Alcotest.int) "live peer reappears" [ 0; 1; 2 ]
    (reachable_nodes n0)

let test_change_notifications () =
  let sim = Sim.create ~seed:26L () in
  let net = Net.create sim Net.default_config in
  let me = Proc_id.initial 0 in
  let changes = ref 0 in
  let fd = ref None in
  Net.register net me (fun env ->
      match env.Net.payload with
      | Heartbeat -> (
          match !fd with
          | Some f -> Fd.heartbeat_received f ~from:env.Net.src
          | None -> ()));
  let f =
    Fd.create sim ~me ~universe:[ 0; 1 ] ~config:Fd.default_config
      ~send_heartbeat:(fun ~dst_node ->
        Net.send_node net ~src:me ~dst_node Heartbeat)
      ~on_change:(fun _ -> incr changes)
  in
  fd := Some f;
  ignore (Sim.run ~until:1.0 sim);
  check Alcotest.int "no peer, no change events" 0 !changes

let test_config_validation () =
  let sim = Sim.create () in
  check Alcotest.bool "timeout must exceed period" true
    (try
       ignore
         (Fd.create sim ~me:(Proc_id.initial 0) ~universe:[ 0 ]
            ~config:{ Fd.period = 0.1; timeout = 0.05 }
            ~send_heartbeat:(fun ~dst_node:_ -> ())
            ~on_change:(fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_stop () =
  let sim = Sim.create ~seed:27L () in
  let net = Net.create sim Net.default_config in
  let nodes, _ = make_stack sim net in
  let n0 = Hashtbl.find nodes 0 in
  Fd.stop n0.fd;
  ignore (Sim.run ~until:1.0 sim);
  (* A stopped detector never updates. *)
  check (Alcotest.list Alcotest.int) "stopped detector frozen" [ 0 ]
    (reachable_nodes n0)

let () =
  Alcotest.run "vs_fd"
    [
      ( "detector",
        [
          Alcotest.test_case "mutual detection" `Quick test_mutual_detection;
          Alcotest.test_case "crash detection latency" `Quick test_crash_detection;
          Alcotest.test_case "false suspicion and repair" `Quick
            test_partition_false_suspicion_and_repair;
          Alcotest.test_case "recovery incarnation" `Quick
            test_recovery_new_incarnation;
          Alcotest.test_case "forget" `Quick test_forget;
          Alcotest.test_case "change notifications" `Quick
            test_change_notifications;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "stop" `Quick test_stop;
        ] );
    ]
