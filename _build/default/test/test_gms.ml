(* Tests for views, view identifiers and the membership estimator. *)

module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Estimator = Vs_gms.Estimator

let check = Alcotest.check

let p0 = Proc_id.initial 0
let p1 = Proc_id.initial 1
let p2 = Proc_id.initial 2

(* ---------- View.Id ---------- *)

let test_view_id_order () =
  let a = View.Id.make ~epoch:1 ~proposer:p2 in
  let b = View.Id.make ~epoch:2 ~proposer:p0 in
  check Alcotest.bool "epoch dominates proposer" true (View.Id.compare a b < 0);
  let c = View.Id.make ~epoch:1 ~proposer:p0 in
  check Alcotest.bool "proposer breaks ties" true (View.Id.compare c a < 0);
  check Alcotest.bool "equal" true (View.Id.equal a a);
  check Alcotest.bool "initial is epoch 0" true
    (View.Id.compare (View.Id.initial p0) c < 0)

let test_view_id_validation () =
  check Alcotest.bool "negative epoch refused" true
    (try ignore (View.Id.make ~epoch:(-1) ~proposer:p0); false
     with Invalid_argument _ -> true)

(* ---------- View ---------- *)

let test_view_make () =
  let v = View.make (View.Id.make ~epoch:3 ~proposer:p1) [ p2; p0; p1; p0 ] in
  check (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "sorted and deduped" [ p0; p1; p2 ] v.View.members;
  check Alcotest.int "size" 3 (View.size v);
  check Alcotest.bool "coordinator is min" true
    (Proc_id.equal (View.coordinator v) p0);
  check Alcotest.bool "mem" true (View.mem p1 v);
  check Alcotest.bool "not mem" false (View.mem (Proc_id.initial 9) v);
  check Alcotest.bool "empty refused" true
    (try ignore (View.make (View.Id.initial p0) []); false
     with Invalid_argument _ -> true)

let test_view_singleton () =
  let v = View.singleton p1 in
  check Alcotest.int "one member" 1 (View.size v);
  check Alcotest.int "epoch 0" 0 v.View.id.View.Id.epoch;
  check Alcotest.bool "self coordinator" true (Proc_id.equal (View.coordinator v) p1)

(* ---------- Estimator ---------- *)

type probe = {
  sim : Sim.t;
  est : Estimator.t;
  targets : Proc_id.t list list ref;
  achieved : Proc_id.t list ref;
}

let make_probe ?(stability = 0.1) ?(nag = 0.25) () =
  let sim = Sim.create () in
  let targets = ref [] in
  let achieved = ref [ p0 ] in
  let est =
    Estimator.create sim ~stability ~nag_period:nag
      ~achieved:(fun () -> !achieved)
      ~on_target:(fun t -> targets := t :: !targets)
  in
  { sim; est; targets; achieved }

let test_estimator_stabilizes () =
  let probe = make_probe () in
  Estimator.update probe.est [ p0; p1 ];
  ignore (Sim.run ~until:0.05 probe.sim);
  check Alcotest.int "not yet stable" 0 (List.length !(probe.targets));
  ignore (Sim.run ~until:0.15 probe.sim);
  check Alcotest.int "emitted after stability" 1 (List.length !(probe.targets));
  check (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "right target" [ p0; p1 ] (List.hd !(probe.targets))

let test_estimator_debounces_flaps () =
  let probe = make_probe () in
  (* Flap faster than the stability window: no emission. *)
  let rec flap t on =
    if t < 0.5 then begin
      ignore
        (Sim.at probe.sim t (fun () ->
             Estimator.update probe.est (if on then [ p0; p1 ] else [ p0; p2 ])));
      flap (t +. 0.05) (not on)
    end
  in
  flap 0.0 true;
  ignore (Sim.run ~until:0.5 probe.sim);
  check Alcotest.int "flapping suppressed" 0 (List.length !(probe.targets));
  (* Quiet now: the last candidate settles. *)
  ignore (Sim.run ~until:0.7 probe.sim);
  check Alcotest.int "settles after quiet" 1 (List.length !(probe.targets))

let test_estimator_skips_achieved () =
  let probe = make_probe () in
  probe.achieved := [ p0; p1 ];
  Estimator.update probe.est [ p0; p1 ];
  ignore (Sim.run ~until:0.5 probe.sim);
  check Alcotest.int "already achieved: no emission" 0
    (List.length !(probe.targets))

let test_estimator_nags () =
  let probe = make_probe () in
  Estimator.update probe.est [ p0; p1 ];
  (* Never achieve it: the estimator must re-emit periodically. *)
  ignore (Sim.run ~until:1.0 probe.sim);
  check Alcotest.bool "nagged at least twice" true
    (List.length !(probe.targets) >= 3)

let test_estimator_nag_stops_when_achieved () =
  let probe = make_probe () in
  Estimator.update probe.est [ p0; p1 ];
  ignore (Sim.run ~until:0.15 probe.sim);
  probe.achieved := [ p0; p1 ];
  let emitted = List.length !(probe.targets) in
  ignore (Sim.run ~until:1.5 probe.sim);
  check Alcotest.int "no further nags once achieved" emitted
    (List.length !(probe.targets))

let test_estimator_stop () =
  let probe = make_probe () in
  Estimator.update probe.est [ p0; p1 ];
  Estimator.stop probe.est;
  ignore (Sim.run ~until:1.0 probe.sim);
  check Alcotest.int "stopped estimator silent" 0 (List.length !(probe.targets));
  check Alcotest.bool "target cleared" true (Estimator.target probe.est = None)

let test_estimator_unsorted_input () =
  let probe = make_probe () in
  Estimator.update probe.est [ p1; p0; p1 ];
  ignore (Sim.run ~until:0.2 probe.sim);
  check (Alcotest.list (Alcotest.testable Proc_id.pp Proc_id.equal))
    "input normalized" [ p0; p1 ] (List.hd !(probe.targets))

let () =
  Alcotest.run "vs_gms"
    [
      ( "view_id",
        [
          Alcotest.test_case "ordering" `Quick test_view_id_order;
          Alcotest.test_case "validation" `Quick test_view_id_validation;
        ] );
      ( "view",
        [
          Alcotest.test_case "make" `Quick test_view_make;
          Alcotest.test_case "singleton" `Quick test_view_singleton;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "stabilizes" `Quick test_estimator_stabilizes;
          Alcotest.test_case "debounces flaps" `Quick test_estimator_debounces_flaps;
          Alcotest.test_case "skips achieved" `Quick test_estimator_skips_achieved;
          Alcotest.test_case "nags" `Quick test_estimator_nags;
          Alcotest.test_case "nag stops when achieved" `Quick
            test_estimator_nag_stops_when_achieved;
          Alcotest.test_case "stop" `Quick test_estimator_stop;
          Alcotest.test_case "unsorted input" `Quick test_estimator_unsorted_input;
        ] );
    ]
