(* Tests for the simulated network: delivery, delays, loss, duplication,
   partitions, crash/recovery addressing and accounting. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id

let check = Alcotest.check

let p0 = Proc_id.initial 0
let p1 = Proc_id.initial 1
let p2 = Proc_id.initial 2

let setup ?(config = Net.default_config) () =
  let sim = Sim.create ~seed:5L () in
  let net = Net.create sim config in
  (sim, net)

let register_collecting net p =
  let inbox = ref [] in
  Net.register net p (fun env -> inbox := env :: !inbox);
  inbox

(* ---------- Proc_id ---------- *)

let test_proc_id () =
  check Alcotest.string "initial rendering" "p3" (Proc_id.to_string (Proc_id.initial 3));
  check Alcotest.string "incarnation rendering" "p3.2"
    (Proc_id.to_string (Proc_id.make ~node:3 ~inc:2));
  check Alcotest.bool "incarnations ordered" true
    (Proc_id.compare (Proc_id.make ~node:1 ~inc:0) (Proc_id.make ~node:1 ~inc:1) < 0);
  check Alcotest.bool "nodes ordered first" true
    (Proc_id.compare (Proc_id.make ~node:1 ~inc:9) (Proc_id.make ~node:2 ~inc:0) < 0);
  check
    (Alcotest.option (Alcotest.testable Proc_id.pp Proc_id.equal))
    "min member" (Some p0)
    (Proc_id.min_member [ p2; p0; p1 ]);
  check Alcotest.bool "negative rejected" true
    (try ignore (Proc_id.make ~node:(-1) ~inc:0); false
     with Invalid_argument _ -> true)

(* ---------- basic delivery ---------- *)

let test_delivery () =
  let sim, net = setup () in
  let inbox = register_collecting net p1 in
  Net.register net p0 (fun _ -> ());
  Net.send net ~src:p0 ~dst:p1 "hello";
  ignore (Sim.run sim);
  match !inbox with
  | [ env ] ->
      check Alcotest.string "payload" "hello" env.Net.payload;
      check Alcotest.bool "src" true (Proc_id.equal env.Net.src p0);
      check Alcotest.bool "delay within bounds" true
        (Sim.now sim >= Net.default_config.Net.delay_min
        && Sim.now sim <= Net.default_config.Net.delay_max)
  | other -> Alcotest.failf "expected 1 message, got %d" (List.length other)

let test_send_from_dead_source () =
  let sim, net = setup () in
  let inbox = register_collecting net p1 in
  (* p0 never registered: the send is swallowed. *)
  Net.send net ~src:p0 ~dst:p1 "ghost";
  ignore (Sim.run sim);
  check Alcotest.int "nothing delivered" 0 (List.length !inbox);
  check Alcotest.int "counted dropped" 1 (Net.stats net).Net.dropped

let test_full_loss () =
  let config = { Net.default_config with Net.drop_prob = 1.0 } in
  let sim, net = setup ~config () in
  let inbox = register_collecting net p1 in
  let self_inbox = register_collecting net p0 in
  for _ = 1 to 20 do
    Net.send net ~src:p0 ~dst:p1 "x";
    Net.send net ~src:p0 ~dst:p0 "self"
  done;
  ignore (Sim.run sim);
  check Alcotest.int "all remote messages lost" 0 (List.length !inbox);
  check Alcotest.int "self messages immune to loss" 20 (List.length !self_inbox)

let test_duplication () =
  let config = { Net.default_config with Net.dup_prob = 1.0 } in
  let sim, net = setup ~config () in
  let inbox = register_collecting net p1 in
  Net.register net p0 (fun _ -> ());
  Net.send net ~src:p0 ~dst:p1 "twice";
  ignore (Sim.run sim);
  check Alcotest.int "delivered twice" 2 (List.length !inbox);
  check Alcotest.int "duplication counted" 1 (Net.stats net).Net.duplicated

let test_send_node_duplication () =
  (* Node-addressed sends go through the same fault model as
     process-addressed ones. *)
  let config = { Net.default_config with Net.dup_prob = 1.0 } in
  let sim, net = setup ~config () in
  let inbox = register_collecting net p1 in
  let self_inbox = register_collecting net p0 in
  Net.send_node net ~src:p0 ~dst_node:1 "twice";
  Net.send_node net ~src:p0 ~dst_node:0 "self";
  ignore (Sim.run sim);
  check Alcotest.int "node send delivered twice" 2 (List.length !inbox);
  check Alcotest.int "self node send immune to duplication" 1
    (List.length !self_inbox);
  check Alcotest.int "node duplication counted" 1 (Net.stats net).Net.duplicated

(* ---------- partitions ---------- *)

let test_partition_blocks () =
  let sim, net = setup () in
  let inbox1 = register_collecting net p1 in
  let inbox2 = register_collecting net p2 in
  Net.register net p0 (fun _ -> ());
  Net.set_partition net [ [ 0; 1 ]; [ 2 ] ];
  check Alcotest.bool "0-1 connected" true (Net.connected net 0 1);
  check Alcotest.bool "0-2 cut" false (Net.connected net 0 2);
  Net.send net ~src:p0 ~dst:p1 "in-component";
  Net.send net ~src:p0 ~dst:p2 "cross";
  ignore (Sim.run sim);
  check Alcotest.int "same component delivered" 1 (List.length !inbox1);
  check Alcotest.int "cross component lost" 0 (List.length !inbox2);
  Net.heal net;
  Net.send net ~src:p0 ~dst:p2 "after-heal";
  ignore (Sim.run sim);
  check Alcotest.int "heal restores" 1 (List.length !inbox2)

let test_partition_kills_in_flight () =
  let sim, net = setup () in
  let inbox = register_collecting net p1 in
  Net.register net p0 (fun _ -> ());
  Net.send net ~src:p0 ~dst:p1 "in-flight";
  (* Partition before the message lands: it must die on the wire. *)
  ignore (Sim.at sim 0.0005 (fun () -> Net.set_partition net [ [ 0 ]; [ 1 ] ]));
  ignore (Sim.run sim);
  check Alcotest.int "in-flight message lost" 0 (List.length !inbox)

let test_unmentioned_nodes_isolated () =
  let _sim, net = setup () in
  Net.set_partition net [ [ 0; 1 ] ];
  check Alcotest.bool "unmentioned node isolated" false (Net.connected net 0 2);
  check Alcotest.bool "two unmentioned nodes isolated from each other" false
    (Net.connected net 2 3);
  check Alcotest.bool "self always connected" true (Net.connected net 2 2)

(* ---------- crash / recovery ---------- *)

let test_crash_and_incarnations () =
  let sim, net = setup () in
  let inbox = register_collecting net p1 in
  Net.register net p0 (fun _ -> ());
  Net.crash net p1;
  check Alcotest.bool "not live" false (Net.is_live net p1);
  Net.send net ~src:p0 ~dst:p1 "to-the-dead";
  ignore (Sim.run sim);
  check Alcotest.int "nothing reaches dead incarnation" 0 (List.length !inbox);
  (* Recovery gets a fresh incarnation. *)
  let p1' = Net.fresh_incarnation net 1 in
  check Alcotest.int "incarnation bumped" 1 p1'.Proc_id.inc;
  let inbox' = register_collecting net p1' in
  Net.send net ~src:p0 ~dst:p1 "to-old-incarnation";
  Net.send net ~src:p0 ~dst:p1' "to-new-incarnation";
  ignore (Sim.run sim);
  check Alcotest.int "old identity stays dead" 0 (List.length !inbox);
  check Alcotest.int "new identity reachable" 1 (List.length !inbox')

let test_register_rules () =
  let _sim, net = setup () in
  Net.register net p0 (fun _ -> ());
  check Alcotest.bool "double occupancy refused" true
    (try Net.register net (Proc_id.make ~node:0 ~inc:1) (fun _ -> ()); false
     with Invalid_argument _ -> true);
  Net.crash net p0;
  check Alcotest.bool "stale incarnation refused" true
    (try Net.register net p0 (fun _ -> ()); false
     with Invalid_argument _ -> true);
  Net.register net (Proc_id.make ~node:0 ~inc:1) (fun _ -> ());
  check Alcotest.bool "fresh incarnation accepted" true
    (Net.is_live net (Proc_id.make ~node:0 ~inc:1))

let test_send_node_finds_new_incarnation () =
  let sim, net = setup () in
  Net.register net p0 (fun _ -> ());
  Net.register net p1 (fun _ -> ());
  Net.crash net p1;
  let p1' = Net.fresh_incarnation net 1 in
  let inbox' = register_collecting net p1' in
  (* Node addressing reaches whoever is live at delivery time. *)
  Net.send_node net ~src:p0 ~dst_node:1 "heartbeat";
  ignore (Sim.run sim);
  check Alcotest.int "new incarnation got it" 1 (List.length !inbox')

(* ---------- accounting ---------- *)

let test_stats_and_bytes () =
  let sim = Sim.create () in
  let net = Net.create ~size_of:String.length sim Net.default_config in
  Net.register net p0 (fun _ -> ());
  Net.register net p1 (fun _ -> ());
  Net.send net ~src:p0 ~dst:p1 "12345";
  Net.send net ~src:p0 ~dst:p1 "123";
  ignore (Sim.run sim);
  let s = Net.stats net in
  check Alcotest.int "sent" 2 s.Net.sent;
  check Alcotest.int "delivered" 2 s.Net.delivered;
  check Alcotest.int "bytes" 8 s.Net.bytes_sent;
  Net.reset_stats net;
  check Alcotest.int "reset" 0 (Net.stats net).Net.sent

let test_config_validation () =
  let sim = Sim.create () in
  check Alcotest.bool "bad delays rejected" true
    (try
       ignore
         (Net.create sim
            { Net.default_config with Net.delay_min = 0.5; delay_max = 0.1 });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vs_net"
    [
      ("proc_id", [ Alcotest.test_case "identities" `Quick test_proc_id ]);
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_delivery;
          Alcotest.test_case "dead source" `Quick test_send_from_dead_source;
          Alcotest.test_case "full loss" `Quick test_full_loss;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "node-send duplication" `Quick
            test_send_node_duplication;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "blocks traffic" `Quick test_partition_blocks;
          Alcotest.test_case "kills in-flight" `Quick test_partition_kills_in_flight;
          Alcotest.test_case "isolates unmentioned" `Quick test_unmentioned_nodes_isolated;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "crash and incarnations" `Quick test_crash_and_incarnations;
          Alcotest.test_case "register rules" `Quick test_register_rules;
          Alcotest.test_case "node addressing" `Quick test_send_node_finds_new_incarnation;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "stats and bytes" `Quick test_stats_and_bytes;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
