(* Unit and property tests for vs_util: PRNG, heap, sorted-set list
   operations and vector clocks. *)

module Rng = Vs_util.Rng
module Heap = Vs_util.Heap
module Listx = Vs_util.Listx

let check = Alcotest.check

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy continues identically" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_diverges () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  check Alcotest.bool "split stream differs" true (xs <> ys)

let test_rng_float_range () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    check Alcotest.bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create 2L in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check Alcotest.bool "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3L in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_bool_bias () =
  let r = Rng.create 4L in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.25 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "ratio near 0.25" true (ratio > 0.20 && ratio < 0.30)

let test_rng_exponential_mean () =
  let r = Rng.create 5L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 2.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_rng_pick_and_shuffle () =
  let r = Rng.create 6L in
  let xs = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 100 do
    check Alcotest.bool "pick from list" true (List.mem (Rng.pick r xs) xs)
  done;
  let shuffled = Rng.shuffle r xs in
  check (Alcotest.list Alcotest.int) "permutation" xs (List.sort compare shuffled);
  Alcotest.check_raises "pick of empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r []))

(* ---------- Heap ---------- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "length" 5 (Heap.length h);
  check (Alcotest.option Alcotest.int) "peek min" (Some 1) (Heap.peek h);
  let drained = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 2; 1 ];
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h);
  Heap.push h 9;
  check (Alcotest.option Alcotest.int) "usable after clear" (Some 9) (Heap.pop h)

let test_heap_grows () =
  let h = Heap.create ~cmp:compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  check Alcotest.int "all pushed" 1000 (Heap.length h);
  check (Alcotest.option Alcotest.int) "min of many" (Some 1) (Heap.pop h)

let heap_sort_property =
  QCheck.Test.make ~name:"heap drain equals list sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let heap_interleaved_property =
  QCheck.Test.make ~name:"heap peek is minimum under interleaving" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := x :: !model;
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | None, _ :: _ -> false
            | Some _, [] -> false
            | Some v, m ->
                let min_m = List.fold_left min (List.hd m) m in
                let removed = ref false in
                model :=
                  List.filter
                    (fun y ->
                      if y = min_m && not !removed then begin
                        removed := true;
                        false
                      end
                      else true)
                    m;
                v = min_m)
        ops)

(* ---------- Listx ---------- *)

let sorted_int_set = QCheck.(map (Listx.sorted_set ~cmp:compare) (list small_int))

let listx_union_property =
  QCheck.Test.make ~name:"union is sorted-set union" ~count:300
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let sa = Listx.sorted_set ~cmp:compare a in
      let sb = Listx.sorted_set ~cmp:compare b in
      Listx.union ~cmp:compare sa sb
      = Listx.sorted_set ~cmp:compare (a @ b))

let listx_inter_property =
  QCheck.Test.make ~name:"inter agrees with filter" ~count:300
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let sa = Listx.sorted_set ~cmp:compare a in
      let sb = Listx.sorted_set ~cmp:compare b in
      Listx.inter ~cmp:compare sa sb = List.filter (fun x -> List.mem x sb) sa)

let listx_diff_property =
  QCheck.Test.make ~name:"diff agrees with filter" ~count:300
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let sa = Listx.sorted_set ~cmp:compare a in
      let sb = Listx.sorted_set ~cmp:compare b in
      Listx.diff ~cmp:compare sa sb
      = List.filter (fun x -> not (List.mem x sb)) sa)

let listx_subset_property =
  QCheck.Test.make ~name:"subset is inclusion" ~count:300
    QCheck.(pair sorted_int_set sorted_int_set)
    (fun (a, b) ->
      Listx.subset ~cmp:compare a b = List.for_all (fun x -> List.mem x b) a)

let test_listx_group_by () =
  let groups =
    Listx.group_by ~key:(fun x -> x mod 3) ~cmp_key:compare
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.int)))
    "grouped by residue, order kept"
    [ (0, [ 3; 6 ]); (1, [ 1; 4; 7 ]); (2, [ 2; 5 ]) ]
    groups

let test_listx_take_drop () =
  check (Alcotest.list Alcotest.int) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  check (Alcotest.list Alcotest.int) "take beyond" [ 1 ] (Listx.take 5 [ 1 ]);
  check (Alcotest.list Alcotest.int) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  check (Alcotest.list Alcotest.int) "drop beyond" [] (Listx.drop 5 [ 1 ])

(* ---------- Vclock ---------- *)

module VC = Vs_util.Vclock.Make (Int)

let test_vclock_basics () =
  let a = VC.tick 1 VC.empty in
  let b = VC.tick 2 VC.empty in
  check Alcotest.int "tick sets 1" 1 (VC.get 1 a);
  check Alcotest.int "absent is 0" 0 (VC.get 2 a);
  check Alcotest.bool "a not leq b" false (VC.leq a b);
  check Alcotest.bool "empty leq all" true (VC.leq VC.empty a);
  let m = VC.merge a b in
  check Alcotest.bool "merge dominates a" true (VC.leq a m);
  check Alcotest.bool "merge dominates b" true (VC.leq b m)

let test_vclock_causality () =
  let base = VC.tick 1 VC.empty in
  let later = VC.tick 2 base in
  let other = VC.tick 3 VC.empty in
  check Alcotest.bool "before" true (VC.compare_causal base later = Vs_util.Vclock.Before);
  check Alcotest.bool "after" true (VC.compare_causal later base = Vs_util.Vclock.After);
  check Alcotest.bool "equal" true (VC.compare_causal base base = Vs_util.Vclock.Equal);
  check Alcotest.bool "concurrent" true
    (VC.compare_causal later other = Vs_util.Vclock.Concurrent)

let vclock_merge_lub_property =
  QCheck.Test.make ~name:"merge is least upper bound" ~count:200
    QCheck.(pair (small_list (int_bound 5)) (small_list (int_bound 5)))
    (fun (ticks_a, ticks_b) ->
      let clock ticks = List.fold_left (fun c k -> VC.tick k c) VC.empty ticks in
      let a = clock ticks_a and b = clock ticks_b in
      let m = VC.merge a b in
      VC.leq a m && VC.leq b m
      && List.for_all
           (fun (k, v) -> v = max (VC.get k a) (VC.get k b))
           (VC.to_list m))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "vs_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pick and shuffle" `Quick test_rng_pick_and_shuffle;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "growth" `Quick test_heap_grows;
          qt heap_sort_property;
          qt heap_interleaved_property;
        ] );
      ( "listx",
        [
          Alcotest.test_case "group_by" `Quick test_listx_group_by;
          Alcotest.test_case "take/drop" `Quick test_listx_take_drop;
          qt listx_union_property;
          qt listx_inter_property;
          qt listx_diff_property;
          qt listx_subset_property;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick test_vclock_basics;
          Alcotest.test_case "causality" `Quick test_vclock_causality;
          qt vclock_merge_lub_property;
        ] );
    ]
