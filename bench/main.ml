(* Benchmark harness: regenerates every table of EXPERIMENTS.md (the
   executable counterparts of the paper's Figures 1-3 and analytical claims
   C1-C3) and runs one Bechamel micro-benchmark per table on the hot
   operation underlying it.

   Usage:
     bench/main.exe            run everything (full-size experiments)
     bench/main.exe quick      smaller sweeps (CI-sized)
     bench/main.exe e4 e11     only the named experiments, full-size
     bench/main.exe micro      only the Bechamel micro-benchmarks
     bench/main.exe e4 micro   named experiments plus the micro-benchmarks

   Unknown arguments are rejected with a usage message. *)

module Table = Vs_stats.Table
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

module Recorder = Vs_obs.Recorder
module Json = Vs_obs.Json

(* vslint: allow D1 — wall-clock is the quantity being measured; bench output only *)
let now_ms () = Unix.gettimeofday () *. 1000.

(* Consolidated machine-readable record: every section that runs contributes
   key/value pairs here, and main writes BENCH_obs.json on every invocation
   (not just when the obs section runs). *)
let bench_record : (string * Json.t) list ref = ref []

let exp_walls : (string * float) list ref = ref []

let experiments =
  [
    ("e1", "Figure 1: mode-transition matrix", Vs_exp.Exp_modes.tables);
    ("e2e3", "Figures 2 & 3: enriched-view scenarios", Vs_exp.Exp_figures.tables);
    ("e4", "Claim C1: one-at-a-time vs batch admission", Vs_exp.Exp_join.tables);
    ("e5", "Sections 4/6.2: shared-state classification", Vs_exp.Exp_classify.tables);
    ("e6", "Claim C2: blocking vs two-piece transfer", Vs_exp.Exp_transfer.tables);
    ("e7", "Example 1: file availability under churn", Vs_exp.Exp_file.tables);
    ("e8", "Example 2: parallel look-up coverage", Vs_exp.Exp_db.tables);
    ("e9e10", "Overheads: EVS and flush costs", Vs_exp.Exp_overhead.tables);
    ("e11", "Loss tolerance: control plane under drop/dup", Vs_exp.Exp_loss.tables);
  ]

let run_experiments ~quick ~only =
  List.iter
    (fun (id, blurb, tables) ->
      let selected =
        match only with [] -> true | ids -> List.mem id ids
      in
      if selected then begin
        Printf.printf "### %s — %s\n\n%!" (String.uppercase_ascii id) blurb;
        let run : ?quick:bool -> unit -> Table.t list = tables in
        let t0 = now_ms () in
        List.iter Table.print (run ~quick ());
        exp_walls := !exp_walls @ [ (id, now_ms () -. t0) ]
      end)
    experiments

(* ---------- schedule-explorer smoke: a small seed budget on every CI run ---------- *)

let run_explorer_smoke () =
  let module Explorer = Vs_check.Explorer in
  let module Campaign = Vs_check.Campaign in
  let report = Explorer.explore ~seeds:25 ~nodes:5 ~quick:true () in
  let table =
    Table.create ~title:"schedule explorer (25 seeds, quick, both protocols)"
      ~columns:[ "campaigns"; "events"; "deliveries"; "installs"; "violations" ]
  in
  Table.add_row table
    [
      Table.fint report.Explorer.campaigns;
      Table.fint report.Explorer.total_events;
      Table.fint report.Explorer.total_deliveries;
      Table.fint report.Explorer.total_installs;
      Table.fint (List.length report.Explorer.failures);
    ];
  Table.print table;
  List.iter
    (fun (f : Explorer.failure) ->
      Printf.printf "EXPLORER FAILURE at seed %d: %s\n" f.Explorer.f_seed
        (Campaign.describe f.Explorer.f_shrunk))
    report.Explorer.failures;
  if report.Explorer.failures <> [] then exit 1

(* ---------- observability overhead: instrumentation off vs on ---------- *)

(* Allocation is the honest overhead metric here: it is deterministic (so it
   belongs in a lint-clean bench) and it is exactly what the Full-level
   guards are supposed to eliminate on the off path. *)
let measured_alloc f =
  Gc.full_major ();
  let before = Gc.allocated_bytes () in
  f ();
  Gc.allocated_bytes () -. before

(* Words allocated per [Net.send] at a given recording level.  A long warm-up
   grows the simulator's event heap past any further doubling, [Gc.minor]
   empties the nursery, and the measured batch is small enough to fit in it —
   so [Gc.minor_words] (precise in native code) counts exactly the per-send
   allocations, with no GC-phase noise.  ([Gc.allocated_bytes] deltas are not
   stable here: the heap-array growths land minor-or-major depending on
   nursery phase.) *)
let words_per_send ~level =
  let module Net = Vs_net.Net in
  let module Sim = Vs_sim.Sim in
  let recorder = Recorder.create ~level () in
  let sim = Sim.create ~seed:11L ~obs:recorder () in
  let net = Net.create sim Net.default_config in
  let a = Proc_id.initial 0 and b = Proc_id.initial 1 in
  Net.register net a (fun _ -> ());
  Net.register net b (fun _ -> ());
  for _ = 1 to 20_000 do
    Net.send net ~src:a ~dst:b 0
  done;
  Gc.minor ();
  let sends = 64 in
  let w0 = Gc.minor_words () in
  for _ = 1 to sends do
    Net.send net ~src:a ~dst:b 0
  done;
  (Gc.minor_words () -. w0) /. float_of_int sends

let run_obs () =
  print_endline "### OBS — observability overhead (instrumentation off vs on)\n";
  (* 1. The send fast path must not allocate for instrumentation unless the
     run records at Full level: Off and Protocol must match to the word. *)
  let off = words_per_send ~level:Recorder.Off in
  let proto = words_per_send ~level:Recorder.Protocol in
  let full = words_per_send ~level:Recorder.Full in
  let alloc_table =
    Table.create ~title:"allocation per Net.send by recording level"
      ~columns:[ "level"; "words/send" ]
  in
  Table.add_rows alloc_table
    [
      [ "off"; Table.ffloat ~decimals:1 off ];
      [ "protocol"; Table.ffloat ~decimals:1 proto ];
      [ "full"; Table.ffloat ~decimals:1 full ];
    ];
  Table.print alloc_table;
  if proto <> off then begin
    Printf.printf
      "OBS FAILURE: send allocates %+.1f extra words at Protocol level \
       (expected zero off-path overhead)\n"
      (proto -. off);
    exit 1
  end;
  (* 2. Whole-experiment allocation deltas, instrumentation off vs Full, via
     the process-wide default level every Sim.create picks up. *)
  let saved = Recorder.default_level () in
  let rows =
    List.map
      (fun (id, _blurb, tables) ->
        let run : ?quick:bool -> unit -> Table.t list = tables in
        Recorder.set_default_level Recorder.Off;
        let t0 = now_ms () in
        let bytes_off = measured_alloc (fun () -> ignore (run ~quick:true ())) in
        let ms_off = now_ms () -. t0 in
        Recorder.set_default_level Recorder.Full;
        let t1 = now_ms () in
        let bytes_on = measured_alloc (fun () -> ignore (run ~quick:true ())) in
        let ms_on = now_ms () -. t1 in
        (id, bytes_off, bytes_on, ms_off, ms_on))
      experiments
  in
  Recorder.set_default_level saved;
  let delta_table =
    Table.create
      ~title:
        "E-series allocation and wall time, recording off vs Full (quick \
         sweeps)"
      ~columns:[ "experiment"; "MB off"; "MB on"; "ratio"; "ms off"; "ms on" ]
  in
  List.iter
    (fun (id, bytes_off, bytes_on, ms_off, ms_on) ->
      Table.add_row delta_table
        [
          id;
          Table.ffloat ~decimals:2 (bytes_off /. 1e6);
          Table.ffloat ~decimals:2 (bytes_on /. 1e6);
          Table.ffloat ~decimals:3
            (if bytes_off > 0. then bytes_on /. bytes_off else 0.);
          Table.ffloat ~decimals:1 ms_off;
          Table.ffloat ~decimals:1 ms_on;
        ])
    rows;
  Table.print delta_table;
  (* 3. Derived metrics for one Full-level campaign, the block EXPERIMENTS.md
     points at for the paper's per-view costs. *)
  let module Campaign = Vs_check.Campaign in
  let module Metrics = Vs_obs.Metrics in
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed:7 ~nodes:5 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  Printf.printf "metrics for one Full-level campaign (%s):\n\n"
    (Campaign.describe spec);
  print_endline (Metrics.to_text (Metrics.of_entries (Recorder.entries recorder)));
  print_newline ();
  (* 4. Machine-readable record of the same numbers, consolidated into the
     BENCH_obs.json main writes at exit. *)
  bench_record :=
    !bench_record
    @ [
        ( "send_words_per_call",
          Json.Obj
            [
              ("off", Json.Float off);
              ("protocol", Json.Float proto);
              ("full", Json.Float full);
            ] );
        ("zero_alloc_off_path", Json.Bool (proto = off));
        ( "experiments",
          Json.Arr
            (List.map
               (fun (id, bytes_off, bytes_on, ms_off, ms_on) ->
                 Json.Obj
                   [
                     ("id", Json.Str id);
                     ("alloc_bytes_off", Json.Float bytes_off);
                     ("alloc_bytes_on", Json.Float bytes_on);
                     ( "overhead_ratio",
                       Json.Float
                         (if bytes_off > 0. then bytes_on /. bytes_off else 0.)
                     );
                     ("wall_ms_off", Json.Float ms_off);
                     ("wall_ms_on", Json.Float ms_on);
                   ])
               rows) );
      ]

(* ---------- Bechamel micro-benchmarks: the hot operation of each table ---------- *)

let p n = Proc_id.initial n

let sample_eview =
  let members = List.init 8 p in
  let view = View.make (View.Id.make ~epoch:5 ~proposer:(p 0)) members in
  let reports =
    List.map
      (fun (q : Proc_id.t) ->
        ( q,
          {
            E_view.r_tag =
              Some
                {
                  E_view.m_sv = E_view.Subview_id.Fresh (p (q.Proc_id.node / 2));
                  m_ss = E_view.Svset_id.Fresh (p (q.Proc_id.node / 4));
                };
            r_prior = Some (View.Id.make ~epoch:4 ~proposer:(p (q.Proc_id.node / 4)));
          } ))
      members
  in
  E_view.rebuild view reports

let micro_tests () =
  let open Bechamel in
  [
    (* E1: a mode-machine step. *)
    Test.make ~name:"e1/mode-machine-step"
      (Staged.stage (fun () ->
           let m = Mode.Machine.create () in
           ignore
             (Mode.Machine.on_view_change m ~target:Mode.Serve_all
                ~expanded:true ~policy:Mode.On_expansion);
           ignore (Mode.Machine.reconcile m)));
    (* E2: rebuilding an enriched view from flush reports. *)
    Test.make ~name:"e2/eview-rebuild-8"
      (Staged.stage (fun () ->
           let members = List.init 8 p in
           let view = View.make (View.Id.make ~epoch:5 ~proposer:(p 0)) members in
           ignore
             (E_view.rebuild view
                (List.map
                   (fun q -> (q, { E_view.r_tag = None; r_prior = None }))
                   members))));
    (* E3: applying the two merge operations. *)
    Test.make ~name:"e3/svset+subview-merge"
      (Staged.stage (fun () ->
           let ev = sample_eview in
           let ss_ids =
             List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets
           in
           match E_view.apply_svset_merge ev ss_ids with
           | Ok (ev', _) ->
               let sv_ids =
                 List.map (fun sv -> sv.E_view.sv_id)
                   ev'.E_view.structure.E_view.subviews
               in
               ignore (E_view.apply_subview_merge ev' sv_ids)
           | Error `No_effect -> ()));
    (* E4: membership normalization, the per-proposal hot path. *)
    Test.make ~name:"e4/membership-sort-64"
      (let ids = List.init 64 (fun i -> Proc_id.make ~node:(63 - i) ~inc:(i mod 3)) in
       Staged.stage (fun () -> ignore (Proc_id.sort ids)));
    (* E5: both local classifiers. *)
    Test.make ~name:"e5/classify-enriched+flat"
      (Staged.stage (fun () ->
           ignore
             (Classify.enriched ~eview:sample_eview
                ~would_serve_all:(fun ms -> List.length ms > 4)
                ());
           ignore
             (Classify.flat
                {
                  Classify.fk_members = E_view.members sample_eview;
                  fk_me = p 0;
                  fk_my_prior = Classify.Was_reduced;
                  fk_my_prior_members = [ p 0; p 1 ];
                })));
    (* E6: wire-size accounting of a synchronisation-carrying install. *)
    Test.make ~name:"e6/wire-size-install"
      (let data =
         List.init 64 (fun i ->
             {
               Vs_vsync.Wire.vid = View.Id.make ~epoch:3 ~proposer:(p 0);
               sender = p (i mod 8);
               seq = i;
               body = Vs_vsync.Wire.User i;
             })
       in
       let install =
         Vs_vsync.Wire.Install
           {
             pvid = View.Id.make ~epoch:4 ~proposer:(p 0);
             view = View.make (View.Id.make ~epoch:4 ~proposer:(p 0)) (List.init 8 p);
             sync = [ (View.Id.make ~epoch:3 ~proposer:(p 0), data) ];
             anns = List.map (fun q -> (q, Some ())) (List.init 8 p);
             priors =
               List.map
                 (fun q -> (q, View.Id.make ~epoch:3 ~proposer:(p 0)))
                 (List.init 8 p);
           }
       in
       Staged.stage (fun () ->
           ignore
             (Vs_vsync.Wire.size_of ~user:(fun _ -> 8) ~ann:(fun () -> 8) install)));
    (* E7: quorum evaluation over a membership. *)
    Test.make ~name:"e7/quorum-check"
      (let members = List.init 5 p in
       Staged.stage (fun () ->
           ignore
             (List.fold_left (fun acc (_ : Proc_id.t) -> acc + 1) 0 members > 2)));
    (* E8: one full range scan of the replicated dataset. *)
    Test.make ~name:"e8/range-scan-1000"
      (Staged.stage (fun () ->
           let hits = ref 0 in
           for k = 0 to 999 do
             if (k * 37 + 11) mod 256 = 48 then incr hits
           done;
           ignore !hits));
    (* E9: the structure fingerprint used to compare e-views. *)
    Test.make ~name:"e9/eview-fingerprint"
      (Staged.stage (fun () -> ignore (E_view.to_string sample_eview)));
    (* E10: the simulator's event-queue hot path. *)
    Test.make ~name:"e10/heap-1k-push-pop"
      (Staged.stage (fun () ->
           let h = Vs_util.Heap.create ~cmp:Int.compare in
           for i = 999 downto 0 do
             Vs_util.Heap.push h i
           done;
           let rec drain () =
             match Vs_util.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "### Bechamel micro-benchmarks (one per experiment table)\n";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.2) ~kde:(Some 1000) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ())
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare results in
  let table =
    Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time/run (ns)"; "r^2" ]
  in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "%.1f" est
        | Some ests ->
            String.concat "," (List.map (Printf.sprintf "%.1f") ests)
        | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Table.add_row table [ name; estimate; r2 ])
    rows;
  Table.print table

let () =
  let args =
    match Array.to_list Sys.argv with [] -> [] | _program :: rest -> rest
  in
  let known_ids = List.map (fun (id, _, _) -> id) experiments in
  let unknown =
    List.filter
      (fun a -> not (List.mem a ("quick" :: "micro" :: "obs" :: known_ids)))
      args
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown argument(s): %s\n" (String.concat " " unknown);
    Printf.eprintf
      "usage: main.exe [quick] [micro] [obs] [%s]...\n\
      \  no arguments        run all experiments, the observability overhead\n\
      \                      section and the micro-benchmarks\n\
      \  quick               smaller sweeps (CI-sized)\n\
      \  micro               run the Bechamel micro-benchmarks\n\
      \  obs                 run the observability overhead section\n\
      \  <experiment id>     run only the named experiments\n"
      (String.concat "|" known_ids);
    exit 2
  end;
  let quick = List.mem "quick" args in
  let micro = List.mem "micro" args in
  let obs = List.mem "obs" args in
  let only = List.filter (fun a -> List.mem a known_ids) args in
  (* Experiment ids, [micro] and [obs] compose; naming any of them skips the
     unnamed sections. *)
  let run_all = only = [] && (not micro) && not obs in
  print_endline
    "On Programming with View Synchrony (ICDCS 1996) — experiment \
     reproduction\n";
  if only <> [] || run_all then run_experiments ~quick ~only;
  (* CI explores a small seed budget on every quick run. *)
  if quick && only = [] then run_explorer_smoke ();
  if obs || run_all then run_obs ();
  if micro || run_all then run_micro ();
  (* Consolidated record: whatever sections ran, plus the wall time of every
     experiment of this invocation.  Written on every run. *)
  let json =
    Json.Obj
      (!bench_record
      @ [
          ( "experiment_wall_ms",
            Json.Obj
              (List.map (fun (id, ms) -> (id, Json.Float ms)) !exp_walls) );
        ])
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_obs.json"
