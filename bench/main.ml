(* Benchmark harness: regenerates every table of EXPERIMENTS.md (the
   executable counterparts of the paper's Figures 1-3 and analytical claims
   C1-C3) and runs one Bechamel micro-benchmark per table on the hot
   operation underlying it.

   Usage:
     bench/main.exe            run everything (full-size experiments)
     bench/main.exe quick      smaller sweeps (CI-sized)
     bench/main.exe e4 e11     only the named experiments, full-size
     bench/main.exe micro      only the Bechamel micro-benchmarks
     bench/main.exe e4 micro   named experiments plus the micro-benchmarks

   Unknown arguments are rejected with a usage message. *)

module Table = Vs_stats.Table
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

module Recorder = Vs_obs.Recorder
module Json = Vs_obs.Json

(* vslint: allow D1 — wall-clock is the quantity being measured; bench output only *)
let now_ms () = Unix.gettimeofday () *. 1000.

(* Consolidated machine-readable record: every section that runs contributes
   key/value pairs here, and main writes BENCH_obs.json on every invocation
   (not just when the obs section runs). *)
let bench_record : (string * Json.t) list ref = ref []

let exp_walls : (string * float) list ref = ref []

let experiments =
  [
    ("e1", "Figure 1: mode-transition matrix", Vs_exp.Exp_modes.tables);
    ("e2e3", "Figures 2 & 3: enriched-view scenarios", Vs_exp.Exp_figures.tables);
    ("e4", "Claim C1: one-at-a-time vs batch admission", Vs_exp.Exp_join.tables);
    ("e5", "Sections 4/6.2: shared-state classification", Vs_exp.Exp_classify.tables);
    ("e6", "Claim C2: blocking vs two-piece transfer", Vs_exp.Exp_transfer.tables);
    ("e7", "Example 1: file availability under churn", Vs_exp.Exp_file.tables);
    ("e8", "Example 2: parallel look-up coverage", Vs_exp.Exp_db.tables);
    ("e9e10", "Overheads: EVS and flush costs", Vs_exp.Exp_overhead.tables);
    ("e11", "Loss tolerance: control plane under drop/dup", Vs_exp.Exp_loss.tables);
    ("t", "Experiment T: sustained-throughput data plane", Vs_exp.Exp_throughput.tables);
  ]

let run_experiments ~quick ~only =
  List.iter
    (fun (id, blurb, tables) ->
      let selected =
        match only with [] -> true | ids -> List.mem id ids
      in
      if selected then begin
        Printf.printf "### %s — %s\n\n%!" (String.uppercase_ascii id) blurb;
        let run : ?quick:bool -> unit -> Table.t list = tables in
        let t0 = now_ms () in
        List.iter Table.print (run ~quick ());
        exp_walls := !exp_walls @ [ (id, now_ms () -. t0) ]
      end)
    experiments

(* ---------- schedule-explorer smoke: a small seed budget on every CI run ---------- *)

let run_explorer_smoke () =
  let module Explorer = Vs_check.Explorer in
  let module Campaign = Vs_check.Campaign in
  let report = Explorer.explore ~seeds:25 ~nodes:5 ~quick:true () in
  let table =
    Table.create ~title:"schedule explorer (25 seeds, quick, both protocols)"
      ~columns:[ "campaigns"; "events"; "deliveries"; "installs"; "violations" ]
  in
  Table.add_row table
    [
      Table.fint report.Explorer.campaigns;
      Table.fint report.Explorer.total_events;
      Table.fint report.Explorer.total_deliveries;
      Table.fint report.Explorer.total_installs;
      Table.fint (List.length report.Explorer.failures);
    ];
  Table.print table;
  List.iter
    (fun (f : Explorer.failure) ->
      Printf.printf "EXPLORER FAILURE at seed %d: %s\n" f.Explorer.f_seed
        (Campaign.describe f.Explorer.f_shrunk))
    report.Explorer.failures;
  if report.Explorer.failures <> [] then exit 1

(* ---------- observability overhead: instrumentation off vs on ---------- *)

(* Allocation is the honest overhead metric here: it is deterministic (so it
   belongs in a lint-clean bench) and it is exactly what the Full-level
   guards are supposed to eliminate on the off path. *)
let measured_alloc f =
  Gc.full_major ();
  let before = Gc.allocated_bytes () in
  f ();
  Gc.allocated_bytes () -. before

(* Words allocated per [Net.send] at a given recording level.  A long warm-up
   grows the simulator's event heap past any further doubling, [Gc.minor]
   empties the nursery, and the measured batch is small enough to fit in it —
   so [Gc.minor_words] (precise in native code) counts exactly the per-send
   allocations, with no GC-phase noise.  ([Gc.allocated_bytes] deltas are not
   stable here: the heap-array growths land minor-or-major depending on
   nursery phase.) *)
let words_per_send ?(with_series = false) ?(with_causal = false) ~level () =
  let module Net = Vs_net.Net in
  let module Sim = Vs_sim.Sim in
  let recorder = Recorder.create ~level () in
  (* [with_series] attaches a vsmon scrape series at the default interval —
     the acceptance bar is that the off-path word count does not move.
     [with_causal] attaches the vspath causal collector the same way; both
     can be live at once (the multi-sink regression in test_vspath.ml is the
     functional half, this is the allocation half). *)
  if with_series then begin
    let s = Vs_obs.Series.create () in
    ignore
      (Recorder.add_sink recorder (Vs_obs.Series.observe s)
        : Recorder.sink_handle)
  end;
  if with_causal then begin
    let c = Vs_obs.Causal.collector () in
    ignore
      (Recorder.add_sink recorder (Vs_obs.Causal.observe c)
        : Recorder.sink_handle)
  end;
  let sim = Sim.create ~seed:11L ~obs:recorder () in
  let net = Net.create sim Net.default_config in
  let a = Proc_id.initial 0 and b = Proc_id.initial 1 in
  Net.register net a (fun _ -> ());
  Net.register net b (fun _ -> ());
  for _ = 1 to 20_000 do
    Net.send net ~src:a ~dst:b 0
  done;
  Gc.minor ();
  let sends = 64 in
  let w0 = Gc.minor_words () in
  for _ = 1 to sends do
    Net.send net ~src:a ~dst:b 0
  done;
  (Gc.minor_words () -. w0) /. float_of_int sends

(* Words allocated per [Hdr.record] — the runtime half of the A1 alloc-free
   certificate on the histogram's record path.  The sample values are
   pre-boxed in a list and the recording closure is pre-allocated, so the
   measured loop executes nothing but [record] itself; the assertion in
   [run_obs] demands exactly zero. *)
let words_per_hdr_record () =
  let module Hdr = Vs_obs.Hdr in
  let h = Hdr.create () in
  let samples = [ 0.0; 0.0000004; 0.0001; 0.004; 0.2; 3.5; 70.; 2.5e7 ] in
  let record_one = Hdr.record h in
  let record_all () = List.iter record_one samples in
  for _ = 1 to 20_000 do
    record_all ()
  done;
  Gc.minor ();
  let reps = 64 in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    record_all ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int (reps * List.length samples)

(* The same off-path discipline, re-asserted for the batched data plane: a
   net instantiated exactly as the protocol stack builds it (Wire sizing,
   kind, per-payload identity extraction) carrying a prebuilt [Wire.Batch].
   The [idents] hook walks every payload of the batch — but only under Full
   recording, so Off and Protocol must still match to the word. *)
let words_per_send_batch ~level =
  let module Net = Vs_net.Net in
  let module Sim = Vs_sim.Sim in
  let module Wire = Vs_vsync.Wire in
  let recorder = Recorder.create ~level () in
  let sim = Sim.create ~seed:13L ~obs:recorder () in
  let user (u : int) =
    Some { Vs_obs.Event.origin = { Vs_obs.Event.node = 0; inc = 0 }; mseq = u }
  in
  let net =
    Net.create
      ~size_of:(Wire.size_of ~user:(fun (_ : int) -> 8) ~ann:(fun () -> 8))
      ~describe:Wire.kind ~ident:(Wire.ident ~user) ~idents:(Wire.idents ~user)
      sim Net.default_config
  in
  let a = Proc_id.initial 0 and b = Proc_id.initial 1 in
  Net.register net a (fun _ -> ());
  Net.register net b (fun _ -> ());
  let vid = View.Id.initial a in
  let batch : (int, unit) Wire.t =
    Wire.Batch
      (List.init 4 (fun seq -> { Wire.vid; sender = a; seq; body = Wire.User seq }))
  in
  for _ = 1 to 20_000 do
    Net.send net ~src:a ~dst:b batch
  done;
  Gc.minor ();
  let sends = 64 in
  let w0 = Gc.minor_words () in
  for _ = 1 to sends do
    Net.send net ~src:a ~dst:b batch
  done;
  (Gc.minor_words () -. w0) /. float_of_int sends

(* The stabilization arc compiles corruption hooks (Endpoint.corrupt and its
   obs events) into the protocol library.  They live on endpoint state, not
   the wire — so after actually exercising one against a live cluster, the
   off-path send allocation must still match the pre-corruption baseline to
   the word. *)
let exercise_corruption_hooks () =
  let module Cluster = Vs_harness.Vsync_cluster in
  let module Endpoint = Vs_vsync.Endpoint in
  let c = Cluster.create ~seed:17L ~n:3 () in
  Cluster.run c ~until:2.0;
  (match Cluster.endpoint_on c 0 with
  | Some ep ->
      ignore (Endpoint.corrupt ep (Endpoint.Seq_skew 3) : string);
      ignore (Endpoint.corrupt ep (Endpoint.Stability_smear (1, 4)) : string)
  | None -> ());
  Cluster.run c ~until:3.0

let run_obs () =
  print_endline "### OBS — observability overhead (instrumentation off vs on)\n";
  (* 1. The send fast path must not allocate for instrumentation unless the
     run records at Full level: Off and Protocol must match to the word. *)
  let off = words_per_send ~level:Recorder.Off () in
  let proto = words_per_send ~level:Recorder.Protocol () in
  let full = words_per_send ~level:Recorder.Full () in
  let off_b = words_per_send_batch ~level:Recorder.Off in
  let proto_b = words_per_send_batch ~level:Recorder.Protocol in
  let full_b = words_per_send_batch ~level:Recorder.Full in
  let alloc_table =
    Table.create ~title:"allocation per Net.send by recording level"
      ~columns:[ "level"; "words/send"; "words/send (4-payload batch)" ]
  in
  Table.add_rows alloc_table
    [
      [ "off"; Table.ffloat ~decimals:1 off; Table.ffloat ~decimals:1 off_b ];
      [
        "protocol";
        Table.ffloat ~decimals:1 proto;
        Table.ffloat ~decimals:1 proto_b;
      ];
      [ "full"; Table.ffloat ~decimals:1 full; Table.ffloat ~decimals:1 full_b ];
    ];
  Table.print alloc_table;
  if proto <> off then begin
    Printf.printf
      "OBS FAILURE: send allocates %+.1f extra words at Protocol level \
       (expected zero off-path overhead)\n"
      (proto -. off);
    exit 1
  end;
  if proto_b <> off_b then begin
    Printf.printf
      "OBS FAILURE: batched send allocates %+.1f extra words at Protocol \
       level (expected zero off-path overhead)\n"
      (proto_b -. off_b);
    exit 1
  end;
  (* 1b. Corruption hooks compiled in and exercised must leave the off-path
     send allocation word-for-word where it was. *)
  exercise_corruption_hooks ();
  let off_pc = words_per_send ~level:Recorder.Off () in
  let proto_pc = words_per_send ~level:Recorder.Protocol () in
  if off_pc <> off || proto_pc <> proto then begin
    Printf.printf
      "OBS FAILURE: send allocation moved after exercising corruption hooks \
       (off %.1f -> %.1f, protocol %.1f -> %.1f words/send)\n"
      off off_pc proto proto_pc;
    exit 1
  end;
  (* 1b'. A vsmon series scraping at the default interval must be invisible
     to the same word counts: window closing is driven by recorded events,
     and below Full the send path records nothing. *)
  let off_s = words_per_send ~with_series:true ~level:Recorder.Off () in
  let proto_s = words_per_send ~with_series:true ~level:Recorder.Protocol () in
  if off_s <> off || proto_s <> proto then begin
    Printf.printf
      "OBS FAILURE: send allocation moved with a scrape series attached \
       (off %.1f -> %.1f, protocol %.1f -> %.1f words/send)\n"
      off off_s proto proto_s;
    exit 1
  end;
  (* 1b'''. Same bar for the vspath causal collector: it only sees what the
     recorder emits, so below Full the send path must stay word-for-word
     identical with the collector attached (ISSUE 10's bench gate). *)
  let off_c = words_per_send ~with_causal:true ~level:Recorder.Off () in
  let proto_c = words_per_send ~with_causal:true ~level:Recorder.Protocol () in
  if off_c <> off || proto_c <> proto then begin
    Printf.printf
      "OBS FAILURE: send allocation moved with a causal collector attached \
       (off %.1f -> %.1f, protocol %.1f -> %.1f words/send)\n"
      off off_c proto proto_c;
    exit 1
  end;
  (* 1b''. The histogram record path itself: rule A1 proves it allocation-
     free statically; the word counter must agree exactly. *)
  let hdr_words = words_per_hdr_record () in
  Printf.printf "Hdr.record: %.3f words/record (must be 0)\n\n" hdr_words;
  if hdr_words <> 0.0 then begin
    Printf.printf
      "OBS FAILURE: Hdr.record allocates %.3f words per call (A1 certifies \
       it alloc-free)\n"
      hdr_words;
    exit 1
  end;
  (* 1c. The static half of the same guarantee: Net publishes the contract
     list that vslint's A1 annotations prove allocation-free at build time
     (and rule B1 pins the two sets together).  Record it next to the
     runtime word counts so the guards are auditable side by side, and
     refuse an empty contract outright — an empty list would mean the
     runtime assertion above is measuring functions the analyzer no longer
     proves anything about. *)
  let contract =
    Vs_net.Net.zero_alloc_contract @ Vs_obs.Hdr.zero_alloc_contract
  in
  if contract = [] then begin
    print_endline
      "OBS FAILURE: Net.zero_alloc_contract is empty (the static and \
       runtime zero-alloc guards are no longer tied together)";
    exit 1
  end;
  (* 2. Whole-experiment allocation deltas, instrumentation off vs Full, via
     the process-wide default level every Sim.create picks up.  Allocation
     is deterministic, so one run measures it; wall clock is not, so the
     reported wall_ms_* is the median of [wall_reps] runs (satellite of
     PR 9: single-shot numbers produced nonsense like e1's on < off). *)
  let wall_reps = 3 in
  let median xs =
    let sorted = List.sort Float.compare xs in
    List.nth sorted (List.length sorted / 2)
  in
  let saved = Recorder.default_level () in
  let rows =
    List.map
      (fun (id, _blurb, tables) ->
        let run : ?quick:bool -> unit -> Table.t list = tables in
        let measure level =
          Recorder.set_default_level level;
          let t0 = now_ms () in
          let bytes = measured_alloc (fun () -> ignore (run ~quick:true ())) in
          let first_ms = now_ms () -. t0 in
          let rest =
            List.init (wall_reps - 1) (fun _ ->
                let t = now_ms () in
                ignore (run ~quick:true ());
                now_ms () -. t)
          in
          (bytes, median (first_ms :: rest))
        in
        let bytes_off, ms_off = measure Recorder.Off in
        let bytes_on, ms_on = measure Recorder.Full in
        (id, bytes_off, bytes_on, ms_off, ms_on))
      experiments
  in
  Recorder.set_default_level saved;
  (* The obs section's experiment record is the heart of BENCH_obs.json —
     refuse to emit an empty one. *)
  if rows = [] then begin
    print_endline "OBS FAILURE: no per-experiment overhead rows measured";
    exit 1
  end;
  let delta_table =
    Table.create
      ~title:
        "E-series allocation and wall time, recording off vs Full (quick \
         sweeps)"
      ~columns:[ "experiment"; "MB off"; "MB on"; "ratio"; "ms off"; "ms on" ]
  in
  List.iter
    (fun (id, bytes_off, bytes_on, ms_off, ms_on) ->
      Table.add_row delta_table
        [
          id;
          Table.ffloat ~decimals:2 (bytes_off /. 1e6);
          Table.ffloat ~decimals:2 (bytes_on /. 1e6);
          Table.ffloat ~decimals:3
            (if bytes_off > 0. then bytes_on /. bytes_off else 0.);
          Table.ffloat ~decimals:1 ms_off;
          Table.ffloat ~decimals:1 ms_on;
        ])
    rows;
  Table.print delta_table;
  (* 3. Derived metrics for one Full-level campaign, the block EXPERIMENTS.md
     points at for the paper's per-view costs. *)
  let module Campaign = Vs_check.Campaign in
  let module Metrics = Vs_obs.Metrics in
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed:7 ~nodes:5 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  Printf.printf "metrics for one Full-level campaign (%s):\n\n"
    (Campaign.describe spec);
  print_endline (Metrics.to_text (Metrics.of_entries (Recorder.entries recorder)));
  print_newline ();
  (* 4. Machine-readable record of the same numbers, consolidated into the
     BENCH_obs.json main writes at exit. *)
  bench_record :=
    !bench_record
    @ [
        ( "send_words_per_call",
          Json.Obj
            [
              ("off", Json.Float off);
              ("protocol", Json.Float proto);
              ("full", Json.Float full);
            ] );
        ("zero_alloc_off_path", Json.Bool (proto = off));
        ( "send_words_per_call_batched",
          Json.Obj
            [
              ("off", Json.Float off_b);
              ("protocol", Json.Float proto_b);
              ("full", Json.Float full_b);
            ] );
        ("zero_alloc_off_path_batched", Json.Bool (proto_b = off_b));
        ( "zero_alloc_off_path_post_corruption",
          Json.Bool (off_pc = off && proto_pc = proto) );
        ( "zero_alloc_off_path_with_series",
          Json.Bool (off_s = off && proto_s = proto) );
        ( "zero_alloc_off_path_with_causal",
          Json.Bool (off_c = off && proto_c = proto) );
        ("hdr_record_words_per_call", Json.Float hdr_words);
        ("zero_alloc_hdr_record", Json.Bool (hdr_words = 0.0));
        ( "zero_alloc_contract",
          Json.Arr (List.map (fun s -> Json.Str s) contract) );
        ( "experiments",
          Json.Arr
            (List.map
               (fun (id, bytes_off, bytes_on, ms_off, ms_on) ->
                 Json.Obj
                   [
                     ("id", Json.Str id);
                     ("alloc_bytes_off", Json.Float bytes_off);
                     ("alloc_bytes_on", Json.Float bytes_on);
                     ( "overhead_ratio",
                       Json.Float
                         (if bytes_off > 0. then bytes_on /. bytes_off else 0.)
                     );
                     ("wall_ms_off", Json.Float ms_off);
                     ("wall_ms_on", Json.Float ms_on);
                   ])
               rows) );
      ]

(* ---------- lint wall time ---------- *)

(* The whole-program lint (call graph + effect fixpoint + C1/A1/S2/B1) is
   part of every dune runtest via @lint; the quick profile times the same
   pass so a pathological slowdown of the analyzer shows up in
   BENCH_obs.json like any other regression.  Skipped when the source tree
   is not visible from the working directory. *)
let run_lint_profile () =
  let roots =
    List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]
  in
  if roots <> [] then begin
    let t0 = now_ms () in
    let report = Vs_lint.Whole.analyze_paths roots in
    let ms = now_ms () -. t0 in
    Printf.printf
      "lint: whole-program pass over %d file(s) in %.1f ms (%d finding(s))\n\n"
      report.Vs_lint.Whole.files ms
      (List.length report.Vs_lint.Whole.findings);
    bench_record :=
      !bench_record
      @ [
          ( "lint",
            Json.Obj
              [
                ("files", Json.Int report.Vs_lint.Whole.files);
                ( "findings",
                  Json.Int (List.length report.Vs_lint.Whole.findings) );
                ("wall_ms", Json.Float ms);
              ] );
        ]
  end

(* ---------- sustained throughput: the wall-clock profile ---------- *)

(* The T experiment in the registry above runs without a clock (registry
   output must be deterministic); this profile re-runs it with the wall
   clock injected and writes the machine-readable BENCH_throughput.json —
   the evidence behind the 10× batched-vs-unbatched claim.  [scale]
   additionally reruns claim C1 with two k = 500 partitions (a
   1000-process simulation: several minutes, ~1.5 GB). *)
let run_throughput ~quick ~scale =
  let module TP = Vs_exp.Exp_throughput in
  (* vslint: allow D1 — wall-clock is the quantity being measured; bench output only *)
  let clock () = Unix.gettimeofday () in
  Printf.printf "### THROUGHPUT — sustained-load data plane (%s)\n\n%!"
    (if quick then "quick" else "full");
  let kv = TP.run_arms ~clock ~quick () in
  Table.print (TP.throughput_table kv);
  Table.print (TP.critpath_table kv);
  (* The vspath cross-check is a hard gate, not a reported number: a
     decomposition that no longer sums to the install latency or disagrees
     with the Stall attribution means the profiler is lying about where the
     latency went. *)
  List.iter
    (fun (r : TP.result) ->
      if not r.TP.r_critpath_consistent then begin
        Printf.printf
          "THROUGHPUT FAILURE: arm %s critical-path decomposition disagrees \
           with the Stall attribution (or does not sum to install latency)\n"
          r.TP.r_name;
        exit 1
      end)
    kv;
  let dp = TP.run_data_plane ~clock ~quick () in
  Table.print (TP.data_plane_table dp);
  let dp_speedup = TP.dp_speedup dp in
  (match dp_speedup with
  | Some s ->
      Printf.printf
        "data-plane sustained ops/sec, batched+pipelined vs unbatched: %.1fx\n\n"
        s
  | None -> ());
  let merge_ks = if scale then [ 500 ] else if quick then [ 25 ] else [ 100 ] in
  let merges = List.map (fun k -> TP.merge_at_scale ~k) merge_ks in
  Table.print (TP.merge_table merges);
  let pct_obj label p50 p99 =
    ( label,
      Json.Obj
        [
          ("p50_ms", match p50 with Some s -> Json.Float (s *. 1000.) | None -> Json.Null);
          ("p99_ms", match p99 with Some s -> Json.Float (s *. 1000.) | None -> Json.Null);
        ] )
  in
  let opt_float = function Some f -> Json.Float f | None -> Json.Null in
  let json =
    Json.Obj
      [
        ("quick", Json.Bool quick);
        ( "kv_arms",
          Json.Arr
            (List.map
               (fun (r : TP.result) ->
                 Json.Obj
                   [
                     ("name", Json.Str r.TP.r_name);
                     ("offered", Json.Int r.TP.r_offered);
                     ("accepted", Json.Int r.TP.r_accepted);
                     ("applied_in_window", Json.Int r.TP.r_applied);
                     ("wall_s", opt_float r.TP.r_wall_s);
                     ("ops_per_wall_s", opt_float r.TP.r_ops_per_wall_s);
                     pct_obj "put_latency"
                       (TP.sum_pct r.TP.r_put_lat 0.5)
                       (TP.sum_pct r.TP.r_put_lat 0.99);
                     pct_obj "install_latency"
                       (TP.hist_pct r.TP.r_install 0.5)
                       (TP.hist_pct r.TP.r_install 0.99);
                     pct_obj "flush_stall"
                       (TP.hist_pct r.TP.r_flush 0.5)
                       (TP.hist_pct r.TP.r_flush 0.99);
                     ("wire_msgs_per_op", Json.Float r.TP.r_wire_per_op);
                     ( "critical_path",
                       Json.Obj
                         (List.map
                            (fun (k, v) -> (k, Json.Float v))
                            r.TP.r_critpath
                         @ [
                             ( "straggler",
                               match r.TP.r_straggler with
                               | Some (p, c) ->
                                   Json.Obj
                                     [
                                       ("proc", Json.Str p);
                                       ("charged_s", Json.Float c);
                                     ]
                               | None -> Json.Null );
                             ( "consistent_with_stall",
                               Json.Bool r.TP.r_critpath_consistent );
                           ]) );
                     ( "windows",
                       Json.Arr
                         (List.map
                            (fun (w : TP.window_stat) ->
                              Json.Obj
                                [
                                  ("window", Json.Int w.TP.ws_index);
                                  ("t_start", Json.Float w.TP.ws_start);
                                  ("t_end", Json.Float w.TP.ws_end);
                                  ("applied", Json.Int w.TP.ws_applied);
                                  ("ops_per_s", Json.Float w.TP.ws_ops_per_s);
                                  ("installs", Json.Int w.TP.ws_installs);
                                  ( "install_p99_ms",
                                    match w.TP.ws_install_p99 with
                                    | Some s -> Json.Float (s *. 1000.)
                                    | None -> Json.Null );
                                ])
                            r.TP.r_windows) );
                   ])
               kv) );
        ( "data_plane",
          Json.Obj
            [
              ( "arms",
                Json.Arr
                  (List.map
                     (fun (r : TP.dp_result) ->
                       Json.Obj
                         [
                           ("name", Json.Str r.TP.p_name);
                           ("offered", Json.Int r.TP.p_offered);
                           ("delivered_all_replicas", Json.Int r.TP.p_delivered);
                           ("wall_s", opt_float r.TP.p_wall_s);
                           ("ops_per_wall_s", opt_float r.TP.p_ops_per_wall_s);
                           ("wire_msgs_per_op", Json.Float r.TP.p_wire_per_op);
                           ("batch_rounds", Json.Int r.TP.p_batches);
                         ])
                     dp) );
              ("speedup", opt_float dp_speedup);
              ( "gate_10x",
                Json.Bool
                  (match dp_speedup with Some s -> s >= 10.0 | None -> false)
              );
            ] );
        ( "c1_at_scale",
          Json.Arr
            (List.map
               (fun (m : TP.merge_result) ->
                 Json.Obj
                   [
                     ("k", Json.Int m.TP.m_k);
                     ("installs_after_heal", Json.Int m.TP.m_installs_total);
                     ("installs_per_proc", Json.Float m.TP.m_installs_per_proc);
                     ("merge_latency_s", Json.Float m.TP.m_merge_latency);
                   ])
               merges) );
      ]
  in
  (* Refusal gate, same pattern as the BENCH_obs.json one below: diff the
     candidate against the committed BENCH_throughput.json and refuse to
     overwrite on a deterministic regression.  Here the deterministic keys
     are the 10x data-plane gate and the per-arm consistent_with_stall
     cross-check the critical-path block carries. *)
  let module Bd = Vs_obs.Bench_diff in
  let baseline =
    if Sys.file_exists "BENCH_throughput.json" then begin
      let ic = open_in_bin "BENCH_throughput.json" in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string text with
      | Ok doc -> Some doc
      | Error msg ->
          Printf.printf
            "note: committed BENCH_throughput.json unparseable (%s); \
             skipping the regression diff\n"
            msg;
          None
    end
    else None
  in
  (match baseline with
  | None -> ()
  | Some old_doc ->
      let rows = Bd.diff ~old_doc ~new_doc:json () in
      Table.print (Bd.to_table rows);
      print_endline (Bd.summary rows);
      let det = Bd.deterministic_regressions rows in
      if det <> [] then begin
        List.iter
          (fun (r : Bd.row) ->
            Printf.printf "BENCH REGRESSION (deterministic key): %s (%s)\n"
              r.Bd.key r.Bd.r_note)
          det;
        print_endline
          "BENCH_throughput.json left unchanged (deterministic regression \
           vs the committed baseline)";
        exit 1
      end);
  let oc = open_out "BENCH_throughput.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_throughput.json"

(* ---------- Bechamel micro-benchmarks: the hot operation of each table ---------- *)

let p n = Proc_id.initial n

let sample_eview =
  let members = List.init 8 p in
  let view = View.make (View.Id.make ~epoch:5 ~proposer:(p 0)) members in
  let reports =
    List.map
      (fun (q : Proc_id.t) ->
        ( q,
          {
            E_view.r_tag =
              Some
                {
                  E_view.m_sv = E_view.Subview_id.Fresh (p (q.Proc_id.node / 2));
                  m_ss = E_view.Svset_id.Fresh (p (q.Proc_id.node / 4));
                };
            r_prior = Some (View.Id.make ~epoch:4 ~proposer:(p (q.Proc_id.node / 4)));
          } ))
      members
  in
  E_view.rebuild view reports

let micro_tests () =
  let open Bechamel in
  [
    (* E1: a mode-machine step. *)
    Test.make ~name:"e1/mode-machine-step"
      (Staged.stage (fun () ->
           let m = Mode.Machine.create () in
           ignore
             (Mode.Machine.on_view_change m ~target:Mode.Serve_all
                ~expanded:true ~policy:Mode.On_expansion);
           ignore (Mode.Machine.reconcile m)));
    (* E2: rebuilding an enriched view from flush reports. *)
    Test.make ~name:"e2/eview-rebuild-8"
      (Staged.stage (fun () ->
           let members = List.init 8 p in
           let view = View.make (View.Id.make ~epoch:5 ~proposer:(p 0)) members in
           ignore
             (E_view.rebuild view
                (List.map
                   (fun q -> (q, { E_view.r_tag = None; r_prior = None }))
                   members))));
    (* E3: applying the two merge operations. *)
    Test.make ~name:"e3/svset+subview-merge"
      (Staged.stage (fun () ->
           let ev = sample_eview in
           let ss_ids =
             List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets
           in
           match E_view.apply_svset_merge ev ss_ids with
           | Ok (ev', _) ->
               let sv_ids =
                 List.map (fun sv -> sv.E_view.sv_id)
                   ev'.E_view.structure.E_view.subviews
               in
               ignore (E_view.apply_subview_merge ev' sv_ids)
           | Error `No_effect -> ()));
    (* E4: membership normalization, the per-proposal hot path. *)
    Test.make ~name:"e4/membership-sort-64"
      (let ids = List.init 64 (fun i -> Proc_id.make ~node:(63 - i) ~inc:(i mod 3)) in
       Staged.stage (fun () -> ignore (Proc_id.sort ids)));
    (* E5: both local classifiers. *)
    Test.make ~name:"e5/classify-enriched+flat"
      (Staged.stage (fun () ->
           ignore
             (Classify.enriched ~eview:sample_eview
                ~would_serve_all:(fun ms -> List.length ms > 4)
                ());
           ignore
             (Classify.flat
                {
                  Classify.fk_members = E_view.members sample_eview;
                  fk_me = p 0;
                  fk_my_prior = Classify.Was_reduced;
                  fk_my_prior_members = [ p 0; p 1 ];
                })));
    (* E6: wire-size accounting of a synchronisation-carrying install. *)
    Test.make ~name:"e6/wire-size-install"
      (let data =
         List.init 64 (fun i ->
             {
               Vs_vsync.Wire.vid = View.Id.make ~epoch:3 ~proposer:(p 0);
               sender = p (i mod 8);
               seq = i;
               body = Vs_vsync.Wire.User i;
             })
       in
       let install =
         Vs_vsync.Wire.Install
           {
             pvid = View.Id.make ~epoch:4 ~proposer:(p 0);
             view = View.make (View.Id.make ~epoch:4 ~proposer:(p 0)) (List.init 8 p);
             sync = [ (View.Id.make ~epoch:3 ~proposer:(p 0), data) ];
             anns = List.map (fun q -> (q, Some ())) (List.init 8 p);
             priors =
               List.map
                 (fun q -> (q, View.Id.make ~epoch:3 ~proposer:(p 0)))
                 (List.init 8 p);
           }
       in
       Staged.stage (fun () ->
           ignore
             (Vs_vsync.Wire.size_of ~user:(fun _ -> 8) ~ann:(fun () -> 8) install)));
    (* E7: quorum evaluation over a membership. *)
    Test.make ~name:"e7/quorum-check"
      (let members = List.init 5 p in
       Staged.stage (fun () ->
           ignore
             (List.fold_left (fun acc (_ : Proc_id.t) -> acc + 1) 0 members > 2)));
    (* E8: one full range scan of the replicated dataset. *)
    Test.make ~name:"e8/range-scan-1000"
      (Staged.stage (fun () ->
           let hits = ref 0 in
           for k = 0 to 999 do
             if (k * 37 + 11) mod 256 = 48 then incr hits
           done;
           ignore !hits));
    (* E9: the structure fingerprint used to compare e-views. *)
    Test.make ~name:"e9/eview-fingerprint"
      (Staged.stage (fun () -> ignore (E_view.to_string sample_eview)));
    (* E10: the simulator's event-queue hot path. *)
    Test.make ~name:"e10/heap-1k-push-pop"
      (Staged.stage (fun () ->
           let h = Vs_util.Heap.create ~cmp:Int.compare in
           for i = 999 downto 0 do
             Vs_util.Heap.push h i
           done;
           let rec drain () =
             match Vs_util.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "### Bechamel micro-benchmarks (one per experiment table)\n";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.2) ~kde:(Some 1000) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ())
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare results in
  let table =
    Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time/run (ns)"; "r^2" ]
  in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "%.1f" est
        | Some ests ->
            String.concat "," (List.map (Printf.sprintf "%.1f") ests)
        | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Table.add_row table [ name; estimate; r2 ])
    rows;
  Table.print table

let () =
  let args =
    match Array.to_list Sys.argv with [] -> [] | _program :: rest -> rest
  in
  let known_ids = List.map (fun (id, _, _) -> id) experiments in
  let unknown =
    List.filter
      (fun a ->
        not
          (List.mem a
             ("quick" :: "micro" :: "obs" :: "throughput" :: "scale" :: known_ids)))
      args
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown argument(s): %s\n" (String.concat " " unknown);
    Printf.eprintf
      "usage: main.exe [quick] [micro] [obs] [throughput [scale]] [%s]...\n\
      \  no arguments        run all experiments, the observability overhead\n\
      \                      section, the micro-benchmarks and a quick\n\
      \                      throughput profile\n\
      \  quick               smaller sweeps (CI-sized)\n\
      \  micro               run the Bechamel micro-benchmarks\n\
      \  obs                 run the observability overhead section\n\
      \  throughput          run the wall-clock sustained-throughput profile\n\
      \                      (writes BENCH_throughput.json)\n\
      \  scale               with throughput: rerun C1 with k = 500\n\
      \                      partitions (minutes of wall time)\n\
      \  <experiment id>     run only the named experiments\n"
      (String.concat "|" known_ids);
    exit 2
  end;
  let quick = List.mem "quick" args in
  let micro = List.mem "micro" args in
  let obs = List.mem "obs" args in
  let throughput = List.mem "throughput" args in
  let scale = List.mem "scale" args in
  let only = List.filter (fun a -> List.mem a known_ids) args in
  (* Experiment ids, [micro], [obs] and [throughput] compose; naming any of
     them skips the unnamed sections. *)
  let run_all = only = [] && (not micro) && (not obs) && not throughput in
  print_endline
    "On Programming with View Synchrony (ICDCS 1996) — experiment \
     reproduction\n";
  if only <> [] || run_all then run_experiments ~quick ~only;
  (* CI explores a small seed budget on every quick run. *)
  if quick && only = [] then run_explorer_smoke ();
  if quick && only = [] then run_lint_profile ();
  if obs || run_all then run_obs ();
  if micro || run_all then run_micro ();
  (* The default profile carries the quick throughput variant, so
     BENCH_throughput.json is refreshed on every full bench run. *)
  if throughput then run_throughput ~quick ~scale
  else if run_all then run_throughput ~quick:true ~scale:false;
  (* Consolidated record: whatever sections ran, plus the wall time of every
     experiment of this invocation.  [experiment_wall_ms] is only emitted
     when the experiment registry actually ran — an obs-only invocation used
     to leave a dead [{}] behind.  Written only when the obs section itself
     ran: it is the heart of the artifact, and a partial invocation
     (experiments only, `throughput quick`'s smoke+lint ride-alongs) must
     never wipe the committed record down to its own subset of keys. *)
  if (obs || run_all) && (!bench_record <> [] || !exp_walls <> []) then begin
    let json =
      Json.Obj
        (!bench_record
        @
        match !exp_walls with
        | [] -> []
        | walls ->
            [
              ( "experiment_wall_ms",
                Json.Obj (List.map (fun (id, ms) -> (id, Json.Float ms)) walls)
              );
            ])
    in
    (* Regression gate: diff the candidate record against the committed
       BENCH_obs.json before overwriting it.  Only deterministic keys
       (zero-alloc booleans, counted words, lint findings) gate — wall
       clock and allocation totals are reported but never fail the bench.
       On a deterministic regression the committed baseline is left in
       place so a re-run still sees it. *)
    let module Bd = Vs_obs.Bench_diff in
    let baseline =
      if Sys.file_exists "BENCH_obs.json" then begin
        let ic = open_in_bin "BENCH_obs.json" in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Json.of_string text with
        | Ok doc -> Some doc
        | Error msg ->
            Printf.printf "note: committed BENCH_obs.json unparseable (%s); \
                           skipping the regression diff\n" msg;
            None
      end
      else None
    in
    let regressed =
      match baseline with
      | None -> false
      | Some old_doc ->
          let rows = Bd.diff ~old_doc ~new_doc:json () in
          Table.print (Bd.to_table rows);
          print_endline (Bd.summary rows);
          let det = Bd.deterministic_regressions rows in
          List.iter
            (fun (r : Bd.row) ->
              Printf.printf "BENCH REGRESSION (deterministic key): %s (%s)\n"
                r.Bd.key r.Bd.r_note)
            det;
          det <> []
    in
    if regressed then begin
      print_endline
        "BENCH_obs.json left unchanged (deterministic regression vs the \
         committed baseline)";
      exit 1
    end;
    let oc = open_out "BENCH_obs.json" in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_obs.json"
  end
