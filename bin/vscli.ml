(* vscli — command-line driver for the view-synchrony simulator.

   Subcommands:
     experiment   regenerate the paper's tables (all or selected)
     campaign     run a randomized fault campaign and check the properties
     check        sweep seeds through the schedule explorer; shrink failures
     explain      run/replay a campaign and print the failure attribution
     query        run/replay a campaign and filter the recorded event stream
     trace        run a campaign and dump the annotated event trace
     top          per-window vsmon telemetry + flush-stall attribution
     metrics      expose the end-of-run registry (OpenMetrics or JSON)
     path         causal critical-path profile (vspath); --flame for stacks
     diff-runs    structural diff of two runs; first causal divergence
     bench diff   compare two BENCH_*.json artifacts; non-zero on regression
     lint         run the vslint determinism checks (same driver as vslint) *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Recorder = Vs_obs.Recorder
module Event = Vs_obs.Event
module Export = Vs_obs.Export
module Metrics = Vs_obs.Metrics
module Explain = Vs_obs.Explain
module Lineage = Vs_obs.Lineage
module Query = Vs_obs.Query
module Json = Vs_obs.Json
module Faults = Vs_harness.Faults
module Oracle = Vs_harness.Oracle
module Vc = Vs_harness.Vsync_cluster
module Ec = Vs_harness.Evs_cluster
module Campaign = Vs_check.Campaign
module Explorer = Vs_check.Explorer
module Shrink = Vs_check.Shrink
module Repro = Vs_check.Repro
module Explain_run = Vs_check.Explain_run
open Cmdliner

(* Print a newline-terminated block with every line indented. *)
let print_indented ~indent text =
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then Printf.printf "%s%s\n" indent line)

(* ---------- shared argument pieces ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let nodes_arg =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let duration_arg =
  Arg.(
    value & opt float 6.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Fault-injection window.")

let obs_level_conv =
  let parse s =
    match Recorder.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg
            (Printf.sprintf "invalid recording level %S; expected one of: %s" s
               (String.concat ", " Recorder.all_level_names)))
  in
  let print ppf l = Format.pp_print_string ppf (Recorder.level_to_string l) in
  Arg.conv (parse, print)

let obs_level_arg default =
  Arg.(
    value & opt obs_level_conv default
    & info [ "obs-level" ] ~docv:"LEVEL"
        ~doc:
          "Event recording level: $(b,off), $(b,protocol) or $(b,full) \
           (case-insensitive).  Lineage-based explanations need $(b,full); \
           below that they fall back to membership traffic only.")

let typed_conv name of_string to_string =
  let parse s =
    match of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" name s))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (to_string v))

let proc_conv = typed_conv "process" Event.proc_of_string Event.proc_to_string

let vid_conv = typed_conv "view id" Event.vid_of_string Event.vid_to_string

let msg_conv = typed_conv "message id" Event.msg_of_string Event.msg_to_string

(* replay FILE / generated seed campaign: shared by explain, query, trace. *)
let spec_of ~seed ~nodes ~evs ~replay =
  match replay with
  | Some file -> (
      match Repro.load file with
      | Error msg ->
          Printf.eprintf "cannot load %s: %s\n" file msg;
          exit 2
      | Ok spec -> spec)
  | None ->
      let protocol =
        if evs then Vs_harness.Driver.Evs else Vs_harness.Driver.Vsync
      in
      Campaign.generate ~protocol ~seed ~nodes ~quick:false ()

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Use a corpus repro artifact instead of a generated seed campaign.")

let evs_arg =
  Arg.(
    value & flag
    & info [ "evs" ]
        ~doc:"Generate an EVS campaign from the seed (default plain VS).")

(* ---------- experiment ---------- *)

let experiments =
  [
    ("e1", Vs_exp.Exp_modes.tables);
    ("e2e3", Vs_exp.Exp_figures.tables);
    ("e4", Vs_exp.Exp_join.tables);
    ("e5", Vs_exp.Exp_classify.tables);
    ("e6", Vs_exp.Exp_transfer.tables);
    ("e7", Vs_exp.Exp_file.tables);
    ("e8", Vs_exp.Exp_db.tables);
    ("e9e10", Vs_exp.Exp_overhead.tables);
    ("e11", Vs_exp.Exp_loss.tables);
    ("t", Vs_exp.Exp_throughput.tables);
  ]

let experiment_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (CI-sized).")
  in
  let names =
    Arg.(
      value
      & pos_all (enum (List.map (fun (n, _) -> (n, n)) experiments)) []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiments to run (e1 e2e3 e4 e5 e6 e7 e8 e9e10 e11 t); all \
             by default; t runs without wall-clock numbers — see the \
             throughput subcommand for those.")
  in
  let run quick names =
    let selected =
      match names with
      | [] -> experiments
      | names -> List.filter (fun (n, _) -> List.mem n names) experiments
    in
    List.iter
      (fun (name, tables) ->
        Printf.printf "### %s\n\n%!" (String.uppercase_ascii name);
        let t : ?quick:bool -> unit -> Vs_stats.Table.t list = tables in
        List.iter Vs_stats.Table.print (t ~quick ()))
      selected
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation tables.")
    Term.(const run $ quick $ names)

(* ---------- campaign ---------- *)

let campaign_cmd =
  let evs =
    Arg.(
      value & flag
      & info [ "evs" ]
          ~doc:"Run enriched view synchrony (checks Properties 6.1/6.3 too).")
  in
  let run seed nodes duration evs obs_level =
    let seed64 = Int64.of_int seed in
    let node_list = List.init nodes (fun i -> i) in
    let script rng =
      Faults.random_script rng ~nodes:node_list ~start:1.0 ~duration
        ~mean_gap:0.5 ()
    in
    let rng = Vs_util.Rng.create (Int64.add seed64 999L) in
    let obs = Recorder.create ~level:obs_level () in
    let wrap property detail =
      { Explain.property; msg = None; procs = []; vids = []; detail }
    in
    let verdicts, summary =
      if evs then begin
        let c = Ec.create ~seed:seed64 ~obs ~n:nodes () in
        Ec.run_script c (script rng);
        Ec.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Ec.run c ~until:(duration +. 4.0);
        ( List.map Oracle.to_obs_violation (Oracle.all_violations (Ec.oracle c))
          @ List.map (wrap Explain.Evs_total_order) (Ec.check_total_order c)
          @ List.map (wrap Explain.Evs_structure) (Ec.check_structure c),
          Printf.sprintf
            "deliveries=%d installs=%d distinct-views=%d e-view-changes=%d"
            (Oracle.total_deliveries (Ec.oracle c))
            (Oracle.total_installs (Ec.oracle c))
            (Oracle.distinct_views (Ec.oracle c))
            (Ec.eview_changes_total c) )
      end
      else begin
        let c = Vc.create ~seed:seed64 ~obs ~n:nodes () in
        Vc.run_script c (script rng);
        Vc.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Vc.run c ~until:(duration +. 4.0);
        ( List.map Oracle.to_obs_violation (Oracle.all_violations (Vc.oracle c)),
          Printf.sprintf "deliveries=%d installs=%d distinct-views=%d stable=%b"
            (Oracle.total_deliveries (Vc.oracle c))
            (Oracle.total_installs (Vc.oracle c))
            (Oracle.distinct_views (Vc.oracle c))
            (Vc.stable_view_reached c) )
      end
    in
    Printf.printf "campaign: seed=%d nodes=%d duration=%.1fs %s\n" seed nodes
      duration
      (if evs then "(EVS)" else "(plain VS)");
    Printf.printf "run: %s\n" summary;
    if verdicts = [] then
      print_endline "properties: all hold (agreement, uniqueness, integrity, order)"
    else begin
      Printf.printf "VIOLATIONS (%d):\n" (List.length verdicts);
      let entries = Recorder.entries obs in
      let lineage = Lineage.of_entries entries in
      List.iteri
        (fun i v ->
          Printf.printf "[%d] " (i + 1);
          print_string (Explain.to_text (Explain.explain ~lineage ~entries v)))
        verdicts;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a randomized fault campaign and check the view-synchrony \
          properties against the oracle; any violation is printed as a full \
          causal explanation.")
    Term.(
      const run $ seed_arg $ nodes_arg $ duration_arg $ evs
      $ obs_level_arg Recorder.Full)

(* ---------- check ---------- *)

let check_cmd =
  let seeds =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let start_seed =
    Arg.(
      value & opt int 1
      & info [ "start-seed" ] ~docv:"S" ~doc:"First seed of the sweep.")
  in
  let check_nodes =
    Arg.(
      value & opt int 5
      & info [ "nodes" ] ~docv:"K" ~doc:"Nodes per campaign.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shorter churn windows (CI-sized campaigns).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let corpus =
    Arg.(
      value
      & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory where shrunk repro artifacts are written.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one repro artifact instead of sweeping seeds; exits \
             non-zero if the replay still violates a property.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-campaign progress.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the derived metrics summary (counters, histograms).")
  in
  let transient =
    Arg.(
      value & flag
      & info [ "transient" ]
          ~doc:
            "Add the transient-corruption axis: campaigns also inject typed \
             state corruptions and runs are judged by the stabilization \
             oracle (bounded recovery after the last corruption).")
  in
  let replay_file ~metrics ~obs_level file =
    match Repro.load file with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        exit 2
    | Ok spec ->
        Printf.printf "replay %s\n" file;
        let obs = Recorder.create ~level:obs_level () in
        let outcome = Campaign.run ~obs spec in
        let report =
          Explain_run.build ~spec ~outcome ~entries:(Recorder.entries obs)
        in
        print_indented ~indent:"  " (Explain_run.to_text report);
        if metrics then
          print_string (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)));
        if not (Explain_run.clean report) then exit 1
  in
  let sweep seeds start_seed nodes quick no_shrink corpus verbose metrics
      transient =
    let progress =
      if verbose then
        Some
          (fun ~seed spec (outcome : Campaign.outcome) ->
            Printf.printf "seed %d %s: %s\n%!" seed
              (Campaign.describe spec)
              (if outcome.Campaign.violations = [] then "ok"
               else
                 Printf.sprintf "%d violation(s)"
                   (List.length outcome.Campaign.violations)))
      else None
    in
    let report =
      Explorer.explore ~start_seed ~transient ~shrink:(not no_shrink) ?progress
        ~seeds ~nodes ~quick ()
    in
    Printf.printf
      "explored %d seeds (%d campaigns, both protocols): %d events, %d \
       deliveries, %d installs\n"
      report.Explorer.seeds report.Explorer.campaigns
      report.Explorer.total_events report.Explorer.total_deliveries
      report.Explorer.total_installs;
    if report.Explorer.failures = [] then begin
      print_endline "no violations found";
      if metrics then begin
        (* Representative metrics: re-run the first seed's VS campaign with
           recording on. *)
        let spec =
          Campaign.generate ~protocol:Vs_harness.Driver.Vsync ~transient
            ~seed:start_seed ~nodes ~quick ()
        in
        let obs = Recorder.create ~level:Recorder.Protocol () in
        ignore (Campaign.run ~obs spec);
        Printf.printf "metrics for seed %d (VS):\n" start_seed;
        print_string
          (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)))
      end
    end
    else begin
      List.iter
        (fun (f : Explorer.failure) ->
          Printf.printf "\nFAILURE at seed %d:\n  original: %s\n" f.Explorer.f_seed
            (Campaign.describe f.Explorer.f_spec);
          List.iter
            (fun e -> print_endline ("    " ^ e))
            f.Explorer.f_outcome.Campaign.violations;
          if not no_shrink then begin
            Printf.printf "  shrunk (%d/%d candidates accepted): %s\n"
              f.Explorer.f_shrink_stats.Shrink.accepted
              f.Explorer.f_shrink_stats.Shrink.attempts
              (Campaign.describe f.Explorer.f_shrunk);
            let path = Repro.save ~dir:corpus f.Explorer.f_shrunk in
            Printf.printf "  repro written to %s\n" path;
            (* Replay the shrunk spec with full recording so the failure is
               self-explaining, not just reproducible, and attach the
               explanation next to the saved artifact. *)
            let obs = Recorder.create ~level:Recorder.Full () in
            let outcome = Campaign.run ~obs f.Explorer.f_shrunk in
            let explain_report =
              Explain_run.build ~spec:f.Explorer.f_shrunk ~outcome
                ~entries:(Recorder.entries obs)
            in
            let text = Explain_run.to_text explain_report in
            print_indented ~indent:"  " text;
            let expl_path = Filename.remove_extension path ^ ".explain.txt" in
            let oc = open_out expl_path in
            output_string oc text;
            close_out oc;
            Printf.printf "  explanation written to %s\n" expl_path;
            if metrics then
              print_string
                (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)))
          end)
        report.Explorer.failures;
      exit 1
    end
  in
  let run seeds start_seed nodes quick no_shrink corpus replay verbose metrics
      transient obs_level =
    match replay with
    | Some file -> replay_file ~metrics ~obs_level file
    | None ->
        sweep seeds start_seed nodes quick no_shrink corpus verbose metrics
          transient
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Sweep seeds through the fault-schedule explorer (random churn x \
          loss/dup/jitter x traffic, over both protocols), shrink any \
          failure to a minimal repro artifact, or replay one artifact.")
    Term.(
      const run $ seeds $ start_seed $ check_nodes $ quick $ no_shrink $ corpus
      $ replay $ verbose $ metrics $ transient $ obs_level_arg Recorder.Full)

(* ---------- explain ---------- *)

let explain_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as one canonical JSON object.")
  in
  let graph =
    Arg.(
      value
      & opt (some (enum [ ("mermaid", `Mermaid); ("dot", `Dot) ])) None
      & info [ "graph" ] ~docv:"FORMAT"
          ~doc:
            "Also print the run's view graph as $(b,mermaid) or $(b,dot) \
             (Graphviz) source.")
  in
  let run seed nodes evs replay json graph =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    (* Full level: lineage and causal slices need the per-message traffic. *)
    let obs = Recorder.create ~level:Recorder.Full () in
    let outcome = Campaign.run ~obs spec in
    let report =
      Explain_run.build ~spec ~outcome ~entries:(Recorder.entries obs)
    in
    if json then print_endline (Json.to_string (Explain_run.to_json report))
    else print_string (Explain_run.to_text report);
    (match graph with
    | Some `Mermaid -> print_string (Lineage.to_mermaid (Explain_run.graph report))
    | Some `Dot -> print_string (Lineage.to_dot (Explain_run.graph report))
    | None -> ());
    if not (Explain_run.clean report) then exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a seed campaign or replay a corpus repro with full recording \
          and print the failure attribution: every oracle verdict with the \
          offending message's lineage, the views involved and the minimal \
          causal event slice — or the conservation/view-graph summary of a \
          clean run.")
    Term.(
      const run $ seed_arg $ nodes_arg $ evs_arg $ replay_arg $ json $ graph)

(* ---------- query ---------- *)

let query_cmd =
  let procs =
    Arg.(
      value & opt_all proc_conv []
      & info [ "proc" ] ~docv:"PROC"
          ~doc:
            "Keep events mentioning this process, e.g. $(b,p0) or $(b,p2.1) \
             (repeatable: any match).")
  in
  let nodes_f =
    Arg.(
      value & opt_all int []
      & info [ "node" ] ~docv:"N"
          ~doc:"Keep events mentioning any process on this node (repeatable).")
  in
  let vids =
    Arg.(
      value & opt_all vid_conv []
      & info [ "vid" ] ~docv:"VID"
          ~doc:"Keep events mentioning this view id, e.g. $(b,v3\\@p0) \
                (repeatable).")
  in
  let msgs =
    Arg.(
      value & opt_all msg_conv []
      & info [ "msg" ] ~docv:"MSG"
          ~doc:
            "Keep data-path events of this message, e.g. $(b,p0#2) \
             (repeatable).")
  in
  let types =
    Arg.(
      value & opt_all string []
      & info [ "type" ] ~docv:"EV"
          ~doc:
            "Keep events of this type (send, recv, drop, install, ...; \
             repeatable).")
  in
  let comps =
    Arg.(
      value & opt_all string []
      & info [ "component" ] ~docv:"C"
          ~doc:"Keep events of this component (net, gms, vsync, ...; \
                repeatable).")
  in
  let t0 =
    Arg.(
      value
      & opt (some float) None
      & info [ "from" ] ~docv:"T" ~doc:"Keep events at or after this time.")
  in
  let t1 =
    Arg.(
      value
      & opt (some float) None
      & info [ "until" ] ~docv:"T" ~doc:"Keep events at or before this time.")
  in
  let count_only =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Print only the number of matching events.")
  in
  let limit =
    Arg.(
      value & opt int 500
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum entries printed.")
  in
  let run seed nodes evs replay procs nodes_f vids msgs types comps t0 t1
      count_only limit =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    let obs = Recorder.create ~level:Recorder.Full () in
    ignore (Campaign.run ~obs spec);
    let entries = Recorder.entries obs in
    let disj of_q = function [] -> [] | xs -> [ Query.any (List.map of_q xs) ] in
    let conjuncts =
      List.concat
        [
          disj Query.mentions_proc procs;
          disj Query.on_node nodes_f;
          disj Query.mentions_vid vids;
          disj Query.about_msg msgs;
          disj Query.of_type types;
          disj Query.of_component comps;
          (match (t0, t1) with
          | None, None -> []
          | _ ->
              [
                Query.between
                  ~t0:(Option.value t0 ~default:neg_infinity)
                  ~t1:(Option.value t1 ~default:infinity);
              ]);
        ]
    in
    let q = List.fold_left Query.( &&& ) Query.all conjuncts in
    let hits = Query.run q entries in
    if count_only then Printf.printf "%d\n" (List.length hits)
    else begin
      List.iteri
        (fun i (e : Recorder.entry) ->
          if i < limit then
            Printf.printf "[%10.4f] %-8s %s\n" e.Recorder.time
              (Event.component e.Recorder.event)
              (Event.render e.Recorder.event))
        hits;
      if List.length hits > limit then
        Printf.printf "... (%d more entries)\n" (List.length hits - limit)
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a seed campaign or replay a corpus repro with full recording \
          and filter the typed event stream by process, node, view id, \
          message id, event type, component and time window (criteria are \
          ANDed; repeats of one criterion are ORed).")
    Term.(
      const run $ seed_arg $ nodes_arg $ evs_arg $ replay_arg $ procs $ nodes_f
      $ vids $ msgs $ types $ comps $ t0 $ t1 $ count_only $ limit)

(* ---------- trace ---------- *)

let trace_cmd =
  let components =
    Arg.(
      value
      & opt (list string) []
      & info [ "components" ] ~docv:"LIST"
          ~doc:
            "Restrict text output to these components (vsync, evs, mode, fd, \
             gms, app, net, faults); empty = all.")
  in
  let limit =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum text entries printed.")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("text", `Text); ("jsonl", `Jsonl); ("chrome", `Chrome);
               ("summary", `Summary);
             ])
          `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (classic annotated trace), $(b,jsonl) \
             (one JSON event per line), $(b,chrome) (trace_event JSON for \
             Perfetto / chrome://tracing), $(b,summary) (derived metrics \
             tables).")
  in
  let run seed nodes format replay components limit evs =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    (* Full level: the exporters want the per-message traffic too. *)
    let obs = Recorder.create ~level:Recorder.Full () in
    let outcome = Campaign.run ~obs spec in
    let entries = Recorder.entries obs in
    (match format with
    | `Jsonl -> print_string (Export.jsonl_of_entries entries)
    | `Chrome -> print_endline (Export.chrome_of_entries entries)
    | `Summary ->
        Printf.printf "%s\n" (Campaign.describe spec);
        Printf.printf
          "deliveries=%d installs=%d distinct-views=%d events=%d stable=%b\n\n"
          outcome.Campaign.deliveries outcome.Campaign.installs
          outcome.Campaign.distinct_views outcome.Campaign.events
          outcome.Campaign.stable;
        print_string (Metrics.to_text (Metrics.of_entries entries))
    | `Text ->
        let wanted (e : Recorder.entry) =
          match components with
          | [] -> true
          | cs -> List.mem (Event.component e.Recorder.event) cs
        in
        let shown = List.filter wanted entries in
        List.iteri
          (fun i (e : Recorder.entry) ->
            if i < limit then
              Printf.printf "[%10.4f] %-8s %s\n" e.Recorder.time
                (Event.component e.Recorder.event)
                (Event.render e.Recorder.event))
          shown;
        if List.length shown > limit then
          Printf.printf "... (%d more entries)\n" (List.length shown - limit))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a seed campaign or corpus repro with full event recording \
          and export the typed event stream (text, JSONL, Chrome trace_event \
          for Perfetto, or a metrics summary).")
    Term.(
      const run $ seed_arg $ nodes_arg $ format $ replay_arg $ components
      $ limit $ evs_arg)

(* ---------- top / metrics (vsmon surfacing) ---------- *)

module Series = Vs_obs.Series
module Stall = Vs_obs.Stall
module Openmetrics = Vs_obs.Openmetrics
module Bench_diff = Vs_obs.Bench_diff

let interval_arg =
  Arg.(
    value
    & opt float Series.default_interval
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:"Scrape window length in simulated seconds.")

(* Run a seed campaign or corpus repro with a vsmon series tapping the
   recorder, and close the final window at the last recorded timestamp.
   Shared by `top` and `metrics`. *)
(* Full recording level so the series sees data-path traffic too (net.sends
   and friends are Full-only events); the level only widens what gets
   recorded — it draws nothing from the RNG, so seeded runs stay aligned
   with every other subcommand. *)
let run_with_series ~spec ~interval =
  let obs = Recorder.create ~level:Recorder.Full () in
  let series = Series.create ~interval () in
  let (_ : Recorder.sink_handle) =
    Recorder.add_sink obs (Series.observe series)
  in
  let outcome = Campaign.run ~obs spec in
  let last_time =
    match List.rev (Recorder.tail ~limit:1 obs) with
    | e :: _ -> e.Recorder.time
    | [] -> 0.
  in
  Series.finish series ~now:last_time;
  (series, obs, outcome)

let top_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON instead of tables.")
  in
  let run seed nodes evs replay interval json =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    let series, obs, _outcome = run_with_series ~spec ~interval in
    let attrs = Stall.of_entries (Recorder.entries obs) in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("series", Series.to_json series);
                ("stall", Stall.to_json ~interval attrs);
              ]))
    else begin
      Printf.printf "%s\n" (Campaign.describe spec);
      Vs_stats.Table.print (Series.to_table series);
      Vs_stats.Table.print (Stall.to_table ~interval attrs)
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Continuous telemetry for a seed campaign or corpus repro: \
          per-window protocol activity and cost percentiles (the vsmon \
          series), plus the flush-stall attribution splitting each \
          install's latency into propose-wait / flush-ack-wait / \
          stability-wait.")
    Term.(
      const run $ seed_arg $ nodes_arg $ evs_arg $ replay_arg $ interval_arg
      $ json)

let metrics_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("openmetrics", `Openmetrics); ("json", `Json) ])
          `Openmetrics
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,openmetrics) (Prometheus text exposition) \
             or $(b,json).")
  in
  let run seed nodes evs replay interval format =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    let series, _obs, _outcome = run_with_series ~spec ~interval in
    let m = Series.metrics series in
    match format with
    | `Openmetrics -> print_string (Openmetrics.of_metrics m)
    | `Json -> print_endline (Json.to_string (Metrics.to_json m))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a seed campaign or corpus repro and expose the end-of-run \
          metrics registry — counters, gauges, HDR histograms — as \
          deterministic OpenMetrics text or canonical JSON.")
    Term.(
      const run $ seed_arg $ nodes_arg $ evs_arg $ replay_arg $ interval_arg
      $ format)

(* ---------- path / diff-runs (vspath surfacing) ---------- *)

module Causal = Vs_obs.Causal
module Critpath = Vs_obs.Critpath
module Flame = Vs_obs.Flame
module Rundiff = Vs_obs.Rundiff

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* Full recording: the causal DAG wants the per-message traffic. *)
let record_run spec =
  let obs = Recorder.create ~level:Recorder.Full () in
  let (_ : Campaign.outcome) = Campaign.run ~obs spec in
  Recorder.entries obs

let path_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON instead of tables.")
  in
  let flame =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Also write the folded-stack export (flamegraph.pl input) to \
             $(docv).")
  in
  let run seed nodes evs replay json flame =
    let spec = spec_of ~seed ~nodes ~evs ~replay in
    let entries = record_run spec in
    let dag = Causal.of_entries entries in
    (match Causal.validate dag with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "causal DAG validation failed: %s\n" msg;
        exit 2);
    let cp = Critpath.of_dag dag in
    (match flame with
    | Some file -> write_file file (Flame.folded cp)
    | None -> ());
    let st = Causal.stats dag in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ( "dag",
                  Json.Obj
                    [
                      ("nodes", Json.Int st.Causal.c_nodes);
                      ("program_edges", Json.Int st.Causal.c_program_edges);
                      ("message_edges", Json.Int st.Causal.c_message_edges);
                      ("barrier_edges", Json.Int st.Causal.c_barrier_edges);
                      ("orphan_recvs", Json.Int st.Causal.c_orphan_recvs);
                    ] );
                ("critpath", Critpath.to_json cp);
              ]))
    else begin
      Printf.printf "%s\n" (Campaign.describe spec);
      Printf.printf
        "causal DAG: %d nodes, %d program + %d message + %d barrier edges, \
         %d orphan recvs\n\n"
        st.Causal.c_nodes st.Causal.c_program_edges st.Causal.c_message_edges
        st.Causal.c_barrier_edges st.Causal.c_orphan_recvs;
      Vs_stats.Table.print (Critpath.to_table cp);
      let o = cp.Critpath.ops in
      Printf.printf
        "applied ops: %d walked, %d retransmit-delayed, slowest %s \
         (%.6f s), mean path %.6f s\n"
        o.Critpath.o_ops o.Critpath.o_retransmit_delayed
        (match o.Critpath.o_slowest with
        | Some (m, _) -> Event.msg_to_string m
        | None -> "-")
        o.Critpath.o_latency_max
        (if o.Critpath.o_ops = 0 then 0.
         else o.Critpath.o_latency_total /. float_of_int o.Critpath.o_ops);
      match cp.Critpath.straggler with
      | Some (p, c) ->
          Printf.printf "cluster straggler: %s (%.4f s charged on install \
                         paths)\n"
            (Event.proc_to_string p) c
      | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "path"
       ~doc:
         "Causal critical-path profile of a seed campaign or corpus repro: \
          build the happened-before DAG from a full recording, decompose \
          every view installation's latency into typed segments \
          (local-compute, network-flight, retransmit-wait, flush-ack-wait, \
          stability-wait, suspect-timeout) attributed to processes and \
          links, and name the per-view straggler.  $(b,--flame) writes \
          folded stacks for flamegraph rendering.")
    Term.(
      const run $ seed_arg $ nodes_arg $ evs_arg $ replay_arg $ json $ flame)

(* Each side of a diff is either an integer seed (generated campaign) or a
   path to a corpus repro artifact. *)
let side_spec ~nodes ~evs arg =
  match int_of_string_opt arg with
  | Some seed -> spec_of ~seed ~nodes ~evs ~replay:None
  | None -> spec_of ~seed:0 ~nodes ~evs ~replay:(Some arg)

let diff_runs_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A"
          ~doc:"Baseline run: an integer seed or a repro artifact path.")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B"
          ~doc:"Candidate run: an integer seed or a repro artifact path.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON instead of text.")
  in
  let run a b nodes evs json =
    let spec_a = side_spec ~nodes ~evs a and spec_b = side_spec ~nodes ~evs b in
    let ra = record_run spec_a and rb = record_run spec_b in
    let d = Rundiff.diff ~a:ra ~b:rb in
    if json then print_endline (Json.to_string (Rundiff.to_json d))
    else begin
      Printf.printf "A: %s\nB: %s\n\n" (Campaign.describe spec_a)
        (Campaign.describe spec_b);
      print_string (Rundiff.to_text d)
    end
  in
  Cmd.v
    (Cmd.info "diff-runs"
       ~doc:
         "Structurally diff two recorded runs (seeds or corpus repros): \
          align on the view graph and (origin, seq) message lineage, report \
          the first causal divergence — naming the corrupted field when a \
          transient-corruption event is where they part — and the \
          per-phase latency deltas.")
    Term.(const run $ a_arg $ b_arg $ nodes_arg $ evs_arg $ json)

(* ---------- bench diff ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_bench path =
  match read_file path with
  | exception Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 2
  | text -> (
      match Json.of_string text with
      | Ok doc -> doc
      | Error msg ->
          Printf.eprintf "cannot parse %s: %s\n" path msg;
          exit 2)

let bench_diff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline BENCH_*.json artifact.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate BENCH_*.json artifact.")
  in
  let threshold =
    Arg.(
      value
      & opt float Bench_diff.default_threshold
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Relative tolerance for measured keys (wall-clock keys get 2.5x \
             this); exact keys ignore it.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Show unchanged keys too, not only diffs.")
  in
  let run old_path new_path threshold all =
    let old_doc = load_bench old_path and new_doc = load_bench new_path in
    let rows = Bench_diff.diff ~threshold ~old_doc ~new_doc () in
    Vs_stats.Table.print (Bench_diff.to_table ~all rows);
    print_endline (Bench_diff.summary rows);
    exit (Bench_diff.exit_code rows)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_*.json artifacts key by key with per-key-class \
          thresholds; exits non-zero on any regression (the CI gate).")
    Term.(const run $ old_arg $ new_arg $ threshold $ all)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Operations on the machine-readable bench artifacts.")
    [ bench_diff_cmd ]

(* ---------- lint ---------- *)

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON report (same as --format json).")
  in
  let format =
    Arg.(
      value
      & opt (some (enum [ ("human", Vs_lint.Driver.Human); ("json", Vs_lint.Driver.Json); ("sarif", Vs_lint.Driver.Sarif) ])) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Report format: $(b,human) (default), $(b,json), or $(b,sarif) (SARIF 2.1.0).")
  in
  let chains =
    Arg.(
      value & flag
      & info [ "chains" ]
          ~doc:"Also print each function's effect provenance (whole-program pass).")
  in
  let changed =
    Arg.(
      value & flag
      & info [ "changed" ]
          ~doc:
            "Only report findings in files changed per git diff --name-only \
             HEAD; the analysis itself stays whole-program.")
  in
  let rules =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"ID"
          ~doc:
            "Only report this rule (repeatable): D1 D2 D3 D4 D5 C1 A1 S1 S2 \
             B1.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"ID"
          ~doc:"Print the rule's rationale and exit.")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint; defaults to lib bin bench \
             examples.")
  in
  let run json format chains changed rules explain paths =
    let code =
      match explain with
      | Some id -> Vs_lint.Driver.explain id
      | None ->
          let format =
            match format with
            | Some f -> f
            | None -> if json then Vs_lint.Driver.Json else Vs_lint.Driver.Human
          in
          Vs_lint.Driver.run ~format ~rules ~chains ~changed ~paths ()
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Whole-program lint: per-site determinism rules (D1-D5) plus the \
          call-graph passes (effect certification C1, alloc-free proof A1, \
          stale suppressions S2, bench contract B1); shares its driver with \
          the standalone vslint executable and the @lint dune alias.")
    Term.(const run $ json $ format $ chains $ changed $ rules $ explain $ paths)

(* ---------- throughput ---------- *)

let throughput_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (CI-sized).")
  in
  let scale =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Rerun claim C1 with two k=500 partitions (a 1000-process \
             simulation: several minutes of wall time).")
  in
  let run quick scale =
    let module TP = Vs_exp.Exp_throughput in
    (* vslint: allow D1 — wall-clock is the quantity being measured; CLI output only *)
    let clock () = Unix.gettimeofday () in
    let kv = TP.run_arms ~clock ~quick () in
    Vs_stats.Table.print (TP.throughput_table kv);
    let dp = TP.run_data_plane ~clock ~quick () in
    Vs_stats.Table.print (TP.data_plane_table dp);
    (match TP.dp_speedup dp with
    | Some s ->
        Printf.printf
          "data-plane sustained ops/sec, batched+pipelined vs unbatched: \
           %.1fx\n\n"
          s
    | None -> ());
    let k = if scale then 500 else if quick then 25 else 100 in
    Vs_stats.Table.print (TP.merge_table [ TP.merge_at_scale ~k ])
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Sustained-throughput profile: open-loop load on the KV store and \
          on the bare data plane, batched+pipelined vs unbatched, with \
          wall-clock ops/sec — the interactive twin of `bench throughput`.")
    Term.(const run $ quick $ scale)

let () =
  let info =
    Cmd.info "vscli" ~version:"1.0.0"
      ~doc:
        "Enriched view synchrony simulator — reproduction of 'On \
         Programming with View Synchrony' (ICDCS 1996)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd; campaign_cmd; check_cmd; explain_cmd; query_cmd;
            trace_cmd; top_cmd; metrics_cmd; path_cmd; diff_runs_cmd;
            bench_cmd; lint_cmd; throughput_cmd;
          ]))
