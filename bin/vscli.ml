(* vscli — command-line driver for the view-synchrony simulator.

   Subcommands:
     experiment   regenerate the paper's tables (all or selected)
     campaign     run a randomized fault campaign and check the properties
     check        sweep seeds through the schedule explorer; shrink failures
     trace        run a campaign and dump the annotated event trace
     lint         run the vslint determinism checks (same driver as vslint) *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Recorder = Vs_obs.Recorder
module Event = Vs_obs.Event
module Export = Vs_obs.Export
module Metrics = Vs_obs.Metrics
module Faults = Vs_harness.Faults
module Oracle = Vs_harness.Oracle
module Vc = Vs_harness.Vsync_cluster
module Ec = Vs_harness.Evs_cluster
module Campaign = Vs_check.Campaign
module Explorer = Vs_check.Explorer
module Shrink = Vs_check.Shrink
module Repro = Vs_check.Repro
open Cmdliner

(* Shared event-tail printer: a failing run's last events, rendered like the
   classic trace, indented under the failure report. *)
let print_event_tail ?(limit = 30) ~indent recorder =
  let entries = Recorder.tail ~limit recorder in
  if entries <> [] then begin
    Printf.printf "%slast %d event(s):\n" indent (List.length entries);
    List.iter
      (fun (e : Recorder.entry) ->
        Printf.printf "%s  [%10.4f] %-8s %s\n" indent e.Recorder.time
          (Event.component e.Recorder.event)
          (Event.render e.Recorder.event))
      entries
  end

(* ---------- experiment ---------- *)

let experiments =
  [
    ("e1", Vs_exp.Exp_modes.tables);
    ("e2e3", Vs_exp.Exp_figures.tables);
    ("e4", Vs_exp.Exp_join.tables);
    ("e5", Vs_exp.Exp_classify.tables);
    ("e6", Vs_exp.Exp_transfer.tables);
    ("e7", Vs_exp.Exp_file.tables);
    ("e8", Vs_exp.Exp_db.tables);
    ("e9e10", Vs_exp.Exp_overhead.tables);
    ("e11", Vs_exp.Exp_loss.tables);
  ]

let experiment_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (CI-sized).")
  in
  let names =
    Arg.(
      value
      & pos_all (enum (List.map (fun (n, _) -> (n, n)) experiments)) []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiments to run (e1 e2e3 e4 e5 e6 e7 e8 e9e10 e11); all by \
             default.")
  in
  let run quick names =
    let selected =
      match names with
      | [] -> experiments
      | names -> List.filter (fun (n, _) -> List.mem n names) experiments
    in
    List.iter
      (fun (name, tables) ->
        Printf.printf "### %s\n\n%!" (String.uppercase_ascii name);
        let t : ?quick:bool -> unit -> Vs_stats.Table.t list = tables in
        List.iter Vs_stats.Table.print (t ~quick ()))
      selected
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation tables.")
    Term.(const run $ quick $ names)

(* ---------- campaign ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let nodes_arg =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let duration_arg =
  Arg.(
    value & opt float 6.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Fault-injection window.")

let campaign_cmd =
  let evs =
    Arg.(
      value & flag
      & info [ "evs" ]
          ~doc:"Run enriched view synchrony (checks Properties 6.1/6.3 too).")
  in
  let run seed nodes duration evs =
    let seed64 = Int64.of_int seed in
    let node_list = List.init nodes (fun i -> i) in
    let script rng =
      Faults.random_script rng ~nodes:node_list ~start:1.0 ~duration
        ~mean_gap:0.5 ()
    in
    let rng = Vs_util.Rng.create (Int64.add seed64 999L) in
    let obs = Recorder.create () in
    let errors, summary =
      if evs then begin
        let c = Ec.create ~seed:seed64 ~obs ~n:nodes () in
        Ec.run_script c (script rng);
        Ec.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Ec.run c ~until:(duration +. 4.0);
        ( Oracle.check_all (Ec.oracle c)
          @ Ec.check_total_order c @ Ec.check_structure c,
          Printf.sprintf
            "deliveries=%d installs=%d distinct-views=%d e-view-changes=%d"
            (Oracle.total_deliveries (Ec.oracle c))
            (Oracle.total_installs (Ec.oracle c))
            (Oracle.distinct_views (Ec.oracle c))
            (Ec.eview_changes_total c) )
      end
      else begin
        let c = Vc.create ~seed:seed64 ~obs ~n:nodes () in
        Vc.run_script c (script rng);
        Vc.pump_traffic c ~start:0.5 ~until:(duration +. 0.5) ~mean_gap:0.03;
        Vc.run c ~until:(duration +. 4.0);
        ( Oracle.check_all (Vc.oracle c),
          Printf.sprintf "deliveries=%d installs=%d distinct-views=%d stable=%b"
            (Oracle.total_deliveries (Vc.oracle c))
            (Oracle.total_installs (Vc.oracle c))
            (Oracle.distinct_views (Vc.oracle c))
            (Vc.stable_view_reached c) )
      end
    in
    Printf.printf "campaign: seed=%d nodes=%d duration=%.1fs %s\n" seed nodes
      duration
      (if evs then "(EVS)" else "(plain VS)");
    Printf.printf "run: %s\n" summary;
    if errors = [] then
      print_endline "properties: all hold (agreement, uniqueness, integrity, order)"
    else begin
      Printf.printf "VIOLATIONS (%d):\n" (List.length errors);
      List.iter (fun e -> print_endline ("  " ^ e)) errors;
      print_event_tail ~indent:"  " obs;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a randomized fault campaign and check the view-synchrony \
          properties against the oracle.")
    Term.(const run $ seed_arg $ nodes_arg $ duration_arg $ evs)

(* ---------- check ---------- *)

let check_cmd =
  let seeds =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let start_seed =
    Arg.(
      value & opt int 1
      & info [ "start-seed" ] ~docv:"S" ~doc:"First seed of the sweep.")
  in
  let check_nodes =
    Arg.(
      value & opt int 5
      & info [ "nodes" ] ~docv:"K" ~doc:"Nodes per campaign.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shorter churn windows (CI-sized campaigns).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let corpus =
    Arg.(
      value
      & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory where shrunk repro artifacts are written.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one repro artifact instead of sweeping seeds; exits \
             non-zero if the replay still violates a property.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-campaign progress.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the derived metrics summary (counters, histograms).")
  in
  let replay_file ~metrics file =
    match Repro.load file with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        exit 2
    | Ok spec ->
        Printf.printf "replay %s\n  %s\n" file (Campaign.describe spec);
        let obs = Recorder.create ~level:Recorder.Protocol () in
        let outcome = Campaign.run ~obs spec in
        Printf.printf
          "  deliveries=%d installs=%d distinct-views=%d events=%d stable=%b\n"
          outcome.Campaign.deliveries outcome.Campaign.installs
          outcome.Campaign.distinct_views outcome.Campaign.events
          outcome.Campaign.stable;
        if metrics then
          print_string (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)));
        if outcome.Campaign.violations = [] then
          print_endline "  properties: all hold"
        else begin
          Printf.printf "  VIOLATIONS (%d):\n"
            (List.length outcome.Campaign.violations);
          List.iter
            (fun e -> print_endline ("    " ^ e))
            outcome.Campaign.violations;
          print_event_tail ~indent:"  " obs;
          exit 1
        end
  in
  let sweep seeds start_seed nodes quick no_shrink corpus verbose metrics =
    let progress =
      if verbose then
        Some
          (fun ~seed spec (outcome : Campaign.outcome) ->
            Printf.printf "seed %d %s: %s\n%!" seed
              (Campaign.describe spec)
              (if outcome.Campaign.violations = [] then "ok"
               else
                 Printf.sprintf "%d violation(s)"
                   (List.length outcome.Campaign.violations)))
      else None
    in
    let report =
      Explorer.explore ~start_seed ~shrink:(not no_shrink) ?progress ~seeds
        ~nodes ~quick ()
    in
    Printf.printf
      "explored %d seeds (%d campaigns, both protocols): %d events, %d \
       deliveries, %d installs\n"
      report.Explorer.seeds report.Explorer.campaigns
      report.Explorer.total_events report.Explorer.total_deliveries
      report.Explorer.total_installs;
    if report.Explorer.failures = [] then begin
      print_endline "no violations found";
      if metrics then begin
        (* Representative metrics: re-run the first seed's VS campaign with
           recording on. *)
        let spec =
          Campaign.generate ~protocol:Vs_harness.Driver.Vsync ~seed:start_seed
            ~nodes ~quick ()
        in
        let obs = Recorder.create ~level:Recorder.Protocol () in
        ignore (Campaign.run ~obs spec);
        Printf.printf "metrics for seed %d (VS):\n" start_seed;
        print_string
          (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)))
      end
    end
    else begin
      List.iter
        (fun (f : Explorer.failure) ->
          Printf.printf "\nFAILURE at seed %d:\n  original: %s\n" f.Explorer.f_seed
            (Campaign.describe f.Explorer.f_spec);
          List.iter
            (fun e -> print_endline ("    " ^ e))
            f.Explorer.f_outcome.Campaign.violations;
          if not no_shrink then begin
            Printf.printf "  shrunk (%d/%d candidates accepted): %s\n"
              f.Explorer.f_shrink_stats.Shrink.accepted
              f.Explorer.f_shrink_stats.Shrink.attempts
              (Campaign.describe f.Explorer.f_shrunk);
            let path = Repro.save ~dir:corpus f.Explorer.f_shrunk in
            Printf.printf "  repro written to %s\n" path;
            (* Replay the shrunk spec with recording on so the failure is
               self-explaining, not just reproducible. *)
            let obs = Recorder.create ~level:Recorder.Protocol () in
            ignore (Campaign.run ~obs f.Explorer.f_shrunk);
            print_event_tail ~indent:"  " obs;
            if metrics then
              print_string
                (Metrics.to_text (Metrics.of_entries (Recorder.entries obs)))
          end)
        report.Explorer.failures;
      exit 1
    end
  in
  let run seeds start_seed nodes quick no_shrink corpus replay verbose metrics =
    match replay with
    | Some file -> replay_file ~metrics file
    | None -> sweep seeds start_seed nodes quick no_shrink corpus verbose metrics
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Sweep seeds through the fault-schedule explorer (random churn x \
          loss/dup/jitter x traffic, over both protocols), shrink any \
          failure to a minimal repro artifact, or replay one artifact.")
    Term.(
      const run $ seeds $ start_seed $ check_nodes $ quick $ no_shrink $ corpus
      $ replay $ verbose $ metrics)

(* ---------- trace ---------- *)

let trace_cmd =
  let components =
    Arg.(
      value
      & opt (list string) []
      & info [ "components" ] ~docv:"LIST"
          ~doc:
            "Restrict text output to these components (vsync, evs, mode, fd, \
             gms, app, net, faults); empty = all.")
  in
  let limit =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum text entries printed.")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("text", `Text); ("jsonl", `Jsonl); ("chrome", `Chrome);
               ("summary", `Summary);
             ])
          `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (classic annotated trace), $(b,jsonl) \
             (one JSON event per line), $(b,chrome) (trace_event JSON for \
             Perfetto / chrome://tracing), $(b,summary) (derived metrics \
             tables).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Trace a corpus repro artifact instead of a generated seed \
             campaign.")
  in
  let evs =
    Arg.(
      value & flag
      & info [ "evs" ]
          ~doc:"Generate an EVS campaign from the seed (default plain VS).")
  in
  let run seed nodes format replay components limit evs =
    let spec =
      match replay with
      | Some file -> (
          match Repro.load file with
          | Error msg ->
              Printf.eprintf "cannot load %s: %s\n" file msg;
              exit 2
          | Ok spec -> spec)
      | None ->
          let protocol =
            if evs then Vs_harness.Driver.Evs else Vs_harness.Driver.Vsync
          in
          Campaign.generate ~protocol ~seed ~nodes ~quick:false ()
    in
    (* Full level: the exporters want the per-message traffic too. *)
    let obs = Recorder.create ~level:Recorder.Full () in
    let outcome = Campaign.run ~obs spec in
    let entries = Recorder.entries obs in
    (match format with
    | `Jsonl -> print_string (Export.jsonl_of_entries entries)
    | `Chrome -> print_endline (Export.chrome_of_entries entries)
    | `Summary ->
        Printf.printf "%s\n" (Campaign.describe spec);
        Printf.printf
          "deliveries=%d installs=%d distinct-views=%d events=%d stable=%b\n\n"
          outcome.Campaign.deliveries outcome.Campaign.installs
          outcome.Campaign.distinct_views outcome.Campaign.events
          outcome.Campaign.stable;
        print_string (Metrics.to_text (Metrics.of_entries entries))
    | `Text ->
        let wanted (e : Recorder.entry) =
          match components with
          | [] -> true
          | cs -> List.mem (Event.component e.Recorder.event) cs
        in
        let shown = List.filter wanted entries in
        List.iteri
          (fun i (e : Recorder.entry) ->
            if i < limit then
              Printf.printf "[%10.4f] %-8s %s\n" e.Recorder.time
                (Event.component e.Recorder.event)
                (Event.render e.Recorder.event))
          shown;
        if List.length shown > limit then
          Printf.printf "... (%d more entries)\n" (List.length shown - limit))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a seed campaign or corpus repro with full event recording \
          and export the typed event stream (text, JSONL, Chrome trace_event \
          for Perfetto, or a metrics summary).")
    Term.(
      const run $ seed_arg $ nodes_arg $ format $ replay $ components $ limit
      $ evs)

(* ---------- lint ---------- *)

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.")
  in
  let rules =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"ID"
          ~doc:"Only report this rule (repeatable): D1 D2 D3 D4 D5 S1.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"ID"
          ~doc:"Print the rule's rationale and exit.")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint; defaults to lib bin bench \
             examples.")
  in
  let run json rules explain paths =
    let code =
      match explain with
      | Some id -> Vs_lint.Driver.explain id
      | None ->
          let format =
            if json then Vs_lint.Driver.Json else Vs_lint.Driver.Human
          in
          Vs_lint.Driver.run ~format ~rules ~paths ()
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint the tree for determinism and protocol-hygiene hazards \
          (rules D1-D5); shares its driver with the standalone vslint \
          executable and the @lint dune alias.")
    Term.(const run $ json $ rules $ explain $ paths)

let () =
  let info =
    Cmd.info "vscli" ~version:"1.0.0"
      ~doc:
        "Enriched view synchrony simulator — reproduction of 'On \
         Programming with View Synchrony' (ICDCS 1996)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ experiment_cmd; campaign_cmd; check_cmd; trace_cmd; lint_cmd ]))
