(* vslint — determinism & protocol-hygiene linter for the VS stack.
   All logic lives in Vs_lint.Driver so [vscli lint] shares it. *)

let () = exit (Vs_lint.Driver.main Sys.argv)
