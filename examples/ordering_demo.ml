(* Delivery orders on view-synchronous multicast: FIFO, causal and total.

   Three processes exchange messages over a network with a wide delay
   spread (1-80 ms), which makes ordering differences visible:

   - FIFO: per-sender order only — two senders' messages interleave
     differently at different receivers;
   - causal: a reply never overtakes the message it answers, even across
     senders;
   - total: everyone delivers the same global sequence.

   Run with:  dune exec examples/ordering_demo.exe *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Endpoint = Vs_vsync.Endpoint

type msg = { label : string; reply_to : string option }

let find_exn what tbl node =
  match Hashtbl.find_opt tbl node with
  | Some v -> v
  | None -> failwith (Printf.sprintf "ordering_demo: no %s for node %d" what node)

let run_scenario ~title ~order ~script =
  Printf.printf "\n== %s ==\n" title;
  let sim = Sim.create ~seed:7L () in
  let net_config =
    { Net.default_config with Net.delay_min = 0.001; delay_max = 0.080 }
  in
  let net = Net.create sim net_config in
  let universe = [ 0; 1; 2 ] in
  let logs = Hashtbl.create 8 in
  let endpoints = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let me = Proc_id.initial node in
      let log = ref [] in
      Hashtbl.replace logs node log;
      let callbacks =
        {
          Endpoint.on_view = (fun _ -> ());
          on_message =
            (fun ~sender:_ m ->
              log := m.label :: !log;
              (* Causal scenario: answering creates a dependency. *)
              match m.reply_to with
              | None when m.label = "question" ->
                  let ep = find_exn "endpoint" endpoints node in
                  if node = 2 then
                    Endpoint.multicast ep ~order
                      { label = "answer"; reply_to = Some m.label }
              | _ -> ());
        }
      in
      Hashtbl.replace endpoints node
        (Endpoint.create sim net ~me ~universe
           ~config:Endpoint.default_config ~callbacks))
    universe;
  ignore (Sim.run ~until:1.0 sim);
  script sim (find_exn "endpoint" endpoints 0) (find_exn "endpoint" endpoints 1);
  ignore (Sim.run ~until:3.0 sim);
  List.iter
    (fun node ->
      Printf.printf "   p%d delivered: %s\n" node
        (String.concat " < " (List.rev !(find_exn "log" logs node))))
    universe

let () =
  (* FIFO: two independent senders; receivers may interleave differently. *)
  run_scenario ~title:"FIFO (per-sender order only)" ~order:Endpoint.Fifo
    ~script:(fun _sim e0 e1 ->
      for i = 1 to 3 do
        Endpoint.multicast e0 { label = Printf.sprintf "a%d" i; reply_to = None };
        Endpoint.multicast e1 { label = Printf.sprintf "b%d" i; reply_to = None }
      done);

  (* Causal: p0 asks, p2 answers on delivery; nobody may see the answer
     before the question, despite the delay spread. *)
  run_scenario ~title:"Causal (answers never overtake questions)"
    ~order:Endpoint.Causal
    ~script:(fun _sim e0 _e1 ->
      Endpoint.multicast e0 ~order:Endpoint.Causal
        { label = "question"; reply_to = None });

  (* Total: concurrent updates, one agreed sequence everywhere. *)
  run_scenario ~title:"Total (one agreed sequence)" ~order:Endpoint.Total
    ~script:(fun _sim e0 e1 ->
      for i = 1 to 3 do
        Endpoint.multicast e0 ~order:Endpoint.Total
          { label = Printf.sprintf "x%d" i; reply_to = None };
        Endpoint.multicast e1 ~order:Endpoint.Total
          { label = Printf.sprintf "y%d" i; reply_to = None }
      done);
  print_endline "\ndone."
