(* The paper's second example group object (Section 3): a fully replicated
   database whose look-up queries are evaluated in parallel, each member
   scanning only its assigned key range.

   The responsibility table is shared global state: every view change
   forces Settling (Reduced mode does not exist for this object) and the
   coordinator redistributes the key space before queries resume.  The demo
   crashes a member mid-stream and shows the ranges being rebalanced and a
   query still returning exactly the matching keys.  Run with:

     dune exec examples/parallel_db_demo.exe *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Pdb = Vs_apps.Parallel_db
module Endpoint = Vs_vsync.Endpoint

let keyspace = 120

let show_ranges sim dbs heading =
  Printf.printf "\n-- %s (t = %.2fs)\n" heading (Sim.now sim);
  List.iter
    (fun db ->
      if Pdb.is_alive db then
        let range =
          match Pdb.my_range db with
          | Some (lo, hi) -> Printf.sprintf "[%3d, %3d)" lo hi
          | None -> "(no table)"
        in
        Printf.printf "   %s  mode=%s  range=%s\n"
          (Proc_id.to_string (Pdb.me db))
          (Mode.to_string (Pdb.mode db))
          range)
    dbs

let lookup_and_report sim db ~needle =
  match Pdb.lookup db ~needle with
  | Error `Not_serving ->
      Printf.printf "   lookup(%d) refused: issuer is settling\n" needle
  | Ok qid -> (
      ignore (Sim.run ~until:(Sim.now sim +. 0.5) sim);
      match Pdb.result_of db qid with
      | Ok hits ->
          Printf.printf "   lookup(value = %d) -> keys [%s]\n" needle
            (String.concat "; " (List.map string_of_int hits))
      | Error `Pending ->
          Printf.printf "   lookup(%d) still pending (incomplete coverage)\n"
            needle)

let () =
  let sim = Sim.create ~seed:42L () in
  let net = Pdb.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3 ] in
  let dbs =
    List.map
      (fun node ->
        Pdb.create sim net ~me:(Proc_id.initial node) ~universe
          ~config:Endpoint.default_config ~keyspace ())
      universe
  in
  let first_db =
    match dbs with
    | db :: _ -> db
    | [] -> failwith "parallel_db_demo: empty universe"
  in
  ignore (Sim.run ~until:1.0 sim);
  show_ranges sim dbs "four members, key space split four ways";

  print_endline "";
  lookup_and_report sim first_db ~needle:48;

  print_endline "\n   >>> p3 crashes: the table is invalidated, everyone settles,";
  print_endline "   >>> the coordinator redistributes the key space";
  Pdb.kill (List.nth dbs 3);
  ignore (Sim.run ~until:3.0 sim);
  show_ranges sim dbs "three survivors cover the whole key space again";

  print_endline "";
  lookup_and_report sim first_db ~needle:48;
  print_endline
    "\n   (same answer as before the crash: no key searched twice or missed)";

  print_endline "\ndone."
