(* Enriched views at work: watching subviews and sv-sets through a
   partition and merge, and using them to resolve state merging.

   The demo drives a key-value store under the Section 6.2 methodology and
   prints the enriched-view structure at every step: singleton subviews on
   join, application merges after settling, fragments staying apart across
   a partition heal, and the two merge policies (last-writer-wins vs
   primary-subview) resolving the divergence differently.  Run with:

     dune exec examples/partition_merge_demo.exe *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Go = Vs_apps.Group_object
module Kv = Vs_apps.Kv_store
module Endpoint = Vs_vsync.Endpoint

let show_structure sim kvs heading =
  Printf.printf "\n-- %s (t = %.2fs)\n" heading (Sim.now sim);
  List.iter
    (fun kv ->
      if Kv.is_alive kv then
        Printf.printf "   %s sees %s\n"
          (Proc_id.to_string (Kv.me kv))
          (E_view.to_string (Go.eview (Kv.obj kv))))
    kvs

let show_key kvs key =
  List.iter
    (fun kv ->
      if Kv.is_alive kv then
        Printf.printf "   %s: %s = %s\n"
          (Proc_id.to_string (Kv.me kv))
          key
          (match Kv.get kv ~key with Some (v, _) -> v | None -> "(absent)"))
    kvs

let scenario ~policy ~policy_name =
  Printf.printf "\n==== merge policy: %s ====\n" policy_name;
  let sim = Sim.create ~seed:77L () in
  let net = Kv.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3; 4 ] in
  let kvs =
    List.map
      (fun node ->
        Kv.create sim net ~me:(Proc_id.initial node) ~universe
          ~config:Endpoint.default_config ~policy ())
      universe
  in
  ignore (Sim.run ~until:1.5 sim);
  show_structure sim kvs
    "after boot & settling: the app merged everyone into one subview";

  let first_kv =
    match kvs with
    | kv :: _ -> kv
    | [] -> failwith "partition_merge_demo: empty universe"
  in
  ignore (Kv.put first_kv ~key:"motto" ~value:"one group");
  ignore (Sim.run ~until:2.0 sim);

  print_endline "\n   >>> partition {p0,p1} | {p2,p3,p4}; both sides keep writing";
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  ignore (Sim.run ~until:3.0 sim);
  ignore (Kv.put (List.nth kvs 0) ~key:"motto" ~value:"minority rules");
  ignore (Kv.put (List.nth kvs 2) ~key:"motto" ~value:"majority rules");
  ignore (Sim.run ~until:3.5 sim);
  show_structure sim kvs "during the partition: one shrunken subview per side";
  print_endline "";
  show_key kvs "motto";

  print_endline
    "\n   >>> heal: the merged view exposes the two fragments as distinct\n\
     \   >>> subviews (clusters) — the state-merging problem, classified\n\
     \   >>> locally and resolved by the policy";
  Net.heal net;
  ignore (Sim.run ~until:4.0 sim);
  ignore
    (Sim.run
       ~until:
         ((* give settling + app merges time to complete *)
          Sim.now sim +. 1.5)
       sim);
  show_structure sim kvs "after merge & reconcile";
  print_endline "";
  show_key kvs "motto"

let () =
  scenario ~policy:Kv.Lww ~policy_name:"last-writer-wins";
  scenario ~policy:Kv.Primary_subview
    ~policy_name:"primary subview (largest cluster wins wholesale)";
  print_endline "\ndone."
