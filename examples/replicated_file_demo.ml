(* The paper's first example group object (Section 3): a quorum-voted
   replicated file.

   Five replicas, one vote each.  A quorum view is Normal mode (reads and
   writes); a minority view is Reduced mode (stale reads only); and the
   demo ends with a total failure whose recovery solves the state-creation
   problem from the persisted replicas.  Run with:

     dune exec examples/replicated_file_demo.exe *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Store = Vs_store.Store
module Rf = Vs_apps.Replicated_file
module Endpoint = Vs_vsync.Endpoint

let show sim files heading =
  Printf.printf "\n-- %s (t = %.2fs)\n" heading (Sim.now sim);
  List.iter
    (fun f ->
      if Rf.is_alive f then
        let state =
          match Rf.read f with
          | Ok (content, version) -> Printf.sprintf "%S v%d" content version
          | Error `Not_serving -> "(settling)"
        in
        Printf.printf "   %s  mode=%s  %s\n"
          (Proc_id.to_string (Rf.me f))
          (Mode.to_string (Rf.mode f))
          state)
    files

let attempt_write f content =
  match Rf.write f content with
  | Ok () ->
      Printf.printf "   %s.write %S -> accepted\n" (Proc_id.to_string (Rf.me f)) content
  | Error `Not_serving ->
      Printf.printf "   %s.write %S -> refused (no quorum)\n"
        (Proc_id.to_string (Rf.me f))
        content

let () =
  let sim = Sim.create ~seed:1996L () in
  let net = Rf.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3; 4 ] in
  let store = Store.create () in
  let file = Rf.uniform_votes ~universe in
  let mk node inc =
    Rf.create sim net ~me:(Proc_id.make ~node ~inc) ~universe
      ~config:Endpoint.default_config ~file ~store ()
  in
  let files = List.map (fun node -> mk node 0) universe in
  let first_file =
    match files with
    | f :: _ -> f
    | [] -> failwith "replicated_file_demo: empty universe"
  in
  ignore (Sim.run ~until:1.0 sim);
  show sim files "five replicas assembled: quorum, all Normal";

  print_endline "";
  attempt_write first_file "release-1";
  ignore (Sim.run ~until:1.5 sim);
  show sim files "one-copy semantics: the write reached every replica";

  (* Partition: only the majority side keeps writing; the minority keeps
     serving (stale) reads — the paper's R-mode. *)
  print_endline "\n   >>> partition {p0,p1} | {p2,p3,p4}";
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  ignore (Sim.run ~until:2.5 sim);
  print_endline "";
  attempt_write first_file "from-minority";
  attempt_write (List.nth files 2) "release-2";
  ignore (Sim.run ~until:3.0 sim);
  show sim files "minority is Reduced (stale reads), majority progressed";

  print_endline "\n   >>> partition heals: state transfer brings the minority up to date";
  Net.heal net;
  ignore (Sim.run ~until:4.5 sim);
  show sim files "everyone converged on release-2";

  (* Total failure: every process crashes; recovery is a state-creation
     problem solved from the persisted replicas. *)
  print_endline "\n   >>> total failure: all five replicas crash";
  List.iter Rf.kill files;
  ignore (Sim.run ~until:5.0 sim);
  print_endline "   >>> all five nodes recover with fresh process identities";
  let recovered = List.map (fun node -> mk node 1) universe in
  ignore (Sim.run ~until:7.0 sim);
  show sim recovered "state recreated from persistent storage";

  print_endline "\ndone."
