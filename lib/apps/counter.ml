module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Evs = Evs_core.Evs
module Endpoint = Vs_vsync.Endpoint

type payload =
  | Inc of int
  | Report of { vid : View.Id.t; value : int; settled : bool }

type ann = { a_settled : bool; a_value : int }

type net = (payload, ann) Evs.net

let payload_size = function Inc _ -> 8 | Report _ -> 24

let make_net sim config =
  Evs.make_net ~payload_size ~ann_size:(fun _ -> 9) sim config

type t = {
  sim : Sim.t;
  mutable obj : (payload, ann) Group_object.t option;
  mutable value : int;
  mutable authoritative : bool;
      (* true once this replica has settled at least once: its value is a
         valid lower bound of the logical counter *)
  (* one in-progress report collection, keyed by the view that started it *)
  mutable pending : (View.Id.t * (Proc_id.t, int * bool) Hashtbl.t) option;
}

let get_obj t = match t.obj with Some o -> o | None -> assert false

let me t = Group_object.me (get_obj t)

let value t = t.value

let mode t = Group_object.mode (get_obj t)

let obj t = get_obj t

let refresh_annotation t =
  Group_object.set_annotation (get_obj t)
    (Some { a_settled = t.authoritative; a_value = t.value })

let increment t ~by =
  if Mode.equal (mode t) Mode.Normal then begin
    Group_object.multicast (get_obj t) ~order:Endpoint.Total (Inc by);
    Ok ()
  end
  else Error `Not_serving

(* The settling protocol: every member reports its value; once reports from
   every member of the view are in, adopt the maximum and reconcile. *)
let maybe_complete t =
  match t.pending with
  | Some (vid, reports) ->
      let obj = get_obj t in
      let ev = Group_object.eview obj in
      let members = Evs_core.E_view.members ev in
      if
        View.Id.equal vid ev.Evs_core.E_view.view.View.id
        && List.for_all (fun m -> Hashtbl.mem reports m) members
      then begin
        let best =
          (* vslint: allow D2 — commutative fold (max/max) *)
          Hashtbl.fold
            (fun _ (v, settled) (best_any, best_settled) ->
              (max v best_any, if settled then max v best_settled else best_settled))
            reports (t.value, min_int)
        in
        let best_any, best_settled = best in
        t.value <- (if best_settled > min_int then best_settled else best_any);
        t.authoritative <- true;
        t.pending <- None;
        Group_object.complete_settling obj;
        refresh_annotation t
      end
  | None -> ()

(* Our own report is recorded on delivery like everyone else's. *)
let handle_settle t _problem _ev =
  let obj = get_obj t in
  Group_object.begin_joint_settling obj;
  let vid = (Group_object.eview obj).Evs_core.E_view.view.View.id in
  t.pending <- Some (vid, Hashtbl.create 8);
  (* FIFO suffices: report collection is a set, and FIFO multicast is
     reliable within the view while total-order requests can race a view
     change. *)
  Group_object.multicast obj (Report { vid; value = t.value; settled = t.authoritative })

let handle_message t ~sender payload =
  match payload with
  | Inc by ->
      t.value <- t.value + by;
      refresh_annotation t
  | Report { vid; value; settled } -> (
      match t.pending with
      | Some (pvid, reports) when View.Id.equal pvid vid ->
          Hashtbl.replace reports sender (value, settled);
          maybe_complete t
      | Some _ | None -> ())

let create sim net ~me:me_ ~universe ?observer ~config () =
  let t = { sim; obj = None; value = 0; authoritative = false; pending = None } in
  let spec =
    {
      Group_object.target_of = (fun _ -> Mode.Serve_all);
      reconfigure_policy = Mode.On_expansion;
      settled_ann =
        (fun ann -> match ann with Some a -> a.a_settled | None -> false);
    }
  in
  let callbacks =
    {
      Group_object.on_mode = (fun _ -> refresh_annotation t);
      on_settle = (fun problem ev -> handle_settle t problem ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
      on_eview = (fun _ -> ());
    }
  in
  let obj =
    Group_object.create sim net ~me:me_ ~universe ~config ~spec ~callbacks
      ?observer ()
  in
  t.obj <- Some obj;
  refresh_annotation t;
  t

let is_alive t = Group_object.is_alive (get_obj t)

let leave t = Group_object.leave (get_obj t)

let kill t = Group_object.kill (get_obj t)
