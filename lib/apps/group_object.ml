module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History
module Endpoint = Vs_vsync.Endpoint
module Listx = Vs_util.Listx

type 'ann spec = {
  target_of : Proc_id.t list -> Mode.target;
  reconfigure_policy : Mode.reconfigure_policy;
  settled_ann : 'ann option -> bool;
}

type ('a, 'ann) callbacks = {
  on_mode : Mode.Machine.step -> unit;
  on_settle : Classify.problem -> 'ann Evs.eview_event -> unit;
  on_message : sender:Proc_id.t -> 'a -> unit;
  on_eview : 'ann Evs.eview_event -> unit;
}

type observation =
  | Obs_mode of Mode.Machine.step
  | Obs_settle of { problem : Classify.problem; eview : E_view.t }

type ('a, 'ann) t = {
  sim : Sim.t;
  spec : 'ann spec;
  callbacks : ('a, 'ann) callbacks;
  observer : observation -> unit;
  machine : Mode.Machine.t;
  history : History.t;
  mutable evs : ('a, 'ann) Evs.t option;
  mutable prior_members : Proc_id.t list;
  mutable delivery_count : int;
}

let get_evs t = match t.evs with Some e -> e | None -> assert false

let me t = Evs.me (get_evs t)

let evs t = get_evs t

let eview t = Evs.eview (get_evs t)

let mode t = Mode.Machine.mode t.machine

let machine t = t.machine

let history t = t.history

let multicast t ?order payload = Evs.multicast (get_evs t) ?order payload

let set_annotation t ann = Evs.set_annotation (get_evs t) ann

let would_serve_all t members =
  Mode.equal_target (t.spec.target_of members) Mode.Serve_all

let classify_of_event t (ev : 'ann Evs.eview_event) =
  let settled p =
    match List.assoc_opt p ev.Evs.annotations with
    | Some ann -> t.spec.settled_ann ann
    | None -> false
  in
  Classify.enriched ~eview:ev.Evs.eview
    ~would_serve_all:(would_serve_all t)
    ~settled ()

let classify_now t =
  Classify.enriched ~eview:(eview t)
    ~would_serve_all:(would_serve_all t)
    ()

let record_mode_step t (step : Mode.Machine.step) =
  match step.Mode.Machine.cause with
  | Some cause ->
      History.record t.history ~time:(Sim.now t.sim)
        (History.Mode_event
           { mode = step.Mode.Machine.into_mode; cause = step.Mode.Machine.cause });
      Sim.emit t.sim
        (Vs_obs.Event.Mode_change
           {
             proc = Proc_id.to_obs (me t);
             from_mode = Mode.to_string step.Mode.Machine.from_mode;
             into_mode = Mode.to_string step.Mode.Machine.into_mode;
             cause = Mode.transition_to_string cause;
           });
      t.observer (Obs_mode step);
      t.callbacks.on_mode step
  | None -> ()

(* Merge the caller's sv-set's subviews if it is the one responsible (its
   smallest member) and there is anything to merge — issued from both
   complete_settling and the late-sv-set-merge catch-up, so the Section 6.2
   merges happen regardless of message interleaving. *)
let merge_own_subviews t =
  match t.evs with
  | None -> ()
  | Some e ->
      let ev = Evs.eview e in
      let ss = Evs.my_svset e in
      let group = E_view.svset_members ss ev in
      let im_smallest =
        match Proc_id.min_member group with
        | Some p -> Proc_id.equal p (Evs.me e)
        | None -> false
      in
      if im_smallest && List.length ss.E_view.ss_subviews >= 2 then
        Evs.subview_merge e ss.E_view.ss_subviews

let handle_eview t (ev : 'ann Evs.eview_event) =
  (match ev.Evs.cause with
  | Evs.View_change ->
      let new_members = E_view.members ev.Evs.eview in
      History.record t.history ~time:(Sim.now t.sim)
        (History.View_event ev.Evs.eview.E_view.view);
      let expanded =
        Listx.diff ~cmp:Proc_id.compare new_members t.prior_members <> []
      in
      t.prior_members <- new_members;
      let target = t.spec.target_of new_members in
      let step =
        Mode.Machine.on_view_change t.machine ~target ~expanded
          ~policy:t.spec.reconfigure_policy
      in
      record_mode_step t step;
      if Mode.equal (Mode.Machine.mode t.machine) Mode.Settling then begin
        let problem = classify_of_event t ev in
        let creation =
          match problem.Classify.creation with
          | Classify.No_creation -> "none"
          | Classify.Rebirth -> "rebirth"
          | Classify.In_progress -> "in-progress"
        in
        Sim.emit t.sim
          (Vs_obs.Event.Settle
             {
               proc = Proc_id.to_obs (me t);
               vid = View.Id.to_obs ev.Evs.eview.E_view.view.View.id;
               transfer = problem.Classify.transfer;
               creation;
               merging = problem.Classify.merging;
               clusters = problem.Classify.clusters;
             });
        t.observer (Obs_settle { problem; eview = ev.Evs.eview });
        t.callbacks.on_settle problem ev
      end
  | Evs.Svset_merged _ | Evs.Subview_merged _ ->
      History.record t.history ~time:(Sim.now t.sim)
        (History.Eview_event
           {
             vid = ev.Evs.eview.E_view.view.View.id;
             eseq = ev.Evs.eview.E_view.eseq;
           });
      (* If the sv-set merge lands after this process already reconciled,
         complete_settling has come and gone: merge the subviews now. *)
      (match ev.Evs.cause with
      | Evs.Svset_merged _
        when Mode.equal (Mode.Machine.mode t.machine) Mode.Normal ->
          merge_own_subviews t
      | Evs.Svset_merged _ | Evs.Subview_merged _ | Evs.View_change -> ()));
  t.callbacks.on_eview ev

let handle_message t ~sender payload =
  t.delivery_count <- t.delivery_count + 1;
  History.record t.history ~time:(Sim.now t.sim)
    (History.Deliver
       {
         sender;
         seq = t.delivery_count;
         vid = (eview t).E_view.view.View.id;
       });
  t.callbacks.on_message ~sender payload

let create sim net ~me:me_ ~universe ~config ~spec ~callbacks
    ?(observer = fun _ -> ()) () =
  let t =
    {
      sim;
      spec;
      callbacks;
      observer;
      machine = Mode.Machine.create ();
      history = History.create me_;
      evs = None;
      prior_members = [];
      delivery_count = 0;
    }
  in
  let evs_callbacks =
    {
      Evs.on_eview = (fun ev -> handle_eview t ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
    }
  in
  let e = Evs.create sim net ~me:me_ ~universe ~config ~callbacks:evs_callbacks in
  t.evs <- Some e;
  t

let begin_joint_settling t =
  let ev = eview t in
  let members = E_view.members ev in
  let im_coordinator =
    match Proc_id.min_member members with
    | Some c -> Proc_id.equal c (me t)
    | None -> false
  in
  let svset_ids =
    List.map (fun ss -> ss.E_view.ss_id) ev.E_view.structure.E_view.svsets
  in
  if im_coordinator && List.length svset_ids >= 2 then
    Evs.svset_merge (get_evs t) svset_ids

let complete_settling t =
  match Mode.Machine.reconcile t.machine with
  | Ok step ->
      record_mode_step t step;
      merge_own_subviews t
  | Error `Not_settling -> ()

let is_alive t = Evs.is_alive (get_evs t)

let leave t = Evs.leave (get_evs t)

let kill t = Evs.kill (get_evs t)
