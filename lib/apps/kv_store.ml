module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Endpoint = Vs_vsync.Endpoint

type stamp = { counter : int; origin : int }

let compare_stamp a b =
  match Int.compare a.counter b.counter with
  | 0 -> Int.compare a.origin b.origin
  | c -> c

type policy =
  | Lww
  | Primary_subview
  | Custom of (string -> string * stamp -> string * stamp -> string * stamp)

type payload =
  | Put of { key : string; value : string }
  | Dump of {
      vid : View.Id.t;
      entries : (string * (string * stamp)) list;
      settled : bool;
    }

type ann = { a_settled : bool }

type net = (payload, ann) Evs.net

let payload_size = function
  | Put { key; value } -> 16 + String.length key + String.length value
  | Dump { entries; _ } ->
      List.fold_left
        (fun acc (k, (v, _)) -> acc + String.length k + String.length v + 16)
        24 entries

let make_net sim config =
  Evs.make_net ~payload_size ~ann_size:(fun _ -> 1) sim config

module Smap = Map.Make (String)

type settle_state = {
  ss_vid : View.Id.t;
  ss_dumps : (Proc_id.t, (string * (string * stamp)) list * bool) Hashtbl.t;
  ss_primary : Proc_id.t list option;
      (* the primary cluster, fixed at settle start: computed later, the
         structure may already reflect the peers' subview merges *)
}

type t = {
  sim : Sim.t;
  policy : policy;
  on_apply : (origin:int -> key:string -> value:string -> unit) option;
      (* observation hook: fires once per locally applied Put — load
         experiments count deliveries and sample end-to-end latency here *)
  mutable obj : (payload, ann) Group_object.t option;
  mutable entries : (string * stamp) Smap.t;
  mutable max_counter : int;
  mutable settled : bool;
  mutable settle : settle_state option;
}

let get_obj t = match t.obj with Some o -> o | None -> assert false

let me t = Group_object.me (get_obj t)

let mode t = Group_object.mode (get_obj t)

let obj t = get_obj t

let refresh_annotation t =
  Group_object.set_annotation (get_obj t) (Some { a_settled = t.settled })

let put t ~key ~value =
  if Mode.equal (mode t) Mode.Normal then begin
    Group_object.multicast (get_obj t) ~order:Endpoint.Total (Put { key; value });
    Ok ()
  end
  else Error `Not_serving

let get t ~key = Smap.find_opt key t.entries

let keys t = List.map fst (Smap.bindings t.entries)

let apply_put t ~origin ~key ~value =
  t.max_counter <- t.max_counter + 1;
  t.entries <-
    Smap.add key (value, { counter = t.max_counter; origin }) t.entries;
  match t.on_apply with
  | Some f -> f ~origin ~key ~value
  | None -> ()

let lww_pick key a b =
  ignore key;
  if compare_stamp (snd a) (snd b) >= 0 then a else b

let merge_dumps t pick dumps =
  let merged =
    List.fold_left
      (fun acc entries ->
        List.fold_left
          (fun acc (key, candidate) ->
            match Smap.find_opt key acc with
            | Some existing ->
                (* An equal stamp is the same write reported by another
                   replica, not a divergence — never re-merged. *)
                if compare_stamp (snd existing) (snd candidate) = 0 then acc
                else Smap.add key (pick key existing candidate) acc
            | None -> Smap.add key candidate acc)
          acc entries)
      Smap.empty dumps
  in
  t.entries <- merged;
  t.max_counter <-
    Smap.fold (fun _ (_, st) acc -> max st.counter acc) merged t.max_counter

(* The primary cluster is the largest settled subview (ties to the one
   containing the smallest process), read off the enriched view at settle
   start — its members' dumps replace the state wholesale.  With no settled
   subview (a creation) fall back to LWW. *)
let primary_members_of (ev : E_view.t) ~settled =
  let candidates =
    List.filter
      (fun sv -> List.exists settled sv.E_view.sv_members)
      ev.E_view.structure.E_view.subviews
  in
  let best =
    List.fold_left
      (fun best sv ->
        match best with
        | None -> Some sv
        | Some b ->
            let c =
              Int.compare
                (List.length sv.E_view.sv_members)
                (List.length b.E_view.sv_members)
            in
            if c > 0 then Some sv
            else if c < 0 then Some b
            else
              match (sv.E_view.sv_members, b.E_view.sv_members) with
              | sv_first :: _, b_first :: _ ->
                  if Proc_id.compare sv_first b_first < 0 then Some sv
                  else Some b
              | [], _ | _, [] ->
                  invalid_arg
                    "Kv_store.primary_members_of: subview with no members")
      None candidates
  in
  Option.map (fun sv -> sv.E_view.sv_members) best

let maybe_finish_settling t =
  match t.settle with
  | None -> ()
  | Some st ->
      let o = get_obj t in
      let ev = Group_object.eview o in
      let members = E_view.members ev in
      if
        View.Id.equal st.ss_vid ev.E_view.view.View.id
        && List.for_all (fun m -> Hashtbl.mem st.ss_dumps m) members
      then begin
        let dump_of p =
          match Hashtbl.find_opt st.ss_dumps p with
          | Some (entries, _) -> entries
          | None ->
              invalid_arg
                "Kv_store.maybe_finish_settling: settling finished without a \
                 dump from every member"
        in
        (match t.policy with
        | Lww -> merge_dumps t lww_pick (List.map dump_of members)
        | Custom f -> merge_dumps t f (List.map dump_of members)
        | Primary_subview -> (
            match st.ss_primary with
            | Some primary ->
                let primary = List.filter (fun q -> List.exists (Proc_id.equal q) members) primary in
                merge_dumps t lww_pick (List.map dump_of primary)
            | None -> merge_dumps t lww_pick (List.map dump_of members)));
        t.settled <- true;
        t.settle <- None;
        refresh_annotation t;
        Group_object.complete_settling o
      end

let handle_settle t _problem (ev : ann Evs.eview_event) =
  let o = get_obj t in
  Group_object.begin_joint_settling o;
  let vid = (Group_object.eview o).E_view.view.View.id in
  (* Fix the primary cluster now, from the just-installed structure and the
     flush annotations; a within-view subview merge from a faster peer must
     not enlarge it retroactively. *)
  let settled q =
    match List.assoc_opt q ev.Evs.annotations with
    | Some (Some a) -> a.a_settled
    | Some None | None -> false
  in
  let primary = primary_members_of ev.Evs.eview ~settled in
  t.settle <- Some { ss_vid = vid; ss_dumps = Hashtbl.create 8; ss_primary = primary };
  Group_object.multicast o
    (Dump { vid; entries = Smap.bindings t.entries; settled = t.settled })

let handle_message t ~sender payload =
  match payload with
  | Put { key; value } -> apply_put t ~origin:sender.Proc_id.node ~key ~value
  | Dump { vid; entries; settled } -> (
      match t.settle with
      | Some st when View.Id.equal st.ss_vid vid ->
          Hashtbl.replace st.ss_dumps sender (entries, settled);
          maybe_finish_settling t
      | Some _ | None -> ())

let create sim net ~me:me_ ~universe ?observer ?on_apply ~config ~policy () =
  let t =
    {
      sim;
      policy;
      on_apply;
      obj = None;
      entries = Smap.empty;
      max_counter = 0;
      settled = false;
      settle = None;
    }
  in
  let spec =
    {
      Group_object.target_of = (fun _ -> Mode.Serve_all);
      reconfigure_policy = Mode.On_expansion;
      settled_ann =
        (fun ann -> match ann with Some a -> a.a_settled | None -> false);
    }
  in
  let callbacks =
    {
      Group_object.on_mode = (fun _ -> ());
      on_settle = (fun problem ev -> handle_settle t problem ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
      on_eview = (fun _ -> ());
    }
  in
  let o =
    Group_object.create sim net ~me:me_ ~universe ~config ~spec ~callbacks
      ?observer ()
  in
  t.obj <- Some o;
  refresh_annotation t;
  t

let is_alive t = Group_object.is_alive (get_obj t)

let kill t = Group_object.kill (get_obj t)
