(** Partitionable key-value store with pluggable state-merge policies.

    The store favours availability: any view serves reads and writes, so
    concurrent partitions diverge and the union of partitions poses exactly
    the {e state merging} problem of Section 4 — "an application-specific
    decision has to be taken in defining a new global state that somehow
    reconciles the divergence".  That decision is the {!policy}:

    - {!Lww}: per key, the write with the highest (counter, node) stamp
      wins — convergent and symmetric;
    - {!Primary_subview}: the largest up-to-date cluster's state replaces
      everything — the "primary partition wins wholesale" school;
    - {!Custom}: a user function folds the divergent values per key.

    Writes within a view are totally ordered, so replicas of one view never
    diverge; the settling protocol exchanges full dumps and applies the
    policy deterministically at every member. *)

module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint

type stamp = { counter : int; origin : int }
(** Write stamp: (logical counter, origin node); totally ordered. *)

type policy =
  | Lww
  | Primary_subview
  | Custom of (string -> string * stamp -> string * stamp -> string * stamp)
      (** [f key a b] picks or combines two divergent candidates; it must be
          associative and commutative for convergence. *)

type payload

type ann

type net = (payload, ann) Evs_core.Evs.net

val make_net : Vs_sim.Sim.t -> Vs_net.Net.config -> net

type t

val create :
  Vs_sim.Sim.t ->
  net ->
  me:Proc_id.t ->
  universe:int list ->
  ?observer:(Group_object.observation -> unit) ->
  ?on_apply:(origin:int -> key:string -> value:string -> unit) ->
  config:Endpoint.config ->
  policy:policy ->
  unit ->
  t
(** [?on_apply] fires once per Put applied to this replica's state (own and
    remote writes alike) — the hook load experiments use to count
    deliveries and sample end-to-end write latency without touching the
    store's behaviour. *)

val me : t -> Proc_id.t

val mode : t -> Mode.t

val put : t -> key:string -> value:string -> (unit, [ `Not_serving ]) result
(** External operation: Normal mode only (briefly refused while settling). *)

val get : t -> key:string -> (string * stamp) option
(** Local read, any mode. *)

val keys : t -> string list

val obj : t -> (payload, ann) Group_object.t

val is_alive : t -> bool

val kill : t -> unit
