module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Store = Vs_store.Store
module Listx = Vs_util.Listx

let log_key = "ltf:log"

(* One view per line: "epoch proposer_node proposer_inc node.inc,node.inc". *)
let view_to_line (v : View.t) =
  Printf.sprintf "%d %d %d %s" v.View.id.View.Id.epoch
    v.View.id.View.Id.proposer.Proc_id.node v.View.id.View.Id.proposer.Proc_id.inc
    (String.concat ","
       (List.map
          (fun (p : Proc_id.t) -> Printf.sprintf "%d.%d" p.Proc_id.node p.Proc_id.inc)
          v.View.members))

let view_of_line line =
  match String.split_on_char ' ' line with
  | [ epoch; pnode; pinc; members ] ->
      let proposer =
        Proc_id.make ~node:(int_of_string pnode) ~inc:(int_of_string pinc)
      in
      let id = View.Id.make ~epoch:(int_of_string epoch) ~proposer in
      let members =
        String.split_on_char ',' members
        |> List.map (fun s ->
               match String.split_on_char '.' s with
               | [ node; inc ] ->
                   Proc_id.make ~node:(int_of_string node) ~inc:(int_of_string inc)
               | _ -> failwith "Last_to_fail: corrupt member")
      in
      View.make id members
  | _ -> failwith "Last_to_fail: corrupt log line"

let persisted_views store ~node =
  match Store.get store ~node ~key:log_key with
  | None | Some "" -> []
  | Some text -> List.map view_of_line (String.split_on_char '\n' text)

let record_view store ~node view =
  let line = view_to_line view in
  let text =
    match Store.get store ~node ~key:log_key with
    | None | Some "" -> line
    | Some existing -> existing ^ "\n" ^ line
  in
  Store.put store ~node ~key:log_key text

let persisted_log store ~node =
  List.map (fun v -> v.View.id) (persisted_views store ~node)

let wipe store ~node = Store.delete store ~node ~key:log_key

type report = { r_proc : Proc_id.t; r_last : View.Id.t option }

type decision =
  | Adopt_from of Proc_id.t list
  | Wait_for of Proc_id.t list
  | Fresh_start

(* Assumes the pre-failure group shrank by crashes (Skeen's setting), so
   successive views share survivors: any view later than [vmax] would have
   been installed by a member of [vmax], hence if every member node of
   [vmax] is accounted for among the reporters, [vmax] really was the
   group's last gasp. *)
let decide ~known_last_views reports =
  let lasts = List.filter_map (fun r -> r.r_last) reports in
  match lasts with
  | [] -> Fresh_start
  | first :: rest ->
      let vmax =
        List.fold_left
          (fun acc vid -> if View.Id.compare vid acc > 0 then vid else acc)
          first rest
      in
      let holders =
        List.filter_map
          (fun r ->
            match r.r_last with
            | Some vid when View.Id.equal vid vmax -> Some r.r_proc
            | Some _ | None -> None)
          reports
      in
      let composition =
        List.find_opt (fun (vid, _) -> View.Id.equal vid vmax) known_last_views
      in
      let reporter_nodes =
        Listx.sorted_set ~cmp:Int.compare
          (List.map (fun r -> r.r_proc.Proc_id.node) reports)
      in
      let missing =
        match composition with
        | Some (_, view) ->
            List.filter
              (fun (p : Proc_id.t) ->
                not (Listx.mem ~cmp:Int.compare p.Proc_id.node reporter_nodes))
              view.View.members
        | None -> []
      in
      if missing = [] then Adopt_from (Proc_id.sort holders)
      else Wait_for (Proc_id.sort missing)

let decide_from_store store ~reporters =
  let logs =
    List.map (fun p -> (p, persisted_views store ~node:p.Proc_id.node)) reporters
  in
  let reports =
    List.map
      (fun (p, views) ->
        let last =
          match List.rev views with [] -> None | v :: _ -> Some v.View.id
        in
        { r_proc = p; r_last = last })
      logs
  in
  let known_last_views =
    List.concat_map (fun (_, views) -> List.map (fun v -> (v.View.id, v)) views) logs
  in
  decide ~known_last_views reports
