module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Endpoint = Vs_vsync.Endpoint

type payload =
  | Assign of { vid : View.Id.t; ranges : (Proc_id.t * int * int) list }
  | Query of { qid : int; issuer : Proc_id.t; needle : int }
  | Answer of { qid : int; issuer : Proc_id.t; lo : int; hi : int; hits : int list }

type ann = { a_settled : bool }

type net = (payload, ann) Evs.net

let payload_size = function
  | Assign { ranges; _ } -> 16 + (24 * List.length ranges)
  | Query _ -> 24
  | Answer { hits; _ } -> 32 + (8 * List.length hits)

let make_net sim config =
  Evs.make_net ~payload_size ~ann_size:(fun _ -> 1) sim config

type scan = {
  scan_member : Proc_id.t;
  scan_issuer : Proc_id.t;
  scan_query : int;
  scan_lo : int;
  scan_hi : int;
}

(* The replicated dataset: a fixed function of the key, so that every
   replica implicitly holds the whole database. *)
let db_value key = (key * 37 + 11) mod 256

type query_state = {
  mutable q_hits : int list;
  mutable q_covered : (int * int) list;  (* disjoint, sorted ranges *)
}

type t = {
  sim : Sim.t;
  keyspace : int;
  gate : bool;
  on_scan : scan -> unit;
  mutable obj : (payload, ann) Group_object.t option;
  mutable table : (View.Id.t * (Proc_id.t * int * int) list) option;
  mutable deferred : (int * Proc_id.t * int) list;  (* queued (qid, issuer, needle) *)
  mutable next_qid : int;
  queries : (int, query_state) Hashtbl.t;  (* my own queries *)
}

let get_obj t = match t.obj with Some o -> o | None -> assert false

let me t = Group_object.me (get_obj t)

let mode t = Group_object.mode (get_obj t)

let obj t = get_obj t

let my_range t =
  match t.table with
  | Some (_, ranges) ->
      List.find_map
        (fun (p, lo, hi) -> if Proc_id.equal p (me t) then Some (lo, hi) else None)
        ranges
  | None -> None

let refresh_annotation t =
  Group_object.set_annotation (get_obj t)
    (Some { a_settled = Option.is_some t.table })

(* Merge a range into a disjoint sorted cover and test completeness. *)
let add_range cover (lo, hi) =
  let merged =
    List.sort
      (fun (a, b) (c, d) ->
        match Int.compare a c with 0 -> Int.compare b d | r -> r)
      ((lo, hi) :: cover)
  in
  let rec fuse = function
    | (a, b) :: (c, d) :: rest when c <= b -> fuse ((a, max b d) :: rest)
    | r :: rest -> r :: fuse rest
    | [] -> []
  in
  fuse merged

let covers_keyspace t cover =
  match cover with [ (0, hi) ] when hi >= t.keyspace -> true | _ -> false

let split_ranges t members =
  let n = List.length members in
  let size = t.keyspace / n and extra = t.keyspace mod n in
  let rec go i lo = function
    | [] -> []
    | p :: rest ->
        let len = size + if i < extra then 1 else 0 in
        (p, lo, lo + len) :: go (i + 1) (lo + len) rest
  in
  go 0 0 members

let scan_and_answer t ~qid ~issuer ~needle =
  match my_range t with
  | Some (lo, hi) ->
      let hits = ref [] in
      for key = hi - 1 downto lo do
        if db_value key = needle then hits := key :: !hits
      done;
      t.on_scan
        { scan_member = me t; scan_issuer = issuer; scan_query = qid;
          scan_lo = lo; scan_hi = hi };
      Group_object.multicast (get_obj t)
        (Answer { qid; issuer; lo; hi; hits = !hits })
  | None -> ()

let process_query t ~qid ~issuer ~needle =
  let table_current =
    match t.table with
    | Some (vid, _) ->
        (not t.gate)
        || View.Id.equal vid
             (Group_object.eview (get_obj t)).E_view.view.View.id
    | None -> false
  in
  if table_current then scan_and_answer t ~qid ~issuer ~needle
  else if t.gate then t.deferred <- t.deferred @ [ (qid, issuer, needle) ]
  else
    (* Ungated and no table at all (fresh member): the query goes
       unanswered by this member — the coverage hole E8 measures. *)
    ()

let drain_deferred t =
  let queued = t.deferred in
  t.deferred <- [];
  List.iter (fun (qid, issuer, needle) -> process_query t ~qid ~issuer ~needle) queued

let handle_settle t _problem _ev =
  let o = get_obj t in
  Group_object.begin_joint_settling o;
  let ev = Group_object.eview o in
  let vid = ev.E_view.view.View.id in
  if t.gate then begin
    t.table <- None;
    refresh_annotation t
  end;
  (* Internal operation: the coordinator redistributes the key space. *)
  (match Proc_id.min_member (E_view.members ev) with
  | Some c when Proc_id.equal c (me t) ->
      Group_object.multicast o
        (Assign { vid; ranges = split_ranges t (E_view.members ev) })
  | Some _ | None -> ())

let handle_message t ~sender:_ payload =
  match payload with
  | Assign { vid; ranges } ->
      let current = (Group_object.eview (get_obj t)).E_view.view.View.id in
      if View.Id.equal vid current then begin
        t.table <- Some (vid, ranges);
        refresh_annotation t;
        Group_object.complete_settling (get_obj t);
        drain_deferred t
      end
  | Query { qid; issuer; needle } -> process_query t ~qid ~issuer ~needle
  | Answer { qid; issuer; lo; hi; hits } ->
      if Proc_id.equal issuer (me t) then begin
        match Hashtbl.find_opt t.queries qid with
        | Some q ->
            q.q_hits <- q.q_hits @ hits;
            q.q_covered <- add_range q.q_covered (lo, hi)
        | None -> ()
      end

let lookup t ~needle =
  if t.gate && not (Mode.equal (mode t) Mode.Normal) then Error `Not_serving
  else begin
    let qid = t.next_qid in
    t.next_qid <- t.next_qid + 1;
    Hashtbl.replace t.queries qid { q_hits = []; q_covered = [] };
    Group_object.multicast (get_obj t) (Query { qid; issuer = me t; needle });
    Ok qid
  end

let result_of t qid =
  match Hashtbl.find_opt t.queries qid with
  | Some q when covers_keyspace t q.q_covered ->
      Ok (List.sort_uniq Int.compare q.q_hits)
  | Some _ | None -> Error `Pending

let create sim net ~me:me_ ~universe ~config ~keyspace ?(gate_on_settling = true)
    ?(on_scan = fun _ -> ()) ?observer () =
  if keyspace <= 0 then invalid_arg "Parallel_db.create: empty keyspace";
  let t =
    {
      sim;
      keyspace;
      gate = gate_on_settling;
      on_scan;
      obj = None;
      table = None;
      deferred = [];
      next_qid = 0;
      queries = Hashtbl.create 16;
    }
  in
  let spec =
    {
      (* The look-up works in any view: Reduced mode does not exist, and
         every view change invalidates the responsibility table. *)
      Group_object.target_of = (fun _ -> Mode.Serve_all);
      reconfigure_policy = Mode.On_any_change;
      settled_ann =
        (fun ann -> match ann with Some a -> a.a_settled | None -> false);
    }
  in
  let callbacks =
    {
      Group_object.on_mode = (fun _ -> ());
      on_settle = (fun problem ev -> handle_settle t problem ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
      on_eview = (fun _ -> ());
    }
  in
  let o =
    Group_object.create sim net ~me:me_ ~universe ~config ~spec ~callbacks
      ?observer ()
  in
  t.obj <- Some o;
  refresh_annotation t;
  t

let is_alive t = Group_object.is_alive (get_obj t)

let kill t = Group_object.kill (get_obj t)
