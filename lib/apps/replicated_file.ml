module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Endpoint = Vs_vsync.Endpoint
module Store = Vs_store.Store

type payload =
  | Write of string
  | Report of { vid : View.Id.t; version : int; settled : bool }
  | Update of { vid : View.Id.t; version : int; content : string }

type ann = { a_version : int; a_settled : bool }

type net = (payload, ann) Evs.net

let payload_size = function
  | Write content -> 16 + String.length content
  | Report _ -> 24
  | Update { content; _ } -> 24 + String.length content

let make_net sim config =
  Evs.make_net ~payload_size ~ann_size:(fun _ -> 9) sim config

type config = { votes : int -> int; total_votes : int }

let uniform_votes ~universe =
  { votes = (fun _ -> 1); total_votes = List.length universe }

type settle_state = {
  ss_vid : View.Id.t;
  ss_reports : (Proc_id.t, int * bool) Hashtbl.t;
  mutable ss_update_sent : bool;
}

type t = {
  sim : Sim.t;
  file : config;
  store : Store.t;
  node : int;
  mutable obj : (payload, ann) Group_object.t option;
  mutable content : string;
  mutable version : int;
  mutable settled : bool;
  mutable settle : settle_state option;
}

let get_obj t = match t.obj with Some o -> o | None -> assert false

let me t = Group_object.me (get_obj t)

let mode t = Group_object.mode (get_obj t)

let version t = t.version

let obj t = get_obj t

let quorum t = (t.file.total_votes / 2) + 1

let votes_of_members t members =
  (* Votes are per replica site (node); a membership never contains two
     incarnations of one node, so summing per member is safe. *)
  List.fold_left (fun acc (p : Proc_id.t) -> acc + t.file.votes p.Proc_id.node) 0 members

let persist t =
  Store.put t.store ~node:t.node ~key:"file:content" t.content;
  Store.put t.store ~node:t.node ~key:"file:version" (string_of_int t.version)

let restore t =
  match
    ( Store.get t.store ~node:t.node ~key:"file:content",
      Store.get t.store ~node:t.node ~key:"file:version" )
  with
  | Some content, Some version ->
      t.content <- content;
      t.version <- int_of_string version
  | _ -> ()

let refresh_annotation t =
  Group_object.set_annotation (get_obj t)
    (Some { a_version = t.version; a_settled = t.settled })

let read t =
  match mode t with
  | Mode.Normal | Mode.Reduced -> Ok (t.content, t.version)
  | Mode.Settling -> Error `Not_serving

let write t content =
  if Mode.equal (mode t) Mode.Normal then begin
    Group_object.multicast (get_obj t) ~order:Endpoint.Total (Write content);
    Ok ()
  end
  else Error `Not_serving

let apply_write t content =
  t.version <- t.version + 1;
  t.content <- content;
  persist t;
  refresh_annotation t

(* Settling: once version reports from every member of the view are in, the
   highest version is the current file (quorum intersection guarantees the
   latest write is among the reports whenever the view defines a quorum);
   the smallest holder ships it to the laggards, and each member reconciles
   when it holds a version at least that high. *)
let maybe_finish_settling t =
  match t.settle with
  | None -> ()
  | Some st ->
      let o = get_obj t in
      let ev = Group_object.eview o in
      let members = E_view.members ev in
      if
        View.Id.equal st.ss_vid ev.E_view.view.View.id
        && List.for_all (fun m -> Hashtbl.mem st.ss_reports m) members
      then begin
        let max_version =
          (* vslint: allow D2 — commutative fold (max) *)
          Hashtbl.fold (fun _ (v, _) acc -> max v acc) st.ss_reports 0
        in
        let holders =
          (* vslint: allow D2 — filtered accumulation; Proc_id.sort'ed below *)
          Hashtbl.fold
            (fun p (v, _) acc -> if v >= max_version then p :: acc else acc)
            st.ss_reports []
          |> Proc_id.sort
        in
        let laggards_exist =
          (* vslint: allow D2 — commutative fold (or) *)
          Hashtbl.fold (fun _ (v, _) acc -> acc || v < max_version) st.ss_reports false
        in
        (match Proc_id.min_member holders with
        | Some h
          when Proc_id.equal h (me t) && laggards_exist
               && (not st.ss_update_sent) && t.version >= max_version ->
            st.ss_update_sent <- true;
            Group_object.multicast o
              (Update { vid = st.ss_vid; version = t.version; content = t.content })
        | Some _ | None -> ());
        if t.version >= max_version then begin
          t.settled <- true;
          t.settle <- None;
          persist t;
          refresh_annotation t;
          Group_object.complete_settling o
        end
      end

let handle_settle t _problem _ev =
  let o = get_obj t in
  Group_object.begin_joint_settling o;
  let vid = (Group_object.eview o).E_view.view.View.id in
  t.settle <-
    Some { ss_vid = vid; ss_reports = Hashtbl.create 8; ss_update_sent = false };
  Group_object.multicast o
    (Report { vid; version = t.version; settled = t.settled })

let handle_message t ~sender payload =
  match payload with
  | Write content ->
      apply_write t content;
      maybe_finish_settling t
  | Report { vid; version; settled } -> (
      match t.settle with
      | Some st when View.Id.equal st.ss_vid vid ->
          Hashtbl.replace st.ss_reports sender (version, settled);
          maybe_finish_settling t
      | Some _ | None -> ())
  | Update { vid; version; content } -> (
      match t.settle with
      | Some st when View.Id.equal st.ss_vid vid ->
          if version > t.version then begin
            t.version <- version;
            t.content <- content;
            persist t
          end;
          maybe_finish_settling t
      | Some _ | None -> ())

let handle_mode t (step : Mode.Machine.step) =
  (* Leaving Normal invalidates the settled lineage: writes may proceed in
     some quorum we no longer belong to. *)
  (match step.Mode.Machine.into_mode with
  | Mode.Reduced -> t.settled <- false
  | Mode.Normal | Mode.Settling -> ());
  refresh_annotation t

let create sim net ~me:me_ ~universe ?observer ~config ~file ~store () =
  let t =
    {
      sim;
      file;
      store;
      node = me_.Proc_id.node;
      obj = None;
      content = "";
      version = 0;
      settled = false;
      settle = None;
    }
  in
  restore t;
  let spec =
    {
      Group_object.target_of =
        (fun members ->
          if votes_of_members t members >= quorum t then Mode.Serve_all
          else Mode.Serve_reduced);
      reconfigure_policy = Mode.On_expansion;
      settled_ann =
        (fun ann -> match ann with Some a -> a.a_settled | None -> false);
    }
  in
  let callbacks =
    {
      Group_object.on_mode = (fun step -> handle_mode t step);
      on_settle = (fun problem ev -> handle_settle t problem ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
      on_eview = (fun _ -> ());
    }
  in
  let o =
    Group_object.create sim net ~me:me_ ~universe ~config ~spec ~callbacks
      ?observer ()
  in
  t.obj <- Some o;
  refresh_annotation t;
  t

let is_alive t = Group_object.is_alive (get_obj t)

let leave t = Group_object.leave (get_obj t)

let kill t = Group_object.kill (get_obj t)
