module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Evs = Evs_core.Evs
module E_view = Evs_core.E_view
module Endpoint = Vs_vsync.Endpoint

type strategy = Blocking | Two_piece of { sync_bytes : int; chunk_bytes : int }

type payload =
  | Present of { vid : View.Id.t; full : bool }
  | Full of { vid : View.Id.t; bytes : int }
  | Sync_piece of { vid : View.Id.t; bytes : int }
  | Chunk of { vid : View.Id.t; idx : int; total : int; bytes : int }

type ann = { a_settled : bool }

type net = (payload, ann) Evs.net

(* Byte accounting mirrors the modelled blob sizes, so the network's
   traffic statistics reflect the transfer strategies faithfully. *)
let payload_size = function
  | Present _ -> 16
  | Full { bytes; _ } -> 16 + bytes
  | Sync_piece { bytes; _ } -> 16 + bytes
  | Chunk { bytes; _ } -> 24 + bytes

let make_net sim config =
  Evs.make_net ~payload_size ~ann_size:(fun _ -> 1) sim config

type settle_state = {
  ss_vid : View.Id.t;
  ss_present : (Proc_id.t, bool) Hashtbl.t;
}

type t = {
  sim : Sim.t;
  strategy : strategy;
  state_bytes : int;
  bootstrap : bool;
  mutable obj : (payload, ann) Group_object.t option;
  mutable has_sync : bool;           (* serving-capable piece present *)
  mutable chunks : (int, unit) Hashtbl.t;
  mutable total_chunks : int;        (* 0 = bulk complete or not chunked *)
  mutable full : bool;
  mutable settle : settle_state option;
  mutable task : string option;       (* open observability task, if any *)
  mutable reconciled_at : float option;
  mutable full_state_at : float option;
  mutable stream_timer : Sim.handle option;
}

let get_obj t = match t.obj with Some o -> o | None -> assert false

let me t = Group_object.me (get_obj t)

let mode t = Group_object.mode (get_obj t)

let obj t = get_obj t

let holds_full_state t = t.full

let reconciled_at t = t.reconciled_at

let full_state_at t = t.full_state_at

let refresh_annotation t =
  Group_object.set_annotation (get_obj t) (Some { a_settled = t.has_sync })

let mark_full t =
  if not t.full then begin
    t.full <- true;
    t.full_state_at <- Some (Sim.now t.sim)
  end

let current_vid t = (Group_object.eview (get_obj t)).E_view.view.View.id

let stop_stream t =
  match t.stream_timer with
  | Some h ->
      Sim.cancel h;
      t.stream_timer <- None
  | None -> ()

(* Donor side: stream the bulk in chunks, paced through the event queue so
   application traffic interleaves — the "concurrent with application
   activity" half of the two-piece strategy. *)
let stream_bulk t ~vid ~chunk_bytes =
  let total = max 1 ((t.state_bytes + chunk_bytes - 1) / chunk_bytes) in
  let rec send idx =
    t.stream_timer <- None;
    if
      Group_object.is_alive (get_obj t)
      && View.Id.equal (current_vid t) vid && idx < total
    then begin
      let bytes = min chunk_bytes (t.state_bytes - (idx * chunk_bytes)) in
      Group_object.multicast (get_obj t) (Chunk { vid; idx; total; bytes });
      t.stream_timer <- Some (Sim.after t.sim 0.002 (fun () -> send (idx + 1)))
    end
  in
  send 0

let complete t =
  t.settle <- None;
  (match t.task with
  | Some task ->
      t.task <- None;
      Sim.emit t.sim
        (Vs_obs.Event.Task_done
           {
             proc = Proc_id.to_obs (me t);
             task;
             vid = View.Id.to_obs (current_vid t);
           })
  | None -> ());
  Group_object.complete_settling (get_obj t);
  t.reconciled_at <- Some (Sim.now t.sim);
  refresh_annotation t

let maybe_act t =
  match t.settle with
  | None -> ()
  | Some st ->
      let o = get_obj t in
      let ev = Group_object.eview o in
      let members = E_view.members ev in
      if
        View.Id.equal st.ss_vid ev.E_view.view.View.id
        && List.for_all (fun m -> Hashtbl.mem st.ss_present m) members
      then begin
        let donors =
          List.filter
            (fun m ->
              match Hashtbl.find_opt st.ss_present m with
              | Some present -> present
              | None -> false)
            members
        in
        match donors with
        | [] when t.bootstrap ->
            (* State creation: no full copy anywhere — every bootstrap
               member fabricates the initial state from scratch. *)
            t.has_sync <- true;
            mark_full t;
            complete t
        | [] ->
            (* A joiner alone (or among joiners): it cannot tell a fresh
               boot from a total failure and must wait to meet a donor. *)
            ()
        | _ when t.full ->
            (* I am up to date; if I am the designated donor, ship. *)
            let laggards =
              List.exists
                (fun m ->
                  match Hashtbl.find_opt st.ss_present m with
                  | Some present -> not present
                  | None -> false)
                members
            in
            let im_donor =
              match Proc_id.min_member donors with
              | Some d -> Proc_id.equal d (me t)
              | None -> false
            in
            if im_donor && laggards then begin
              match t.strategy with
              | Blocking ->
                  Group_object.multicast o
                    (Full { vid = st.ss_vid; bytes = t.state_bytes })
              | Two_piece { sync_bytes; chunk_bytes } ->
                  Group_object.multicast o
                    (Sync_piece { vid = st.ss_vid; bytes = sync_bytes });
                  stream_bulk t ~vid:st.ss_vid ~chunk_bytes
            end;
            complete t
        | _ -> () (* laggard: wait for the donor's transfer *)
      end

let handle_settle t (problem : Evs_core.Classify.problem) _ev =
  let o = get_obj t in
  Group_object.begin_joint_settling o;
  stop_stream t;
  let vid = current_vid t in
  t.settle <- Some { ss_vid = vid; ss_present = Hashtbl.create 8 };
  (* One observability task per settling episode, named after the dominant
     Section 4 problem. *)
  let task =
    match problem.Evs_core.Classify.creation with
    | Evs_core.Classify.Rebirth | Evs_core.Classify.In_progress -> "creation"
    | Evs_core.Classify.No_creation ->
        if problem.Evs_core.Classify.merging then "merge" else "transfer"
  in
  t.task <- Some task;
  Sim.emit t.sim
    (Vs_obs.Event.Task_start
       { proc = Proc_id.to_obs (me t); task; vid = View.Id.to_obs vid });
  Group_object.multicast o (Present { vid; full = t.full })

let handle_message t ~sender payload =
  match payload with
  | Present { vid; full } -> (
      match t.settle with
      | Some st when View.Id.equal st.ss_vid vid ->
          Hashtbl.replace st.ss_present sender full;
          maybe_act t
      | Some _ | None -> ())
  | Full { vid; _ } ->
      if (not t.full) && View.Id.equal (current_vid t) vid then begin
        t.has_sync <- true;
        mark_full t;
        match t.settle with
        | Some st when View.Id.equal st.ss_vid vid -> complete t
        | Some _ | None -> refresh_annotation t
      end
  | Sync_piece { vid; _ } ->
      if (not t.has_sync) && View.Id.equal (current_vid t) vid then begin
        t.has_sync <- true;
        match t.settle with
        | Some st when View.Id.equal st.ss_vid vid -> complete t
        | Some _ | None -> refresh_annotation t
      end
  | Chunk { vid; idx; total; _ } ->
      if (not t.full) && View.Id.equal (current_vid t) vid then begin
        t.total_chunks <- total;
        Hashtbl.replace t.chunks idx ();
        if Hashtbl.length t.chunks >= total then mark_full t
      end

let create sim net ~me:me_ ~universe ?observer ?(bootstrap = true) ~config
    ~strategy ~state_bytes () =
  if state_bytes <= 0 then invalid_arg "State_transfer.create: empty state";
  let t =
    {
      sim;
      strategy;
      state_bytes;
      bootstrap;
      obj = None;
      has_sync = false;
      chunks = Hashtbl.create 64;
      total_chunks = 0;
      full = false;
      settle = None;
      task = None;
      reconciled_at = None;
      full_state_at = None;
      stream_timer = None;
    }
  in
  let spec =
    {
      Group_object.target_of = (fun _ -> Mode.Serve_all);
      reconfigure_policy = Mode.On_expansion;
      settled_ann =
        (fun ann -> match ann with Some a -> a.a_settled | None -> false);
    }
  in
  let callbacks =
    {
      Group_object.on_mode = (fun _ -> ());
      on_settle = (fun problem ev -> handle_settle t problem ev);
      on_message = (fun ~sender payload -> handle_message t ~sender payload);
      on_eview = (fun _ -> ());
    }
  in
  let o =
    Group_object.create sim net ~me:me_ ~universe ~config ~spec ~callbacks
      ?observer ()
  in
  t.obj <- Some o;
  refresh_annotation t;
  t

let is_alive t = Group_object.is_alive (get_obj t)

let kill t =
  stop_stream t;
  Group_object.kill (get_obj t)
