module Rng = Vs_util.Rng
module Net = Vs_net.Net
module Faults = Vs_harness.Faults
module Driver = Vs_harness.Driver

type knobs = {
  loss_prob : float;
  dup_prob : float;
  delay_min : float;
  delay_max : float;
}

let default_knobs =
  {
    loss_prob = 0.;
    dup_prob = 0.;
    delay_min = Net.default_config.Net.delay_min;
    delay_max = Net.default_config.Net.delay_max;
  }

type spec = {
  seed : int64;
  protocol : Driver.protocol;
  nodes : int;
  knobs : knobs;
  script : Faults.script;
  traffic_gap : float;
  traffic_until : float;
  horizon : float;
  transient : bool;
}

let equal_spec (a : spec) (b : spec) = a = b

let weight spec =
  let flag b = if b then 1 else 0 in
  List.length spec.script + spec.nodes
  + flag (spec.knobs.loss_prob > 0.)
  + flag (spec.knobs.dup_prob > 0.)
  + flag (spec.knobs.delay_max > default_knobs.delay_max)
  + flag (spec.traffic_gap > 0.)

let describe spec =
  Printf.sprintf
    "seed=%Ld %s nodes=%d actions=%d loss=%.3f dup=%.3f delay=[%.3f,%.3f] \
     traffic-gap=%.3f horizon=%.1f"
    spec.seed
    (Driver.protocol_to_string spec.protocol)
    spec.nodes
    (List.length spec.script)
    spec.knobs.loss_prob spec.knobs.dup_prob spec.knobs.delay_min
    spec.knobs.delay_max spec.traffic_gap spec.horizon
  ^ if spec.transient then " transient" else ""

(* Derive every campaign parameter from the integer seed.  The derivation
   rng is independent of the cluster seed (offset by a large odd constant)
   so knob sampling never correlates with in-run randomness. *)
let generate ?protocol ?(transient = false) ~seed ~nodes ~quick () =
  let seed64 = Int64.of_int seed in
  let rng = Rng.create (Int64.add (Int64.mul seed64 2654435761L) 97531L) in
  let protocol =
    match protocol with
    | Some p -> p
    | None -> if Rng.bool rng 0.5 then Driver.Evs else Driver.Vsync
  in
  let knobs =
    {
      loss_prob = (if Rng.bool rng 0.3 then 0. else Rng.uniform rng 0. 0.15);
      dup_prob = (if Rng.bool rng 0.5 then 0. else Rng.uniform rng 0. 0.10);
      delay_min = 0.001;
      delay_max = Rng.uniform rng 0.005 0.020;
    }
  in
  let duration = if quick then 3.0 else 6.0 in
  let mean_gap = Rng.uniform rng 0.3 0.8 in
  let node_list = List.init nodes (fun i -> i) in
  (* The transient axis draws its weight only when enabled, so the
     derivation stream — and every existing seed's campaign — is unchanged
     in the default mode. *)
  let corrupt_weight = if transient then Rng.uniform rng 0.8 1.6 else 0.0 in
  let script =
    Faults.random_script rng ~nodes:node_list ~start:1.0 ~duration ~mean_gap
      ~corrupt_weight ()
  in
  let traffic_gap =
    if Rng.bool rng 0.1 then 0. else Rng.uniform rng 0.02 0.08
  in
  {
    seed = seed64;
    protocol;
    nodes;
    knobs;
    script;
    traffic_gap;
    traffic_until = 1.0 +. duration +. 0.5;
    (* The closing heal/recover lands at [start + duration]; leave a quiet
       settling tail so checks run against a stabilized cluster even under
       loss (retry backoff needs the slack).  Transient scripts end with a
       crash/recover kick at [+0.15/+0.25], well inside the tail. *)
    horizon = 1.0 +. duration +. 5.0;
    transient;
  }

type outcome = Driver.outcome = {
  violations : string list;
  verdicts : Vs_obs.Explain.violation list;
  deliveries : int;
  installs : int;
  distinct_views : int;
  eview_changes : int;
  events : int;
  stable : bool;
  quarantine : Driver.quarantine option;
  straggler : (string * float) option;
}

let run ?obs spec =
  let net_config =
    {
      Net.default_config with
      Net.drop_prob = spec.knobs.loss_prob;
      Net.dup_prob = spec.knobs.dup_prob;
      Net.delay_min = spec.knobs.delay_min;
      Net.delay_max = spec.knobs.delay_max;
    }
  in
  let setup =
    {
      Driver.seed = spec.seed;
      n = spec.nodes;
      protocol = spec.protocol;
      net_config;
    }
  in
  let traffic =
    {
      Driver.tr_start = 0.5;
      tr_until = spec.traffic_until;
      tr_gap = spec.traffic_gap;
    }
  in
  Driver.run_schedule ~traffic ?obs setup ~script:spec.script ~until:spec.horizon

let fails spec = (run spec).violations <> []
