(** One fully-specified, replayable checking campaign.

    A campaign [spec] is everything needed to reproduce a run bit-for-bit:
    the cluster seed, the protocol, the node count, the network fault knobs,
    the app-traffic pumping rate and the complete fault script.  Specs are
    either derived deterministically from a single integer seed
    ({!generate}) or read back from a shrunk repro artifact ({!Repro}).

    Running a spec ({!run}) drives {!Vs_harness.Driver.run_schedule} and
    returns the violations plus the run's counters. *)

module Faults = Vs_harness.Faults
module Driver = Vs_harness.Driver

type knobs = {
  loss_prob : float;   (** per-message drop probability *)
  dup_prob : float;    (** per-delivery duplication probability *)
  delay_min : float;   (** lower bound of the per-message delay *)
  delay_max : float;   (** upper bound (jitter = max - min) *)
}

val default_knobs : knobs
(** The {!Vs_net.Net.default_config} delays, no loss, no duplication. *)

type spec = {
  seed : int64;        (** the cluster / simulator seed *)
  protocol : Driver.protocol;
  nodes : int;
  knobs : knobs;
  script : Faults.script;
  traffic_gap : float; (** mean gap between app multicasts; [<= 0.] = none *)
  traffic_until : float;
  horizon : float;     (** run the simulation until this virtual time *)
  transient : bool;
      (** the script may contain {!Faults.Corrupt} actions and the run is
          judged by the stabilization oracle *)
}

val equal_spec : spec -> spec -> bool

val weight : spec -> int
(** Size measure used by the shrinker: script actions + nodes, plus one for
    each enabled fault dimension (loss, duplication, jitter, traffic). *)

val describe : spec -> string
(** One-line summary: seed, protocol, sizes, knobs. *)

val generate :
  ?protocol:Driver.protocol ->
  ?transient:bool ->
  seed:int ->
  nodes:int ->
  quick:bool ->
  unit ->
  spec
(** Deterministically derive a campaign from an integer seed: a random fault
    script over the given node count plus randomized network-fault knobs
    (loss up to 15%, duplication up to 10%, widened delay jitter, randomized
    traffic rate).  [quick] shortens the churn window.  [protocol] defaults
    to a seed-determined choice; the explorer passes both explicitly.
    [transient] (default false) adds the transient-corruption axis: the
    script draws {!Faults.Corrupt} actions with a seed-derived weight and
    the run is judged by the stabilization oracle.  With [transient] off
    the derivation is byte-identical to the pre-transient generator. *)

type outcome = Driver.outcome = {
  violations : string list;
  verdicts : Vs_obs.Explain.violation list;
  deliveries : int;
  installs : int;
  distinct_views : int;
  eview_changes : int;
  events : int;
  stable : bool;
  quarantine : Driver.quarantine option;
  straggler : (string * float) option;
      (** vspath straggler verdict; only when [?obs] recorded at Full *)
}

val run : ?obs:Vs_obs.Recorder.t -> spec -> outcome
(** Deterministic: running the same spec twice yields identical outcomes.
    [?obs] receives the run's event stream (pass a [Full]-level recorder to
    capture per-message traffic too). *)

val fails : spec -> bool
(** [run spec] produced at least one violation — the shrinker's default
    failure predicate. *)
