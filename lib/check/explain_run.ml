(* The run-level explanation report: re-runs nothing, just folds an already
   recorded stream through Lineage and pairs every structured verdict with
   its causal slice.  One builder serves the CLI `explain` subcommand, the
   failure paths of campaign/check/sweep, corpus attachments, and the
   @explain-corpus determinism guard — so they cannot drift apart. *)

module Recorder = Vs_obs.Recorder
module Event = Vs_obs.Event
module Explain = Vs_obs.Explain
module Lineage = Vs_obs.Lineage
module Json = Vs_obs.Json
module Driver = Vs_harness.Driver

type t = {
  header : string list;  (* spec description + headline counters *)
  explanations : Explain.explanation list;
  lineage : Lineage.t;
}

let clean t = t.explanations = []

let conservation_totals (lineage : Lineage.t) =
  List.fold_left
    (fun (copies, received, in_flight) (l : Lineage.lifecycle) ->
      (copies + l.l_copies, received + l.l_received, in_flight + l.l_in_flight))
    (0, 0, 0) lineage.lifecycles

let build ~(spec : Campaign.spec) ~(outcome : Campaign.outcome) ~entries =
  let lineage = Lineage.of_entries entries in
  let header =
    [
      Campaign.describe spec;
      Printf.sprintf
        "deliveries=%d installs=%d views=%d eview-changes=%d events=%d \
         stable=%b"
        outcome.Campaign.deliveries outcome.installs outcome.distinct_views
        outcome.eview_changes outcome.events outcome.stable;
    ]
    @
    match outcome.Campaign.quarantine with
    | None -> []
    | Some q ->
        [
          Printf.sprintf
            "stabilization: bound=%d fresh-views=%d recovered=%s \
             quarantined=%d"
            q.Driver.q_bound q.Driver.q_views
            (match q.Driver.q_cut with
            | Some c -> Printf.sprintf "t=%.3f" c
            | None -> "never")
            q.Driver.q_quarantined;
        ]
  in
  let explanations =
    List.map (Explain.explain ~lineage ~entries) outcome.Campaign.verdicts
  in
  { header; explanations; lineage }

let to_text t =
  let b = Buffer.create 1024 in
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    t.header;
  (match t.explanations with
  | [] ->
      let copies, received, in_flight = conservation_totals t.lineage in
      Buffer.add_string b
        (Printf.sprintf
           "clean run: no property violations\n\
            lineage: %d messages tracked, %d copies on wire, %d received, %d \
            in flight at end\n\
            view graph: %d views, %d transitions, %d splits, %d merges\n"
           (List.length t.lineage.Lineage.lifecycles)
           copies received in_flight
           (List.length t.lineage.Lineage.graph.Lineage.vnodes)
           (List.length t.lineage.Lineage.graph.Lineage.vedges)
           (List.length (Lineage.splits t.lineage.Lineage.graph))
           (List.length (Lineage.merges t.lineage.Lineage.graph)))
  | es ->
      Buffer.add_string b
        (Printf.sprintf "%d violation(s):\n" (List.length es));
      List.iteri
        (fun i e ->
          Buffer.add_string b (Printf.sprintf "[%d] " (i + 1));
          Buffer.add_string b (Explain.to_text e))
        es);
  Buffer.contents b

let to_json t =
  let copies, received, in_flight = conservation_totals t.lineage in
  Json.Obj
    [
      ("header", Json.Arr (List.map (fun l -> Json.Str l) t.header));
      ("clean", Json.Bool (clean t));
      ( "lineage",
        Json.Obj
          [
            ( "messages",
              Json.Int (List.length t.lineage.Lineage.lifecycles) );
            ("copies", Json.Int copies);
            ("received", Json.Int received);
            ("in_flight", Json.Int in_flight);
            ( "views",
              Json.Int (List.length t.lineage.Lineage.graph.Lineage.vnodes) );
            ( "transitions",
              Json.Int (List.length t.lineage.Lineage.graph.Lineage.vedges) );
          ] );
      ( "explanations",
        Json.Arr (List.map Explain.to_json t.explanations) );
    ]

let graph t = t.lineage.Lineage.graph
