(** The run-level explanation report.

    Builds one {!t} from a campaign spec, its outcome and the recorded event
    stream: every structured verdict paired with its causal slice and
    lineage notes, or — for a clean run — a conservation and view-graph
    summary.  Both renderings are deterministic functions of their inputs,
    which is what the @explain-corpus alias asserts over the committed
    repros. *)

type t

val build :
  spec:Campaign.spec ->
  outcome:Campaign.outcome ->
  entries:Vs_obs.Recorder.entry list ->
  t

val clean : t -> bool
(** No violations. *)

val to_text : t -> string
(** Newline-terminated report: spec line, counters, then either the clean
    summary or one explanation block per verdict. *)

val to_json : t -> Vs_obs.Json.t

val graph : t -> Vs_obs.Lineage.graph
(** The run's view graph, for Mermaid/DOT export. *)
