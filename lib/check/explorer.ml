module Driver = Vs_harness.Driver

type failure = {
  f_seed : int;
  f_spec : Campaign.spec;
  f_outcome : Campaign.outcome;
  f_shrunk : Campaign.spec;
  f_shrink_stats : Shrink.stats;
}

type report = {
  start_seed : int;
  seeds : int;
  campaigns : int;
  total_events : int;
  total_deliveries : int;
  total_installs : int;
  failures : failure list;
}

let explore ?(start_seed = 1) ?(protocols = [ Driver.Vsync; Driver.Evs ])
    ?(transient = false) ?(shrink = true) ?max_shrink_attempts ?progress
    ~seeds ~nodes ~quick () =
  let campaigns = ref 0 in
  let total_events = ref 0 in
  let total_deliveries = ref 0 in
  let total_installs = ref 0 in
  let failures = ref [] in
  for seed = start_seed to start_seed + seeds - 1 do
    List.iter
      (fun protocol ->
        let spec = Campaign.generate ~protocol ~transient ~seed ~nodes ~quick () in
        let outcome = Campaign.run spec in
        incr campaigns;
        total_events := !total_events + outcome.Campaign.events;
        total_deliveries := !total_deliveries + outcome.Campaign.deliveries;
        total_installs := !total_installs + outcome.Campaign.installs;
        (match progress with Some f -> f ~seed spec outcome | None -> ());
        if outcome.Campaign.violations <> [] then begin
          let shrunk, stats =
            if shrink then
              Shrink.shrink ?max_attempts:max_shrink_attempts
                ~failing:Campaign.fails spec
            else (spec, { Shrink.attempts = 0; accepted = 0 })
          in
          failures :=
            {
              f_seed = seed;
              f_spec = spec;
              f_outcome = outcome;
              f_shrunk = shrunk;
              f_shrink_stats = stats;
            }
            :: !failures
        end)
      protocols
  done;
  {
    start_seed;
    seeds;
    campaigns = !campaigns;
    total_events = !total_events;
    total_deliveries = !total_deliveries;
    total_installs = !total_installs;
    failures = List.rev !failures;
  }
