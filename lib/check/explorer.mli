(** Seed-sweeping schedule explorer.

    Sweeps a contiguous range of integer seeds; each seed deterministically
    expands ({!Campaign.generate}) into one campaign per protocol — random
    churn x network fault knobs x app traffic — which is run and checked.
    Failing campaigns are shrunk to minimal repros ready to be persisted
    with {!Repro.save} and replayed forever after. *)

module Driver = Vs_harness.Driver

type failure = {
  f_seed : int;
  f_spec : Campaign.spec;       (** the original failing campaign *)
  f_outcome : Campaign.outcome; (** its violations *)
  f_shrunk : Campaign.spec;     (** minimized repro (= [f_spec] if shrinking
                                    was disabled) *)
  f_shrink_stats : Shrink.stats;
}

type report = {
  start_seed : int;
  seeds : int;
  campaigns : int;
  total_events : int;
  total_deliveries : int;
  total_installs : int;
  failures : failure list;      (** in discovery order *)
}

val explore :
  ?start_seed:int ->
  ?protocols:Driver.protocol list ->
  ?transient:bool ->
  ?shrink:bool ->
  ?max_shrink_attempts:int ->
  ?progress:(seed:int -> Campaign.spec -> Campaign.outcome -> unit) ->
  seeds:int ->
  nodes:int ->
  quick:bool ->
  unit ->
  report
(** [explore ~seeds:n] sweeps seeds [start_seed .. start_seed + n - 1]
    (default start 1) over both protocols (default), shrinking failures
    (default on).  [transient] (default false) adds the transient-corruption
    axis to every generated campaign.  [progress] is invoked after every
    campaign. *)
