module Faults = Vs_harness.Faults
module Driver = Vs_harness.Driver

(* ---------- minimal s-expressions (no parser dependency available) ---------- *)

type sexp = Atom of string | List of sexp list

let rec print_sexp buf = function
  | Atom a -> Buffer.add_string buf a
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          print_sexp buf item)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  print_sexp buf s;
  Buffer.contents buf

exception Parse_error of string

let parse_sexp text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* comment to end of line *)
        while !pos < n && text.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom_char c =
    match c with ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false | _ -> true
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | None -> raise (Parse_error "unclosed '('")
          | Some ')' -> advance ()
          | Some _ ->
              items := parse () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some _ ->
        let start = !pos in
        while (match peek () with Some c -> atom_char c | None -> false) do
          advance ()
        done;
        Atom (String.sub text start (!pos - start))
  in
  let s = parse () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing garbage after s-expression");
  s

(* ---------- conversions ---------- *)

(* Round-trip float formatting: the shortest of %.15g/%.16g/%.17g that
   parses back to the same double. *)
let float_atom f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match (try_prec 15, try_prec 16) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> Printf.sprintf "%.17g" f

let field name value = List [ Atom name; value ]

let corruption_to_sexp = function
  | Faults.Seq_skew k -> [ Atom "seq-skew"; Atom (string_of_int k) ]
  | Faults.Stability_smear (node, amount) ->
      [ Atom "stability-smear"; Atom (string_of_int node);
        Atom (string_of_int amount) ]
  | Faults.View_skew k -> [ Atom "view-skew"; Atom (string_of_int k) ]
  | Faults.Deps_truncate (node, k) ->
      [ Atom "deps-truncate"; Atom (string_of_int node);
        Atom (string_of_int k) ]

let action_to_sexp = function
  | Faults.Heal -> List [ Atom "heal" ]
  | Faults.Crash node -> List [ Atom "crash"; Atom (string_of_int node) ]
  | Faults.Recover node -> List [ Atom "recover"; Atom (string_of_int node) ]
  | Faults.Partition comps ->
      List
        (Atom "partition"
        :: List.map
             (fun comp -> List (List.map (fun x -> Atom (string_of_int x)) comp))
             comps)
  | Faults.Corrupt (node, c) ->
      List (Atom "corrupt" :: Atom (string_of_int node) :: corruption_to_sexp c)

let spec_to_sexp (spec : Campaign.spec) =
  List
    ([
      field "seed" (Atom (Int64.to_string spec.Campaign.seed));
      field "protocol" (Atom (Driver.protocol_to_string spec.Campaign.protocol));
      field "nodes" (Atom (string_of_int spec.Campaign.nodes));
      field "loss" (Atom (float_atom spec.Campaign.knobs.Campaign.loss_prob));
      field "dup" (Atom (float_atom spec.Campaign.knobs.Campaign.dup_prob));
      field "delay-min" (Atom (float_atom spec.Campaign.knobs.Campaign.delay_min));
      field "delay-max" (Atom (float_atom spec.Campaign.knobs.Campaign.delay_max));
      field "traffic-gap" (Atom (float_atom spec.Campaign.traffic_gap));
      field "traffic-until" (Atom (float_atom spec.Campaign.traffic_until));
      field "horizon" (Atom (float_atom spec.Campaign.horizon));
    ]
    (* Only transient specs carry the flag, so artifacts saved by the
       pre-transient grammar stay byte-identical on a save/load round
       trip. *)
    @ (if spec.Campaign.transient then [ field "transient" (Atom "true") ]
       else [])
    @ [
      field "script"
        (List
           (List.map
              (fun (time, action) ->
                List [ Atom (float_atom time); action_to_sexp action ])
              spec.Campaign.script));
    ])

let to_string spec =
  (* One field per line keeps the artifacts diffable. *)
  match spec_to_sexp spec with
  | List fields ->
      "(" ^ String.concat "\n " (List.map sexp_to_string fields) ^ ")\n"
  | Atom _ -> assert false

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let as_int = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some v -> v
      | None -> fail "expected an integer, got %S" a)
  | List _ -> fail "expected an integer atom"

let as_float = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some v -> v
      | None -> fail "expected a float, got %S" a)
  | List _ -> fail "expected a float atom"

let action_of_sexp = function
  | List [ Atom "heal" ] -> Faults.Heal
  | List [ Atom "crash"; node ] -> Faults.Crash (as_int node)
  | List [ Atom "recover"; node ] -> Faults.Recover (as_int node)
  | List (Atom "partition" :: comps) ->
      Faults.Partition
        (List.map
           (function
             | List nodes -> List.map as_int nodes
             | Atom _ -> fail "partition component must be a list")
           comps)
  | List (Atom "corrupt" :: node :: kind) ->
      let c =
        match kind with
        | [ Atom "seq-skew"; k ] -> Faults.Seq_skew (as_int k)
        | [ Atom "stability-smear"; m; amount ] ->
            Faults.Stability_smear (as_int m, as_int amount)
        | [ Atom "view-skew"; k ] -> Faults.View_skew (as_int k)
        | [ Atom "deps-truncate"; m; k ] ->
            Faults.Deps_truncate (as_int m, as_int k)
        | _ -> fail "unknown corruption kind"
      in
      Faults.Corrupt (as_int node, c)
  | s -> fail "unknown action %S" (sexp_to_string s)

let spec_of_sexp sexp =
  let fields =
    match sexp with
    | List items ->
        List.map
          (function
            | List [ Atom name; value ] -> (name, value)
            | s -> fail "expected a (name value) field, got %S" (sexp_to_string s))
          items
    | Atom _ -> fail "expected a field list"
  in
  let get name =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> fail "missing field %S" name
  in
  let seed =
    match get "seed" with
    | Atom a -> (
        match Int64.of_string_opt a with
        | Some v -> v
        | None -> fail "bad seed %S" a)
    | List _ -> fail "bad seed"
  in
  let protocol =
    match get "protocol" with
    | Atom "vsync" -> Driver.Vsync
    | Atom "evs" -> Driver.Evs
    | s -> fail "unknown protocol %S" (sexp_to_string s)
  in
  let script =
    match get "script" with
    | List entries ->
        List.map
          (function
            | List [ time; action ] -> (as_float time, action_of_sexp action)
            | s -> fail "bad script entry %S" (sexp_to_string s))
          entries
    | Atom _ -> fail "script must be a list"
  in
  {
    Campaign.seed;
    protocol;
    nodes = as_int (get "nodes");
    knobs =
      {
        Campaign.loss_prob = as_float (get "loss");
        dup_prob = as_float (get "dup");
        delay_min = as_float (get "delay-min");
        delay_max = as_float (get "delay-max");
      };
    script;
    traffic_gap = as_float (get "traffic-gap");
    traffic_until = as_float (get "traffic-until");
    horizon = as_float (get "horizon");
    (* Optional so artifacts written by the pre-transient grammar parse
       unchanged. *)
    transient =
      (match List.assoc_opt "transient" fields with
      | Some (Atom "true") -> true
      | Some _ | None -> false);
  }

let of_string text =
  match spec_of_sexp (parse_sexp text) with
  | spec -> Ok spec
  | exception Parse_error msg -> Error msg

(* ---------- file IO ---------- *)

let filename (spec : Campaign.spec) =
  Printf.sprintf "%s-seed%Ld-n%d.sexp"
    (Driver.protocol_to_string spec.Campaign.protocol)
    spec.Campaign.seed spec.Campaign.nodes

let save ~dir ?name spec =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let name = match name with Some n -> n | None -> filename spec in
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (to_string spec);
  close_out oc;
  path

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      of_string text

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sexp")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
