(** Replayable repro artifacts: campaign specs as s-expressions on disk.

    A shrunk failing campaign is persisted under [test/corpus/] as a small
    s-expression; the corpus replay suite loads every artifact and re-runs
    it forever after, so a once-found schedule can never silently regress.
    The format is plain text, diffable and hand-editable:

    {v
    ((seed 42) (protocol evs) (nodes 5)
     (loss 0.05) (dup 0) (delay-min 0.001) (delay-max 0.01)
     (traffic-gap 0.03) (traffic-until 7.5) (horizon 12)
     (script ((1.25 (crash 2)) (1.9 (partition (0 1) (3 4)))
              (2.5 (heal)) (3.01 (recover 2)))))
    v}

    Transient campaigns additionally carry a [(transient true)] field
    (omitted when false, so pre-transient artifacts round-trip
    byte-identically) and [(corrupt <node> <kind> <args>)] script actions
    with kinds [seq-skew k], [stability-smear m a], [view-skew k],
    [deps-truncate m k].

    Floats are printed with round-trip precision, so
    [of_string (to_string spec) = Ok spec] exactly. *)

val to_string : Campaign.spec -> string

val of_string : string -> (Campaign.spec, string) result

val filename : Campaign.spec -> string
(** Canonical artifact name: [<protocol>-seed<seed>-n<nodes>.sexp]. *)

val save : dir:string -> ?name:string -> Campaign.spec -> string
(** Write the artifact (creating [dir] if needed) and return its path.
    [name] defaults to {!filename}. *)

val load : string -> (Campaign.spec, string) result
(** Read one artifact back. *)

val load_dir : string -> (string * (Campaign.spec, string) result) list
(** Every [*.sexp] under the directory in sorted order, parsed; [] if the
    directory does not exist. *)
