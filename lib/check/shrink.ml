module Faults = Vs_harness.Faults

type stats = { attempts : int; accepted : int }

(* ---------- candidate reductions ---------- *)

let with_script spec script = { spec with Campaign.script }

(* Remove the contiguous chunk [i, i+size) of the script. *)
let drop_chunk spec i size =
  let script =
    List.filteri (fun j _ -> j < i || j >= i + size) spec.Campaign.script
  in
  with_script spec script

let chunk_removals spec =
  let len = List.length spec.Campaign.script in
  let rec sizes s acc = if s >= 1 then sizes (s / 2) (s :: acc) else acc in
  let sizes =
    if len = 0 then [] else List.sort_uniq Int.compare (sizes (len / 2) [ 1 ])
  in
  (* Largest chunks first. *)
  List.concat_map
    (fun size ->
      let rec offsets i acc =
        if i + size <= len then offsets (i + size) (i :: acc) else List.rev acc
      in
      List.map (fun i -> drop_chunk spec i size) (offsets 0 []))
    (List.rev sizes)

(* Remove the highest node: drop its crash/recover actions, take it out of
   partition components, and degrade partitions left with one component to
   heals. *)
let remove_top_node spec =
  if spec.Campaign.nodes <= 1 then []
  else begin
    let victim = spec.Campaign.nodes - 1 in
    let script =
      List.filter_map
        (fun (time, action) ->
          match action with
          | Faults.Crash n when n = victim -> None
          | Faults.Recover n when n = victim -> None
          | Faults.Corrupt (n, _) when n = victim -> None
          (* A corruption aimed at a surviving node but parameterized by the
             victim (smear source, truncated sender) retargets to node 0 —
             the member_for_node fallback would make it a self-corruption
             anyway, and keeping the action keeps the failure reachable. *)
          | Faults.Corrupt (n, Faults.Stability_smear (m, amount))
            when m = victim ->
              Some (time, Faults.Corrupt (n, Faults.Stability_smear (0, amount)))
          | Faults.Corrupt (n, Faults.Deps_truncate (m, k)) when m = victim ->
              Some (time, Faults.Corrupt (n, Faults.Deps_truncate (0, k)))
          | Faults.Crash _ | Faults.Recover _ | Faults.Heal
          | Faults.Corrupt _ ->
              Some (time, action)
          | Faults.Partition comps -> (
              let comps =
                List.filter_map
                  (fun comp ->
                    match List.filter (fun n -> n <> victim) comp with
                    | [] -> None
                    | comp -> Some comp)
                  comps
              in
              match comps with
              | [] | [ _ ] -> Some (time, Faults.Heal)
              | comps -> Some (time, Faults.Partition comps)))
        spec.Campaign.script
    in
    [ { spec with Campaign.nodes = victim; script } ]
  end

(* Coarsen each partition action: merge its last two components. *)
let partition_merges spec =
  List.concat_map
    (fun i ->
      match List.nth spec.Campaign.script i with
      | time, Faults.Partition comps when List.length comps >= 3 ->
          let rec merge_last = function
            | [ a; b ] -> [ a @ b ]
            | x :: rest -> x :: merge_last rest
            | [] -> []
          in
          let script =
            List.mapi
              (fun j entry ->
                if j = i then (time, Faults.Partition (merge_last comps))
                else entry)
              spec.Campaign.script
          in
          [ with_script spec script ]
      | _, _ -> [])
    (List.init (List.length spec.Campaign.script) (fun i -> i))

let knob_simplifications spec =
  let k = spec.Campaign.knobs in
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  if spec.Campaign.traffic_gap > 0. then
    add { spec with Campaign.traffic_gap = 0. };
  if k.Campaign.loss_prob > 0. then
    add { spec with Campaign.knobs = { k with Campaign.loss_prob = 0. } };
  if k.Campaign.dup_prob > 0. then
    add { spec with Campaign.knobs = { k with Campaign.dup_prob = 0. } };
  if k.Campaign.delay_max > Campaign.default_knobs.Campaign.delay_max then
    add
      {
        spec with
        Campaign.knobs =
          {
            k with
            Campaign.delay_max = Campaign.default_knobs.Campaign.delay_max;
          };
      };
  List.rev !candidates

(* Compress the schedule toward its first action and tighten the horizon.
   Only offered while the span is still meaningfully long, so repeated
   halving terminates. *)
let time_compressions spec =
  match spec.Campaign.script with
  | [] ->
      let tight = 2.0 in
      if spec.Campaign.horizon > tight then
        [ { spec with Campaign.horizon = tight; traffic_until = min spec.Campaign.traffic_until tight } ]
      else []
  | script ->
      let t0 = List.fold_left (fun a (t, _) -> min a t) infinity script in
      let t_max = List.fold_left (fun a (t, _) -> max a t) 0. script in
      let halved =
        if t_max -. t0 > 0.5 then
          let scale t = t0 +. ((t -. t0) *. 0.5) in
          [
            {
              spec with
              Campaign.script = List.map (fun (t, a) -> (scale t, a)) script;
              traffic_until = scale spec.Campaign.traffic_until;
              horizon = scale spec.Campaign.horizon;
            };
          ]
        else []
      in
      let tight_horizon = t_max +. 2.0 in
      let tightened =
        if spec.Campaign.horizon > tight_horizon +. 0.25 then
          [
            {
              spec with
              Campaign.horizon = tight_horizon;
              traffic_until = min spec.Campaign.traffic_until tight_horizon;
            };
          ]
        else []
      in
      halved @ tightened

let candidates spec =
  chunk_removals spec @ remove_top_node spec @ partition_merges spec
  @ knob_simplifications spec @ time_compressions spec

(* ---------- the greedy ddmin loop ---------- *)

let shrink ?(max_attempts = 400) ~failing spec =
  if not (failing spec) then
    invalid_arg "Shrink.shrink: the starting spec does not fail";
  let attempts = ref 0 in
  let accepted = ref 0 in
  let rec improve spec =
    let rec try_candidates = function
      | [] -> spec (* local minimum *)
      | candidate :: rest ->
          if !attempts >= max_attempts then spec
          else if Campaign.equal_spec candidate spec then try_candidates rest
          else begin
            incr attempts;
            if failing candidate then begin
              incr accepted;
              improve candidate
            end
            else try_candidates rest
          end
    in
    if !attempts >= max_attempts then spec else try_candidates (candidates spec)
  in
  let result = improve spec in
  (result, { attempts = !attempts; accepted = !accepted })
