(** Delta-debugging shrinker for failing campaign specs.

    Given a spec on which [failing] holds, greedily applies reductions that
    preserve the failure, largest first:

    - drop contiguous chunks of the fault script (halves, quarters, ...,
      single actions);
    - remove the highest node (rewriting the script to not mention it);
    - merge partition components (fewer, coarser components);
    - switch off fault dimensions (loss, duplication, extra jitter, app
      traffic);
    - compress the schedule in time and tighten the horizon.

    Every candidate is evaluated by re-running it deterministically, so the
    result is a spec that still fails and from which no single reduction can
    be removed — a local minimum, the classic ddmin guarantee. *)

type stats = {
  attempts : int;  (** candidate specs evaluated *)
  accepted : int;  (** reductions that preserved the failure *)
}

val shrink :
  ?max_attempts:int ->
  failing:(Campaign.spec -> bool) ->
  Campaign.spec ->
  Campaign.spec * stats
(** [shrink ~failing spec] requires [failing spec = true] (raises
    [Invalid_argument] otherwise) and returns a minimized spec on which
    [failing] still holds.  [max_attempts] (default 400) bounds the number
    of candidate evaluations. *)
