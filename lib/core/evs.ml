module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Endpoint = Vs_vsync.Endpoint
module Wire = Vs_vsync.Wire
module Net = Vs_net.Net
module Sim = Vs_sim.Sim

type ctl =
  | Svset_merge_req of E_view.Svset_id.t list
  | Subview_merge_req of E_view.Subview_id.t list

type 'a wire =
  | App of 'a
  | Scoped of { sv : E_view.Subview_id.t; payload : 'a }
  | Ctl of ctl

type 'ann evs_ann = {
  ea_snapshot : E_view.t;
      (* the reporter's whole enriched view at flush time: the rebuild
         takes, per prior-view group, the freshest snapshot, which subsumes
         the tags of members that acked before a late in-flight merge *)
  ea_app : 'ann option;
}

type ('a, 'ann) net = (('a wire, 'ann evs_ann) Wire.t) Net.t

let make_net ?(payload_size = fun _ -> 8) ?(ann_size = fun _ -> 8)
    ?(ident = fun _ -> None) sim config =
  let id_size = 8 in
  let wire_size = function
    | App a -> payload_size a
    | Scoped { payload; _ } -> id_size + payload_size payload
    | Ctl (Svset_merge_req ids) -> id_size * (1 + List.length ids)
    | Ctl (Subview_merge_req ids) -> id_size * (1 + List.length ids)
  in
  let evs_ann_size a =
    (2 * id_size)
    + (12 * List.length (E_view.members a.ea_snapshot))
    + match a.ea_app with Some x -> ann_size x | None -> 0
  in
  let wire_ident = function
    | App a | Scoped { payload = a; _ } -> ident a
    | Ctl _ -> None
  in
  Net.create
    ~size_of:(Wire.size_of ~user:wire_size ~ann:evs_ann_size)
    ~describe:Wire.kind
    ~ident:(Wire.ident ~user:wire_ident)
    ~idents:(Wire.idents ~user:wire_ident)
    sim config

type cause =
  | View_change
  | Svset_merged of E_view.Svset_id.t
  | Subview_merged of E_view.Subview_id.t

type 'ann eview_event = {
  eview : E_view.t;
  cause : cause;
  annotations : (Proc_id.t * 'ann option) list;
  priors : (Proc_id.t * View.Id.t) list;
}

type ('a, 'ann) callbacks = {
  on_eview : 'ann eview_event -> unit;
  on_message : sender:Proc_id.t -> 'a -> unit;
}

type stats = { eview_changes : int; merges_rejected : int }

type ('a, 'ann) t = {
  sim : Sim.t;
  callbacks : ('a, 'ann) callbacks;
  mutable ep : ('a wire, 'ann evs_ann) Endpoint.t option;
  mutable eview : E_view.t;
  mutable app_ann : 'ann option;
  mutable s_echanges : int;
  mutable s_rejected : int;
}

let get_ep t =
  match t.ep with Some ep -> ep | None -> assert false

let me t = Endpoint.me (get_ep t)

let eview t = t.eview

let view t = t.eview.E_view.view

let my_subview t =
  match E_view.subview_of (me t) t.eview with
  | Some sv -> sv
  | None -> assert false (* every member belongs to exactly one subview *)

let my_svset t =
  match E_view.svset_of_subview (my_subview t).E_view.sv_id t.eview with
  | Some ss -> ss
  | None -> assert false

(* Keep the vsync-level annotation in sync with our structural state so
   that whenever a flush happens we report the current snapshot. *)
let refresh_annotation t =
  Endpoint.set_annotation (get_ep t)
    (Some { ea_snapshot = t.eview; ea_app = t.app_ann })

let log_eview t ~cause =
  Sim.emit t.sim
    (Vs_obs.Event.Eview
       {
         proc = Proc_id.to_obs (me t);
         vid = View.Id.to_obs t.eview.E_view.view.View.id;
         eseq = t.eview.E_view.eseq;
         cause;
         subviews = List.length t.eview.E_view.structure.E_view.subviews;
         svsets = List.length t.eview.E_view.structure.E_view.svsets;
       })

let cause_label = function
  | View_change -> "view"
  | Svset_merged id -> "svset-merge " ^ E_view.Svset_id.to_string id
  | Subview_merged id -> "subview-merge " ^ E_view.Subview_id.to_string id

let handle_view t (ev : 'ann evs_ann Endpoint.view_event) =
  let raw =
    List.map
      (fun (p, ann) ->
        ( p,
          {
            E_view.sr_snapshot = Option.map (fun a -> a.ea_snapshot) ann;
            sr_prior = List.assoc_opt p ev.Endpoint.priors;
          } ))
      ev.Endpoint.annotations
  in
  t.eview <- E_view.rebuild_from_snapshots ev.Endpoint.view raw;
  refresh_annotation t;
  log_eview t ~cause:(cause_label View_change);
  let annotations =
    List.map
      (fun (p, ann) ->
        (p, Option.bind ann (fun a -> a.ea_app)))
      ev.Endpoint.annotations
  in
  t.callbacks.on_eview
    { eview = t.eview; cause = View_change; annotations; priors = ev.Endpoint.priors }

let handle_ctl t ctl =
  let result =
    match ctl with
    | Svset_merge_req ids ->
        Result.map
          (fun (ev, id) -> (ev, Svset_merged id))
          (E_view.apply_svset_merge t.eview ids)
    | Subview_merge_req ids ->
        Result.map
          (fun (ev, id) -> (ev, Subview_merged id))
          (E_view.apply_subview_merge t.eview ids)
  in
  match result with
  | Ok (eview, cause) ->
      t.eview <- eview;
      t.s_echanges <- t.s_echanges + 1;
      refresh_annotation t;
      log_eview t ~cause:(cause_label cause);
      t.callbacks.on_eview { eview; cause; annotations = []; priors = [] }
  | Error `No_effect -> t.s_rejected <- t.s_rejected + 1

let create sim net ~me:me_ ~universe ~config ~callbacks =
  let t =
    {
      sim;
      callbacks;
      ep = None;
      eview = E_view.initial me_;
      app_ann = None;
      s_echanges = 0;
      s_rejected = 0;
    }
  in
  let ep_callbacks =
    {
      Endpoint.on_view = (fun ev -> handle_view t ev);
      on_message =
        (fun ~sender wire ->
          match wire with
          | App a -> t.callbacks.on_message ~sender a
          | Scoped { sv; payload } ->
              (* Delivered group-wide, consumed only within the named
                 subview — "external operations are performed within a
                 subview and not across different subviews" (Sec. 6.2). *)
              let mine =
                match E_view.subview_of (me t) t.eview with
                | Some my_sv -> E_view.Subview_id.equal my_sv.E_view.sv_id sv
                | None -> false
              in
              if mine then t.callbacks.on_message ~sender payload
          | Ctl ctl -> handle_ctl t ctl);
    }
  in
  let ep =
    Endpoint.create sim net ~me:me_ ~universe ~config ~callbacks:ep_callbacks
  in
  t.ep <- Some ep;
  refresh_annotation t;
  t

let multicast t ?order payload = Endpoint.multicast (get_ep t) ?order (App payload)

let multicast_subview t ?order payload =
  let sv = (my_subview t).E_view.sv_id in
  Endpoint.multicast (get_ep t) ?order (Scoped { sv; payload })

(* Merge requests must be totally ordered so that every member applies them
   at the same point of its e-view sequence (Property 6.1). *)
let svset_merge t ids =
  Endpoint.multicast (get_ep t) ~order:Endpoint.Total (Ctl (Svset_merge_req ids))

let subview_merge t ids =
  Endpoint.multicast (get_ep t) ~order:Endpoint.Total (Ctl (Subview_merge_req ids))

let set_annotation t ann =
  t.app_ann <- ann;
  refresh_annotation t

let is_blocked t = Endpoint.is_blocked (get_ep t)

let is_alive t = Endpoint.is_alive (get_ep t)

let leave t = Endpoint.leave (get_ep t)

let kill t = Endpoint.kill (get_ep t)

let corrupt t c = Endpoint.corrupt (get_ep t) c

let endpoint_stats t = Endpoint.stats (get_ep t)

let stats t = { eview_changes = t.s_echanges; merges_rejected = t.s_rejected }
