(** Enriched view synchrony service (Section 6 of the paper).

    Wraps a view-synchronous endpoint and maintains the subview / sv-set
    structure on top of it:

    - a joining process appears in a new view inside a fresh singleton
      subview in a fresh singleton sv-set;
    - {!svset_merge} and {!subview_merge} ride on totally-ordered multicast,
      so e-view changes within a view are totally ordered at all members
      (Property 6.1) and, being ordinary messages, define consistent cuts
      (Property 6.2);
    - across view changes each member's subview and sv-set identity is
      carried in its flush annotation, and every member deterministically
      rebuilds the structure, preserving it (Property 6.3).

    The system attaches no meaning to the structure; it maintains it on
    behalf of applications — typically following the paper's Section 6.2
    methodology: run external operations within a subview, run internal
    (reconciliation) operations across the subviews of one sv-set, and merge
    the subviews when the internal operation completes. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Endpoint = Vs_vsync.Endpoint

type 'a wire
(** EVS wire payload wrapping the application payload ['a]. *)

type 'ann evs_ann
(** EVS flush annotation wrapping the application annotation ['ann]. *)

type ('a, 'ann) net = (('a wire, 'ann evs_ann) Vs_vsync.Wire.t) Vs_net.Net.t
(** The network type an EVS stack runs over. *)

val make_net :
  ?payload_size:('a -> int) ->
  ?ann_size:('ann -> int) ->
  ?ident:('a -> Vs_obs.Event.msg option) ->
  Vs_sim.Sim.t ->
  Vs_net.Net.config ->
  ('a, 'ann) net
(** Convenience constructor threading byte-accounting — and, via [?ident],
    the (origin, seq) correlation identity of application payloads — through
    the EVS wire wrappers. *)

type cause =
  | View_change       (** a new view was installed *)
  | Svset_merged of E_view.Svset_id.t    (** an SV-SetMerge was applied *)
  | Subview_merged of E_view.Subview_id.t  (** a SubviewMerge was applied *)

type 'ann eview_event = {
  eview : E_view.t;
  cause : cause;
  annotations : (Proc_id.t * 'ann option) list;
      (** application annotations collected at the flush (empty for
          within-view e-view changes) *)
  priors : (Proc_id.t * View.Id.t) list;
}

type ('a, 'ann) callbacks = {
  on_eview : 'ann eview_event -> unit;
  on_message : sender:Proc_id.t -> 'a -> unit;
}

type ('a, 'ann) t

val create :
  Vs_sim.Sim.t ->
  ('a, 'ann) net ->
  me:Proc_id.t ->
  universe:int list ->
  config:Endpoint.config ->
  callbacks:('a, 'ann) callbacks ->
  ('a, 'ann) t

val me : ('a, 'ann) t -> Proc_id.t

val eview : ('a, 'ann) t -> E_view.t
(** Current enriched view. *)

val view : ('a, 'ann) t -> View.t

val my_subview : ('a, 'ann) t -> E_view.subview

val my_svset : ('a, 'ann) t -> E_view.svset

val multicast : ('a, 'ann) t -> ?order:Endpoint.order -> 'a -> unit

val multicast_subview : ('a, 'ann) t -> ?order:Endpoint.order -> 'a -> unit
(** Multicast scoped to the caller's current subview: only processes that
    are in that subview when the message arrives deliver it — the Section
    6.2 methodology's "external operations are performed within a subview".
    Scoping is evaluated at delivery time, so a process that has since
    moved to another subview (an application merge) does not consume it. *)

val svset_merge : ('a, 'ann) t -> E_view.Svset_id.t list -> unit
(** Request an SV-SetMerge.  Applied — and announced through [on_eview] with
    the new identifier — when the totally-ordered request is delivered; a
    request that races with a view change, or whose identifiers no longer
    exist, has no effect. *)

val subview_merge : ('a, 'ann) t -> E_view.Subview_id.t list -> unit
(** Request a SubviewMerge; no effect unless the (surviving) subviews all
    belong to the same sv-set. *)

val set_annotation : ('a, 'ann) t -> 'ann option -> unit
(** Application annotation piggybacked on this process's next flush. *)

val is_blocked : ('a, 'ann) t -> bool

val is_alive : ('a, 'ann) t -> bool

val leave : ('a, 'ann) t -> unit

val kill : ('a, 'ann) t -> unit

val corrupt : ('a, 'ann) t -> Endpoint.corruption -> string
(** Apply a transient state corruption to the underlying endpoint; returns
    the corrupted field name (see {!Endpoint.corrupt}). *)

val endpoint_stats : ('a, 'ann) t -> Endpoint.stats

type stats = {
  eview_changes : int;    (** within-view e-view changes applied *)
  merges_rejected : int;  (** merge requests that had no effect *)
}

val stats : ('a, 'ann) t -> stats
