module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History
module Faults = Vs_harness.Faults
module Sim = Vs_sim.Sim
module Rng = Vs_util.Rng

type 'app t = {
  nodes : int list;
  make : node:int -> inc:int -> 'app;
  kill : 'app -> unit;
  is_alive : 'app -> bool;
  me : 'app -> Proc_id.t;
  history : 'app -> History.t;
  current : (int, 'app) Hashtbl.t;     (* node -> live instance *)
  next_inc : (int, int) Hashtbl.t;
  mutable rev_all : 'app list;
}

let boot t node =
  let inc = Option.value ~default:0 (Hashtbl.find_opt t.next_inc node) in
  Hashtbl.replace t.next_inc node (inc + 1);
  let app = t.make ~node ~inc in
  Hashtbl.replace t.current node app;
  t.rev_all <- app :: t.rev_all

let create ~sim:_ ~nodes ~make ~kill ~is_alive ~me ~history =
  let t =
    {
      nodes;
      make;
      kill;
      is_alive;
      me;
      history;
      current = Hashtbl.create 16;
      next_inc = Hashtbl.create 16;
      rev_all = [];
    }
  in
  List.iter (boot t) nodes;
  t

let live t =
  List.filter_map
    (fun node ->
      match Hashtbl.find_opt t.current node with
      | Some app when t.is_alive app -> Some app
      | Some _ | None -> None)
    t.nodes

let on_node t node =
  match Hashtbl.find_opt t.current node with
  | Some app when t.is_alive app -> Some app
  | Some _ | None -> None

let all_ever t = List.rev t.rev_all

let history_of t proc =
  List.find_map
    (fun app ->
      if Proc_id.equal (t.me app) proc then Some (t.history app) else None)
    t.rev_all

let apply_action t action net_action =
  match action with
  | Faults.Partition _ | Faults.Heal -> net_action action
  | Faults.Crash node -> (
      match on_node t node with
      | Some app ->
          t.kill app;
          Hashtbl.remove t.current node
      | None -> ())
  | Faults.Recover node -> (
      match on_node t node with Some _ -> () | None -> boot t node)
  (* Corruptions target Endpoint internals; the experiment fleets are typed
     over an abstract app and run throughput experiments, not the
     stabilization oracle, so the action is a no-op here. *)
  | Faults.Corrupt _ -> ()

let run_script t sim script ~net_action =
  Faults.schedule sim script ~apply:(fun action ->
      Sim.record sim ~component:"faults" (Faults.to_string action);
      apply_action t action net_action)

(* ---------- open-loop load generation ---------- *)

type load = {
  mutable offered : int;
  mutable accepted : int;
  mutable rejected : int;
}

(* Poisson arrivals at [rate] ops/s from [clients] simulated clients, each
   pinned to a fleet node round-robin.  Open loop: arrival times are drawn
   up front from the exponential inter-arrival process and never wait for
   completions, so a slow data plane shows up as latency, not as a reduced
   offered rate.  Each fired arrival schedules the next, keeping the event
   heap small at high rates.  Returns the live counters; read them after
   running the sim past [until]. *)
let open_loop t sim ~rng ~start ~until ~rate ~clients ~submit =
  if rate <= 0. then invalid_arg "App_fleet.open_loop: rate must be positive";
  if clients <= 0 then
    invalid_arg "App_fleet.open_loop: need at least one client";
  let load = { offered = 0; accepted = 0; rejected = 0 } in
  let nodes = Array.of_list t.nodes in
  let n_nodes = Array.length nodes in
  if n_nodes = 0 then invalid_arg "App_fleet.open_loop: empty fleet";
  let mean_gap = 1.0 /. rate in
  let rec fire time () =
    let op = load.offered in
    load.offered <- op + 1;
    let client = Rng.int rng clients in
    let node = nodes.(client mod n_nodes) in
    let ok =
      match on_node t node with
      | Some app -> submit app ~client ~op
      | None -> false (* client's node is down: op refused at the door *)
    in
    if ok then load.accepted <- load.accepted + 1
    else load.rejected <- load.rejected + 1;
    schedule time
  and schedule time =
    let next = time +. Rng.exponential rng mean_gap in
    if next < until then ignore (Sim.at sim next (fire next))
  in
  schedule start;
  load

(* Walk the history backwards from the View_event of [vid]: the first
   Mode_event before it is the mode the process was in at the cut. *)
let prior_state_of t proc ~vid =
  match history_of t proc with
  | None -> (Classify.Was_fresh, None)
  | Some h ->
      let events = History.events h in
      (* Find the index of the install of [vid]; if absent (the process
         died first), analyse the whole history. *)
      let rec find_ix i = function
        | { History.event = History.View_event v; _ } :: _
          when View.Id.equal v.View.id vid ->
            Some i
        | _ :: rest -> find_ix (i + 1) rest
        | [] -> None
      in
      let horizon =
        match find_ix 0 events with
        | Some i -> Vs_util.Listx.take i events
        | None -> events
      in
      let rec scan mode prior = function
        | [] -> (mode, prior)
        | { History.event; _ } :: rest ->
            let mode, prior =
              match event with
              | History.Mode_event { mode = m; _ } ->
                  let state =
                    match m with
                    | Mode.Normal -> Classify.Was_normal
                    | Mode.Reduced -> Classify.Was_reduced
                    | Mode.Settling -> Classify.Was_settling
                  in
                  (state, prior)
              | History.View_event v -> (mode, Some v.View.id)
              | History.Deliver _ | History.Eview_event _ -> (mode, prior)
            in
            scan mode prior rest
      in
      scan Classify.Was_fresh None horizon
