(** Fleets of application instances under fault scripts — shared driver for
    the application-level experiments (E1, E5, E7, E8).

    A fleet tracks every instance ever created (dead incarnations included),
    so post-hoc analysis can read any process's history, and interprets
    fault-script actions by killing and re-creating instances. *)

module Proc_id = Vs_net.Proc_id
module History = Evs_core.History

type 'app t

val create :
  sim:Vs_sim.Sim.t ->
  nodes:int list ->
  make:(node:int -> inc:int -> 'app) ->
  kill:('app -> unit) ->
  is_alive:('app -> bool) ->
  me:('app -> Proc_id.t) ->
  history:('app -> History.t) ->
  'app t
(** [make] boots an instance (it must register itself on the fleet's
    network); initial incarnations are created immediately. *)

val live : 'app t -> 'app list

val on_node : 'app t -> int -> 'app option

val all_ever : 'app t -> 'app list

val history_of : 'app t -> Proc_id.t -> History.t option
(** History of any process identity that ever existed in the fleet. *)

val apply_action : 'app t -> Vs_harness.Faults.action -> (Vs_harness.Faults.action -> unit) -> unit
(** Interpret crash/recover (partitions/heals are delegated to the given
    network handler). *)

val run_script :
  'app t -> Vs_sim.Sim.t -> Vs_harness.Faults.script ->
  net_action:(Vs_harness.Faults.action -> unit) -> unit

(** {2 Open-loop load generation} *)

type load = {
  mutable offered : int;   (** arrivals fired *)
  mutable accepted : int;  (** [submit] returned [true] *)
  mutable rejected : int;  (** [submit] returned [false], or node down *)
}

val open_loop :
  'app t ->
  Vs_sim.Sim.t ->
  rng:Vs_util.Rng.t ->
  start:float ->
  until:float ->
  rate:float ->
  clients:int ->
  submit:('app -> client:int -> op:int -> bool) ->
  load
(** Open-loop traffic: Poisson arrivals at [rate] ops/s, attributed to
    [clients] simulated clients pinned round-robin to the fleet's nodes.
    Arrivals never wait for completions — overload appears as latency, not
    as back-pressure on the generator.  [submit app ~client ~op] issues
    operation number [op] (global, 0-based) and reports acceptance.
    Returns live counters; read them once the sim has run past [until]. *)

(** {2 Post-hoc mode analysis} *)

val prior_state_of :
  'app t ->
  Proc_id.t ->
  vid:Vs_gms.View.Id.t ->
  Evs_core.Classify.prior_state * Vs_gms.View.Id.t option
(** The mode a process was in, and the view it came from, just before it
    installed [vid] — reconstructed from its recorded history.  Falls back
    to the process's final recorded state if it died before installing
    [vid] (it was a member of the proposed view but never made it). *)
