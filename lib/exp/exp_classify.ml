(* Experiment E5 — Sections 4 / 6.2: can the shared-state problem be
   classified from local information?

   Application fleets (the mergeable KV store and the quorum replicated
   file) run under random fault campaigns.  Every time a process enters
   Settling, three classifiers are scored against the omniscient oracle:

   - "enriched": the Section 6.2 reasoning over the subview/sv-set
     structure, as the runtime itself computes it;
   - "flat": the Section 4 local reasoning over the member list and the
     process's own past — generally a set of possible verdicts;
   - the oracle reconstructs every member's prior mode and view from the
     recorded histories (the harness is omniscient; processes are not).

   Reported: how often each local classifier is exact, how often the flat
   one is ambiguous, and whether it is at least sound (the truth among its
   candidates). *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Mode = Evs_core.Mode
module Classify = Evs_core.Classify
module History = Evs_core.History
module Endpoint = Vs_vsync.Endpoint
module Store = Vs_store.Store
module Go = Vs_apps.Group_object
module Kv = Vs_apps.Kv_store
module Rf = Vs_apps.Replicated_file
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

type observation = {
  o_proc : Proc_id.t;
  o_eview : E_view.t;
  o_enriched : Classify.problem;
}

type scores = {
  mutable settles : int;
  mutable enriched_exact : int;
  mutable flat_exact : int;
  mutable flat_ambiguous : int;
  mutable flat_sound : int;
}

let new_scores () =
  { settles = 0; enriched_exact = 0; flat_exact = 0; flat_ambiguous = 0; flat_sound = 0 }

(* The observer's own previous view (composition) before installing [vid]:
   the last View_event preceding it in its history. *)
let previous_view_members history ~vid ~me =
  let rec walk prev = function
    | { History.event = History.View_event v; _ } :: rest ->
        if View.Id.equal v.View.id vid then
          match prev with Some (pv : View.t) -> pv.View.members | None -> [ me ]
        else walk (Some v) rest
    | _ :: rest -> walk prev rest
    | [] -> ( match prev with Some pv -> pv.View.members | None -> [ me ])
  in
  walk None (History.events history)

let score_observations ?(classifier = Classify.flat) fleet ~history_of
    observations scores =
  List.iter
    (fun o ->
      let vid = o.o_eview.E_view.view.View.id in
      let members = E_view.members o.o_eview in
      let truth =
        Classify.exact ~members ~prior:(fun q ->
            App_fleet.prior_state_of fleet q ~vid)
      in
      let truth_shape = Classify.shape truth in
      scores.settles <- scores.settles + 1;
      if Classify.shape o.o_enriched = truth_shape then
        scores.enriched_exact <- scores.enriched_exact + 1;
      (* Flat reasoning, restricted to what a flat view would reveal. *)
      let my_prior, _ = App_fleet.prior_state_of fleet o.o_proc ~vid in
      let my_prior_members =
        match history_of o.o_proc with
        | Some h -> previous_view_members h ~vid ~me:o.o_proc
        | None -> [ o.o_proc ]
      in
      let verdicts =
        classifier
          {
            Classify.fk_members = members;
            fk_me = o.o_proc;
            fk_my_prior = my_prior;
            fk_my_prior_members = my_prior_members;
          }
      in
      let shapes = List.map Classify.shape verdicts in
      if List.length shapes > 1 then
        scores.flat_ambiguous <- scores.flat_ambiguous + 1
      else if shapes = [ truth_shape ] then
        scores.flat_exact <- scores.flat_exact + 1;
      if List.mem truth_shape shapes then
        scores.flat_sound <- scores.flat_sound + 1)
    observations

let kv_campaign ?(config = Endpoint.default_config) ~seed ~duration () =
  let sim = Sim.create ~seed () in
  let net = Kv.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3; 4 ] in
  let observations = ref [] in
  let fleet_ref = ref None in
  let make ~node ~inc =
    let me = Proc_id.make ~node ~inc in
    Kv.create sim net ~me ~universe
      ~observer:(fun obs ->
        match obs with
        | Go.Obs_settle { problem; eview } ->
            observations := { o_proc = me; o_eview = eview; o_enriched = problem } :: !observations
        | Go.Obs_mode _ -> ())
      ~config ~policy:Kv.Lww ()
  in
  let fleet =
    App_fleet.create ~sim ~nodes:universe ~make ~kill:Kv.kill
      ~is_alive:Kv.is_alive ~me:Kv.me
      ~history:(fun kv -> Go.history (Kv.obj kv))
  in
  fleet_ref := Some fleet;
  let rng = Sim.fork_rng sim in
  let script =
    Faults.random_script rng ~nodes:universe ~start:1.0 ~duration ~mean_gap:0.5 ()
  in
  App_fleet.run_script fleet sim script ~net_action:(function
    | Faults.Partition comps -> Net.set_partition net comps
    | Faults.Heal -> Net.heal net
    | Faults.Crash _ | Faults.Recover _ | Faults.Corrupt _ -> ());
  let rec pump time =
    if time < duration then begin
      ignore
        (Sim.at sim time (fun () ->
             match App_fleet.live fleet with
             | [] -> ()
             | apps ->
                 let kv = Vs_util.Rng.pick rng apps in
                 ignore
                   (Kv.put kv
                      ~key:(Printf.sprintf "k%d" (Vs_util.Rng.int rng 8))
                      ~value:(Printf.sprintf "v%f" time))));
      pump (time +. 0.07)
    end
  in
  pump 0.6;
  ignore (Sim.run ~until:(duration +. 3.0) sim);
  (fleet, List.rev !observations)

let file_campaign ?(config = Endpoint.default_config) ~seed ~duration () =
  let sim = Sim.create ~seed () in
  let net = Rf.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3; 4 ] in
  let store = Store.create () in
  let file = Rf.uniform_votes ~universe in
  let observations = ref [] in
  let make ~node ~inc =
    let me = Proc_id.make ~node ~inc in
    Rf.create sim net ~me ~universe
      ~observer:(fun obs ->
        match obs with
        | Go.Obs_settle { problem; eview } ->
            observations := { o_proc = me; o_eview = eview; o_enriched = problem } :: !observations
        | Go.Obs_mode _ -> ())
      ~config ~file ~store ()
  in
  let fleet =
    App_fleet.create ~sim ~nodes:universe ~make ~kill:Rf.kill
      ~is_alive:Rf.is_alive ~me:Rf.me
      ~history:(fun f -> Go.history (Rf.obj f))
  in
  let rng = Sim.fork_rng sim in
  let script =
    Faults.random_script rng ~nodes:universe ~start:1.0 ~duration ~mean_gap:0.5 ()
  in
  App_fleet.run_script fleet sim script ~net_action:(function
    | Faults.Partition comps -> Net.set_partition net comps
    | Faults.Heal -> Net.heal net
    | Faults.Crash _ | Faults.Recover _ | Faults.Corrupt _ -> ());
  let rec pump time =
    if time < duration then begin
      ignore
        (Sim.at sim time (fun () ->
             match App_fleet.live fleet with
             | [] -> ()
             | apps -> ignore (Rf.write (Vs_util.Rng.pick rng apps) "x")));
      pump (time +. 0.08)
    end
  in
  pump 0.6;
  ignore (Sim.run ~until:(duration +. 3.0) sim);
  (fleet, List.rev !observations)

let run ?(quick = false) () =
  let seeds = if quick then [ 9 ] else [ 9; 10; 11; 12 ] in
  let duration = if quick then 4.0 else 10.0 in
  let table =
    Table.create
      ~title:
        "E5 / Sections 4 & 6.2 — local classification of the shared-state \
         problem vs the omniscient oracle"
      ~columns:
        [
          "object";
          "settles";
          "enriched exact";
          "flat exact";
          "flat ambiguous";
          "flat sound";
        ]
  in
  let run_app name campaign =
    let scores = new_scores () in
    List.iter
      (fun seed ->
        let fleet, observations =
          campaign ~seed:(Int64.of_int (seed * 101)) ~duration
        in
        score_observations fleet
          ~history_of:(fun proc -> App_fleet.history_of fleet proc)
          observations scores)
      seeds;
    let pct n = if scores.settles = 0 then "-" else Table.fpct (float_of_int n /. float_of_int scores.settles) in
    Table.add_row table
      [
        name;
        Table.fint scores.settles;
        pct scores.enriched_exact;
        pct scores.flat_exact;
        pct scores.flat_ambiguous;
        pct scores.flat_sound;
      ];
    scores
  in
  let kv_scores =
    run_app "kv store (partitionable)" (fun ~seed ~duration ->
        kv_campaign ~seed ~duration ())
  in
  let file_scores =
    run_app "replicated file (quorum)" (fun ~seed ~duration ->
        file_campaign ~seed ~duration ())
  in
  (table, (kv_scores, file_scores))

(* E5b: under the Isis regime — one-at-a-time admission AND
   primary-partition semantics (the quorum file: no progress outside the
   quorum, so state merging cannot arise) — flat reasoning with the growth
   restriction classifies exactly, the Section 5 observation about what the
   restriction buys at the E4 cost. *)
let run_isis ?(quick = false) () =
  let seeds = if quick then [ 21 ] else [ 21; 22; 23 ] in
  let duration = if quick then 4.0 else 10.0 in
  let config =
    { Endpoint.default_config with Endpoint.one_at_a_time = true }
  in
  let table =
    Table.create
      ~title:
        "E5b / Section 5 — classification under the Isis regime (one-at-a-time admission, primary-partition quorum object)"
      ~columns:[ "classifier"; "settles"; "exact"; "ambiguous"; "sound" ]
  in
  let score classifier =
    let scores = new_scores () in
    List.iter
      (fun seed ->
        let fleet, observations =
          file_campaign ~config ~seed:(Int64.of_int (seed * 211)) ~duration ()
        in
        score_observations ~classifier fleet
          ~history_of:(fun proc -> App_fleet.history_of fleet proc)
          observations scores)
      seeds;
    scores
  in
  let flat = score Classify.flat in
  let isis = score Classify.flat_one_at_a_time in
  let row name (s : scores) =
    let pct n =
      if s.settles = 0 then "-"
      else Table.fpct (float_of_int n /. float_of_int s.settles)
    in
    Table.add_row table
      [ name; Table.fint s.settles; pct s.flat_exact; pct s.flat_ambiguous; pct s.flat_sound ]
  in
  row "flat (Section 4)" flat;
  row "flat + one-at-a-time (Isis)" isis;
  table

let tables ?quick () = [ fst (run ?quick ()); run_isis ?quick () ]
