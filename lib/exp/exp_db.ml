(* Experiment E8 — the parallel-lookup database under churn (Section 3
   example 2).

   Queries are issued continuously while the group suffers crashes and
   recoveries.  Every range scan any member performs is recorded; per query
   we then count which keys were scanned zero, one, or multiple times.

   With S-mode gating (the correct protocol) members stop answering with a
   stale responsibility table: queries may be deferred, but coverage is
   exact.  With gating disabled — the ablation — members keep scanning
   their stale ranges, and keys get missed or double-searched, exactly the
   inconsistency the paper warns about. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Endpoint = Vs_vsync.Endpoint
module Go = Vs_apps.Group_object
module Pdb = Vs_apps.Parallel_db
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

type outcome = {
  queries : int;
  refused : int;
  exact : int;          (* every key scanned exactly once *)
  with_misses : int;
  with_dups : int;
  missed_keys : int;    (* total over queries *)
  dup_keys : int;
}

let run_campaign ~seed ~gate ~duration ~keyspace =
  let sim = Sim.create ~seed () in
  let net = Pdb.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3 ] in
  (* (issuer, qid) -> per-key scan counts *)
  let scans : (Proc_id.t * int, int array) Hashtbl.t = Hashtbl.create 64 in
  let issued = ref [] in
  let refused = ref 0 in
  let on_scan (s : Pdb.scan) =
    let key = (s.Pdb.scan_issuer, s.Pdb.scan_query) in
    let counts =
      match Hashtbl.find_opt scans key with
      | Some c -> c
      | None ->
          let c = Array.make keyspace 0 in
          Hashtbl.add scans key c;
          c
    in
    for k = s.Pdb.scan_lo to min (keyspace - 1) (s.Pdb.scan_hi - 1) do
      counts.(k) <- counts.(k) + 1
    done
  in
  let fleet =
    App_fleet.create ~sim ~nodes:universe
      ~make:(fun ~node ~inc ->
        Pdb.create sim net ~me:(Proc_id.make ~node ~inc) ~universe
          ~config:Endpoint.default_config ~keyspace ~gate_on_settling:gate
          ~on_scan ())
      ~kill:Pdb.kill ~is_alive:Pdb.is_alive ~me:Pdb.me
      ~history:(fun db -> Go.history (Pdb.obj db))
  in
  let rng = Sim.fork_rng sim in
  let script =
    Faults.random_script rng ~nodes:universe ~start:0.8 ~duration ~mean_gap:0.6 ()
  in
  App_fleet.run_script fleet sim script ~net_action:(function
    | Faults.Partition comps -> Net.set_partition net comps
    | Faults.Heal -> Net.heal net
    | Faults.Crash _ | Faults.Recover _ | Faults.Corrupt _ -> ());
  let rec query_pump time =
    if time < duration then begin
      ignore
        (Sim.at sim time (fun () ->
             match App_fleet.live fleet with
             | [] -> ()
             | apps -> (
                 let db = Vs_util.Rng.pick rng apps in
                 match Pdb.lookup db ~needle:(Vs_util.Rng.int rng 256) with
                 | Ok qid -> issued := (Pdb.me db, qid) :: !issued
                 | Error `Not_serving -> incr refused)));
      query_pump (time +. 0.04)
    end
  in
  query_pump 0.6;
  ignore (Sim.run ~until:(duration +. 2.5) sim);
  let outcome =
    List.fold_left
      (fun acc key ->
        match Hashtbl.find_opt scans key with
        | None ->
            (* Never scanned at all: counts as a fully-missed query. *)
            {
              acc with
              queries = acc.queries + 1;
              with_misses = acc.with_misses + 1;
              missed_keys = acc.missed_keys + keyspace;
            }
        | Some counts ->
            let missed = ref 0 and dup = ref 0 in
            Array.iter
              (fun c ->
                if c = 0 then incr missed else if c > 1 then incr dup)
              counts;
            {
              acc with
              queries = acc.queries + 1;
              exact = (acc.exact + if !missed = 0 && !dup = 0 then 1 else 0);
              with_misses = (acc.with_misses + if !missed > 0 then 1 else 0);
              with_dups = (acc.with_dups + if !dup > 0 then 1 else 0);
              missed_keys = acc.missed_keys + !missed;
              dup_keys = acc.dup_keys + !dup;
            })
      {
        queries = 0;
        refused = !refused;
        exact = 0;
        with_misses = 0;
        with_dups = 0;
        missed_keys = 0;
        dup_keys = 0;
      }
      (List.rev !issued)
  in
  outcome

let run ?(quick = false) () =
  let duration = if quick then 4.0 else 15.0 in
  let keyspace = 300 in
  let table =
    Table.create
      ~title:
        "E8 / example 2 — parallel look-up coverage under churn: S-mode \
         gating vs stale responsibility tables"
      ~columns:
        [
          "mode";
          "queries";
          "refused";
          "exact coverage";
          "queries w/ misses";
          "queries w/ dups";
          "missed keys";
          "duplicate keys";
        ]
  in
  List.iteri
    (fun i (label, gate) ->
      let o =
        run_campaign ~seed:(Int64.of_int (800 + i)) ~gate ~duration ~keyspace
      in
      let pct n =
        if o.queries = 0 then "-"
        else Table.fpct (float_of_int n /. float_of_int o.queries)
      in
      Table.add_row table
        [
          label;
          Table.fint o.queries;
          Table.fint o.refused;
          pct o.exact;
          pct o.with_misses;
          pct o.with_dups;
          Table.fint o.missed_keys;
          Table.fint o.dup_keys;
        ])
    [ ("gated (correct)", true); ("ungated (stale tables)", false) ];
  table

let tables ?quick () = [ run ?quick () ]
