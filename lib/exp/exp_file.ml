(* Experiment E7 — the quorum replicated file under partition churn
   (Section 3 example 1, and claim C3 on primary partitioning).

   A five-replica file runs under increasing partition churn; the state of
   every live replica is sampled periodically:

   - write availability: the fraction of samples in Normal mode (a quorum
     view, settled) — this is what a primary-partition system offers in
     total;
   - read availability: Normal or Reduced — the extra service the
     partitionable model keeps in minority partitions, at the price of
     staleness, which is also measured (fraction of reads that would have
     returned an outdated version). *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint
module Store = Vs_store.Store
module Go = Vs_apps.Group_object
module Rf = Vs_apps.Replicated_file
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

type sample = {
  mutable samples : int;
  mutable writable : int;
  mutable readable : int;
  mutable stale : int;
}

let run_churn ~seed ~mean_gap ~duration =
  let sim = Sim.create ~seed () in
  let net = Rf.make_net sim Net.default_config in
  let universe = [ 0; 1; 2; 3; 4 ] in
  let store = Store.create () in
  let file = Rf.uniform_votes ~universe in
  let fleet =
    App_fleet.create ~sim ~nodes:universe
      ~make:(fun ~node ~inc ->
        Rf.create sim net ~me:(Proc_id.make ~node ~inc) ~universe
          ~config:Endpoint.default_config ~file ~store ())
      ~kill:Rf.kill ~is_alive:Rf.is_alive ~me:Rf.me
      ~history:(fun f -> Go.history (Rf.obj f))
  in
  let rng = Sim.fork_rng sim in
  let script =
    (* Partition-only churn isolates the availability question. *)
    Faults.random_script rng ~nodes:universe ~start:0.5 ~duration ~mean_gap
      ~crash_weight:0.2 ~partition_weight:2.0 ()
  in
  App_fleet.run_script fleet sim script ~net_action:(function
    | Faults.Partition comps -> Net.set_partition net comps
    | Faults.Heal -> Net.heal net
    | Faults.Crash _ | Faults.Recover _ | Faults.Corrupt _ -> ());
  (* Steady trickle of writes so staleness is observable. *)
  let rec write_pump time =
    if time < duration then begin
      ignore
        (Sim.at sim time (fun () ->
             match
               List.filter
                 (fun f -> Mode.equal (Rf.mode f) Mode.Normal)
                 (App_fleet.live fleet)
             with
             | [] -> ()
             | first_writable :: _ ->
                 ignore (Rf.write first_writable (Printf.sprintf "w%f" time))));
      write_pump (time +. 0.1)
    end
  in
  write_pump 0.4;
  let acc = { samples = 0; writable = 0; readable = 0; stale = 0 } in
  let rec sampler time =
    if time < duration then begin
      ignore
        (Sim.at sim time (fun () ->
             let live = App_fleet.live fleet in
             let max_version =
               List.fold_left (fun m f -> max m (Rf.version f)) 0 live
             in
             List.iter
               (fun f ->
                 acc.samples <- acc.samples + 1;
                 match Rf.mode f with
                 | Mode.Normal ->
                     acc.writable <- acc.writable + 1;
                     acc.readable <- acc.readable + 1
                 | Mode.Reduced ->
                     acc.readable <- acc.readable + 1;
                     if Rf.version f < max_version then acc.stale <- acc.stale + 1
                 | Mode.Settling -> ())
               live));
      sampler (time +. 0.05)
    end
  in
  sampler 0.5;
  ignore (Sim.run ~until:(duration +. 2.0) sim);
  acc

let run ?(quick = false) () =
  let duration = if quick then 5.0 else 20.0 in
  let churn_levels =
    if quick then [ ("moderate", 1.0) ]
    else [ ("light", 3.0); ("moderate", 1.0); ("heavy", 0.4) ]
  in
  let table =
    Table.create
      ~title:
        "E7 / example 1 & claim C3 — replicated file availability under \
         partition churn (5 replicas, majority quorum)"
      ~columns:
        [
          "churn";
          "mean gap (s)";
          "write-available";
          "read-available";
          "primary-partition service";
          "stale reads (of R-mode)";
        ]
  in
  List.iteri
    (fun i (label, mean_gap) ->
      let acc = run_churn ~seed:(Int64.of_int (700 + i)) ~mean_gap ~duration in
      let frac n = float_of_int n /. float_of_int (max 1 acc.samples) in
      let reduced = acc.readable - acc.writable in
      Table.add_row table
        [
          label;
          Table.ffloat mean_gap;
          Table.fpct (frac acc.writable);
          Table.fpct (frac acc.readable);
          (* A primary-partition system serves nothing outside the quorum:
             its read and write availability both equal our write column. *)
          Table.fpct (frac acc.writable);
          (if reduced = 0 then "-"
           else Table.fpct (float_of_int acc.stale /. float_of_int reduced));
        ])
    churn_levels;
  table

let tables ?quick () = [ run ?quick () ]
