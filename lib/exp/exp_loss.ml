(* Experiment E11 — loss tolerance of the control plane.

   The paper's VS spec assumes reliable multicast over asynchronous,
   partitionable links; our simulated links also drop and duplicate.  The
   reliable-delivery layer (retry with exponential backoff for Propose /
   Flush_ack / Install / To_request) and peer-served retransmits are what
   close that gap.  This experiment sweeps drop/dup probability x group
   size: each run boots n singletons on a lossy network, timestamps the
   first common full view, then drives random FIFO + total-order traffic
   through a crash/recover cycle and checks the whole run against
   Properties 2.1-2.3 (Agreement / Uniqueness / Integrity).  The table
   reports installation latency, retry/retransmit work and the oracle
   verdict per cell, aggregated over seeds. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Cluster = Vs_harness.Vsync_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

let n_seeds = 5

type sample = {
  formed_at : float; (* first common full view; infinity when never *)
  final_stable : bool;
  ctl_retries : int;
  retransmits : int;
  peer_retransmits : int;
  agreement : int;
  uniqueness : int;
  integrity : int;
}

let run_once ~n ~drop ~dup ~seed =
  let net_config =
    { Net.default_config with Net.drop_prob = drop; Net.dup_prob = dup }
  in
  let c = Cluster.create ~seed ~net_config ~n () in
  let deadline = 10.0 in
  let rec wait () =
    if Cluster.stable_view_reached c then Sim.now (Cluster.sim c)
    else if Sim.now (Cluster.sim c) >= deadline then infinity
    else begin
      Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 0.05);
      wait ()
    end
  in
  let formed_at = wait () in
  if formed_at < infinity then begin
    (* Exercise the data path and a flush on the lossy links: traffic
       around a crash/recover of the highest node. *)
    let now = Sim.now (Cluster.sim c) in
    Cluster.run_script c
      [ (now +. 0.6, Faults.Crash (n - 1)); (now +. 1.4, Faults.Recover (n - 1)) ];
    Cluster.pump_traffic c ~start:(now +. 0.1) ~until:(now +. 2.0)
      ~mean_gap:0.02;
    Cluster.run c ~until:(now +. 4.5)
  end;
  let st = Cluster.stats_total c in
  let find what = List.assoc what (Oracle.check_summary (Cluster.oracle c)) in
  {
    formed_at;
    final_stable = Cluster.stable_view_reached c;
    ctl_retries = st.Vs_vsync.Endpoint.ctl_retries;
    retransmits = st.Vs_vsync.Endpoint.retransmits;
    peer_retransmits = st.Vs_vsync.Endpoint.peer_retransmits;
    agreement = find "agreement";
    uniqueness = find "uniqueness";
    integrity = find "integrity";
  }

let run_cell ~n ~drop ~dup ~cell =
  List.init n_seeds (fun s ->
      run_once ~n ~drop ~dup ~seed:(Int64.of_int ((1000 * (cell + 1)) + s)))

let run ?(quick = false) () =
  let ns = if quick then [ 6 ] else [ 3; 6 ] in
  let drops = if quick then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.1; 0.2 ] in
  let dups = [ 0.0; 0.1 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E11 — control plane under loss/duplication (%d seeds per cell)"
           n_seeds)
      ~columns:
        [
          "n";
          "drop";
          "dup";
          "formed";
          "mean latency (s)";
          "max latency (s)";
          "ctl retries";
          "retransmits (peer)";
          "A/U/I violations";
          "verdict";
        ]
  in
  let cell = ref 0 in
  List.iter
    (fun n ->
      List.iter
        (fun drop ->
          List.iter
            (fun dup ->
              incr cell;
              let samples = run_cell ~n ~drop ~dup ~cell:!cell in
              let formed =
                List.filter (fun s -> s.formed_at < infinity) samples
              in
              let latencies = List.map (fun s -> s.formed_at) formed in
              let mean_latency =
                match latencies with
                | [] -> nan
                | ls ->
                    List.fold_left ( +. ) 0. ls /. float_of_int (List.length ls)
              in
              let max_latency =
                List.fold_left Float.max neg_infinity latencies
              in
              let sum f = List.fold_left (fun a s -> a + f s) 0 samples in
              let agreement = sum (fun s -> s.agreement) in
              let uniqueness = sum (fun s -> s.uniqueness) in
              let integrity = sum (fun s -> s.integrity) in
              let all_stable = List.for_all (fun s -> s.final_stable) samples in
              let ok =
                List.length formed = n_seeds
                && all_stable
                && agreement + uniqueness + integrity = 0
              in
              Table.add_row table
                [
                  Table.fint n;
                  Table.ffloat ~decimals:2 drop;
                  Table.ffloat ~decimals:2 dup;
                  Printf.sprintf "%d/%d" (List.length formed) n_seeds;
                  Table.ffloat ~decimals:3 mean_latency;
                  Table.ffloat ~decimals:3 max_latency;
                  Table.fint (sum (fun s -> s.ctl_retries));
                  Printf.sprintf "%d (%d)"
                    (sum (fun s -> s.retransmits))
                    (sum (fun s -> s.peer_retransmits));
                  Printf.sprintf "%d/%d/%d" agreement uniqueness integrity;
                  (if ok then "ok" else "FAIL");
                ])
            dups)
        drops)
    ns;
  table

let tables ?quick () = [ run ?quick () ]
