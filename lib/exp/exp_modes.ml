(* Experiment E1 — Figure 1: the empirical mode-transition matrix.

   A quorum-voted replicated-file fleet runs under a randomized fault
   campaign; every process's mode machine records the Figure-1 edges it
   takes.  The experiment reports the aggregated transition matrix and
   asserts that no illegal move ever occurred — the executable version of
   Figure 1. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Mode = Evs_core.Mode
module Endpoint = Vs_vsync.Endpoint
module Store = Vs_store.Store
module Rf = Vs_apps.Replicated_file
module Go = Vs_apps.Group_object
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table

type outcome = {
  counts : (Mode.transition * int) list;
  steps_total : int;
  illegal : int;
  runs : int;
}

let run_campaign ~seed ~n ~duration =
  let sim = Sim.create ~seed () in
  let net = Rf.make_net sim Net.default_config in
  let universe = List.init n (fun i -> i) in
  let store = Store.create () in
  let file = Rf.uniform_votes ~universe in
  let fleet =
    App_fleet.create ~sim ~nodes:universe
      ~make:(fun ~node ~inc ->
        Rf.create sim net ~me:(Proc_id.make ~node ~inc) ~universe
          ~config:Endpoint.default_config ~file ~store ())
      ~kill:Rf.kill ~is_alive:Rf.is_alive ~me:Rf.me
      ~history:(fun f -> Go.history (Rf.obj f))
  in
  let rng = Sim.fork_rng sim in
  let script =
    Faults.random_script rng ~nodes:universe ~start:1.0 ~duration
      ~mean_gap:0.4 ()
  in
  App_fleet.run_script fleet sim script ~net_action:(fun action ->
      match action with
      | Faults.Partition comps -> Net.set_partition net comps
      | Faults.Heal -> Net.heal net
      | Faults.Crash _ | Faults.Recover _ | Faults.Corrupt _ -> ());
  (* Background writes keep the object exercised. *)
  let rec pump time =
    if time < duration +. 1.0 then begin
      ignore
        (Sim.at sim time (fun () ->
             match App_fleet.live fleet with
             | [] -> ()
             | apps ->
                 let f = Vs_util.Rng.pick rng apps in
                 ignore (Rf.write f (Printf.sprintf "w%f" time))));
      pump (time +. 0.05)
    end
  in
  pump 0.5;
  ignore (Sim.run ~until:(duration +. 3.0) sim);
  let machines =
    List.map (fun f -> Go.machine (Rf.obj f)) (App_fleet.all_ever fleet)
  in
  let steps = List.concat_map Mode.Machine.history machines in
  let illegal =
    List.length
      (List.filter
         (fun (s : Mode.Machine.step) ->
           not
             (Mode.is_legal ~from:s.Mode.Machine.from_mode
                ~into:s.Mode.Machine.into_mode))
         steps)
  in
  let counts =
    List.concat_map Mode.Machine.transition_counts machines
    |> List.fold_left
         (fun acc (tr, n) ->
           let existing = try List.assoc tr acc with Not_found -> 0 in
           (tr, existing + n) :: List.remove_assoc tr acc)
         []
  in
  (counts, List.length steps, illegal)

let run ?(quick = false) () =
  let seeds = if quick then [ 1 ] else [ 1; 2; 3; 4; 5 ] in
  let duration = if quick then 4.0 else 12.0 in
  let merged =
    List.fold_left
      (fun acc seed ->
        let counts, steps, illegal =
          run_campaign ~seed:(Int64.of_int (seed * 31)) ~n:5 ~duration
        in
        {
          counts =
            List.fold_left
              (fun cs (tr, n) ->
                let existing = try List.assoc tr cs with Not_found -> 0 in
                (tr, existing + n) :: List.remove_assoc tr cs)
              acc.counts counts;
          steps_total = acc.steps_total + steps;
          illegal = acc.illegal + illegal;
          runs = acc.runs + 1;
        })
      { counts = []; steps_total = 0; illegal = 0; runs = 0 }
      seeds
  in
  let edge_of = function
    | Mode.Failure -> "Normal/Settling -> Reduced"
    | Mode.Repair -> "Reduced -> Settling"
    | Mode.Reconfigure -> "Normal/Settling -> Settling"
    | Mode.Reconcile -> "Settling -> Normal"
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E1 / Figure 1 — mode transitions over %d fault campaigns (%d \
            machine steps, %d illegal)"
           merged.runs merged.steps_total merged.illegal)
      ~columns:[ "transition"; "edge"; "count" ]
  in
  List.iter
    (fun tr ->
      let n = try List.assoc tr merged.counts with Not_found -> 0 in
      Table.add_row table
        [ Mode.transition_to_string tr; edge_of tr; Table.fint n ])
    [ Mode.Failure; Mode.Repair; Mode.Reconfigure; Mode.Reconcile ];
  (table, merged)

let tables ?quick () = [ fst (run ?quick ()) ]
