(* Experiment T — the sustained-throughput data plane.

   An open-loop Poisson load (App_fleet.open_loop) of totally-ordered puts
   from hundreds of simulated clients drives the replicated KV store, under
   three endpoint configurations on the same seeded workload:

   - "unbatched": the legacy data plane — one reliable To_request round trip
     per operation, one relayed Data message per member per operation, one
     full drain pass per delivery;
   - "batched d1": Wire.To_batch / Wire.Batch coalescing with stop-and-wait
     flush rounds (pipeline_depth = 1) — one wire message per member per
     round, but each round must reach the view's stability floor before the
     next may ship;
   - "pipelined": the same batching with the round pipeline kept full
     (pipeline_depth > 1).

   Reported per arm: offered/accepted load, operations applied at an
   observer replica inside the measured window, wall-clock throughput of
   the simulation over that window (the ops/sec the bench gate compares),
   sampled end-to-end put latency, install / flush-stall percentiles from
   the Obs.Metrics histograms, and wire messages per operation.

   The second half re-runs claim C1 at scale: merging two partitions of
   k = 500 members under batch admission still costs about one view change
   per process — the admission result of E4 survives three orders of
   magnitude more members, given failure-detection and retry periods scaled
   to the O(n^2) heartbeat load. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Fd = Vs_fd.Fd
module Endpoint = Vs_vsync.Endpoint
module Kv = Vs_apps.Kv_store
module Go = Vs_apps.Group_object
module Rng = Vs_util.Rng
module Summary = Vs_stats.Summary
module Table = Vs_stats.Table
module Hdr = Vs_obs.Hdr
module Recorder = Vs_obs.Recorder
module Metrics = Vs_obs.Metrics
module Series = Vs_obs.Series
module Stall = Vs_obs.Stall
module Critpath = Vs_obs.Critpath
module Obs_event = Vs_obs.Event
module Cluster = Vs_harness.Vsync_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults
module Wire = Vs_vsync.Wire
module View = Vs_gms.View

(* ---------- workload ---------- *)

type workload = {
  w_n : int;          (* replicas *)
  w_clients : int;    (* simulated clients, pinned round-robin to replicas *)
  w_rate : float;     (* offered ops/s *)
  w_keys : int;       (* key-space size *)
  w_zipf : float option;  (* skew exponent; None = uniform *)
  w_warmup : float;   (* sim time for the cluster to assemble and settle *)
  w_window : float;   (* measured load window, sim seconds *)
  w_drain : float;    (* extra sim time to let in-flight ops land *)
}

let default_workload =
  {
    w_n = 6;
    w_clients = 300;
    w_rate = 8_000.;
    w_keys = 128;
    w_zipf = Some 1.1;
    w_warmup = 3.0;
    w_window = 1.0;
    w_drain = 1.0;
  }

let quick_workload =
  {
    default_workload with
    w_n = 4;
    w_clients = 120;
    w_rate = 2_000.;
    w_window = 0.5;
    w_drain = 0.5;
  }

(* Key index sampler.  Zipf uses a precomputed cumulative weight table and
   binary search — O(log keys) per draw, no rejection loop, deterministic
   under the given rng. *)
let make_key_sampler ~rng ~keys ~zipf =
  match zipf with
  | None -> fun () -> Rng.int rng keys
  | Some s ->
      let cdf = Array.make keys 0.0 in
      let total = ref 0.0 in
      for i = 0 to keys - 1 do
        total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
        cdf.(i) <- !total
      done;
      let total = !total in
      fun () ->
        let u = Rng.uniform rng 0.0 total in
        let lo = ref 0 and hi = ref (keys - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) >= u then hi := mid else lo := mid + 1
        done;
        !lo

(* ---------- arms ---------- *)

type arm = { a_name : string; a_config : Endpoint.config }

(* Shared base for all arms: the default protocol config with the failure
   detector relaxed.  At the default 30 ms heartbeat period a stable
   n-replica cluster pays n^2/0.030 heartbeats per second — comparable to
   the offered load itself — which is pure shared overhead that masks the
   data-plane difference under test.  The relaxation is uniform across
   arms, so the comparison stays fair. *)
let base_config =
  {
    Endpoint.default_config with
    Endpoint.fd = { Fd.period = 0.250; timeout = 1.0 };
  }

let arms =
  [
    { a_name = "unbatched"; a_config = base_config };
    {
      a_name = "batched d1";
      a_config = { base_config with Endpoint.batching = true; pipeline_depth = 1 };
    };
    {
      a_name = "pipelined";
      a_config = { base_config with Endpoint.batching = true; pipeline_depth = 8 };
    };
  ]

(* Per-window slice of the measured load window, from the vsmon series
   attached to the arm's simulation: how the throughput and the paper's
   install cost evolve through the window rather than one end-of-run
   number. *)
type window_stat = {
  ws_index : int;  (* series window index: [kΔ, (k+1)Δ) *)
  ws_start : float;
  ws_end : float;
  ws_applied : int;  (* puts applied at the observer in this window *)
  ws_ops_per_s : float;  (* ws_applied / Δ, simulated-time rate *)
  ws_installs : int;  (* view installs in this window *)
  ws_install_p99 : float option;  (* exact p99 install latency, seconds *)
}

type result = {
  r_name : string;
  r_offered : int;
  r_accepted : int;
  r_rejected : int;
  r_applied : int;  (* puts applied at the observer replica in-window *)
  r_wall_s : float option;
  r_ops_per_wall_s : float option;
  r_put_lat : Summary.t;  (* sampled end-to-end put latency, sim seconds *)
  r_install : Hdr.t option;
  r_flush : Hdr.t option;
  r_wire_sent : int;
  r_wire_per_op : float;
  r_windows : window_stat list;  (* measured window sliced by the series *)
  (* vspath critical-path block: install latency decomposed on the causal
     DAG of the same recording (Protocol level, so the propose phase shows
     as local work — the flush/stability split is what the arms differ
     on).  [r_critpath_consistent] is the cross-check the bench gates on:
     segments sum to install latency and the flush/stability components
     agree with the Stall attribution. *)
  r_critpath : (string * float) list;  (* seg-kind name -> summed seconds *)
  r_straggler : (string * float) option;  (* proc, charged seconds *)
  r_critpath_consistent : bool;
}

(* One arm: same seed, same workload drawing order — only the endpoint
   config differs, so the arrival sequence (times, clients, keys) is
   identical across arms.  [clock], when given, must read wall-clock
   seconds; it is injected by the caller (bench, CLI) so this library stays
   free of wall-clock reads. *)
(* Series windows per measured load window — Δ = w_window / 4, so the
   report shows how the rate and install cost move through the window. *)
let windows_per_measured = 4

let run_arm ?clock ~seed ~workload:w arm =
  let recorder = Recorder.create ~level:Recorder.Protocol () in
  let interval = w.w_window /. float_of_int windows_per_measured in
  let series = Series.create ~interval () in
  let sim = Sim.create ~seed ~obs:recorder ~series () in
  let net = Kv.make_net sim Net.default_config in
  let universe = List.init w.w_n (fun i -> i) in
  let applied = ref 0 in
  let window_start = ref infinity in
  let window_end = ref infinity in
  let submit_times : (int, float) Hashtbl.t = Hashtbl.create 4096 in
  let put_lat = Summary.create () in
  (* applied-op tally per series window index, measured window only *)
  let applied_wins : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let observe_apply ~origin:_ ~key:_ ~value =
    let now = Sim.now sim in
    if now >= !window_start && now < !window_end then begin
      incr applied;
      let idx = int_of_float (floor (now /. interval)) in
      match Hashtbl.find_opt applied_wins idx with
      | Some r -> incr r
      | None -> Hashtbl.replace applied_wins idx (ref 1)
    end;
    match int_of_string_opt value with
    | Some op -> (
        match Hashtbl.find_opt submit_times op with
        | Some t0 ->
            Hashtbl.remove submit_times op;
            Summary.add put_lat (now -. t0)
        | None -> ())
    | None -> ()
  in
  let make ~node ~inc =
    let me = Proc_id.make ~node ~inc in
    if node = 0 then
      Kv.create sim net ~me ~universe ~on_apply:observe_apply
        ~config:arm.a_config ~policy:Kv.Lww ()
    else
      Kv.create sim net ~me ~universe ~config:arm.a_config ~policy:Kv.Lww ()
  in
  let fleet =
    App_fleet.create ~sim ~nodes:universe ~make ~kill:Kv.kill
      ~is_alive:Kv.is_alive ~me:Kv.me
      ~history:(fun kv -> Go.history (Kv.obj kv))
  in
  (* Warm up: the cluster assembles from singletons and settles into Normal
     mode.  Excluded from the measured window and the wall clock. *)
  ignore (Sim.run ~until:w.w_warmup sim);
  let wire_before = (Net.stats net).Net.sent in
  let rng = Sim.fork_rng sim in
  let key_of = make_key_sampler ~rng ~keys:w.w_keys ~zipf:w.w_zipf in
  let t0 = w.w_warmup in
  window_start := t0;
  window_end := t0 +. w.w_window;
  let sample_every = 8 in
  let submit kv ~client:_ ~op =
    let key = Printf.sprintf "k%d" (key_of ()) in
    let value = string_of_int op in
    if op mod sample_every = 0 then
      Hashtbl.replace submit_times op (Sim.now sim);
    match Kv.put kv ~key ~value with
    | Ok () -> true
    | Error `Not_serving -> false
  in
  let load =
    App_fleet.open_loop fleet sim ~rng ~start:t0 ~until:(t0 +. w.w_window)
      ~rate:w.w_rate ~clients:w.w_clients ~submit
  in
  let wall0 = Option.map (fun c -> c ()) clock in
  ignore (Sim.run ~until:(t0 +. w.w_window +. w.w_drain) sim);
  let wall_s =
    match (clock, wall0) with
    | Some c, Some t -> Some (c () -. t)
    | _ -> None
  in
  let wire_sent = (Net.stats net).Net.sent - wire_before in
  Sim.finish_series sim;
  let entries = Recorder.entries recorder in
  let metrics = Metrics.of_entries entries in
  (* Slice the measured window: applied rate from the per-window tally,
     install activity from the series snapshots, and the exact p99 install
     latency from the stall attributions falling in each window. *)
  let attrs = Stall.of_entries entries in
  let cp = Critpath.of_entries entries in
  let windows =
    let in_measured (s : Series.snapshot) =
      s.Series.t_start >= !window_start -. (interval /. 2.)
      && s.Series.t_start < !window_end
    in
    let rec build prev = function
      | [] -> []
      | (s : Series.snapshot) :: rest ->
          let tail = build (Some s) rest in
          if not (in_measured s) then tail
          else begin
            let applied =
              match Hashtbl.find_opt applied_wins s.Series.window with
              | Some r -> !r
              | None -> 0
            in
            let installs =
              Series.delta_counter ~prev s "gms.installs"
            in
            let p99 =
              let lats =
                List.filter_map
                  (fun a ->
                    let t = a.Stall.a_time in
                    if t >= s.Series.t_start && t < s.Series.t_end then
                      Some (Stall.total a)
                    else None)
                  attrs
              in
              if lats = [] then None
              else begin
                let su = Summary.create () in
                List.iter (Summary.add su) lats;
                Some (Summary.percentile su 0.99)
              end
            in
            {
              ws_index = s.Series.window;
              ws_start = s.Series.t_start;
              ws_end = s.Series.t_end;
              ws_applied = applied;
              ws_ops_per_s = float_of_int applied /. interval;
              ws_installs = installs;
              ws_install_p99 = p99;
            }
            :: tail
          end
    in
    build None (Series.snapshots series)
  in
  {
    r_name = arm.a_name;
    r_offered = load.App_fleet.offered;
    r_accepted = load.App_fleet.accepted;
    r_rejected = load.App_fleet.rejected;
    r_applied = !applied;
    r_wall_s = wall_s;
    r_ops_per_wall_s =
      Option.map
        (fun s ->
          if s > 0. then float_of_int load.App_fleet.accepted /. s else 0.)
        wall_s;
    r_put_lat = put_lat;
    r_install = Metrics.hist metrics "view.install-latency";
    r_flush = Metrics.hist metrics "view.flush-stall";
    r_wire_sent = wire_sent;
    r_wire_per_op =
      (if load.App_fleet.accepted > 0 then
         float_of_int wire_sent /. float_of_int load.App_fleet.accepted
       else 0.);
    r_windows = windows;
    r_critpath =
      List.map
        (fun (k, v) -> (Critpath.seg_kind_to_string k, v))
        (Critpath.kind_seconds cp);
    r_straggler =
      Option.map
        (fun (p, c) -> (Obs_event.proc_to_string p, c))
        cp.Critpath.straggler;
    r_critpath_consistent = Critpath.consistent_with_stall cp attrs;
  }

let run_arms ?clock ?(quick = false) ?(seed = 1106L) () =
  let workload = if quick then quick_workload else default_workload in
  List.map (run_arm ?clock ~seed ~workload) arms

(* The bench gate: wall-clock ops/sec of the batched + pipelined arm over
   the unbatched arm, on the same seeded workload.  None when no clock was
   injected. *)
let speedup results =
  let ops name =
    List.find_map
      (fun r -> if String.equal r.r_name name then r.r_ops_per_wall_s else None)
      results
  in
  match (ops "unbatched", ops "pipelined") with
  | Some base, Some piped when base > 0. -> Some (piped /. base)
  | _ -> None

let opt_ms = function
  | None -> "-"
  | Some s -> Printf.sprintf "%.2f" (s *. 1000.)

let hist_pct h p =
  match h with
  | Some s when Hdr.count s > 0 -> Some (Hdr.percentile s p)
  | Some _ | None -> None

let sum_pct s p = if Summary.count s > 0 then Some (Summary.percentile s p) else None

(* ---------- the data plane alone ---------- *)

(* The kv arms above measure the whole application stack: Evs dispatch, the
   per-delivery history record, the store's persistent map.  Both arms pay
   that cost identically, so it floors the wall-clock ratio between them
   regardless of how cheap the messaging layer gets.  The 10× sustained-
   throughput claim is about the {e data plane} — endpoint + wire + net —
   so [run_data_plane] drives bare endpoints (delivery callback is a
   counter) with the same kind of seeded open-loop Poisson arrival process,
   totally ordered, and measures the wall-clock rate at which the simulation
   sustains it.  Every arrival is identical across arms (same seed, same
   draw order), and each operation must still reach every replica in total
   order before it counts. *)

type dp_workload = {
  d_n : int;          (* replicas *)
  d_rate : float;     (* offered ops/s *)
  d_warmup : float;   (* cluster assembly, excluded from measurement *)
  d_window : float;   (* arrival window, sim seconds *)
  d_drain : float;    (* extra sim time for in-flight rounds to land *)
  d_batch_max : int;  (* batch cap for the batched arm *)
  d_depth : int;      (* pipeline depth for the batched arm *)
}

let default_dp_workload =
  {
    d_n = 16;
    d_rate = 100_000.;
    d_warmup = 5.0;
    d_window = 1.0;
    d_drain = 1.0;
    d_batch_max = 512;
    d_depth = 8;
  }

let quick_dp_workload = { default_dp_workload with d_window = 0.4 }

type dp_result = {
  p_name : string;
  p_offered : int;
  p_delivered : int;   (* total-order deliveries summed over all replicas *)
  p_wall_s : float option;
  p_ops_per_wall_s : float option;
  p_wire_sent : int;
  p_wire_per_op : float;
  p_batches : int;
}

let run_data_plane_arm ?clock ~seed ~workload:w name config =
  let sim = Sim.create ~seed () in
  let size_of = Wire.size_of ~user:(fun (_ : int) -> 8) ~ann:(fun () -> 8) in
  let net = Net.create ~size_of sim Net.default_config in
  let universe = List.init w.d_n (fun i -> i) in
  let delivered = ref 0 in
  let eps =
    Array.of_list
      (List.map
         (fun node ->
           let me = Net.fresh_incarnation net node in
           let callbacks =
             {
               Endpoint.on_view = (fun _ -> ());
               on_message = (fun ~sender:_ (_ : int) -> incr delivered);
             }
           in
           Endpoint.create sim net ~me ~universe ~config ~callbacks)
         universe)
  in
  ignore (Sim.run ~until:w.d_warmup sim);
  if List.length (Endpoint.view eps.(0)).View.members <> w.d_n then
    invalid_arg
      "Exp_throughput.run_data_plane_arm: cluster did not assemble in the \
       warmup window";
  let wire_before = (Net.stats net).Net.sent in
  let rng = Sim.fork_rng sim in
  let offered = ref 0 in
  let t0 = w.d_warmup in
  let rec fire time () =
    let node = Rng.int rng w.d_n in
    Endpoint.multicast eps.(node) ~order:Endpoint.Total !offered;
    incr offered;
    schedule time
  and schedule time =
    let next = time +. Rng.exponential rng (1.0 /. w.d_rate) in
    if next < t0 +. w.d_window then ignore (Sim.at sim next (fire next))
  in
  schedule t0;
  delivered := 0;
  let wall0 = Option.map (fun c -> c ()) clock in
  ignore (Sim.run ~until:(t0 +. w.d_window +. w.d_drain) sim);
  let wall_s =
    match (clock, wall0) with Some c, Some t -> Some (c () -. t) | _ -> None
  in
  let wire_sent = (Net.stats net).Net.sent - wire_before in
  let batches =
    Array.fold_left
      (fun acc ep -> acc + (Endpoint.stats ep).Endpoint.batches_sent)
      0 eps
  in
  {
    p_name = name;
    p_offered = !offered;
    p_delivered = !delivered;
    p_wall_s = wall_s;
    p_ops_per_wall_s =
      Option.map
        (fun s -> if s > 0. then float_of_int !offered /. s else 0.)
        wall_s;
    p_wire_sent = wire_sent;
    p_wire_per_op =
      (if !offered > 0 then float_of_int wire_sent /. float_of_int !offered
       else 0.);
    p_batches = batches;
  }

let run_data_plane ?clock ?(quick = false) ?(seed = 2207L) () =
  let w = if quick then quick_dp_workload else default_dp_workload in
  let batched =
    {
      base_config with
      Endpoint.batching = true;
      pipeline_depth = w.d_depth;
      batch_max = w.d_batch_max;
    }
  in
  [
    run_data_plane_arm ?clock ~seed ~workload:w "unbatched" base_config;
    run_data_plane_arm ?clock ~seed ~workload:w "batched+pipelined" batched;
  ]

(* The headline ratio: wall-clock sustained ops/sec, batched + pipelined
   over unbatched, on the identical seeded arrival sequence. *)
let dp_speedup results =
  let ops name =
    List.find_map
      (fun r -> if String.equal r.p_name name then r.p_ops_per_wall_s else None)
      results
  in
  match (ops "unbatched", ops "batched+pipelined") with
  | Some base, Some piped when base > 0. -> Some (piped /. base)
  | _ -> None

let data_plane_table ?(with_wall = true) results =
  let columns =
    [ "arm"; "offered"; "delivered (all replicas)" ]
    @ (if with_wall then [ "ops/s (wall)" ] else [])
    @ [ "wire msgs/op"; "batch rounds" ]
  in
  let table =
    Table.create
      ~title:
        "T/data-plane — bare endpoints under the same open-loop total-order \
         load: sustained ops/sec, batched+pipelined vs unbatched"
      ~columns
  in
  List.iter
    (fun r ->
      let row =
        [ r.p_name; Table.fint r.p_offered; Table.fint r.p_delivered ]
        @ (if with_wall then
             [
               (match r.p_ops_per_wall_s with
               | Some v -> Printf.sprintf "%.0f" v
               | None -> "-");
             ]
           else [])
        @ [ Table.ffloat ~decimals:2 r.p_wire_per_op; Table.fint r.p_batches ]
      in
      Table.add_row table row)
    results;
  table

let throughput_table ?(with_wall = true) results =
  let columns =
    [ "arm"; "offered"; "accepted"; "applied" ]
    @ (if with_wall then [ "ops/s (wall)" ] else [])
    @ [
        "put p50 (ms)";
        "put p99 (ms)";
        "install p50 (ms)";
        "install p99 (ms)";
        "flush p99 (ms)";
        "wire msgs/op";
      ]
  in
  let table =
    Table.create
      ~title:
        "T — open-loop totally-ordered puts: batching and flush pipelining \
         on the same seeded workload"
      ~columns
  in
  List.iter
    (fun r ->
      let row =
        [
          r.r_name;
          Table.fint r.r_offered;
          Table.fint r.r_accepted;
          Table.fint r.r_applied;
        ]
        @ (if with_wall then
             [
               (match r.r_ops_per_wall_s with
               | Some v -> Printf.sprintf "%.0f" v
               | None -> "-");
             ]
           else [])
        @ [
            opt_ms (sum_pct r.r_put_lat 0.5);
            opt_ms (sum_pct r.r_put_lat 0.99);
            opt_ms (hist_pct r.r_install 0.5);
            opt_ms (hist_pct r.r_install 0.99);
            opt_ms (hist_pct r.r_flush 0.99);
            Table.ffloat ~decimals:2 r.r_wire_per_op;
          ]
      in
      Table.add_row table row)
    results;
  table

(* Per-window evolution of the measured load window: the vsmon view of the
   same run — how the applied rate and the install cost move through the
   window instead of one end-of-run aggregate. *)
let window_table results =
  let table =
    Table.create
      ~title:
        "T/windows — measured load window sliced by the vsmon series: \
         applied ops/s and install p99 per window"
      ~columns:
        [
          "arm";
          "window";
          "span (s)";
          "applied";
          "ops/s (sim)";
          "installs";
          "install p99 (ms)";
        ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun ws ->
          Table.add_row table
            [
              r.r_name;
              Table.fint ws.ws_index;
              Printf.sprintf "%g-%g" ws.ws_start ws.ws_end;
              Table.fint ws.ws_applied;
              Printf.sprintf "%.0f" ws.ws_ops_per_s;
              Table.fint ws.ws_installs;
              opt_ms ws.ws_install_p99;
            ])
        r.r_windows)
    results;
  table

(* Per-arm critical-path block: where the install latency of each arm
   actually went, on the causal DAG of the same recording.  The
   flush-ack-wait column is the one batching/pipelining moves; the
   "consistent" column is the Stall cross-check the bench refuses on. *)
let critpath_table results =
  let table =
    Table.create
      ~title:
        "T/critpath — per-arm install critical path: summed seconds by \
         segment kind, straggler, Stall consistency"
      ~columns:
        ([ "arm" ]
        @ List.map Critpath.seg_kind_to_string Critpath.all_seg_kinds
        @ [ "straggler"; "consistent" ])
  in
  List.iter
    (fun r ->
      Table.add_row table
        ([ r.r_name ]
        @ List.map
            (fun k ->
              let name = Critpath.seg_kind_to_string k in
              match List.assoc_opt name r.r_critpath with
              | Some v -> Table.ffloat ~decimals:4 v
              | None -> "-")
            Critpath.all_seg_kinds
        @ [
            (match r.r_straggler with
            | Some (p, c) -> Printf.sprintf "%s (%.4fs)" p c
            | None -> "-");
            (if r.r_critpath_consistent then "yes" else "NO");
          ]))
    results;
  table

(* ---------- claim C1 at scale ---------- *)

(* E4 merges partitions of up to 16 members under the default (LAN-interactive)
   timers.  At k = 500 those timers are physically impossible: every process
   heartbeats every other, so the failure-detector load is O(n^2) per period
   and a 30 ms period at n = 1000 means 33M messages per simulated second.
   The scaled profile stretches detection, settling, flush and retry periods
   to what a real deployment of that size would run, disables per-message
   stability gossip (the merge exchanges no application data; the gossip is
   O(n^2) pure overhead here), and ships any data there is batched. *)
let scale_config =
  {
    Endpoint.default_config with
    Endpoint.fd = { Fd.period = 1.5; timeout = 5.0 };
    stability = 1.0;
    nag_period = 1.5;
    flush_timeout = 6.0;
    nack_delay = 0.5;
    stability_interval = None;
    retry_backoff = 0.75;
    retry_backoff_max = 6.0;
    retry_jitter = 0.25;
    retry_limit = 8;
    batching = true;
  }

type merge_result = {
  m_k : int;
  m_installs_total : int;  (* installation events after the heal, summed *)
  m_installs_per_proc : float;
  m_merge_latency : float;  (* heal to stable merged view, sim seconds *)
}

let merge_at_scale ~k =
  let n = 2 * k in
  let c =
    Cluster.create
      ~seed:(Int64.of_int (7000 + k))
      ~config:scale_config ~n ()
  in
  let nodes = List.init n (fun i -> i) in
  let left = Vs_util.Listx.take k nodes
  and right = Vs_util.Listx.drop k nodes in
  Cluster.apply_action c (Faults.Partition [ left; right ]);
  (* Both halves assemble behind the partition: a couple of heartbeat
     periods to hear everyone, a settle period, one flush. *)
  let assembly_deadline = 15.0 +. (0.002 *. float_of_int n) in
  Cluster.run c ~until:assembly_deadline;
  let before = Oracle.total_installs (Cluster.oracle c) in
  let heal_time = Sim.now (Cluster.sim c) in
  Cluster.apply_action c Faults.Heal;
  let deadline = heal_time +. 30.0 +. (0.005 *. float_of_int n) in
  let rec wait () =
    if Cluster.stable_view_reached c then Sim.now (Cluster.sim c)
    else if Sim.now (Cluster.sim c) >= deadline then infinity
    else begin
      Cluster.run c ~until:(Sim.now (Cluster.sim c) +. 0.5);
      wait ()
    end
  in
  let stable_at = wait () in
  let installs_total = Oracle.total_installs (Cluster.oracle c) - before in
  {
    m_k = k;
    m_installs_total = installs_total;
    m_installs_per_proc = float_of_int installs_total /. float_of_int n;
    m_merge_latency = stable_at -. heal_time;
  }

let merge_table samples =
  let table =
    Table.create
      ~title:
        "T/C1-at-scale — merging two k-member partitions under batch \
         admission (scaled timers)"
      ~columns:
        [ "k"; "installs after heal"; "installs/proc"; "merge latency (s)" ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          Table.fint m.m_k;
          Table.fint m.m_installs_total;
          Table.ffloat m.m_installs_per_proc;
          Table.ffloat ~decimals:2 m.m_merge_latency;
        ])
    samples;
  table

(* [tables] renders without wall-clock numbers (no clock is injected here:
   the experiment registry must stay deterministic for the lint and the
   repro corpus); the bench harness calls {!run_arms} with a clock and
   writes BENCH_throughput.json itself. *)
let tables ?(quick = false) () =
  let results = run_arms ~quick () in
  let dp = run_data_plane ~quick () in
  let merge = [ merge_at_scale ~k:(if quick then 25 else 50) ] in
  [
    throughput_table ~with_wall:false results;
    critpath_table results;
    window_table results;
    data_plane_table ~with_wall:false dp;
    merge_table merge;
  ]
