module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module Hashtblx = Vs_util.Hashtblx

type config = { period : float; timeout : float }

let default_config = { period = 0.030; timeout = 0.100 }

type t = {
  sim : Sim.t;
  me : Proc_id.t;
  universe : int list;
  config : config;
  send_heartbeat : dst_node:int -> unit;
  on_change : Proc_id.t list -> unit;
  last_heard : (Proc_id.t, float) Hashtbl.t;
  mutable current : Proc_id.t list;
  mutable stopped : bool;
}

let compute_reachable t =
  let now = Sim.now t.sim in
  let fresh =
    Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.last_heard
    |> List.filter_map (fun (p, heard) ->
           if now -. heard < t.config.timeout then Some p else None)
  in
  Proc_id.sort (t.me :: fresh)

let refresh t =
  if not t.stopped then begin
    let next = compute_reachable t in
    if not (List.equal Proc_id.equal next t.current) then begin
      let prev = t.current in
      t.current <- next;
      if Sim.obs_on t.sim then begin
        let me = Proc_id.to_obs t.me in
        List.iter
          (fun p ->
            Sim.emit t.sim
              (Vs_obs.Event.Suspect { proc = me; peer = Proc_id.to_obs p }))
          (Vs_util.Listx.diff ~cmp:Proc_id.compare prev next);
        List.iter
          (fun p ->
            if not (Proc_id.equal p t.me) then
              Sim.emit t.sim
                (Vs_obs.Event.Unsuspect { proc = me; peer = Proc_id.to_obs p }))
          (Vs_util.Listx.diff ~cmp:Proc_id.compare next prev)
      end;
      t.on_change next
    end
  end

let rec tick t () =
  if not t.stopped then begin
    List.iter
      (fun node ->
        if node <> t.me.Proc_id.node then t.send_heartbeat ~dst_node:node)
      t.universe;
    refresh t;
    ignore (Sim.after t.sim t.config.period (tick t))
  end

let create sim ~me ~universe ~config ~send_heartbeat ~on_change =
  if config.period <= 0. || config.timeout <= config.period then
    invalid_arg "Fd.create: need 0 < period < timeout";
  let t =
    {
      sim;
      me;
      universe;
      config;
      send_heartbeat;
      on_change;
      last_heard = Hashtbl.create 16;
      current = [ me ];
      stopped = false;
    }
  in
  (* First tick goes through the event queue so the caller finishes wiring
     up before anything fires. *)
  ignore (Sim.after sim 0. (tick t));
  t

let heartbeat_received t ~from =
  if (not t.stopped) && not (Proc_id.equal from t.me) then begin
    Hashtbl.replace t.last_heard from (Sim.now t.sim);
    refresh t
  end

let forget t p =
  if Hashtbl.mem t.last_heard p then begin
    Hashtbl.remove t.last_heard p;
    refresh t
  end

let reachable t = t.current

let stop t = t.stopped <- true
