module Proc_id = Vs_net.Proc_id

module Id = struct
  type t = { epoch : int; proposer : Proc_id.t } [@@deriving eq, ord, show]

  let initial proposer = { epoch = 0; proposer }

  let make ~epoch ~proposer =
    if epoch < 0 then invalid_arg "View.Id.make: negative epoch";
    { epoch; proposer }

  let to_string t = Printf.sprintf "v%d@%s" t.epoch (Proc_id.to_string t.proposer)

  let to_obs t =
    { Vs_obs.Event.epoch = t.epoch; proposer = Proc_id.to_obs t.proposer }
end

type t = { id : Id.t; members : Proc_id.t list } [@@deriving eq, show]

let make id members =
  match Proc_id.sort members with
  | [] -> invalid_arg "View.make: empty membership"
  | members -> { id; members }

let singleton p = make (Id.initial p) [ p ]

let mem p t = List.exists (Proc_id.equal p) t.members

let size t = List.length t.members

let coordinator t =
  match Proc_id.min_member t.members with
  | Some p -> p
  | None -> assert false (* members is non-empty by construction *)

let to_string t =
  Printf.sprintf "%s{%s}" (Id.to_string t.id)
    (String.concat "," (List.map Proc_id.to_string t.members))
