(** Views and view identifiers.

    A view identifier is an (epoch, proposer) pair ordered lexicographically,
    so identifiers from concurrent partitions are always comparable and a
    proposer can outbid any identifier it has seen by bumping the epoch.
    Views are sorted member lists; the coordinator of a view is its smallest
    member. *)

module Id : sig
  type t = { epoch : int; proposer : Vs_net.Proc_id.t } [@@deriving eq, ord, show]

  val initial : Vs_net.Proc_id.t -> t
  (** Epoch-0 identifier of a process's boot-time singleton view. *)

  val make : epoch:int -> proposer:Vs_net.Proc_id.t -> t

  val to_string : t -> string

  val to_obs : t -> Vs_obs.Event.vid
  (** Mirror into the observability schema. *)
end

type t = { id : Id.t; members : Vs_net.Proc_id.t list } [@@deriving eq, show]
(** [members] is sorted and duplicate-free. *)

val make : Id.t -> Vs_net.Proc_id.t list -> t
(** Sorts and dedups the members; they must be non-empty. *)

val singleton : Vs_net.Proc_id.t -> t
(** A process's initial view: itself alone, epoch 0. *)

val mem : Vs_net.Proc_id.t -> t -> bool

val size : t -> int

val coordinator : t -> Vs_net.Proc_id.t
(** Smallest member. *)

val to_string : t -> string
