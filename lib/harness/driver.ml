module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Classify = Evs_core.Classify
module Evs = Evs_core.Evs
module Listx = Vs_util.Listx

type protocol = Vsync | Evs

let protocol_to_string = function Vsync -> "vsync" | Evs -> "evs"

type setup = {
  seed : int64;
  n : int;
  protocol : protocol;
  net_config : Net.config;
}

type traffic = { tr_start : float; tr_until : float; tr_gap : float }

type quarantine = {
  q_bound : int;
  q_views : int;
  q_cut : float option;
  q_quarantined : int;
}

type outcome = {
  violations : string list;
  verdicts : Vs_obs.Explain.violation list;
  deliveries : int;
  installs : int;
  distinct_views : int;
  eview_changes : int;
  events : int;
  stable : bool;
  quarantine : quarantine option;
  straggler : (string * float) option;
}

(* The vspath straggler verdict for the run, when the caller recorded it at
   Full level — the only level at which the causal DAG has its message
   edges.  Anything below Full yields [None] without touching the entries,
   so the checking paths (Protocol or Off recorders) pay nothing. *)
let causal_straggler obs =
  match obs with
  | Some r when Vs_obs.Recorder.full_on r && Vs_obs.Recorder.count r > 0 ->
      let cp = Vs_obs.Critpath.of_entries (Vs_obs.Recorder.entries r) in
      Option.map
        (fun (p, c) -> (Vs_obs.Event.proc_to_string p, c))
        cp.Vs_obs.Critpath.straggler
  | Some _ | None -> None

(* EVS harness checks return plain strings; wrap them so the explain layer
   can still attribute them to a property class. *)
let wrap_verdict property detail =
  { Vs_obs.Explain.property; msg = None; procs = []; vids = []; detail }

(* The stabilization verdict, surfaced both as a typed event on the run's
   stream (so vsexplain can attribute recovery) and as the outcome's
   [quarantine] summary.  [extra] counts EVS-side records the [since]
   filters forgave on top of the oracle's own quarantined violations. *)
let finish_stabilization sim (st : Oracle.stabilization) ~extra =
  let quarantined = List.length st.Oracle.st_quarantined + extra in
  Sim.emit sim
    (Vs_obs.Event.Quarantine
       {
         bound = st.Oracle.st_bound;
         opened = st.Oracle.st_first_fault;
         cut = (match st.Oracle.st_cut with Some c -> c | None -> -1.0);
         views = st.Oracle.st_views;
         quarantined;
       });
  {
    q_bound = st.Oracle.st_bound;
    q_views = st.Oracle.st_views;
    q_cut = st.Oracle.st_cut;
    q_quarantined = quarantined;
  }

(* EVS counterpart of Vsync_cluster.stable_view_reached: every live handle
   installed the same view, that view covers exactly the live nodes, and
   nobody is mid-flush. *)
let evs_stable c =
  match Evs_cluster.live c with
  | [] -> false
  | handles ->
      let live_nodes =
        List.map (fun e -> (Evs.me e).Proc_id.node) handles
        |> List.sort_uniq Int.compare
      in
      let views = List.map Evs.view handles in
      (match views with
      | v :: rest ->
          List.for_all (fun v' -> View.equal v v') rest
          && Listx.equal_set ~cmp:Int.compare
               (List.sort_uniq Int.compare
                  (List.map (fun (p : Proc_id.t) -> p.Proc_id.node) v.View.members))
               live_nodes
          && List.for_all (fun e -> not (Evs.is_blocked e)) handles
      | [] -> false)

(* Section 6 structural invariants over every e-view any process ever
   installed: E_view.validate (subviews partition the membership, sv-sets
   partition the subviews) and well-formedness of the classification verdict
   a majority-quorum application would derive from it. *)
let evs_structural_violations ?(since = neg_infinity) ~n c =
  let quorum ms = 2 * List.length ms > n in
  List.concat_map
    (fun (r : Evs_cluster.eview_record) ->
      let where =
        Printf.sprintf "%s at t=%.3f"
          (Proc_id.to_string r.Evs_cluster.er_proc)
          r.Evs_cluster.er_time
      in
      let ev = r.Evs_cluster.er_eview in
      let mk detail =
        {
          Vs_obs.Explain.property = Vs_obs.Explain.Evs_invariant;
          msg = None;
          procs = [ Proc_id.to_obs r.Evs_cluster.er_proc ];
          vids = [ View.Id.to_obs ev.E_view.view.View.id ];
          detail;
        }
      in
      let structural =
        match E_view.validate ev with
        | Ok () -> []
        | Error e ->
            [ mk (Printf.sprintf "e-view invariant (%s): %s in %s" where e
                    (E_view.to_string ev)) ]
      in
      let verdict = Classify.enriched ~eview:ev ~would_serve_all:quorum () in
      let classify =
        if Classify.well_formed verdict then []
        else
          [ mk (Printf.sprintf "classify not well-formed (%s): %s on %s" where
                  (Classify.problem_to_string verdict)
                  (E_view.to_string ev)) ]
      in
      structural @ classify)
    (List.filter
       (fun (r : Evs_cluster.eview_record) -> r.Evs_cluster.er_time >= since)
       (Evs_cluster.eview_records c))

let run_schedule ?traffic ?obs ?stabilization_bound setup ~script ~until =
  let pump pump_traffic c =
    match traffic with
    | Some tr when tr.tr_gap > 0. ->
        pump_traffic c ~start:tr.tr_start ~until:tr.tr_until ~mean_gap:tr.tr_gap
    | Some _ | None -> ()
  in
  let bound = stabilization_bound in
  match setup.protocol with
  | Vsync ->
      let c =
        Vsync_cluster.create ~seed:setup.seed ?obs ~net_config:setup.net_config
          ~n:setup.n ()
      in
      Vsync_cluster.run_script c script;
      pump Vsync_cluster.pump_traffic c;
      Vsync_cluster.run c ~until;
      let o = Vsync_cluster.oracle c in
      let raw = Oracle.all_violations o in
      let verdicts, quarantine =
        match Oracle.stabilization o ?bound raw with
        | None -> (List.map Oracle.to_obs_violation raw, None)
        | Some st ->
            ( List.map Oracle.to_obs_violation st.Oracle.st_residual,
              Some (finish_stabilization (Vsync_cluster.sim c) st ~extra:0) )
      in
      {
        violations = List.map (fun v -> v.Vs_obs.Explain.detail) verdicts;
        verdicts;
        deliveries = Oracle.total_deliveries o;
        installs = Oracle.total_installs o;
        distinct_views = Oracle.distinct_views o;
        eview_changes = 0;
        events = Sim.events_processed (Vsync_cluster.sim c);
        stable = Vsync_cluster.stable_view_reached c;
        quarantine;
        straggler = causal_straggler obs;
      }
  | Evs ->
      let c =
        Evs_cluster.create ~seed:setup.seed ?obs ~net_config:setup.net_config
          ~n:setup.n ()
      in
      Evs_cluster.run_script c script;
      pump Evs_cluster.pump_traffic c;
      Evs_cluster.run c ~until;
      let o = Evs_cluster.oracle c in
      let evs_verdicts ?since () =
        List.map
          (wrap_verdict Vs_obs.Explain.Evs_total_order)
          (Evs_cluster.check_total_order ?since c)
        @ List.map
            (wrap_verdict Vs_obs.Explain.Evs_structure)
            (Evs_cluster.check_structure ?since c)
        @ evs_structural_violations ?since ~n:setup.n c
      in
      let raw = Oracle.all_violations o in
      let verdicts, quarantine =
        match Oracle.stabilization o ?bound raw with
        | None ->
            (List.map Oracle.to_obs_violation raw @ evs_verdicts (), None)
        | Some st ->
            (* EVS records inside the recovery window are quarantined by
               re-running the checks from the cut; a run that never
               reconverged already carries the synthesized residual, so
               its EVS noise is forgiven wholesale. *)
            let since =
              match st.Oracle.st_cut with Some cut -> cut | None -> infinity
            in
            let all_evs = evs_verdicts () in
            let kept_evs = evs_verdicts ~since () in
            let extra = List.length all_evs - List.length kept_evs in
            ( List.map Oracle.to_obs_violation st.Oracle.st_residual
              @ kept_evs,
              Some (finish_stabilization (Evs_cluster.sim c) st ~extra) )
      in
      {
        violations = List.map (fun v -> v.Vs_obs.Explain.detail) verdicts;
        verdicts;
        deliveries = Oracle.total_deliveries o;
        installs = Oracle.total_installs o;
        distinct_views = Oracle.distinct_views o;
        eview_changes = Evs_cluster.eview_changes_total c;
        events = Sim.events_processed (Evs_cluster.sim c);
        stable = evs_stable c;
        quarantine;
        straggler = causal_straggler obs;
      }
