(** Uniform run-one-schedule entry point over both cluster harnesses.

    The schedule explorer (lib/check), the CLI and the tests all need the
    same shape of run: boot a cluster on a configured network, schedule a
    fault script and background traffic, run to a horizon, then collect
    every checkable property violation plus the run's head-line counters.
    This module provides that shape once, for plain view synchrony
    ({!Vsync_cluster}) and enriched view synchrony ({!Evs_cluster}) alike,
    so callers never branch on the protocol.

    EVS runs are checked against strictly more properties: on top of the
    Section 2 oracle checks they get Property 6.1 (total order of e-view
    changes), Property 6.3 (structure preservation), the {!E_view.validate}
    structural invariants of every recorded e-view (subviews partition the
    membership, sv-sets partition the subviews), and well-formedness of the
    {!Classify.enriched} verdict computed from each recorded e-view. *)

type protocol = Vsync | Evs

val protocol_to_string : protocol -> string

type setup = {
  seed : int64;
  n : int;  (** nodes, numbered [0 .. n-1] *)
  protocol : protocol;
  net_config : Vs_net.Net.config;
}

type traffic = {
  tr_start : float;
  tr_until : float;
  tr_gap : float;  (** mean gap between multicasts; [<= 0.] disables *)
}

type quarantine = {
  q_bound : int;  (** recovery bound, in installed views *)
  q_views : int;  (** fresh views installed after the last transient fault *)
  q_cut : float option;
      (** when legality resumed; [None] = never reconverged *)
  q_quarantined : int;  (** violations forgiven as recovery noise *)
}
(** Summary of the stabilization oracle's verdict for a run that contained
    transient {!Faults.Corrupt} actions; also emitted as a typed
    [Quarantine] event on the run's stream. *)

type outcome = {
  violations : string list;
      (** every failed property check, human-readable; [] = clean run.
          Always [List.map (fun v -> v.detail) verdicts]. *)
  verdicts : Vs_obs.Explain.violation list;
      (** the same verdicts, structured: which property, which message,
          which processes, which views — what {!Vs_obs.Explain} consumes *)
  deliveries : int;
  installs : int;
  distinct_views : int;
  eview_changes : int;  (** within-view e-view changes; 0 for plain VS *)
  events : int;         (** simulator events processed *)
  stable : bool;
      (** all live members converged on one final view covering the live
          nodes (the {!Vsync_cluster.stable_view_reached} condition; the
          analogous check over live EVS handles for enriched runs) *)
  quarantine : quarantine option;
      (** [Some _] iff the script injected transient corruptions: verdicts
          were filtered through {!Oracle.stabilization} (recovery-window
          violations quarantined, persisting ones relabeled) and, on EVS
          runs, the 6.1/6.3/structural checks re-ran from the cut *)
  straggler : (string * float) option;
      (** the vspath verdict — the process carrying the largest summed
          charge across the run's install critical paths, with that charge
          in seconds.  Computed only when [?obs] recorded at [Full] level
          (the causal DAG needs per-message traffic); [None] otherwise, so
          Protocol/Off-level checking runs pay nothing for it *)
}

val run_schedule :
  ?traffic:traffic ->
  ?obs:Vs_obs.Recorder.t ->
  ?stabilization_bound:int ->
  setup ->
  script:Faults.script ->
  until:float ->
  outcome
(** Deterministic: the same setup, traffic, script and horizon produce the
    same outcome, bit for bit.  [?obs] receives the run's event stream
    (pass a [Full]-level recorder to capture per-message traffic).
    [?stabilization_bound] overrides {!Oracle.stabilization}'s default
    recovery bound for runs with transient faults. *)
