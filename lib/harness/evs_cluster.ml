module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Endpoint = Vs_vsync.Endpoint
module Rng = Vs_util.Rng
module Listx = Vs_util.Listx

type eview_record = {
  er_proc : Proc_id.t;
  er_time : float;
  er_eview : E_view.t;
  er_cause : string;
}

type node_state = {
  mutable evs : (Oracle.msg_id, unit) Evs.t option;
  mutable prior_vid : View.Id.t;
  mutable send_index : int;
}

type t = {
  sim : Sim.t;
  net : (Oracle.msg_id, unit) Evs.net;
  config : Endpoint.config;
  oracle : Oracle.t;
  rng : Rng.t;
  universe : int list;
  nodes : (int, node_state) Hashtbl.t;
  mutable rev_records : eview_record list;
  mutable echanges : int;
}

let sim t = t.sim

let oracle t = t.oracle

let net_stats t = Net.stats t.net

let node_state t node =
  match Hashtbl.find_opt t.nodes node with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Evs_cluster: unknown node %d" node)

let cause_string = function
  | Evs.View_change -> "view"
  | Evs.Svset_merged id -> "svset-merge " ^ E_view.Svset_id.to_string id
  | Evs.Subview_merged id -> "subview-merge " ^ E_view.Subview_id.to_string id

let boot t node =
  let st = node_state t node in
  assert (st.evs = None);
  let me = Net.fresh_incarnation t.net node in
  let handle = ref None in
  let callbacks =
    {
      Evs.on_eview =
        (fun ev ->
          t.rev_records <-
            {
              er_proc = me;
              er_time = Sim.now t.sim;
              er_eview = ev.Evs.eview;
              er_cause = cause_string ev.Evs.cause;
            }
            :: t.rev_records;
          match ev.Evs.cause with
          | Evs.View_change ->
              Oracle.record_install t.oracle ~proc:me
                ~view:ev.Evs.eview.E_view.view ~prior:st.prior_vid
                ~time:(Sim.now t.sim);
              st.prior_vid <- ev.Evs.eview.E_view.view.View.id
          | Evs.Svset_merged _ | Evs.Subview_merged _ ->
              t.echanges <- t.echanges + 1);
      on_message =
        (fun ~sender:_ msg_id ->
          match !handle with
          | Some e ->
              Oracle.record_delivery t.oracle ~proc:me
                ~vid:(Evs.view e).View.id msg_id ~time:(Sim.now t.sim)
          | None -> ());
    }
  in
  st.prior_vid <- View.Id.initial me;
  let e = Evs.create t.sim t.net ~me ~universe:t.universe ~config:t.config ~callbacks in
  handle := Some e;
  st.evs <- Some e

let create ?(seed = 1L) ?obs ?(net_config = Net.default_config)
    ?(config = Endpoint.default_config) ~n () =
  let sim = Sim.create ~seed ?obs () in
  let net : (Oracle.msg_id, unit) Evs.net =
    Evs.make_net
      ~ident:(fun (m : Oracle.msg_id) -> Some (Oracle.msg_id_to_obs m))
      sim net_config
  in
  let universe = List.init n (fun i -> i) in
  let t =
    {
      sim;
      net;
      config;
      oracle = Oracle.create ();
      rng = Sim.fork_rng sim;
      universe;
      nodes = Hashtbl.create 16;
      rev_records = [];
      echanges = 0;
    }
  in
  List.iter
    (fun node ->
      Hashtbl.replace t.nodes node
        {
          evs = None;
          prior_vid = View.Id.initial (Proc_id.initial node);
          send_index = 0;
        };
      boot t node)
    universe;
  t

let run t ~until = ignore (Sim.run ~until t.sim)

let live t =
  List.filter_map
    (fun node ->
      match (node_state t node).evs with
      | Some e when Evs.is_alive e -> Some e
      | Some _ | None -> None)
    t.universe

let evs_on t node =
  match (node_state t node).evs with
  | Some e when Evs.is_alive e -> Some e
  | Some _ | None -> None

let multicast_from t ~node ?order () =
  match evs_on t node with
  | Some e ->
      let st = node_state t node in
      let msg_id = { Oracle.m_sender = Evs.me e; m_index = st.send_index } in
      st.send_index <- st.send_index + 1;
      let order_class =
        match order with Some Endpoint.Total -> `Total | _ -> `Fifo
      in
      Oracle.record_send t.oracle ~order:order_class msg_id;
      Evs.multicast e ?order msg_id
  | None -> ()

let apply_action t action =
  match action with
  | Faults.Partition comps -> Net.set_partition t.net comps
  | Faults.Heal -> Net.heal t.net
  | Faults.Crash node -> (
      match evs_on t node with
      | Some e ->
          Evs.kill e;
          (node_state t node).evs <- None
      | None -> ())
  | Faults.Recover node ->
      let st = node_state t node in
      (match st.evs with
      | Some e when Evs.is_alive e -> ()
      | Some _ | None ->
          st.evs <- None;
          boot t node)
  | Faults.Corrupt (node, c) -> (
      match evs_on t node with
      | Some e ->
          let field = Evs.corrupt e c in
          Oracle.record_corruption t.oracle ~proc:(Evs.me e) ~field
            ~time:(Sim.now t.sim)
      | None -> ())

let run_script t script =
  Faults.schedule t.sim script ~apply:(fun action ->
      Sim.record t.sim ~component:"faults" (Faults.to_string action);
      apply_action t action)

let pump_traffic t ~start ~until ~mean_gap =
  let rec arm time =
    let time = time +. Rng.exponential t.rng mean_gap in
    if time < until then begin
      ignore
        (Sim.at t.sim time (fun () ->
             let node = Rng.pick t.rng t.universe in
             let order =
               if Rng.bool t.rng 0.2 then Endpoint.Total else Endpoint.Fifo
             in
             multicast_from t ~node ~order ()));
      arm time
    end
  in
  arm start

let eview_records t = List.rev t.rev_records

let eview_changes_total t = t.echanges

(* Property 6.1: within one view, every process records the same sequence
   of e-view changes — match records by (view id, eseq) and require equal
   structures and causes. *)
let check_total_order ?(since = neg_infinity) t =
  let records =
    List.filter (fun r -> r.er_time >= since) (eview_records t)
  in
  let key r = (r.er_eview.E_view.view.View.id, r.er_eview.E_view.eseq) in
  let groups =
    Listx.group_by ~key
      ~cmp_key:(fun (v1, s1) (v2, s2) ->
        match View.Id.compare v1 v2 with 0 -> Int.compare s1 s2 | c -> c)
      records
  in
  List.concat_map
    (fun ((vid, eseq), group) ->
      match group with
      | [] | [ _ ] -> []
      | first :: rest ->
          let fingerprint r = E_view.to_string r.er_eview in
          let reference = fingerprint first in
          List.concat_map
            (fun r ->
              let mismatches = ref [] in
              if not (String.equal (fingerprint r) reference) then
                mismatches :=
                  Printf.sprintf
                    "total-order: %s and %s disagree on e-view (%s, %d): %s vs %s"
                    (Proc_id.to_string first.er_proc)
                    (Proc_id.to_string r.er_proc)
                    (View.Id.to_string vid) eseq reference (fingerprint r)
                  :: !mismatches;
              if not (String.equal r.er_cause first.er_cause) then
                mismatches :=
                  Printf.sprintf
                    "total-order: %s and %s disagree on the cause of e-view \
                     (%s, %d): %s vs %s"
                    (Proc_id.to_string first.er_proc)
                    (Proc_id.to_string r.er_proc)
                    (View.Id.to_string vid) eseq first.er_cause r.er_cause
                  :: !mismatches;
              !mismatches)
            rest)
    groups

let same_subview ev p q =
  match (E_view.subview_of p ev, E_view.subview_of q ev) with
  | Some a, Some b -> E_view.Subview_id.equal a.E_view.sv_id b.E_view.sv_id
  | _ -> false

let same_svset ev p q =
  let svset_id_of x =
    match E_view.subview_of x ev with
    | Some sv -> Option.map (fun ss -> ss.E_view.ss_id) (E_view.svset_of_subview sv.E_view.sv_id ev)
    | None -> None
  in
  match (svset_id_of p, svset_id_of q) with
  | Some a, Some b -> E_view.Svset_id.equal a b
  | _ -> false

(* Property 6.3 at each process: compare its last e-view of the old view
   with the first e-view of the new one.  Both directions apply to pairs
   that travelled with the observer (both installed the new view straight
   from the observer's old view): such pairs keep their subview/sv-set
   relation and are never silently joined by the view change.  Pairs with a
   member that detoured through views the observer did not share are
   exempt in both directions — their subview may legitimately have shrunk
   away from a laggard, or been grown by an application merge the observer
   could not see. *)
let check_structure ?(since = neg_infinity) t =
  (* prior view of [proc] when it installed [vid], from the oracle *)
  let prior_of proc vid =
    Oracle.installs_of t.oracle ~proc
    |> List.find_map (fun (v, prior) ->
           if View.Id.equal v.View.id vid then Some prior else None)
  in
  let came_from proc ~new_vid ~old_vid =
    match prior_of proc new_vid with
    | Some prior -> View.Id.equal prior old_vid
    | None -> false
  in
  let by_proc =
    Listx.group_by ~key:(fun r -> r.er_proc) ~cmp_key:Proc_id.compare
      (List.filter (fun r -> r.er_time >= since) (eview_records t))
  in
  List.concat_map
    (fun (proc, records) ->
      let rec walk acc = function
        | prev :: (next :: _ as rest)
          when not
                 (View.Id.equal prev.er_eview.E_view.view.View.id
                    next.er_eview.E_view.view.View.id) ->
            (* prev is the last record of its view (records are in order). *)
            let old_ev = prev.er_eview and new_ev = next.er_eview in
            let survivors =
              Listx.inter ~cmp:Proc_id.compare (E_view.members old_ev)
                (E_view.members new_ev)
            in
            let new_vid = new_ev.E_view.view.View.id in
            let old_vid = old_ev.E_view.view.View.id in
            let errors = ref acc in
            List.iter
              (fun p ->
                List.iter
                  (fun q ->
                    if Proc_id.compare p q < 0 then begin
                      let same_lineage =
                        came_from p ~new_vid ~old_vid
                        && came_from q ~new_vid ~old_vid
                      in
                      let together_before = same_subview old_ev p q in
                      let together_after = same_subview new_ev p q in
                      if same_lineage && together_before && not together_after
                      then
                        errors :=
                          Printf.sprintf
                            "structure@%s: %s,%s shared a subview in %s but \
                             not in %s"
                            (Proc_id.to_string proc) (Proc_id.to_string p)
                            (Proc_id.to_string q)
                            (View.Id.to_string old_ev.E_view.view.View.id)
                            (View.Id.to_string new_ev.E_view.view.View.id)
                          :: !errors;
                      if same_lineage && (not together_before) && together_after
                      then
                        errors :=
                          Printf.sprintf
                            "structure@%s: %s,%s were joined into one subview \
                             by a view change (%s -> %s)"
                            (Proc_id.to_string proc) (Proc_id.to_string p)
                            (Proc_id.to_string q)
                            (View.Id.to_string old_ev.E_view.view.View.id)
                            (View.Id.to_string new_ev.E_view.view.View.id)
                          :: !errors;
                      let ss_before = same_svset old_ev p q in
                      let ss_after = same_svset new_ev p q in
                      if same_lineage && ss_before && not ss_after then
                        errors :=
                          Printf.sprintf
                            "structure@%s: %s,%s shared an sv-set in %s but \
                             not in %s"
                            (Proc_id.to_string proc) (Proc_id.to_string p)
                            (Proc_id.to_string q)
                            (View.Id.to_string old_ev.E_view.view.View.id)
                            (View.Id.to_string new_ev.E_view.view.View.id)
                          :: !errors
                    end)
                  survivors)
              survivors;
            walk !errors rest
        | _ :: rest -> walk acc rest
        | [] -> acc
      in
      walk [] records)
    by_proc
