(** A cluster of enriched-view-synchrony endpoints under observation, with
    checkers for the Section 6 properties.

    Records every e-view event at every process.  The checkers:

    - {!check_total_order} (Property 6.1): within a view, all processes see
      the same sequence of e-view changes — same positions, same causes,
      same resulting structures;
    - {!check_structure} (Property 6.3): across a view change, processes
      that shared a subview (sv-set) and survive together still share it,
      and processes that did {e not} share one have not been merged silently
      (composition grows only under application control). *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module E_view = Evs_core.E_view
module Evs = Evs_core.Evs
module Endpoint = Vs_vsync.Endpoint

type t

val create :
  ?seed:int64 ->
  ?obs:Vs_obs.Recorder.t ->
  ?net_config:Vs_net.Net.config ->
  ?config:Endpoint.config ->
  n:int ->
  unit ->
  t

val sim : t -> Vs_sim.Sim.t

val oracle : t -> Oracle.t
(** Message/view recording, as in {!Vsync_cluster} — the Section 2
    properties hold for EVS runs too and can be checked with it. *)

val net_stats : t -> Vs_net.Net.stats

val run : t -> until:float -> unit

val live : t -> (Oracle.msg_id, unit) Evs.t list

val evs_on : t -> int -> (Oracle.msg_id, unit) Evs.t option

val multicast_from : t -> node:int -> ?order:Endpoint.order -> unit -> unit

val apply_action : t -> Faults.action -> unit

val run_script : t -> Faults.script -> unit

val pump_traffic : t -> start:float -> until:float -> mean_gap:float -> unit

type eview_record = {
  er_proc : Proc_id.t;
  er_time : float;
  er_eview : E_view.t;
  er_cause : string;
}

val eview_records : t -> eview_record list
(** Everything every process saw, in recording order. *)

val check_total_order : ?since:float -> t -> string list
(** [since] (default: the whole run) restricts the check to e-view records
    at or after that time — the stabilization oracle uses it to quarantine
    records inside a transient-fault recovery window. *)

val check_structure : ?since:float -> t -> string list
(** Same [since] semantics as {!check_total_order}; a view transition whose
    old-view record predates [since] is exempt entirely. *)

val eview_changes_total : t -> int
(** Count of within-view e-view changes across all processes (E9). *)
