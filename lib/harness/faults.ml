module Sim = Vs_sim.Sim
module Rng = Vs_util.Rng
module Listx = Vs_util.Listx
module Hashtblx = Vs_util.Hashtblx

(* Re-export so harness and explorer code can build and match corruption
   kinds without reaching into lib/vsync. *)
type corruption = Vs_vsync.Endpoint.corruption =
  | Seq_skew of int
  | Stability_smear of int * int
  | View_skew of int
  | Deps_truncate of int * int

type action =
  | Partition of int list list
  | Heal
  | Crash of int
  | Recover of int
  | Corrupt of int * corruption

type script = (float * action) list

let corruption_to_string = function
  | Seq_skew k -> Printf.sprintf "seq-skew %d" k
  | Stability_smear (node, amount) ->
      Printf.sprintf "stability-smear %d %d" node amount
  | View_skew k -> Printf.sprintf "view-skew %d" k
  | Deps_truncate (node, k) -> Printf.sprintf "deps-truncate %d %d" node k

let to_string = function
  | Partition comps ->
      Printf.sprintf "partition [%s]"
        (String.concat " | "
           (List.map
              (fun nodes -> String.concat "," (List.map string_of_int nodes))
              comps))
  | Heal -> "heal"
  | Crash node -> Printf.sprintf "crash %d" node
  | Recover node -> Printf.sprintf "recover %d" node
  | Corrupt (node, c) ->
      Printf.sprintf "corrupt %d %s" node (corruption_to_string c)

let schedule sim script ~apply =
  List.iter
    (fun (time, action) -> ignore (Sim.at sim time (fun () -> apply action)))
    script

(* Split [nodes] into 2 or 3 random non-empty components. *)
let random_partition rng nodes =
  let shuffled = Rng.shuffle rng nodes in
  let n = List.length shuffled in
  let parts = if n >= 3 && Rng.bool rng 0.3 then 3 else 2 in
  if n < 2 then [ shuffled ]
  else begin
    let cut1 = 1 + Rng.int rng (n - 1) in
    if parts = 2 || n - cut1 < 2 then
      [ Listx.take cut1 shuffled; Listx.drop cut1 shuffled ]
    else begin
      let rest = Listx.drop cut1 shuffled in
      let cut2 = 1 + Rng.int rng (List.length rest - 1) in
      [ Listx.take cut1 shuffled; Listx.take cut2 rest; Listx.drop cut2 rest ]
    end
  end

let random_script rng ~nodes ~start ~duration ~mean_gap ?(crash_weight = 1.0)
    ?(partition_weight = 1.0) ?(corrupt_weight = 0.0) () =
  if nodes = [] then invalid_arg "Faults.random_script: no nodes";
  let deadline = start +. duration in
  let crashed = Hashtbl.create 8 in
  let partitioned = ref false in
  let corrupted = ref false in
  let rec go time acc =
    let time = time +. Rng.exponential rng mean_gap in
    if time >= deadline then List.rev acc
    else begin
      let alive = List.filter (fun n -> not (Hashtbl.mem crashed n)) nodes in
      let choices =
        (if List.length alive > 1 then [ (crash_weight, `Crash) ] else [])
        @ (if Hashtbl.length crashed > 0 then [ (1.0, `Recover) ] else [])
        @ (if List.length alive > 1 then [ (partition_weight, `Partition) ] else [])
        @ (if !partitioned then [ (1.0, `Heal) ] else [])
        (* The corrupt entry only exists when transient faults are enabled,
           so the draw sequence — and thus every script — is byte-identical
           to the pre-transient generator when the weight is 0. *)
        @ if corrupt_weight > 0. && alive <> [] then
            [ (corrupt_weight, `Corrupt) ]
          else []
      in
      match choices with
      | [] -> go time acc
      | _ ->
          let total = List.fold_left (fun a (w, _) -> a +. w) 0. choices in
          let pickpoint = Rng.float rng *. total in
          let rec pick acc_w = function
            | [ (_, c) ] -> c
            | (w, c) :: rest ->
                if pickpoint < acc_w +. w then c else pick (acc_w +. w) rest
            | [] -> assert false
          in
          let action =
            match pick 0. choices with
            | `Crash ->
                let victim = Rng.pick rng alive in
                Hashtbl.replace crashed victim ();
                Crash victim
            | `Recover ->
                let nodes_down = Hashtblx.sorted_keys ~cmp:Int.compare crashed in
                let lucky = Rng.pick rng nodes_down in
                Hashtbl.remove crashed lucky;
                Recover lucky
            | `Partition ->
                partitioned := true;
                Partition (random_partition rng nodes)
            | `Heal ->
                partitioned := false;
                Heal
            | `Corrupt ->
                let target = Rng.pick rng alive in
                let sign mag = if Rng.bool rng 0.5 then mag else -mag in
                let kind =
                  match Rng.int rng 4 with
                  | 0 -> Seq_skew (sign (1 + Rng.int rng 5))
                  | 1 -> Stability_smear (Rng.pick rng alive, 1 + Rng.int rng 8)
                  | 2 -> View_skew (sign (1 + Rng.int rng 3))
                  | _ -> Deps_truncate (Rng.pick rng alive, 1 + Rng.int rng 4)
                in
                corrupted := true;
                Corrupt (target, kind)
          in
          go time ((time, action) :: acc)
    end
  in
  let churn = go start [] in
  (* Closing sequence: heal and recover everything so the run can be
     checked in a stabilized state. *)
  let closing =
    let t0 = deadline in
    let recoveries =
      Hashtblx.sorted_keys ~cmp:Int.compare crashed
      |> List.mapi (fun i n -> (t0 +. (0.01 *. float_of_int (i + 1)), Recover n))
    in
    (t0, Heal) :: recoveries
  in
  (* Transient scripts get a membership kick after everything is healed: a
     crash/recover pair that forces at least two fresh view installations
     after the last corruption, so the stabilization oracle's recovery
     bound is reachable within the quiet tail. *)
  let kick =
    if !corrupted && List.length nodes > 1 then begin
      let victim = Rng.pick rng nodes in
      [ (deadline +. 0.15, Crash victim); (deadline +. 0.25, Recover victim) ]
    end
    else []
  in
  churn @ closing @ kick
