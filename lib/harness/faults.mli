(** Fault-injection scripts.

    A script is a time-ordered list of environment actions — partitions,
    heals, crashes, recoveries.  Clusters interpret the actions; the
    {!random_script} generator produces reproducible churn campaigns for the
    randomized property tests and the experiments, always ending with a heal
    and full recovery followed by a quiet tail so runs can be checked in a
    stabilized state. *)

(** Re-export of {!Vs_vsync.Endpoint.corruption}: the typed transient
    state corruptions ({i node} arguments are resolved against the target's
    current view at injection time). *)
type corruption = Vs_vsync.Endpoint.corruption =
  | Seq_skew of int
  | Stability_smear of int * int
  | View_skew of int
  | Deps_truncate of int * int

type action =
  | Partition of int list list  (** connectivity components (node ids) *)
  | Heal
  | Crash of int                (** kill the incarnation on a node *)
  | Recover of int              (** start a fresh incarnation on a node *)
  | Corrupt of int * corruption
      (** smash one field of the live incarnation on a node *)

type script = (float * action) list

val corruption_to_string : corruption -> string
(** ["seq-skew 3"], ["stability-smear 1 5"], … — the token grammar the
    repro format reuses. *)

val to_string : action -> string

val schedule :
  Vs_sim.Sim.t -> script -> apply:(action -> unit) -> unit
(** Schedule every action at its absolute virtual time. *)

val random_script :
  Vs_util.Rng.t ->
  nodes:int list ->
  start:float ->
  duration:float ->
  mean_gap:float ->
  ?crash_weight:float ->
  ?partition_weight:float ->
  ?corrupt_weight:float ->
  unit ->
  script
(** Random churn: events spaced exponentially with [mean_gap], drawn among
    crash / recover / partition / heal with the given weights (defaults 1.0
    each; recover and heal get natural weights from pending state).  The
    script keeps at least one node alive, ends by [start +. duration] with
    a heal and recovery of every crashed node.

    [corrupt_weight] (default 0) additionally draws transient {!Corrupt}
    actions against live nodes; with the default weight the generator's
    draw sequence is unchanged, so existing seeds produce byte-identical
    scripts.  A script containing at least one corruption ends with a
    crash/recover kick (at [deadline +. 0.15] / [+. 0.25]) that forces
    fresh view installations after the last corruption, keeping the
    stabilization oracle's recovery bound reachable in the quiet tail. *)
