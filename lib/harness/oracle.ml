module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Listx = Vs_util.Listx
module Hashtblx = Vs_util.Hashtblx

type msg_id = { m_sender : Proc_id.t; m_index : int }

let msg_id_to_string m =
  Printf.sprintf "%s#%d" (Proc_id.to_string m.m_sender) m.m_index

let compare_msg_id a b =
  match Proc_id.compare a.m_sender b.m_sender with
  | 0 -> Int.compare a.m_index b.m_index
  | c -> c

let msg_id_to_obs m =
  { Vs_obs.Event.origin = Proc_id.to_obs m.m_sender; mseq = m.m_index }

(* Structured verdicts: the property that broke plus the protocol-typed
   identities the verdict names.  [v_detail] is the legacy one-line string;
   [check_*] project it out so existing reporting is unchanged. *)
type violation = {
  v_property : Vs_obs.Explain.property;
  v_msg : msg_id option;
  v_procs : Proc_id.t list;
  v_vids : View.Id.t list;
  v_detail : string;
}

let to_obs_violation v =
  {
    Vs_obs.Explain.property = v.v_property;
    msg = Option.map msg_id_to_obs v.v_msg;
    procs = List.map Proc_id.to_obs v.v_procs;
    vids = List.map View.Id.to_obs v.v_vids;
    detail = v.v_detail;
  }

let details vs = List.map (fun v -> v.v_detail) vs

type t = {
  sends : (msg_id, [ `Fifo | `Total ]) Hashtbl.t;
  deliveries : (Proc_id.t, (View.Id.t * msg_id * float) list ref) Hashtbl.t;
  installs : (Proc_id.t, (View.t * View.Id.t * float) list ref) Hashtbl.t;
  mutable n_deliveries : int;
  mutable n_installs : int;
  mutable corruptions : (Proc_id.t * string * float) list;  (* newest first *)
}

let create () =
  {
    sends = Hashtbl.create 256;
    deliveries = Hashtbl.create 64;
    installs = Hashtbl.create 64;
    n_deliveries = 0;
    n_installs = 0;
    corruptions = [];
  }

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add tbl key r;
      r

let record_send t ?(order = `Fifo) msg_id = Hashtbl.replace t.sends msg_id order

let record_delivery t ~proc ~vid msg_id ~time =
  let b = bucket t.deliveries proc in
  b := (vid, msg_id, time) :: !b;
  t.n_deliveries <- t.n_deliveries + 1

let record_install t ~proc ~view ~prior ~time =
  let b = bucket t.installs proc in
  b := (view, prior, time) :: !b;
  t.n_installs <- t.n_installs + 1

let record_corruption t ~proc ~field ~time =
  t.corruptions <- (proc, field, time) :: t.corruptions

let corruptions t = List.rev t.corruptions

let procs t =
  let all =
    Hashtblx.sorted_keys ~cmp:Proc_id.compare t.deliveries
    @ Hashtblx.sorted_keys ~cmp:Proc_id.compare t.installs
  in
  Proc_id.sort all

let deliveries_of t ~proc =
  match Hashtbl.find_opt t.deliveries proc with
  | Some r -> List.rev_map (fun (vid, m, _) -> (vid, m)) !r
  | None -> []

let installs_of t ~proc =
  match Hashtbl.find_opt t.installs proc with
  | Some r -> List.rev_map (fun (v, prior, _) -> (v, prior)) !r
  | None -> []

let total_deliveries t = t.n_deliveries

let total_installs t = t.n_installs

let install_counts t =
  Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.installs
  |> List.map (fun (p, r) -> (p, List.length !r))

let distinct_views t =
  Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.installs
  |> List.concat_map (fun (_, r) -> List.map (fun (v, _, _) -> v.View.id) !r)
  |> Listx.sorted_set ~cmp:View.Id.compare
  |> List.length

let delivered_in_view t ~proc ~vid =
  deliveries_of t ~proc
  |> List.filter_map (fun (v, m) -> if View.Id.equal v vid then Some m else None)
  |> Listx.sorted_set ~cmp:compare_msg_id

(* Property 2.1.  Group processes by (prior view, next view) transitions;
   all members of a group must have identical delivery sets in the prior
   view. *)
let agreement_violations t =
  let transitions =
    List.concat_map
      (fun p ->
        List.map (fun (v, prior) -> ((prior, v.View.id), p)) (installs_of t ~proc:p))
      (procs t)
  in
  let groups =
    Listx.group_by ~key:fst
      ~cmp_key:(fun (a1, a2) (b1, b2) ->
        match View.Id.compare a1 b1 with 0 -> View.Id.compare a2 b2 | c -> c)
      transitions
  in
  List.concat_map
    (fun ((prior, next), members) ->
      match List.map snd members with
      | [] | [ _ ] -> []
      | first :: rest ->
          let reference = delivered_in_view t ~proc:first ~vid:prior in
          List.concat_map
            (fun p ->
              let mine = delivered_in_view t ~proc:p ~vid:prior in
              if Listx.equal_set ~cmp:compare_msg_id mine reference then []
              else
                let missing =
                  Listx.diff ~cmp:compare_msg_id reference mine
                  @ Listx.diff ~cmp:compare_msg_id mine reference
                in
                [
                  {
                    v_property = Vs_obs.Explain.Agreement;
                    v_msg =
                      (match missing with m :: _ -> Some m | [] -> None);
                    v_procs = [ first; p ];
                    v_vids = [ prior; next ];
                    v_detail =
                      Printf.sprintf
                        "agreement: %s and %s survived %s -> %s with \
                         different delivery sets (%d vs %d messages)"
                        (Proc_id.to_string first) (Proc_id.to_string p)
                        (View.Id.to_string prior) (View.Id.to_string next)
                        (List.length reference) (List.length mine);
                  };
                ])
            rest)
    groups

(* Property 2.2: each message delivered in at most one view, globally. *)
let uniqueness_violations t =
  let table = Hashtbl.create 256 in
  List.iter
    (fun p ->
      List.iter
        (fun (vid, m) ->
          let vids =
            match Hashtbl.find_opt table m with Some v -> v | None -> []
          in
          if not (List.exists (View.Id.equal vid) vids) then
            Hashtbl.replace table m (vid :: vids))
        (deliveries_of t ~proc:p))
    (procs t);
  Hashtblx.sorted_bindings ~cmp:compare_msg_id table
  |> List.filter_map (fun (m, vids) ->
         if List.length vids > 1 then
           let deliverers =
             List.filter
               (fun p ->
                 List.exists
                   (fun (_, m') -> compare_msg_id m m' = 0)
                   (deliveries_of t ~proc:p))
               (procs t)
           in
           Some
             {
               v_property = Vs_obs.Explain.Uniqueness;
               v_msg = Some m;
               v_procs = deliverers;
               v_vids = vids;
               v_detail =
                 Printf.sprintf
                   "uniqueness: %s delivered in %d distinct views: %s"
                   (msg_id_to_string m) (List.length vids)
                   (String.concat "," (List.map View.Id.to_string vids));
             }
         else None)

(* Property 2.3: at-most-once per process, only actually-sent messages. *)
let integrity_violations t =
  List.concat_map
    (fun p ->
      let seen = Hashtbl.create 64 in
      List.concat_map
        (fun (vid, m) ->
          let mk detail =
            {
              v_property = Vs_obs.Explain.Integrity;
              v_msg = Some m;
              v_procs = [ p ];
              v_vids = [ vid ];
              v_detail = detail;
            }
          in
          let dup =
            if Hashtbl.mem seen m then
              [
                mk
                  (Printf.sprintf "integrity: %s delivered %s more than once"
                     (Proc_id.to_string p) (msg_id_to_string m));
              ]
            else []
          in
          Hashtbl.replace seen m ();
          let phantom =
            if Hashtbl.mem t.sends m then []
            else
              [
                mk
                  (Printf.sprintf "integrity: %s delivered phantom message %s"
                     (Proc_id.to_string p) (msg_id_to_string m));
              ]
          in
          dup @ phantom)
        (deliveries_of t ~proc:p))
    (procs t)

(* Per-sender order of FIFO-class messages: indices from one sender must
   reach each process in strictly increasing order (gaps allowed —
   inversions never).  Totally-ordered messages are sequenced through the
   coordinator's stream and are exempt. *)
let fifo_violations t =
  let is_fifo m =
    match Hashtbl.find_opt t.sends m with
    | Some `Fifo | None -> true
    | Some `Total -> false
  in
  List.concat_map
    (fun p ->
      let last = Hashtbl.create 16 in
      List.concat_map
        (fun (vid, m) ->
          if not (is_fifo m) then []
          else begin
            let prev =
              Option.value ~default:(-1) (Hashtbl.find_opt last m.m_sender)
            in
            Hashtbl.replace last m.m_sender m.m_index;
            if m.m_index <= prev then
              [
                {
                  v_property = Vs_obs.Explain.Fifo;
                  v_msg = Some m;
                  v_procs = [ p ];
                  v_vids = [ vid ];
                  v_detail =
                    Printf.sprintf "fifo: %s delivered %s after index %d"
                      (Proc_id.to_string p) (msg_id_to_string m) prev;
                };
              ]
            else []
          end)
        (deliveries_of t ~proc:p))
    (procs t)

(* Totally-ordered messages delivered within one view must reach every
   receiver in a single consistent relative order: for any two processes,
   the common subsequences agree. *)
let total_order_violations t =
  let is_total m =
    match Hashtbl.find_opt t.sends m with Some `Total -> true | _ -> false
  in
  let sequences =
    List.map
      (fun p ->
        ( p,
          List.filter_map
            (fun (vid, m) -> if is_total m then Some (vid, m) else None)
            (deliveries_of t ~proc:p) ))
      (procs t)
  in
  let vids =
    List.concat_map (fun (_, seq) -> List.map fst seq) sequences
    |> Listx.sorted_set ~cmp:View.Id.compare
  in
  List.concat_map
    (fun vid ->
      let per_proc =
        List.filter_map
          (fun (p, seq) ->
            let mine =
              List.filter_map
                (fun (v, m) -> if View.Id.equal v vid then Some m else None)
                seq
            in
            if mine = [] then None else Some (p, mine))
          sequences
      in
      let rec pairs = function
        | [] -> []
        | (p, sp) :: rest ->
            List.concat_map
              (fun (q, sq) ->
                (* positions of common messages must be order-consistent *)
                let pos seq =
                  List.mapi (fun i m -> (m, i)) seq
                in
                let posp = pos sp and posq = pos sq in
                let common =
                  List.filter (fun (m, _) -> List.mem_assoc m posq) posp
                in
                let projected_q =
                  List.map (fun (m, _) -> List.assoc m posq) common
                in
                let rec increasing = function
                  | a :: b :: rest -> a < b && increasing (b :: rest)
                  | _ -> true
                in
                if increasing projected_q then []
                else
                  [
                    {
                      v_property = Vs_obs.Explain.Total_order;
                      v_msg = (match common with (m, _) :: _ -> Some m | [] -> None);
                      v_procs = [ p; q ];
                      v_vids = [ vid ];
                      v_detail =
                        Printf.sprintf
                          "total-order: %s and %s deliver totally-ordered \
                           messages of %s in different orders"
                          (Proc_id.to_string p) (Proc_id.to_string q)
                          (View.Id.to_string vid);
                    };
                  ])
              rest
            @ pairs rest
      in
      pairs per_proc)
    vids

let check_agreement t = details (agreement_violations t)

let check_uniqueness t = details (uniqueness_violations t)

let check_integrity t = details (integrity_violations t)

let check_fifo t = details (fifo_violations t)

let check_total_order_messages t = details (total_order_violations t)

let all_violations t =
  agreement_violations t @ uniqueness_violations t @ integrity_violations t
  @ fifo_violations t @ total_order_violations t

let check_all t = details (all_violations t)

let check_summary t =
  [
    ("agreement", List.length (agreement_violations t));
    ("uniqueness", List.length (uniqueness_violations t));
    ("integrity", List.length (integrity_violations t));
    ("fifo", List.length (fifo_violations t));
    ("total-order", List.length (total_order_violations t));
  ]

(* ---------- stabilization (bounded recovery from transient faults) ----

   Practically-self-stabilizing reading of the Section 2 properties: after
   the *last* recorded state corruption, the run must return to
   oracle-clean behavior within [bound] freshly installed views.
   Violations attributable to the recovery window are quarantined;
   violations in views installed after the window are real failures,
   relabeled [Stabilization] and annotated with the corrupted fields. *)

type stabilization = {
  st_bound : int;
  st_first_fault : float;
  st_last_fault : float;
  st_views : int;  (* distinct views first installed after the last fault *)
  st_cut : float option;
      (* first-install time of the bound-th fresh view; None when fewer
         than [bound] fresh views were ever installed *)
  st_quarantined : violation list;
  st_residual : violation list;
}

let corrupted_fields_label corruptions =
  List.map
    (fun (proc, field, _) ->
      Printf.sprintf "%s@%s" field (Proc_id.to_string proc))
    corruptions
  |> Listx.sorted_set ~cmp:String.compare
  |> String.concat ","

let stabilization t ?(bound = 2) violations =
  match List.rev t.corruptions with
  | [] -> None
  | corruptions ->
      let fault_times = List.map (fun (_, _, time) -> time) corruptions in
      let first_fault = List.fold_left Float.min infinity fault_times in
      let last_fault = List.fold_left Float.max neg_infinity fault_times in
      (* First-install time of every distinct view in the run. *)
      let first_install = Hashtbl.create 64 in
      List.iter
        (fun (_, r) ->
          List.iter
            (fun ((v : View.t), _, time) ->
              match Hashtbl.find_opt first_install v.View.id with
              | Some prev when prev <= time -> ()
              | _ -> Hashtbl.replace first_install v.View.id time)
            !r)
        (Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.installs);
      (* Views born strictly after the last fault, in install order. *)
      let fresh =
        Hashtblx.sorted_bindings ~cmp:View.Id.compare first_install
        |> List.filter (fun (_, time) -> time > last_fault)
        |> List.sort (fun (v1, t1) (v2, t2) ->
               match Float.compare t1 t2 with
               | 0 -> View.Id.compare v1 v2
               | c -> c)
      in
      let cut =
        match Listx.drop (bound - 1) fresh with
        | (_, time) :: _ -> Some time
        | [] -> None
      in
      let recovered = Listx.drop bound fresh |> List.map fst in
      let in_recovered vid = List.exists (View.Id.equal vid) recovered in
      (* When a violation completed: the latest evidence the oracle holds
         for it — any delivery of the offending message, any delivery by a
         violating process inside a named view, or failing those the first
         install of a named view.  Latest, not earliest: a message first
         delivered cleanly before the fault can still be the victim of a
         post-corruption inversion or duplicate, and only violations whose
         evidence closed before the first fault may be exonerated as
         pre-existing. *)
      let violation_time v =
        let in_procs p =
          v.v_procs = [] || List.exists (Proc_id.equal p) v.v_procs
        in
        let t0 =
          List.fold_left
            (fun acc p ->
              match Hashtbl.find_opt t.deliveries p with
              | None -> acc
              | Some r ->
                  List.fold_left
                    (fun acc (vid, m', time) ->
                      let relevant =
                        (match v.v_msg with
                        | Some m -> compare_msg_id m m' = 0
                        | None -> false)
                        || (in_procs p
                           && List.exists (View.Id.equal vid) v.v_vids)
                      in
                      if relevant then Float.max acc time else acc)
                    acc !r)
            neg_infinity (procs t)
        in
        let t0 =
          if t0 > neg_infinity then t0
          else
            List.fold_left
              (fun acc vid ->
                match Hashtbl.find_opt first_install vid with
                | Some time -> Float.max acc time
                | None -> acc)
              neg_infinity v.v_vids
        in
        if t0 > neg_infinity then t0 else 0.
      in
      let fields = corrupted_fields_label corruptions in
      let quarantined = ref [] in
      let residual = ref [] in
      List.iter
        (fun v ->
          if violation_time v < first_fault then
            (* Predates the first corruption: not the transient's fault. *)
            residual := v :: !residual
          else if v.v_vids <> [] && List.for_all in_recovered v.v_vids then
            residual :=
              {
                v with
                v_property = Vs_obs.Explain.Stabilization;
                v_detail =
                  Printf.sprintf
                    "%s — persists after the stabilization bound (%d views \
                     after last transient fault at %.3f; corrupted: %s)"
                    v.v_detail bound last_fault fields;
              }
              :: !residual
          else quarantined := v :: !quarantined)
        violations;
      let residual =
        if cut = None && !quarantined <> [] then
          (* Never re-converged: the quarantine window never closed, and
             violations accumulated inside it. *)
          {
            v_property = Vs_obs.Explain.Stabilization;
            v_msg = None;
            v_procs =
              Proc_id.sort (List.map (fun (p, _, _) -> p) corruptions);
            v_vids = [];
            v_detail =
              Printf.sprintf
                "stabilization: never reconverged — only %d of %d required \
                 views installed after last transient fault at %.3f, with \
                 %d violation(s) outstanding (corrupted: %s)"
                (List.length fresh) bound last_fault
                (List.length !quarantined) fields;
          }
          :: List.rev !residual
        else List.rev !residual
      in
      Some
        {
          st_bound = bound;
          st_first_fault = first_fault;
          st_last_fault = last_fault;
          st_views = List.length fresh;
          st_cut = cut;
          st_quarantined = List.rev !quarantined;
          st_residual = residual;
        }
