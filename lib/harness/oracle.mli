(** Global run oracle: records what every process multicast, delivered and
    installed, then checks the view-synchrony specification of Section 2
    against the whole run.

    Message identity is (original sender, per-sender sequence number) —
    assigned by the cluster at multicast time, independent of the wire
    protocol, so the checks exercise the implementation rather than trusting
    it. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type msg_id = { m_sender : Proc_id.t; m_index : int }

val msg_id_to_string : msg_id -> string

val msg_id_to_obs : msg_id -> Vs_obs.Event.msg
(** The same (origin, seq) identity in the observability mirror — what the
    clusters thread into [Net]'s [?ident] hook, so oracle verdicts and
    data-path events correlate exactly. *)

type violation = {
  v_property : Vs_obs.Explain.property;
  v_msg : msg_id option;  (** the offending message, when one exists *)
  v_procs : Proc_id.t list;
  v_vids : View.Id.t list;
  v_detail : string;  (** the legacy one-line verdict *)
}
(** A structured verdict: which property broke and the identities it names.
    The [check_*] functions below project out [v_detail]. *)

val to_obs_violation : violation -> Vs_obs.Explain.violation

type t

val create : unit -> t

(** {2 Recording} *)

val record_send : t -> ?order:[ `Fifo | `Total ] -> msg_id -> unit
(** Default [`Fifo]. *)

val record_delivery :
  t -> proc:Proc_id.t -> vid:View.Id.t -> msg_id -> time:float -> unit

val record_install :
  t -> proc:Proc_id.t -> view:View.t -> prior:View.Id.t -> time:float -> unit
(** [prior] is the view the process was in before this install (its initial
    singleton view id for the first install). *)

val record_corruption :
  t -> proc:Proc_id.t -> field:string -> time:float -> unit
(** A transient state corruption was injected into [proc]'s [field] (the
    stable name from {!Vs_vsync.Endpoint.corruption_field}) at [time].
    Arms the {!stabilization} check. *)

val corruptions : t -> (Proc_id.t * string * float) list
(** Recorded corruptions in injection order. *)

(** {2 Checks — each returns human-readable violations, empty when the
    property holds} *)

val check_agreement : t -> string list
(** Property 2.1: processes that survive from one view to the same next view
    delivered the same set of messages in the old view. *)

val check_uniqueness : t -> string list
(** Property 2.2: across all processes, each message was delivered in at
    most one view. *)

val check_integrity : t -> string list
(** Property 2.3: at-most-once delivery per process, and only of messages
    that were actually multicast. *)

val check_fifo : t -> string list
(** Per-sender delivery order of FIFO-class messages respects the multicast
    order (gaps allowed only across failures, never inversions).  Messages
    sent totally ordered are exempt: they are sequenced through the
    coordinator and carry no cross-class ordering promise — the paper
    imposes no ordering conditions at all (Section 2). *)

val check_total_order_messages : t -> string list
(** Messages sent with total order and delivered within one view reach all
    their receivers in one consistent relative order. *)

val check_all : t -> string list

(** {2 Structured variants — same checks, full identities} *)

val agreement_violations : t -> violation list

val uniqueness_violations : t -> violation list

val integrity_violations : t -> violation list

val fifo_violations : t -> violation list

val total_order_violations : t -> violation list

val all_violations : t -> violation list
(** Concatenation in the [check_all] order, so
    [List.map (fun v -> v.v_detail) (all_violations t) = check_all t]. *)

val check_summary : t -> (string * int) list
(** Violation counts per property, in the order agreement, uniqueness,
    integrity, fifo, total-order — the row format of the loss-tolerance
    experiment (E11). *)

(** {2 Stabilization — bounded recovery from transient faults} *)

type stabilization = {
  st_bound : int;  (** recovery bound, in installed views *)
  st_first_fault : float;  (** first recorded corruption *)
  st_last_fault : float;  (** last recorded corruption *)
  st_views : int;
      (** distinct views first installed strictly after the last fault *)
  st_cut : float option;
      (** when legality must have resumed: first-install time of the
          [st_bound]-th fresh view, [None] when fewer were ever installed *)
  st_quarantined : violation list;
      (** violations attributed to the recovery window — expected noise *)
  st_residual : violation list;
      (** real failures: violations predating the first fault (original
          property) and violations persisting in views past the bound
          (relabeled [Stabilization], detail naming the corrupted
          fields).  A run with quarantined violations but fewer than
          [st_bound] fresh views never reconverged and gets a synthesized
          [Stabilization] violation. *)
}

val stabilization : t -> ?bound:int -> violation list -> stabilization option
(** Classify [violations] (typically {!all_violations}) against the
    recorded corruptions.  [None] when no corruption was recorded — the
    plain verdicts stand as-is.  Default [bound] is 2: the view-synchrony
    state machine rebuilds all per-view state at each install, so one view
    flushes the damage and the next must be legal. *)

(** {2 Introspection} *)

val deliveries_of : t -> proc:Proc_id.t -> (View.Id.t * msg_id) list

val installs_of : t -> proc:Proc_id.t -> (View.t * View.Id.t) list
(** (view, prior) pairs in order. *)

val total_deliveries : t -> int

val total_installs : t -> int

val install_counts : t -> (Proc_id.t * int) list
(** View installations per process identity, sorted by process. *)

val distinct_views : t -> int
