module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Endpoint = Vs_vsync.Endpoint
module Rng = Vs_util.Rng
module Listx = Vs_util.Listx

type node_state = {
  mutable endpoint : (Oracle.msg_id, unit) Endpoint.t option;
  mutable prior_vid : View.Id.t;   (* last installed view of the live proc *)
  mutable send_index : int;        (* per-node message numbering *)
  mutable installs : int;          (* cumulative across incarnations *)
}

type t = {
  sim : Sim.t;
  net : (Oracle.msg_id, unit) Vs_vsync.Wire.t Net.t;
  config : Endpoint.config;
  oracle : Oracle.t;
  rng : Rng.t;
  universe : int list;
  nodes : (int, node_state) Hashtbl.t;
}

let sim t = t.sim

let oracle t = t.oracle

let net_stats t = Net.stats t.net

let node_state t node =
  match Hashtbl.find_opt t.nodes node with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Vsync_cluster: unknown node %d" node)

let boot t node =
  let st = node_state t node in
  assert (st.endpoint = None);
  let me = Net.fresh_incarnation t.net node in
  let endpoint = ref None in
  let callbacks =
    {
      Endpoint.on_view =
        (fun ev ->
          Oracle.record_install t.oracle ~proc:me ~view:ev.Endpoint.view
            ~prior:st.prior_vid ~time:(Sim.now t.sim);
          st.prior_vid <- ev.Endpoint.view.View.id;
          st.installs <- st.installs + 1);
      on_message =
        (fun ~sender:_ msg_id ->
          match !endpoint with
          | Some ep ->
              Oracle.record_delivery t.oracle ~proc:me
                ~vid:(Endpoint.view ep).View.id msg_id ~time:(Sim.now t.sim)
          | None -> ());
    }
  in
  st.prior_vid <- View.Id.initial me;
  let ep =
    Endpoint.create t.sim t.net ~me ~universe:t.universe ~config:t.config
      ~callbacks
  in
  endpoint := Some ep;
  st.endpoint <- Some ep

let create ?(seed = 1L) ?obs ?(net_config = Net.default_config)
    ?(config = Endpoint.default_config) ~n () =
  let sim = Sim.create ~seed ?obs () in
  (* Byte accounting matches the EVS cluster's (8-byte payloads and
     annotations), so E9's overhead comparison is apples to apples. *)
  let size_of =
    Vs_vsync.Wire.size_of ~user:(fun (_ : Oracle.msg_id) -> 8) ~ann:(fun () -> 8)
  in
  let user (m : Oracle.msg_id) = Some (Oracle.msg_id_to_obs m) in
  let ident = Vs_vsync.Wire.ident ~user in
  let idents = Vs_vsync.Wire.idents ~user in
  let net =
    Net.create ~size_of ~describe:Vs_vsync.Wire.kind ~ident ~idents sim
      net_config
  in
  let universe = List.init n (fun i -> i) in
  let t =
    {
      sim;
      net;
      config;
      oracle = Oracle.create ();
      rng = Sim.fork_rng sim;
      universe;
      nodes = Hashtbl.create 16;
    }
  in
  List.iter
    (fun node ->
      Hashtbl.replace t.nodes node
        {
          endpoint = None;
          prior_vid = View.Id.initial (Proc_id.initial node);
          send_index = 0;
          installs = 0;
        };
      boot t node)
    universe;
  t

let run t ~until = ignore (Sim.run ~until t.sim)

let live_endpoints t =
  List.filter_map
    (fun node ->
      match (node_state t node).endpoint with
      | Some ep when Endpoint.is_alive ep -> Some ep
      | Some _ | None -> None)
    t.universe

let endpoint_on t node =
  match (node_state t node).endpoint with
  | Some ep when Endpoint.is_alive ep -> Some ep
  | Some _ | None -> None

let multicast_from t ~node ?order () =
  match endpoint_on t node with
  | Some ep ->
      let st = node_state t node in
      let msg_id =
        { Oracle.m_sender = Endpoint.me ep; m_index = st.send_index }
      in
      st.send_index <- st.send_index + 1;
      let order_class =
        match order with Some Endpoint.Total -> `Total | _ -> `Fifo
      in
      Oracle.record_send t.oracle ~order:order_class msg_id;
      Endpoint.multicast ep ?order msg_id
  | None -> ()

let apply_action t action =
  match action with
  | Faults.Partition comps -> Net.set_partition t.net comps
  | Faults.Heal -> Net.heal t.net
  | Faults.Crash node -> (
      match endpoint_on t node with
      | Some ep ->
          Endpoint.kill ep;
          (node_state t node).endpoint <- None
      | None -> ())
  | Faults.Recover node ->
      let st = node_state t node in
      (match st.endpoint with
      | Some ep when Endpoint.is_alive ep -> () (* already up *)
      | Some _ | None ->
          st.endpoint <- None;
          boot t node)
  | Faults.Corrupt (node, c) -> (
      match endpoint_on t node with
      | Some ep ->
          let field = Endpoint.corrupt ep c in
          Oracle.record_corruption t.oracle ~proc:(Endpoint.me ep) ~field
            ~time:(Sim.now t.sim)
      | None -> ())

let run_script t script =
  Faults.schedule t.sim script ~apply:(fun action ->
      Sim.record t.sim ~component:"faults" (Faults.to_string action);
      apply_action t action)

let pump_traffic t ~start ~until ~mean_gap =
  let rec arm time =
    let time = time +. Rng.exponential t.rng mean_gap in
    if time < until then
      ignore
        (Sim.at t.sim time (fun () ->
             let node = Rng.pick t.rng t.universe in
             let order =
               if Rng.bool t.rng 0.2 then Endpoint.Total else Endpoint.Fifo
             in
             multicast_from t ~node ~order ()));
    if time < until then arm time
  in
  arm start

(* Endpoint counters summed over the live endpoints — the cluster-level
   view of retry/NACK activity for experiments and tests. *)
let stats_total t =
  List.fold_left
    (fun (acc : Endpoint.stats) ep ->
      let s = Endpoint.stats ep in
      {
        Endpoint.views_installed = acc.Endpoint.views_installed + s.Endpoint.views_installed;
        proposals_started = acc.Endpoint.proposals_started + s.Endpoint.proposals_started;
        data_sent = acc.Endpoint.data_sent + s.Endpoint.data_sent;
        delivered = acc.Endpoint.delivered + s.Endpoint.delivered;
        sync_delivered = acc.Endpoint.sync_delivered + s.Endpoint.sync_delivered;
        stale_dropped = acc.Endpoint.stale_dropped + s.Endpoint.stale_dropped;
        to_dropped = acc.Endpoint.to_dropped + s.Endpoint.to_dropped;
        nacks_sent = acc.Endpoint.nacks_sent + s.Endpoint.nacks_sent;
        retransmits = acc.Endpoint.retransmits + s.Endpoint.retransmits;
        peer_retransmits = acc.Endpoint.peer_retransmits + s.Endpoint.peer_retransmits;
        stabilized = acc.Endpoint.stabilized + s.Endpoint.stabilized;
        ctl_retries = acc.Endpoint.ctl_retries + s.Endpoint.ctl_retries;
        ctl_abandoned = acc.Endpoint.ctl_abandoned + s.Endpoint.ctl_abandoned;
        batches_sent = acc.Endpoint.batches_sent + s.Endpoint.batches_sent;
      })
    {
      Endpoint.views_installed = 0;
      proposals_started = 0;
      data_sent = 0;
      delivered = 0;
      sync_delivered = 0;
      stale_dropped = 0;
      to_dropped = 0;
      nacks_sent = 0;
      retransmits = 0;
      peer_retransmits = 0;
      stabilized = 0;
      ctl_retries = 0;
      ctl_abandoned = 0;
      batches_sent = 0;
    }
    (live_endpoints t)

let views_installed_per_process t = Oracle.install_counts t.oracle

let stable_view_reached t =
  match live_endpoints t with
  | [] -> false
  | eps ->
      let live_nodes =
        List.map (fun ep -> (Endpoint.me ep).Proc_id.node) eps
        |> List.sort_uniq Int.compare
      in
      let views = List.map Endpoint.view eps in
      (match views with
      | v :: rest ->
          List.for_all (fun v' -> View.equal v v') rest
          && Listx.equal_set ~cmp:Int.compare
               (List.sort_uniq Int.compare
                  (List.map (fun (p : Proc_id.t) -> p.Proc_id.node) v.View.members))
               live_nodes
          && List.for_all (fun ep -> not (Endpoint.is_blocked ep)) eps
      | [] -> false)
