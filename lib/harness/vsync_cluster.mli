(** A cluster of plain view-synchronous endpoints under oracle observation.

    Payloads are oracle message identities; every multicast, delivery and
    view installation is recorded, so a run can be driven with arbitrary
    fault scripts and traffic and then checked against Properties 2.1–2.3.
    This is the workhorse of the randomized protocol tests and of
    experiments E4 and E10. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Endpoint = Vs_vsync.Endpoint

type t

val create :
  ?seed:int64 ->
  ?obs:Vs_obs.Recorder.t ->
  ?net_config:Vs_net.Net.config ->
  ?config:Endpoint.config ->
  n:int ->
  unit ->
  t
(** [n] nodes, one process each, booted at time 0. *)

val sim : t -> Vs_sim.Sim.t

val oracle : t -> Oracle.t

val net_stats : t -> Vs_net.Net.stats

val run : t -> until:float -> unit

val live_endpoints : t -> (Oracle.msg_id, unit) Endpoint.t list

val endpoint_on : t -> int -> (Oracle.msg_id, unit) Endpoint.t option
(** The live endpoint on a node, if any. *)

val multicast_from : t -> node:int -> ?order:Endpoint.order -> unit -> unit
(** Multicast the node's next uniquely-identified message. No-op if the
    node is down. *)

val apply_action : t -> Faults.action -> unit

val run_script : t -> Faults.script -> unit
(** Schedule a fault script against this cluster. *)

val pump_traffic :
  t -> start:float -> until:float -> mean_gap:float -> unit
(** Schedule random multicasts: at exponentially-spaced instants a random
    live node multicasts one message (80% FIFO / 20% total order). *)

val stats_total : t -> Endpoint.stats
(** Endpoint counters summed over the live endpoints (retry/NACK activity
    for the loss experiments). *)

val views_installed_per_process : t -> (Proc_id.t * int) list
(** Install counts including dead incarnations — the E4 metric. *)

val stable_view_reached : t -> bool
(** All live endpoints share one installed view covering all live nodes and
    are not flushing. *)
