(* Pass 1 of the whole-program analyzer: a module-qualified call graph over
   the untyped ASTs of every file handed to [build].

   Each toplevel (or nested-module) [let] becomes a {!def} carrying the
   out-edges found in its body: every identifier reference, with its module
   qualifiers expanded through the file's toplevel [module M = ...] aliases,
   plus the intrinsic facts the later passes seed from (allocating
   constructs, mutation).  Resolution is name-based and deliberately
   conservative: a qualified reference [M.f] links to every def whose
   module chain is suffix-compatible with [M], so ambiguity over-links
   (sound for effect propagation) rather than dropping edges.  First-class
   functions are covered to the extent they are statically named — a bare
   reference [g] passed to [List.iter] still creates the edge to [g];
   functions reached only through record fields or functor arguments are
   not resolved, which the A1 rule compensates for by flagging only what it
   can prove about resolved calls. *)

type call = {
  c_quals : string list;  (* alias-expanded module qualifiers, Stdlib-stripped *)
  c_name : string;
  c_path : string;  (* full dotted path as expanded, for the effect tables *)
  c_args : int;  (* applied argument count; 0 for a bare reference *)
  c_line : int;
  c_col : int;
}

type alloc = {
  a_what : string;  (* human description: "closure", "tuple construction", ... *)
  a_line : int;
  a_col : int;
}

type def = {
  d_file : string;
  d_chain : string list;  (* module path inside the file, e.g. ["Batch"] *)
  d_name : string;
  d_line : int;
  d_col : int;
  d_arity : int;  (* leading fun-parameters, for partial-application checks *)
  d_opens : string list list;  (* the file's toplevel opens, for resolution *)
  d_calls : call list;
  d_allocs : alloc list;
  d_mutates : bool;
}

type t = {
  defs : def list;  (* sorted by (file, line, col): all iteration is stable *)
  by_name : (string, def list) Hashtbl.t;
}

let def_id d =
  Printf.sprintf "%s:%s" d.d_file
    (String.concat "." (d.d_chain @ [ d.d_name ]))

(* "lib/vsync/endpoint.ml" -> "Endpoint" *)
let file_module path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let path_of_lident lid =
  match Longident.flatten lid with parts -> parts | exception _ -> []

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

(* ---------- per-file collection ---------- *)

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Allocating stdlib entry points the A1 rule refuses under an annotation.
   Keyed by the alias-expanded dotted path. *)
let allocating_externals =
  [
    ("^", "string concatenation (^)");
    ("@", "list append (@)");
    ("ref", "ref cell");
    ("String.concat", "String.concat");
    ("String.make", "String.make");
    ("String.sub", "String.sub");
    ("String.init", "String.init");
    ("Bytes.create", "Bytes.create");
    ("Bytes.make", "Bytes.make");
    ("Printf.sprintf", "Printf.sprintf");
    ("Printf.printf", "Printf.printf");
    ("Format.asprintf", "Format.asprintf");
    ("Format.sprintf", "Format.sprintf");
    ("List.map", "List.map");
    ("List.mapi", "List.mapi");
    ("List.init", "List.init");
    ("List.append", "List.append");
    ("List.concat", "List.concat");
    ("List.concat_map", "List.concat_map");
    ("List.filter", "List.filter");
    ("List.filter_map", "List.filter_map");
    ("List.rev", "List.rev");
    ("List.sort", "List.sort");
    ("List.of_seq", "List.of_seq");
    ("Array.make", "Array.make");
    ("Array.init", "Array.init");
    ("Array.append", "Array.append");
    ("Array.of_list", "Array.of_list");
    ("Array.to_list", "Array.to_list");
    ("Array.copy", "Array.copy");
    ("Array.map", "Array.map");
  ]

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

(* The body of [let f x y = e] parses as nested [Pexp_fun]; peel that
   parameter chain (it is the function itself, not a closure allocation)
   and return the arity together with the real body expressions.  A
   top-level [function] match contributes one parameter and its case
   bodies. *)
let rec peel_params arity (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_fun (_, default, _, body) ->
      let defaults = match default with Some d -> [ d ] | None -> [] in
      let arity, bodies = peel_params (arity + 1) body in
      (arity, defaults @ bodies)
  | Pexp_function cases ->
      ( arity + 1,
        List.concat_map
          (fun (c : Parsetree.case) ->
            (match c.pc_guard with Some g -> [ g ] | None -> [])
            @ [ c.pc_rhs ])
          cases )
  | Pexp_newtype (_, body) -> peel_params arity body
  | _ -> (arity, [ e ])

(* Walk one definition body, collecting calls, allocating constructs, and
   mutation.  [aliases] maps a file-toplevel module alias to its expanded
   path. *)
let collect_body ~aliases bodies =
  let calls = ref [] and allocs = ref [] and mutates = ref false in
  let add_alloc what loc =
    let line, col = loc_pos loc in
    allocs := { a_what = what; a_line = line; a_col = col } :: !allocs
  in
  let expand parts =
    match parts with
    | head :: rest -> (
        match List.assoc_opt head aliases with
        | Some target -> target @ rest
        | None -> parts)
    | [] -> parts
  in
  let add_ref ~args lid loc =
    match strip_stdlib (expand (strip_stdlib (path_of_lident lid))) with
    | [] -> ()
    | parts ->
        let rec split acc = function
          | [ name ] -> (List.rev acc, name)
          | q :: rest -> split (q :: acc) rest
          | [] -> assert false
        in
        let quals, name = split [] parts in
        let line, col = loc_pos loc in
        calls :=
          {
            c_quals = quals;
            c_name = name;
            c_path = String.concat "." parts;
            c_args = args;
            c_line = line;
            c_col = col;
          }
          :: !calls
  in
  let open Ast_iterator in
  let rec expr self (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        (* One call record per application; recurse into the arguments only
           so the applied ident is not re-recorded as a bare reference. *)
        add_ref ~args:(List.length args) txt loc;
        let path =
          String.concat "."
            (strip_stdlib (expand (strip_stdlib (path_of_lident txt))))
        in
        if path = ":=" then mutates := true;
        (if List.mem path float_ops then
           add_alloc (Printf.sprintf "float arithmetic (%s, boxes)" path) loc
         else
           match List.assoc_opt path allocating_externals with
           | Some what -> add_alloc what loc
           | None -> ());
        List.iter (fun (_, a) -> expr self a) args
    | _ ->
        (match e.Parsetree.pexp_desc with
        | Pexp_ident { txt; loc } -> add_ref ~args:0 txt loc
        | Pexp_fun _ | Pexp_function _ -> add_alloc "closure" e.pexp_loc
        | Pexp_tuple _ -> add_alloc "tuple construction" e.pexp_loc
        | Pexp_record _ -> add_alloc "record construction" e.pexp_loc
        | Pexp_construct (lid, Some _) ->
            add_alloc
              (Printf.sprintf "variant construction (%s)"
                 (String.concat "." (path_of_lident lid.Location.txt)))
              e.pexp_loc
        | Pexp_variant (_, Some _) ->
            add_alloc "polymorphic-variant construction" e.pexp_loc
        | Pexp_array _ -> add_alloc "array literal" e.pexp_loc
        | Pexp_lazy _ -> add_alloc "lazy block" e.pexp_loc
        | Pexp_constant (Pconst_float _) ->
            add_alloc "float constant (boxes)" e.pexp_loc
        | Pexp_setfield _ | Pexp_setinstvar _ -> mutates := true
        | _ -> ());
        default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  List.iter (fun body -> it.expr it body) bodies;
  (List.rev !calls, List.rev !allocs, !mutates)

(* Collect the defs of one parsed file: walk the structure, descending into
   [module X = struct ... end] (and functor bodies) with the chain
   extended, recording toplevel aliases and opens for resolution. *)
let defs_of_file path (ast : Parsetree.structure) =
  let aliases = ref [] and opens = ref [] and out = ref [] in
  let rec module_structure (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Pmod_structure items -> Some items
    | Pmod_functor (_, body) -> module_structure body
    | Pmod_constraint (body, _) -> module_structure body
    | _ -> None
  in
  let rec walk chain items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_pat.Parsetree.ppat_desc with
                | Ppat_var { txt = name; loc } ->
                    let line, col = loc_pos loc in
                    let arity, bodies = peel_params 0 vb.pvb_expr in
                    let calls, allocs, mutates =
                      collect_body ~aliases:!aliases bodies
                    in
                    out :=
                      {
                        d_file = path;
                        d_chain = List.rev chain;
                        d_name = name;
                        d_line = line;
                        d_col = col;
                        d_arity = arity;
                        d_opens = [];  (* filled in below, once *)
                        d_calls = calls;
                        d_allocs = allocs;
                        d_mutates = mutates;
                      }
                      :: !out
                | _ -> ())
              bindings
        | Pstr_module mb -> (
            let name =
              match mb.Parsetree.pmb_name.Location.txt with
              | Some n -> n
              | None -> "_"
            in
            match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
            | Pmod_ident { txt; _ } when chain = [] ->
                aliases := (name, path_of_lident txt) :: !aliases
            | _ -> (
                match module_structure mb.Parsetree.pmb_expr with
                | Some items -> walk (name :: chain) items
                | None -> ()))
        | Pstr_open od -> (
            match od.Parsetree.popen_expr.Parsetree.pmod_desc with
            | Pmod_ident { txt; _ } when chain = [] ->
                opens := path_of_lident txt :: !opens
            | _ -> ())
        | _ -> ())
      items
  in
  walk [] ast;
  let opens = List.rev !opens in
  List.rev_map (fun d -> { d with d_opens = opens }) !out

(* ---------- the graph ---------- *)

let compare_def a b =
  match String.compare a.d_file b.d_file with
  | 0 -> (
      match Int.compare a.d_line b.d_line with
      | 0 -> Int.compare a.d_col b.d_col
      | c -> c)
  | c -> c

let build files =
  let defs =
    List.concat_map (fun (path, ast) -> defs_of_file path ast) files
    |> List.sort compare_def
  in
  let by_name = Hashtbl.create 256 in
  List.iter
    (fun d ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_name d.d_name) in
      Hashtbl.replace by_name d.d_name (prev @ [ d ]))
    defs;
  { defs; by_name }

let is_suffix suffix l =
  let ls = List.length suffix and ll = List.length l in
  ls > 0 && ls <= ll
  && (let rec drop n = function
        | l when n = 0 -> l
        | _ :: tl -> drop (n - 1) tl
        | [] -> []
      in
      drop (ll - ls) l = suffix)

(* Resolve a reference made from [from].  Unqualified names see the same
   file (defs whose chain is a prefix of the referrer's lexical chain) and
   anything reachable through the file's toplevel opens; qualified names
   match every def whose [FileModule :: chain] is suffix-compatible with
   the written qualifiers. *)
let resolve t ~(from : def) (c : call) =
  let candidates =
    Option.value ~default:[] (Hashtbl.find_opt t.by_name c.c_name)
  in
  let qualified quals =
    List.filter
      (fun d ->
        let dchain = file_module d.d_file :: d.d_chain in
        is_suffix quals dchain || is_suffix dchain quals)
      candidates
  in
  match c.c_quals with
  | [] ->
      let same_file =
        List.filter
          (fun d ->
            String.equal d.d_file from.d_file
            &&
            let rec prefix a b =
              match (a, b) with
              | [], _ -> true
              | x :: a', y :: b' -> String.equal x y && prefix a' b'
              | _ :: _, [] -> false
            in
            prefix d.d_chain from.d_chain)
          candidates
      in
      let via_opens =
        List.concat_map (fun o -> qualified (strip_stdlib o)) from.d_opens
      in
      same_file @ via_opens
  | quals -> qualified quals
