(* Report rendering and the command-line driver shared by the standalone
   [vslint] executable and the [vscli lint] subcommand.

   Every run is whole-program: the per-file syntactic rules and the
   call-graph passes (C1/A1/B1/S2, see {!Whole}) execute together, so the
   exit code always reflects the full rule set.  [--rule] filters what is
   *reported*, not what is analyzed. *)

type format = Human | Json | Sarif

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "usage: vslint [--format human|json|sarif] [--rule ID]... [--chains]\n\
  \              [--changed] [--explain ID] [PATH]...\n\
   \n\
   Whole-program lint over every .ml under the given files/directories\n\
   (default: lib bin bench examples): per-site determinism rules plus the\n\
   call-graph passes (effect certification C1, alloc-free proof A1, stale\n\
   suppressions S2, bench contract B1).  Exits 1 on any unsuppressed\n\
   finding, 2 on usage errors.\n\
   \n\
  \  --format FMT   human (default), json, or sarif (SARIF 2.1.0)\n\
  \  --rule ID      only report this rule (repeatable): D1..D5 C1 A1 S1 S2 B1\n\
  \  --chains       also print each function's effect provenance\n\
  \  --changed      only report findings in files changed per\n\
  \                 git diff --name-only HEAD (analysis stays whole-program)\n\
  \  --explain ID   print the rule's rationale and exit\n"

let json_escape = Sarif.escape

let print_finding_human (f : Lint.finding) =
  Printf.printf "%s:%d:%d: [%s/%s] %s\n" f.Lint.file f.Lint.line f.Lint.col
    f.Lint.rule.Rules.id
    (Rules.severity_to_string f.Lint.rule.Rules.severity)
    f.Lint.message;
  Printf.printf "    hint: %s\n" f.Lint.rule.Rules.hint

let finding_json (f : Lint.finding) =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"hint\":\"%s\"}"
    f.Lint.rule.Rules.id
    (Rules.severity_to_string f.Lint.rule.Rules.severity)
    (json_escape f.Lint.file) f.Lint.line f.Lint.col
    (json_escape f.Lint.message)
    (json_escape f.Lint.rule.Rules.hint)

let explain id =
  match Rules.find id with
  | None ->
      Printf.eprintf "vslint: unknown rule %s (known: %s)\n" id
        (String.concat " " (List.map (fun r -> r.Rules.id) Rules.all));
      2
  | Some r ->
      Printf.printf "%s (%s): %s\n\n%s\n\nfix: %s\n" r.Rules.id
        (Rules.severity_to_string r.Rules.severity)
        r.Rules.title r.Rules.explain r.Rules.hint;
      0

(* Files changed relative to HEAD, per git; None when git is unavailable
   or this is not a work tree. *)
let changed_files () =
  match Unix.open_process_in "git diff --name-only HEAD 2>/dev/null" with
  | exception _ -> None
  | ic ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      (match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> Some lines
      | _ | (exception _) -> None)

(* Finding paths and git paths may differ in prefix (vslint can be invoked
   from a subdirectory); match on path suffix either way. *)
let same_file a b =
  let la = String.length a and lb = String.length b in
  if la >= lb then String.sub a (la - lb) lb = b
  else String.sub b (lb - la) la = a

(* Run the whole-program pass and print the report; the return value is
   the process exit code. *)
let run ?(format = Human) ?(rules = []) ?(chains = false) ?(changed = false)
    ?paths () =
  let unknown = List.filter (fun id -> Rules.find id = None) rules in
  if unknown <> [] then begin
    Printf.eprintf "vslint: unknown rule(s): %s\n" (String.concat " " unknown);
    2
  end
  else
    let roots =
      match paths with Some (_ :: _ as p) -> p | Some [] | None -> default_roots
    in
    match List.filter (fun p -> not (Sys.file_exists p)) roots with
    | _ :: _ as missing ->
        Printf.eprintf "vslint: no such file or directory: %s\n"
          (String.concat " " missing);
        2
    | [] -> (
        let changed_set =
          if not changed then None
          else
            match changed_files () with
            | Some files -> Some files
            | None ->
                Printf.eprintf
                  "vslint: --changed requires git and a work tree\n";
                exit 2
        in
        let report = Whole.analyze_paths roots in
        let keep (f : Lint.finding) =
          (rules = [] || List.exists (String.equal f.Lint.rule.Rules.id) rules)
          && (match changed_set with
             | None -> true
             | Some files -> List.exists (same_file f.Lint.file) files)
        in
        let findings = List.filter keep report.Whole.findings in
        let suppressed = List.filter keep report.Whole.suppressed in
        (match format with
        | Human ->
            List.iter print_finding_human findings;
            if chains then
              List.iter (fun l -> Printf.printf "chain: %s\n" l)
                report.Whole.chains;
            Printf.printf
              "vslint: %d file(s), %d finding(s), %d suppressed with \
               justification\n"
              report.Whole.files (List.length findings)
              (List.length suppressed)
        | Json ->
            let chains_field =
              if chains then
                Printf.sprintf ",\"chains\":[%s]"
                  (String.concat ","
                     (List.map
                        (fun l -> Printf.sprintf "\"%s\"" (json_escape l))
                        report.Whole.chains))
              else ""
            in
            Printf.printf
              "{\"files\":%d,\"suppressed\":%d,\"findings\":[%s]%s}\n"
              report.Whole.files (List.length suppressed)
              (String.concat "," (List.map finding_json findings))
              chains_field
        | Sarif -> print_string (Sarif.emit ~findings ^ "\n"));
        if findings = [] then 0 else 1)

(* argv-level entry point for bin/vslint. *)
let main argv =
  let rec parse args (format, rules, chains, changed, explain_id, paths) =
    match args with
    | [] -> Ok (format, rules, chains, changed, explain_id, List.rev paths)
    | "--format" :: fmt :: rest -> (
        match fmt with
        | "human" -> parse rest (Human, rules, chains, changed, explain_id, paths)
        | "json" -> parse rest (Json, rules, chains, changed, explain_id, paths)
        | "sarif" -> parse rest (Sarif, rules, chains, changed, explain_id, paths)
        | other -> Error (Printf.sprintf "unknown format %S" other))
    | "--rule" :: id :: rest ->
        parse rest (format, rules @ [ id ], chains, changed, explain_id, paths)
    | "--chains" :: rest ->
        parse rest (format, rules, true, changed, explain_id, paths)
    | "--changed" :: rest ->
        parse rest (format, rules, chains, true, explain_id, paths)
    | "--explain" :: id :: rest ->
        parse rest (format, rules, chains, changed, Some id, paths)
    | ("--help" | "-h") :: _ -> Error ""
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %s" arg)
    | path :: rest ->
        parse rest (format, rules, chains, changed, explain_id, path :: paths)
  in
  let args =
    match Array.to_list argv with [] -> [] | _program :: rest -> rest
  in
  match parse args (Human, [], false, false, None, []) with
  | Error "" ->
      print_string usage;
      0
  | Error msg ->
      Printf.eprintf "vslint: %s\n%s" msg usage;
      2
  | Ok (_, _, _, _, Some id, _) -> explain id
  | Ok (format, rules, chains, changed, None, paths) ->
      run ~format ~rules ~chains ~changed ~paths ()
