(* Report rendering and the command-line driver shared by the standalone
   [vslint] executable and the [vscli lint] subcommand. *)

type format = Human | Json

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "usage: vslint [--format human|json] [--rule ID]... [--explain ID] [PATH]...\n\
   \n\
   Lints every .ml under the given files/directories (default: lib bin bench\n\
   examples) for determinism and protocol-hygiene hazards.  Exits 1 on any\n\
   unsuppressed finding, 2 on usage errors.\n\
   \n\
  \  --format FMT   human (default) or json\n\
  \  --rule ID      only report this rule (repeatable): D1 D2 D3 D4 D5 S1\n\
  \  --explain ID   print the rule's rationale and exit\n"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_finding_human (f : Lint.finding) =
  Printf.printf "%s:%d:%d: [%s/%s] %s\n" f.Lint.file f.Lint.line f.Lint.col
    f.Lint.rule.Rules.id
    (Rules.severity_to_string f.Lint.rule.Rules.severity)
    f.Lint.message;
  Printf.printf "    hint: %s\n" f.Lint.rule.Rules.hint

let finding_json (f : Lint.finding) =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"hint\":\"%s\"}"
    f.Lint.rule.Rules.id
    (Rules.severity_to_string f.Lint.rule.Rules.severity)
    (json_escape f.Lint.file) f.Lint.line f.Lint.col
    (json_escape f.Lint.message)
    (json_escape f.Lint.rule.Rules.hint)

let explain id =
  match Rules.find id with
  | None ->
      Printf.eprintf "vslint: unknown rule %s (known: %s)\n" id
        (String.concat " " (List.map (fun r -> r.Rules.id) Rules.all));
      2
  | Some r ->
      Printf.printf "%s (%s): %s\n\n%s\n\nfix: %s\n" r.Rules.id
        (Rules.severity_to_string r.Rules.severity)
        r.Rules.title r.Rules.explain r.Rules.hint;
      0

(* Run the lint pass and print the report; the return value is the process
   exit code. *)
let run ?(format = Human) ?(rules = []) ?paths () =
  let unknown = List.filter (fun id -> Rules.find id = None) rules in
  if unknown <> [] then begin
    Printf.eprintf "vslint: unknown rule(s): %s\n" (String.concat " " unknown);
    2
  end
  else
    let roots = match paths with Some (_ :: _ as p) -> p | Some [] | None -> default_roots in
    match List.filter (fun p -> not (Sys.file_exists p)) roots with
    | _ :: _ as missing ->
        Printf.eprintf "vslint: no such file or directory: %s\n"
          (String.concat " " missing);
        2
    | [] ->
        let files = Lint.collect_ml_files roots in
        let keep (f : Lint.finding) =
          rules = [] || List.exists (String.equal f.Lint.rule.Rules.id) rules
        in
        let reports = List.map (fun file -> Lint.lint_file file) files in
        let findings =
          List.concat_map (fun r -> List.filter keep r.Lint.findings) reports
        in
        let suppressed =
          List.concat_map (fun r -> List.filter keep r.Lint.suppressed) reports
        in
        (match format with
        | Human ->
            List.iter print_finding_human findings;
            Printf.printf
              "vslint: %d file(s), %d finding(s), %d suppressed with \
               justification\n"
              (List.length files) (List.length findings)
              (List.length suppressed)
        | Json ->
            Printf.printf "{\"files\":%d,\"suppressed\":%d,\"findings\":[%s]}\n"
              (List.length files) (List.length suppressed)
              (String.concat "," (List.map finding_json findings)));
        if findings = [] then 0 else 1

(* argv-level entry point for bin/vslint. *)
let main argv =
  let rec parse args (format, rules, explain_id, paths) =
    match args with
    | [] -> Ok (format, rules, explain_id, List.rev paths)
    | "--format" :: fmt :: rest -> (
        match fmt with
        | "human" -> parse rest (Human, rules, explain_id, paths)
        | "json" -> parse rest (Json, rules, explain_id, paths)
        | other -> Error (Printf.sprintf "unknown format %S" other))
    | "--rule" :: id :: rest -> parse rest (format, rules @ [ id ], explain_id, paths)
    | "--explain" :: id :: rest -> parse rest (format, rules, Some id, paths)
    | ("--help" | "-h") :: _ -> Error ""
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Error (Printf.sprintf "unknown option %s" arg)
    | path :: rest -> parse rest (format, rules, explain_id, path :: paths)
  in
  let args =
    match Array.to_list argv with [] -> [] | _program :: rest -> rest
  in
  match parse args (Human, [], None, []) with
  | Error "" ->
      print_string usage;
      0
  | Error msg ->
      Printf.eprintf "vslint: %s\n%s" msg usage;
      2
  | Ok (_, _, Some id, _) -> explain id
  | Ok (format, rules, None, paths) -> run ~format ~rules ~paths ()
