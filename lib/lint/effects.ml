(* Pass 2 of the whole-program analyzer: seed every function with its
   intrinsic effects and propagate them over the call graph to a fixpoint.

   The effect lattice is a flat powerset over five atoms:

     Ambient_time   wall-clock reads (Sys.time, Unix.gettimeofday, ...)
     Ambient_rand   global randomness (the Random module)
     Unix_io        any other Unix.* entry point
     Hash_order     unordered Hashtbl enumeration
     Mutation       assignment to mutable state (informational)

   Propagation is [effects f = intrinsic f U (union over callees g of
   effects g)], with two deliberate cuts:

   - the *capability mask*: functions defined in lib/sim/ or
     lib/util/rng.ml do not export Ambient_time/Ambient_rand/Unix_io to
     their callers.  Those two modules are the sanctioned implementation of
     time and randomness — the seam where a real-OS backend will plug in —
     so reaching the clock through them is exactly what C1 certifies.

   - the *allow cut*: an intrinsic seed silenced by a justified allow of
     the corresponding syntactic rule (D1 for ambient, D2 for hash order)
     does not seed: the written justification vouches for the subtree.

   Each (function, effect) pair remembers one provenance step, so a
   violation renders as the full chain to the leaf, e.g.
   [lib/vsync/endpoint.ml:f -> lib/util/x.ml:g -> Unix.gettimeofday]. *)

type eff = Ambient_time | Ambient_rand | Unix_io | Hash_order | Mutation

let eff_to_string = function
  | Ambient_time -> "Ambient_time"
  | Ambient_rand -> "Ambient_rand"
  | Unix_io -> "Unix_io"
  | Hash_order -> "Hash_order"
  | Mutation -> "Mutation"

let eff_order = function
  | Ambient_time -> 0
  | Ambient_rand -> 1
  | Unix_io -> 2
  | Hash_order -> 3
  | Mutation -> 4

let compare_eff a b = Int.compare (eff_order a) (eff_order b)

let is_ambient = function
  | Ambient_time | Ambient_rand | Unix_io -> true
  | Hash_order | Mutation -> false

(* The syntactic rule whose allow comment cuts this effect at the seed. *)
let seed_rule = function
  | Ambient_time | Ambient_rand | Unix_io -> Some "D1"
  | Hash_order -> Some "D2"
  | Mutation -> None

(* Where an effect entered a function: directly at a leaf reference, at a
   mutation site, or through a call to another analyzed function. *)
type origin =
  | Leaf of string * int  (* external name, line *)
  | Via of string * int  (* callee def_id, call-site line *)

(* Same exemption as vslint's D1: the deterministic substrate itself. *)
let capability_file path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let has_sub sub =
    let np = String.length path and ns = String.length sub in
    let rec go i =
      i + ns <= np && (String.sub path i ns = sub || go (i + 1))
    in
    go 0
  in
  has_sub "lib/sim/" || has_sub "util/rng.ml"

(* Intrinsic effect of one external reference, by expanded dotted path. *)
let leaf_effect (c : Callgraph.call) =
  match c.Callgraph.c_quals @ [ c.Callgraph.c_name ] with
  | "Random" :: _ -> Some Ambient_rand
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
      Some Ambient_time
  | "Unix" :: _ -> Some Unix_io
  | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ]
    ->
      Some Hash_order
  | _ -> None

type t = {
  graph : Callgraph.t;
  (* def_id -> effect assoc, first origin wins *)
  effects : (string, (eff * origin) list) Hashtbl.t;
  (* def_id -> why this def may allocate, if it may *)
  allocs : (string, origin) Hashtbl.t;
}

let effects t (d : Callgraph.def) =
  Option.value ~default:[] (Hashtbl.find_opt t.effects (Callgraph.def_id d))

let may_alloc t (d : Callgraph.def) =
  Hashtbl.find_opt t.allocs (Callgraph.def_id d)

(* [seed_allowed ~file ~rule ~line] is true when a justified allow of
   [rule] guards [line] of [file] — the allow cut above. *)
let analyze (graph : Callgraph.t) ~seed_allowed =
  let effects = Hashtbl.create 256 and allocs = Hashtbl.create 256 in
  let add_eff id eff origin =
    let cur = Option.value ~default:[] (Hashtbl.find_opt effects id) in
    if List.mem_assoc eff cur then false
    else begin
      Hashtbl.replace effects id (cur @ [ (eff, origin) ]);
      true
    end
  in
  (* Seeds: intrinsic allocation and leaf effects, in deterministic def
     order. *)
  List.iter
    (fun (d : Callgraph.def) ->
      let id = Callgraph.def_id d in
      (match d.Callgraph.d_allocs with
      | a :: _ ->
          Hashtbl.replace allocs id
            (Leaf (a.Callgraph.a_what, a.Callgraph.a_line))
      | [] -> ());
      if d.Callgraph.d_mutates then
        ignore (add_eff id Mutation (Leaf ("mutation", d.Callgraph.d_line)));
      List.iter
        (fun (c : Callgraph.call) ->
          match leaf_effect c with
          | None -> ()
          | Some eff ->
              let cut =
                match seed_rule eff with
                | Some rule ->
                    seed_allowed ~file:d.Callgraph.d_file ~rule
                      ~line:c.Callgraph.c_line
                | None -> false
              in
              if not cut then
                ignore
                  (add_eff id eff
                     (Leaf (c.Callgraph.c_path, c.Callgraph.c_line))))
        d.Callgraph.d_calls)
    graph.Callgraph.defs;
  (* Fixpoint: propagate callee effects (and allocation) to callers until
     nothing changes.  Rounds iterate the sorted def list, so origins are
     deterministic. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        let id = Callgraph.def_id d in
        List.iter
          (fun (c : Callgraph.call) ->
            List.iter
              (fun (callee : Callgraph.def) ->
                let cid = Callgraph.def_id callee in
                if not (String.equal cid id) then begin
                  let masked = capability_file callee.Callgraph.d_file in
                  List.iter
                    (fun (eff, _) ->
                      if not (masked && is_ambient eff) then
                        if add_eff id eff (Via (cid, c.Callgraph.c_line)) then
                          changed := true)
                    (Option.value ~default:[] (Hashtbl.find_opt effects cid));
                  if
                    Hashtbl.mem allocs cid
                    && not (Hashtbl.mem allocs id)
                  then begin
                    Hashtbl.replace allocs id (Via (cid, c.Callgraph.c_line));
                    changed := true
                  end
                end)
              (Callgraph.resolve graph ~from:d c))
          d.Callgraph.d_calls)
      graph.Callgraph.defs
  done;
  { graph; effects; allocs }

(* ---------- provenance rendering ---------- *)

let find_def t id =
  List.find_opt
    (fun d -> String.equal (Callgraph.def_id d) id)
    t.graph.Callgraph.defs

(* The full chain from [d] to the leaf that gave it [eff]:
   "file.ml:f -> file2.ml:g -> Unix.gettimeofday (file2.ml:12)". *)
let chain t (d : Callgraph.def) eff =
  let rec go seen (d : Callgraph.def) =
    let id = Callgraph.def_id d in
    if List.mem id seen then [ id ^ " (cycle)" ]
    else
      match List.assoc_opt eff (effects t d) with
      | None -> [ id ]
      | Some (Leaf (name, line)) ->
          [ id; Printf.sprintf "%s (%s:%d)" name d.Callgraph.d_file line ]
      | Some (Via (cid, _)) -> (
          match find_def t cid with
          | Some callee -> id :: go (id :: seen) callee
          | None -> [ id; cid ])
  in
  String.concat " \xe2\x86\x92 " (go [] d)

(* The same rendering for the allocation relation (A1's provenance). *)
let alloc_chain t (d : Callgraph.def) =
  let rec go seen (d : Callgraph.def) =
    let id = Callgraph.def_id d in
    if List.mem id seen then [ id ^ " (cycle)" ]
    else
      match may_alloc t d with
      | None -> [ id ]
      | Some (Leaf (what, line)) ->
          [ id; Printf.sprintf "%s (%s:%d)" what d.Callgraph.d_file line ]
      | Some (Via (cid, _)) -> (
          match find_def t cid with
          | Some callee -> id :: go (id :: seen) callee
          | None -> [ id; cid ])
  in
  String.concat " \xe2\x86\x92 " (go [] d)

(* One line per analyzed function that carries any effect — the --chains
   dump. *)
let dump t =
  List.filter_map
    (fun (d : Callgraph.def) ->
      match effects t d with
      | [] -> None
      | effs ->
          let effs =
            List.sort (fun (a, _) (b, _) -> compare_eff a b) effs
          in
          let parts =
            List.map
              (fun (eff, origin) ->
                match origin with
                | Leaf (name, line) ->
                    Printf.sprintf "%s<-%s@%d" (eff_to_string eff) name line
                | Via (cid, line) ->
                    Printf.sprintf "%s<-%s@%d" (eff_to_string eff) cid line)
              effs
          in
          Some
            (Printf.sprintf "%s: %s" (Callgraph.def_id d)
               (String.concat ", " parts)))
    t.graph.Callgraph.defs
