(* The vslint engine: parses each .ml with the compiler's own parser
   (compiler-libs.common, no external dependency), walks the untyped AST
   with {!Ast_iterator}, and reports rule findings with file:line:col
   spans.

   Suppressions.  A finding is silenced by a single-line comment on the
   same line or the line directly above:

     [(* vslint: allow <RULE> — commutative fold *)]

   The justification after the rule id is mandatory: a bare allow
   suppresses nothing and is itself reported (rule S1).  Suppressions are
   matched textually, so they also work above multi-line expressions as
   long as the comment sits next to the flagged identifier. *)

type finding = {
  rule : Rules.t;
  file : string;
  line : int;
  col : int;
  message : string;
}

type report = {
  findings : finding list;  (* unsuppressed: these fail the build *)
  suppressed : finding list;  (* silenced by a justified allow *)
}

(* The marker is assembled from pieces so the scanner never mistakes this
   file's own sources for suppression sites. *)
let marker = "vs" ^ "lint:"

(* ---------- suppression comments ---------- *)

type suppression = {
  s_line : int;
  s_col : int;
  s_rule : string;
  s_just : string option;  (* None: malformed — missing justification *)
}

let find_sub haystack needle from =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go from

let is_space c = c = ' ' || c = '\t'

let skip_spaces s i =
  let n = String.length s in
  let rec go i = if i < n && is_space s.[i] then go (i + 1) else i in
  go i

(* Strip separator punctuation (em/en dashes, hyphens, colons) and spaces
   from the head of the justification, and a trailing "*)" plus spaces from
   its tail. *)
let extract_justification rest =
  let rest =
    match find_sub rest "*)" 0 with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  let n = String.length rest in
  let rec head i =
    if i >= n then i
    else if is_space rest.[i] || rest.[i] = '-' || rest.[i] = ':' then head (i + 1)
    else if
      (* UTF-8 em dash e2 80 94 / en dash e2 80 93 *)
      i + 2 < n
      && rest.[i] = '\xe2'
      && rest.[i + 1] = '\x80'
      && (rest.[i + 2] = '\x93' || rest.[i + 2] = '\x94')
    then head (i + 3)
    else i
  in
  let start = head 0 in
  let just = String.trim (String.sub rest start (n - start)) in
  if just = "" then None else Some just

let scan_line ~lineno line =
  let rec go from acc =
    match find_sub line marker from with
    | None -> acc
    | Some at -> (
        let i = skip_spaces line (at + String.length marker) in
        let allow = "allow" in
        let n = String.length line in
        if i + String.length allow > n || String.sub line i (String.length allow) <> allow
        then go (at + 1) acc
        else
          let i = skip_spaces line (i + String.length allow) in
          let j =
            let rec scan j =
              if
                j < n
                && ((line.[j] >= 'A' && line.[j] <= 'Z')
                   || (line.[j] >= '0' && line.[j] <= '9'))
              then scan (j + 1)
              else j
            in
            scan i
          in
          if j = i then go (at + 1) acc
          else
            let rule = String.sub line i (j - i) in
            let just = extract_justification (String.sub line j (n - j)) in
            go (at + 1) ({ s_line = lineno; s_col = at; s_rule = rule; s_just = just } :: acc))
  in
  go 0 []

let scan_suppressions source =
  let lines = String.split_on_char '\n' source in
  List.concat (List.mapi (fun i line -> scan_line ~lineno:(i + 1) line) lines)

(* ---------- alloc-free annotations ---------- *)

(* An annotation comment — the marker followed by the word below — on the
   line above (or the line of) a definition puts that function under rule
   A1: its body must contain no allocating construct.  Scanned textually
   like suppressions. *)
let alloc_free = "alloc-" ^ "free"

let scan_annotations source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line ->
         match find_sub line marker 0 with
         | None -> []
         | Some at ->
             let j = skip_spaces line (at + String.length marker) in
             if
               j + String.length alloc_free <= String.length line
               && String.sub line j (String.length alloc_free) = alloc_free
             then [ i + 1 ]
             else [])
       lines)

(* ---------- the AST pass ---------- *)

let d1_exempt path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let has_sub sub = find_sub path sub 0 <> None in
  has_sub "lib/sim/" || has_sub "util/rng.ml"

(* Lines at which a value named [compare] is bound in this file: a bare
   [compare] below such a binding resolves to it, not to Stdlib's, and is
   not a D5 finding. *)
let compare_binding_lines ast =
  let lines = ref [] in
  let open Ast_iterator in
  let pat self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; loc } ->
        lines := loc.Location.loc_start.Lexing.pos_lnum :: !lines
    | _ -> ());
    default_iterator.pat self p
  in
  let it = { default_iterator with pat } in
  it.structure it ast;
  !lines

let path_of_lident lid =
  match Longident.flatten lid with
  | parts -> parts
  | exception _ -> []

let collect_ident_findings ~path ast =
  let compare_bound_at = compare_binding_lines ast in
  let acc = ref [] in
  let add rule loc message =
    let pos = loc.Location.loc_start in
    acc :=
      {
        rule;
        file = path;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        message;
      }
      :: !acc
  in
  let check_path original_parts loc =
    let qualified = List.length original_parts > 1 in
    let parts =
      match original_parts with
      | "Stdlib" :: (_ :: _ as rest) -> rest
      | parts -> parts
    in
    let ident = String.concat "." original_parts in
    match parts with
    | "Random" :: _ ->
        if not (d1_exempt path) then
          add Rules.d1 loc
            (Printf.sprintf
               "%s draws ambient randomness; use the campaign-seeded Rng.t"
               ident)
    | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
        if not (d1_exempt path) then
          add Rules.d1 loc
            (Printf.sprintf "%s reads the wall clock; use Sim.now" ident)
    | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ]
      ->
        add Rules.d2 loc
          (Printf.sprintf "%s enumerates a hash table in unspecified order"
             ident)
    | [ "Hashtbl"; "find" ] ->
        add Rules.d3 loc
          (Printf.sprintf
             "bare %s raises a contextless Not_found; match on find_opt" ident)
    | [ "List"; ("hd" | "tl") ] | [ "Option"; "get" ] ->
        add Rules.d3 loc
          (Printf.sprintf
             "%s is partial; make the empty/missing case an explicit match"
             ident)
    | [ "Obj"; "magic" ] ->
        add Rules.d4 loc (Printf.sprintf "%s defeats the type system" ident)
    | [ "==" ] | [ "!=" ] ->
        add Rules.d4 loc
          (Printf.sprintf "physical equality (%s) on structural data" ident)
    | [ "compare" ] ->
        let use_line = loc.Location.loc_start.Lexing.pos_lnum in
        let shadowed =
          (not qualified)
          && List.exists (fun l -> l <= use_line) compare_bound_at
        in
        if not shadowed then
          add Rules.d5 loc
            (Printf.sprintf
               "polymorphic %s on protocol data; name the element comparator"
               ident)
    | _ -> ()
  in
  let open Ast_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_path (path_of_lident txt) loc
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.structure it ast;
  List.rev !acc

(* ---------- entry points ---------- *)

let parse_rule =
  {
    Rules.id = "P1";
    severity = Rules.Error;
    title = "source file does not parse";
    hint = "vslint runs the compiler's own parser; fix the syntax error";
    explain = "A file the compiler cannot parse cannot be linted.";
  }

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule.Rules.id b.rule.Rules.id
          | c -> c)
      | c -> c)
  | c -> c

(* A justified allow silences findings of its rule on its own line and the
   line directly below.  Shared by the per-file pass and the whole-program
   rules (C1/A1/B1/S2 findings go through the same gate). *)
let partition_by_suppressions suppressions findings =
  let suppressed_by f =
    List.exists
      (fun s ->
        String.equal s.s_rule f.rule.Rules.id
        && s.s_just <> None
        && (s.s_line = f.line || s.s_line = f.line - 1))
      suppressions
  in
  List.partition suppressed_by findings

let lint_source ~path source =
  let suppressions = scan_suppressions source in
  let malformed =
    List.filter_map
      (fun s ->
        match s.s_just with
        | None ->
            Some
              {
                rule = Rules.s1;
                file = path;
                line = s.s_line;
                col = s.s_col;
                message =
                  Printf.sprintf
                    "allow %s carries no justification and suppresses nothing"
                    s.s_rule;
              }
        | Some _ -> None)
      suppressions
  in
  let raw =
    match
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf path;
      Parse.implementation lexbuf
    with
    | ast -> collect_ident_findings ~path ast
    | exception exn ->
        let line, msg =
          match exn with
          | Syntaxerr.Error _ -> (1, "syntax error")
          | exn -> (1, Printexc.to_string exn)
        in
        [ { rule = parse_rule; file = path; line; col = 0; message = msg } ]
  in
  let suppressed, findings = partition_by_suppressions suppressions raw in
  {
    findings = List.sort compare_finding (malformed @ findings);
    suppressed = List.sort compare_finding suppressed;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~path (read_file path)

(* Every .ml under [roots] (files or directories), depth-first in sorted
   order so reports are stable across filesystems. *)
let collect_ml_files roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if String.length entry > 0 && entry.[0] = '.' then acc
             else if entry = "_build" then acc
             else walk acc (Filename.concat path entry))
           acc
    else if
      (* .pp.ml files are dune's preprocessed copies, not source. *)
      Filename.check_suffix path ".ml"
      && not (Filename.check_suffix path ".pp.ml")
    then path :: acc
    else acc
  in
  List.rev (List.fold_left walk [] roots)
