(* The vslint rule table.  Each rule makes one class of determinism or
   protocol-hygiene hazard a build error: the verification story (seeded
   campaigns, the shrink corpus, replayable repros) assumes a seed expands
   into exactly one run, and these rules are what enforce that assumption
   statically.  Rules are purely syntactic — they run on the untyped AST —
   so a site that is provably safe is silenced with a suppression comment
   that must carry a justification (see {!Lint}). *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warn"

type t = {
  id : string;
  severity : severity;
  title : string;  (* one-line summary, shown in reports *)
  hint : string;  (* fix hint, printed inline under each finding *)
  explain : string;  (* long-form rationale for --explain *)
}

(* Suppression comments are written [(* vslint: allow <ID> — <why> *)]; the
   examples below build the marker by concatenation so this file does not
   itself register stray suppressions with the scanner. *)
let allow_example id why = "(* vslint: " ^ "allow " ^ id ^ " — " ^ why ^ " *)"

let d1 =
  {
    id = "D1";
    severity = Error;
    title = "wall-clock or ambient randomness outside lib/util/rng.ml and lib/sim/";
    hint =
      "thread the simulation's seeded Rng.t (Sim.fork_rng) and Sim.now instead \
       of Random.*, Sys.time, or Unix.gettimeofday";
    explain =
      "Seed-replay (vscli check --replay, the shrink corpus, the campaign \
       explorer) requires that every source of randomness and every clock \
       read is derived from the campaign seed and the simulated clock.  A \
       single Random.float or Sys.time call makes two identically-seeded \
       runs diverge, which silently voids every repro artifact in \
       test/corpus/.  The only modules allowed to touch ambient entropy or \
       real time are lib/util/rng.ml (the seeded splitmix64 generator) and \
       lib/sim/ (the discrete-event clock).";
  }

let d2 =
  {
    id = "D2";
    severity = Warning;
    title = "Hashtbl.iter/fold/to_seq enumerates in unspecified hash order";
    hint =
      "sort the result by a total order (Proc_id.compare, Int.compare, ...) \
       before it feeds a decision — e.g. Vs_util.Hashtblx.sorted_bindings — \
       or annotate with " ^ allow_example "D2" "commutative fold"
      ^ " when the accumulation is order-insensitive";
    explain =
      "Hashtbl enumeration order depends on the hash function and the \
       insertion history, not on any order the protocol reasons about.  \
       When the enumerated elements feed an ordered decision (a delivery, a \
       wire message, a coordinator choice, an oracle verdict), the run is \
       hostage to hash-bucket layout: refactoring a record or changing a \
       table's initial size reorders deliveries and breaks byte-identical \
       seed replay.  Either sort the fold's result by an explicit total \
       order before anyone sees it (Vs_util.Hashtblx.sorted_bindings / \
       sorted_keys do this in one step), or — when the fold is genuinely \
       commutative (max, sum, or) — silence the site with a justified \
       suppression comment.";
  }

let d3 =
  {
    id = "D3";
    severity = Error;
    title = "partial operation (List.hd, List.tl, Option.get, bare Hashtbl.find)";
    hint =
      "match explicitly and raise a descriptive invariant-violation error, or \
       use the _opt variant (Hashtbl.find_opt, ...) and handle None";
    explain =
      "List.hd, List.tl, Option.get and bare Hashtbl.find raise blank \
       Failure/Not_found/Invalid_argument exceptions that carry no protocol \
       context: a Not_found escaping from deep inside a flush is close to \
       undebuggable, and several past VS bugs hid behind exactly such \
       implicit emptiness assumptions.  Write the match out: the [None]/[[]] \
       branch either has a real meaning (handle it) or is an invariant \
       violation (raise invalid_arg with a message naming the invariant).";
  }

let d4 =
  {
    id = "D4";
    severity = Error;
    title = "Obj.magic or physical equality (==/!=) on structural data";
    hint =
      "use structural (=) / a typed compare for values, and delete Obj.magic \
       outright; annotate with " ^ allow_example "D4" "identity check on a mutable handle"
      ^ " for an intentional identity test";
    explain =
      "Obj.magic defeats the type system entirely, and physical equality on \
       structural data (ids, views, messages) is true or false depending on \
       sharing decisions the compiler is free to change between releases and \
       optimization levels — another way for two identical runs to diverge.  \
       Physical equality is legitimate only as an identity test on mutable \
       handles, which is rare enough to deserve a justified suppression.";
  }

let d5 =
  {
    id = "D5";
    severity = Warning;
    title = "polymorphic compare on protocol data";
    hint =
      "use the type's own comparator (Proc_id.compare, View.Id.compare, \
       Int.compare, Float.compare, String.compare) instead of bare compare";
    explain =
      "Stdlib's polymorphic compare orders values by runtime representation: \
       on Proc_id.t-bearing aggregates it silently bypasses Proc_id.compare, \
       so the order it induces is a coincidence of field layout — it changes \
       when a field is added or reordered, it traverses mutable state, and \
       it raises on functional values.  Every sort or maximum that feeds a \
       protocol decision must name the comparator of the element type.  \
       (Sites where [compare] resolves to a comparator defined earlier in \
       the same file — e.g. a [let compare] shadowing Stdlib's — are not \
       flagged.)";
  }

let c1 =
  {
    id = "C1";
    severity = Error;
    title =
      "protocol module transitively reaches ambient time, randomness, or \
       Unix I/O";
    hint =
      "thread the capability in (Sim.now, a seeded Rng.t, or the injected \
       I/O interface) instead of calling — directly or through any helper — \
       Unix.*, Sys.time, or Random.*; the report names the full call chain \
       to the offending leaf";
    explain =
      "D1 is syntactic and per-site: it flags Unix.gettimeofday where it is \
       written, so a helper in lib/util that wraps the wall clock launders \
       the effect into every caller unflagged.  C1 closes that hole with a \
       whole-program analysis: pass 1 builds a module-qualified call graph \
       over the tree, pass 2 seeds each function with its intrinsic effects \
       and propagates them to a fixpoint, pass 3 requires every function \
       defined in the protocol layers (lib/vsync, lib/core, lib/gms, \
       lib/fd, lib/net, lib/store, lib/apps) to be transitively clean of \
       Ambient_time, Ambient_rand, and Unix_io.  Effects reached through \
       the sanctioned capabilities (lib/sim/ and lib/util/rng.ml) are \
       masked — that is the seam the future real-OS backend plugs into: \
       protocol code that certifies clean here runs byte-identical under \
       lib/sim and wall-clock honest under a real backend, with no code \
       change.  Each violation is reported as the full call chain from the \
       protocol function to the effect leaf, not just the leaf site.";
  }

let a1 =
  {
    id = "A1";
    severity = Error;
    title = "allocating construct in a function annotated alloc-free";
    hint =
      "hoist the allocation out of the annotated function (or drop the \
       annotation); the annotation is written (* vslint" ^ ": alloc-free *) \
       on the line above the definition";
    explain =
      "The send fast path must not allocate when observability is off; the \
       bench asserts this at runtime with word-exact Gc counters \
       (words_per_send in bench/main.ml), but a runtime assertion only \
       guards the scenarios the bench happens to run.  A1 turns the \
       guarantee into a build-time proof: a function annotated alloc-free \
       may not contain closure captures, tuple/record/variant/array \
       construction, string concatenation, known-allocating stdlib calls, \
       partial applications of known functions, or obvious float boxing — \
       and may not call another function in this tree whose body contains \
       such a construct (reported with the call chain to the allocating \
       site).  Calls that the analysis cannot resolve (first-class \
       functions, external primitives) are not flagged: the proof is \
       conservative in what it accepts under the annotation, not in what \
       it rejects.";
  }

let s2 =
  {
    id = "S2";
    severity = Warning;
    title = "stale suppression: the allowed rule no longer fires here";
    hint =
      "delete the allow comment — the site it guarded has drifted and the \
       rule no longer reports anything on this line or the line below";
    explain =
      "A justified allow is evidence that a *specific* flagged site was \
       reviewed and deemed safe.  When the guarded code drifts — the fold \
       is rewritten, the wall-clock read moves — the comment keeps claiming \
       a review that no longer corresponds to any finding, and future \
       readers (and future real findings on nearby lines) inherit \
       unearned trust.  S2 reports every justified allow whose rule \
       produces no finding on the suppression's line or the line directly \
       below, which keeps the tree's allows exactly as honest as the day \
       each was written.";
  }

let b1 =
  {
    id = "B1";
    severity = Error;
    title = "zero-alloc contract entry without an alloc-free annotation";
    hint =
      "annotate the named function with (* vslint" ^ ": alloc-free *) or \
       remove it from Net.zero_alloc_contract; the contract list and the \
       annotated set must name the same functions";
    explain =
      "Two guards protect the zero-allocation send path: the bench's \
       runtime Gc assertion (which exports Net.zero_alloc_contract into \
       BENCH_obs.json next to its word counts) and the static A1 \
       annotations.  If they named different functions they could silently \
       diverge — the bench measuring one set while the analyzer proves \
       another.  B1 pins them together: every \"path:function\" entry of \
       zero_alloc_contract must resolve to a function in the analyzed tree \
       that carries the alloc-free annotation.";
  }

let s1 =
  {
    id = "S1";
    severity = Error;
    title = "suppression comment without a justification";
    hint =
      "write " ^ allow_example "<RULE>" "non-empty reason why this site is safe"
      ^ " — a bare allow does not suppress anything";
    explain =
      "A suppression is a claim that a flagged site is safe; the \
       justification string is the reviewable evidence for that claim.  An \
       unjustified allow is rejected: it does not silence the underlying \
       finding and is itself reported, so silencing a rule always costs one \
       written sentence.";
  }

let all = [ d1; d2; d3; d4; d5; c1; a1; s1; s2; b1 ]

let find id = List.find_opt (fun r -> String.equal r.id id) all
