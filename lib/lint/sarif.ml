(* SARIF 2.1.0 emission for vslint reports.

   SARIF (Static Analysis Results Interchange Format) is the interchange
   format code-review UIs ingest; emitting it makes vslint findings
   first-class annotations anywhere a SARIF uploader exists.  The emitter
   is deliberately minimal — tool.driver with the full rule table, one
   result per finding — and deliberately deterministic: no timestamps, no
   GUIDs, rule and result order fixed by the (sorted) report, so the same
   tree always produces byte-identical SARIF.  test/sarif_schema_check.ml
   validates the shape against a committed sample. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let level_of_severity = function
  | Rules.Error -> "error"
  | Rules.Warning -> "warning"

let rule_json (r : Rules.t) =
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"},\"help\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"%s\"}}"
    (escape r.Rules.id) (escape r.Rules.title) (escape r.Rules.explain)
    (escape r.Rules.hint)
    (level_of_severity r.Rules.severity)

let rule_index id =
  let rec go i = function
    | [] -> -1
    | (r : Rules.t) :: rest -> if String.equal r.Rules.id id then i else go (i + 1) rest
  in
  go 0 Rules.all

(* SARIF columns are 1-based; vslint columns are 0-based byte offsets. *)
let result_json (f : Lint.finding) =
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
    (escape f.Lint.rule.Rules.id)
    (rule_index f.Lint.rule.Rules.id)
    (level_of_severity f.Lint.rule.Rules.severity)
    (escape f.Lint.message) (escape f.Lint.file) f.Lint.line (f.Lint.col + 1)

let emit ~findings =
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"vslint\",\"informationUri\":\"https://example.invalid/vslint\",\"version\":\"2.0.0\",\"rules\":[%s]}},\"results\":[%s]}]}"
    (String.concat "," (List.map rule_json Rules.all))
    (String.concat "," (List.map result_json findings))
