(* Pass 3 of the whole-program analyzer, and the one-stop entry point the
   driver and the test-suite share: run the per-file syntactic pass, build
   the call graph (pass 1), run the effect fixpoint (pass 2), then enforce
   the closure rules —

   C1  functions defined in the protocol layers must be transitively clean
       of Ambient_time/Ambient_rand/Unix_io (capability seam certification);
   A1  functions annotated alloc-free must contain no allocating construct
       and call no resolved function that does;
   B1  every entry of the bench's zero-alloc contract list must carry the
       alloc-free annotation;
   S2  every justified allow must still guard a firing finding.

   All whole-program findings flow through the same justified-allow gate as
   the per-file rules, and the merged report is sorted, so two runs over
   the same sources are byte-identical. *)

(* The protocol layers C1 certifies: everything that must run unchanged
   under both the deterministic sim and a real-OS backend. *)
let protected_dirs =
  [
    "lib/vsync/";
    "lib/core/";
    "lib/gms/";
    "lib/fd/";
    "lib/net/";
    "lib/store/";
    "lib/apps/";
  ]

let has_sub path sub =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let np = String.length path and ns = String.length sub in
  let rec go i = i + ns <= np && (String.sub path i ns = sub || go (i + 1)) in
  go 0

let protected_file path = List.exists (has_sub path) protected_dirs

type report = {
  findings : Lint.finding list;
  suppressed : Lint.finding list;
  chains : string list;  (* effect-provenance dump, one line per function *)
  files : int;
}

(* ---------- helpers ---------- *)

let parse_structure ~path source =
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    Parse.implementation lexbuf
  with
  | ast -> Some ast
  | exception _ -> None

let finding rule ~file ~line ~col message =
  { Lint.rule; file; line; col; message }

(* The contract list tying the bench's runtime Gc assertion to the A1
   annotations: a toplevel [let zero_alloc_contract = [ "path:fn"; ... ]]. *)
let contract_name = "zero_alloc_contract"

let rec strings_of_list_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ( { txt = Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ head; tail ]; _ } ) -> (
      match (head.Parsetree.pexp_desc, strings_of_list_expr tail) with
      | Pexp_constant (Pconst_string (s, _, _)), Some rest -> Some (s :: rest)
      | _ -> None)
  | _ -> None

let contract_entries files_asts =
  List.concat_map
    (fun (path, ast) ->
      List.concat_map
        (fun (item : Parsetree.structure_item) ->
          match item.Parsetree.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.concat_map
                (fun (vb : Parsetree.value_binding) ->
                  match
                    (vb.pvb_pat.Parsetree.ppat_desc, vb.pvb_expr)
                  with
                  | Ppat_var { txt; loc }, expr
                    when String.equal txt contract_name -> (
                      match strings_of_list_expr expr with
                      | Some entries ->
                          let line = loc.Location.loc_start.Lexing.pos_lnum in
                          [ (path, line, entries) ]
                      | None -> [])
                  | _ -> [])
                bindings
          | _ -> [])
        ast)
    files_asts

(* "lib/net/net.ml:meter_send" matches a def when the file part is a path
   suffix (so "../lib/net/net.ml" still matches) and the function part is
   the def's in-file dotted name. *)
let contract_matches (d : Callgraph.def) entry =
  match String.rindex_opt entry ':' with
  | None -> false
  | Some i ->
      let epath = String.sub entry 0 i in
      let ename = String.sub entry (i + 1) (String.length entry - i - 1) in
      let dname =
        String.concat "." (d.Callgraph.d_chain @ [ d.Callgraph.d_name ])
      in
      String.equal dname ename
      &&
      let fl = String.length d.Callgraph.d_file
      and el = String.length epath in
      fl >= el && String.sub d.Callgraph.d_file (fl - el) el = epath

(* ---------- the analysis ---------- *)

let analyze ~files () =
  let per_file =
    List.map
      (fun (path, source) ->
        let r = Lint.lint_source ~path source in
        let suppressions = Lint.scan_suppressions source in
        let annotations = Lint.scan_annotations source in
        (path, source, r, suppressions, annotations))
      files
  in
  let parsed =
    List.filter_map
      (fun (path, source, _, _, _) ->
        match parse_structure ~path source with
        | Some ast -> Some (path, ast)
        | None -> None)
      per_file
  in
  let graph = Callgraph.build parsed in
  let justified path =
    match List.find_opt (fun (p, _, _, _, _) -> String.equal p path) per_file with
    | Some (_, _, _, sup, _) ->
        List.filter (fun s -> s.Lint.s_just <> None) sup
    | None -> []
  in
  let seed_allowed ~file ~rule ~line =
    List.exists
      (fun s ->
        String.equal s.Lint.s_rule rule
        && (s.Lint.s_line = line || s.Lint.s_line = line - 1))
      (justified file)
  in
  let eff = Effects.analyze graph ~seed_allowed in
  (* --- C1: capability certification of the protocol layers --- *)
  let effectful_protected =
    List.filter
      (fun d ->
        protected_file d.Callgraph.d_file
        && List.exists (fun (e, _) -> Effects.is_ambient e) (Effects.effects eff d))
      graph.Callgraph.defs
  in
  let c1 =
    List.concat_map
      (fun (d : Callgraph.def) ->
        List.filter_map
          (fun (e, origin) ->
            if not (Effects.is_ambient e) then None
            else
              (* Report at the contamination crossing: skip when the effect
                 arrives through another protected function, which carries
                 its own report. *)
              let crossing =
                match origin with
                | Effects.Leaf _ -> true
                | Effects.Via (cid, _) ->
                    not
                      (List.exists
                         (fun p -> String.equal (Callgraph.def_id p) cid)
                         effectful_protected)
              in
              if not crossing then None
              else
                Some
                  (finding Rules.c1 ~file:d.Callgraph.d_file
                     ~line:d.Callgraph.d_line ~col:d.Callgraph.d_col
                     (Printf.sprintf
                        "%s reaches %s outside the Sim capability: %s"
                        d.Callgraph.d_name
                        (Effects.eff_to_string e)
                        (Effects.chain eff d e))))
          (Effects.effects eff d))
      effectful_protected
  in
  (* --- A1: alloc-free annotations --- *)
  let annotated =
    List.concat_map
      (fun (path, _, _, _, annotations) ->
        List.map
          (fun line ->
            let def =
              List.find_opt
                (fun d ->
                  String.equal d.Callgraph.d_file path
                  && (d.Callgraph.d_line = line || d.Callgraph.d_line = line + 1))
                graph.Callgraph.defs
            in
            (path, line, def))
          annotations)
      per_file
  in
  let annotated_defs =
    List.filter_map (fun (_, _, def) -> def) annotated
  in
  let a1 =
    List.concat_map
      (fun (path, line, def) ->
        match def with
        | None ->
            [
              finding Rules.a1 ~file:path ~line ~col:0
                "alloc-free annotation does not precede a function definition";
            ]
        | Some (d : Callgraph.def) ->
            let intrinsic =
              List.map
                (fun (a : Callgraph.alloc) ->
                  finding Rules.a1 ~file:path ~line:a.Callgraph.a_line
                    ~col:a.Callgraph.a_col
                    (Printf.sprintf "%s allocates under alloc-free %s: %s"
                       d.Callgraph.d_name d.Callgraph.d_name
                       a.Callgraph.a_what))
                d.Callgraph.d_allocs
            in
            let via_calls =
              List.filter_map
                (fun (c : Callgraph.call) ->
                  let callees = Callgraph.resolve graph ~from:d c in
                  let alloc_callee =
                    List.find_opt
                      (fun callee ->
                        Effects.may_alloc eff callee <> None
                        && not
                             (String.equal
                                (Callgraph.def_id callee)
                                (Callgraph.def_id d)))
                      callees
                  in
                  match alloc_callee with
                  | Some callee ->
                      Some
                        (finding Rules.a1 ~file:path ~line:c.Callgraph.c_line
                           ~col:c.Callgraph.c_col
                           (Printf.sprintf
                              "%s calls allocating %s under alloc-free: %s"
                              d.Callgraph.d_name c.Callgraph.c_name
                              (Effects.alloc_chain eff callee)))
                  | None -> (
                      (* Partial application of a resolved function
                         allocates the closure even when the callee is
                         clean. *)
                      match callees with
                      | [] -> None
                      | callees
                        when c.Callgraph.c_args > 0
                             && List.for_all
                                  (fun (e : Callgraph.def) ->
                                    e.Callgraph.d_arity > c.Callgraph.c_args)
                                  callees ->
                          Some
                            (finding Rules.a1 ~file:path
                               ~line:c.Callgraph.c_line ~col:c.Callgraph.c_col
                               (Printf.sprintf
                                  "%s partially applies %s under alloc-free \
                                   (closure)"
                                  d.Callgraph.d_name c.Callgraph.c_name))
                      | _ -> None))
                d.Callgraph.d_calls
            in
            intrinsic @ via_calls)
      annotated
  in
  (* --- B1: the bench contract and the annotated set name the same
     functions --- *)
  let b1 =
    List.concat_map
      (fun (path, line, entries) ->
        List.filter_map
          (fun entry ->
            let covered =
              List.exists
                (fun d -> contract_matches d entry)
                annotated_defs
            in
            if covered then None
            else
              Some
                (finding Rules.b1 ~file:path ~line ~col:0
                   (Printf.sprintf
                      "contract entry %s is not covered by an alloc-free \
                       annotation"
                      entry)))
          entries)
      (contract_entries parsed)
  in
  (* --- merge, then S2 over the complete raw finding set --- *)
  let whole_raw = c1 @ a1 @ b1 in
  let raw_for path =
    let pf =
      match
        List.find_opt (fun (p, _, _, _, _) -> String.equal p path) per_file
      with
      | Some (_, _, r, _, _) -> r.Lint.findings @ r.Lint.suppressed
      | None -> []
    in
    pf @ List.filter (fun f -> String.equal f.Lint.file path) whole_raw
  in
  let s2 =
    List.concat_map
      (fun (path, _, _, suppressions, _) ->
        let raw = raw_for path in
        List.filter_map
          (fun (s : Lint.suppression) ->
            if s.Lint.s_just = None then None
            else
              let live =
                List.exists
                  (fun (f : Lint.finding) ->
                    String.equal f.Lint.rule.Rules.id s.Lint.s_rule
                    && (f.Lint.line = s.Lint.s_line
                       || f.Lint.line = s.Lint.s_line + 1))
                  raw
              in
              if live then None
              else
                Some
                  (finding Rules.s2 ~file:path ~line:s.Lint.s_line
                     ~col:s.Lint.s_col
                     (Printf.sprintf
                        "allow %s is stale: the rule no longer fires on the \
                         guarded site"
                        s.Lint.s_rule)))
          suppressions)
      per_file
  in
  (* --- suppression gate for the whole-program findings, then merge --- *)
  let whole_by_file =
    List.map
      (fun (path, _, _, suppressions, _) ->
        let mine =
          List.filter
            (fun f -> String.equal f.Lint.file path)
            (whole_raw @ s2)
        in
        Lint.partition_by_suppressions suppressions mine)
      per_file
  in
  let findings =
    List.concat_map (fun (_, _, r, _, _) -> r.Lint.findings) per_file
    @ List.concat_map snd whole_by_file
  in
  let suppressed =
    List.concat_map (fun (_, _, r, _, _) -> r.Lint.suppressed) per_file
    @ List.concat_map fst whole_by_file
  in
  {
    findings = List.sort Lint.compare_finding findings;
    suppressed = List.sort Lint.compare_finding suppressed;
    chains = Effects.dump eff;
    files = List.length files;
  }

(* Convenience: analyze files on disk (roots expanded the same way the
   per-file driver always has). *)
let analyze_paths roots =
  let files = Lint.collect_ml_files roots in
  analyze
    ~files:(List.map (fun path -> (path, Lint.read_file path)) files)
    ()
