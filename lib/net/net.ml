module Sim = Vs_sim.Sim
module Rng = Vs_util.Rng
module Event = Vs_obs.Event

type 'm envelope = {
  src : Proc_id.t;
  dst : Proc_id.t;
  sent_at : float;
  payload : 'm;
}

type config = {
  delay_min : float;
  delay_max : float;
  drop_prob : float;
  dup_prob : float;
  byte_delay : float;
}

let default_config =
  {
    delay_min = 0.001;
    delay_max = 0.010;
    drop_prob = 0.;
    dup_prob = 0.;
    byte_delay = 0.;
  }

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  bytes_sent : int;
}

type 'm t = {
  sim : Sim.t;
  rng : Rng.t;
  config : config;
  size_of : 'm -> int;
  describe : 'm -> string;
  ident : 'm -> Event.msg option;
  idents : 'm -> Event.msg list;
  handlers : (Proc_id.t, 'm envelope -> unit) Hashtbl.t;
  node_live : (int, Proc_id.t) Hashtbl.t; (* node -> live incarnation *)
  node_next_inc : (int, int) Hashtbl.t;   (* node -> next unused incarnation *)
  mutable component : int -> int;         (* node -> component id *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
}

let create ?(size_of = fun _ -> 1) ?(describe = fun _ -> "msg")
    ?(ident = fun _ -> None) ?idents sim config =
  if config.delay_min < 0. || config.delay_max < config.delay_min then
    invalid_arg "Net.create: bad delay bounds";
  let idents =
    match idents with
    | Some f -> f
    | None -> fun m -> ( match ident m with Some x -> [ x ] | None -> [])
  in
  {
    sim;
    rng = Sim.fork_rng sim;
    config;
    size_of;
    describe;
    ident;
    idents;
    handlers = Hashtbl.create 64;
    node_live = Hashtbl.create 64;
    node_next_inc = Hashtbl.create 64;
    component = (fun _ -> 0);
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    bytes_sent = 0;
  }

(* vslint: alloc-free *)
let is_live t p = Hashtbl.mem t.handlers p

let live_on_node t node = Hashtbl.find_opt t.node_live node

let fresh_incarnation t node =
  let inc = Option.value ~default:0 (Hashtbl.find_opt t.node_next_inc node) in
  Proc_id.make ~node ~inc

let register t p handler =
  (match live_on_node t p.Proc_id.node with
  | Some q ->
      invalid_arg
        (Printf.sprintf "Net.register: node %d already hosts live %s"
           p.Proc_id.node (Proc_id.to_string q))
  | None -> ());
  let next = Option.value ~default:0 (Hashtbl.find_opt t.node_next_inc p.Proc_id.node) in
  if p.Proc_id.inc < next then
    invalid_arg
      (Printf.sprintf "Net.register: stale incarnation %s (next is %d)"
         (Proc_id.to_string p) next);
  Hashtbl.replace t.node_next_inc p.Proc_id.node (p.Proc_id.inc + 1);
  Hashtbl.replace t.handlers p handler;
  Hashtbl.replace t.node_live p.Proc_id.node p

let crash t p =
  if is_live t p then begin
    Hashtbl.remove t.handlers p;
    (match live_on_node t p.Proc_id.node with
    | Some q when Proc_id.equal q p -> Hashtbl.remove t.node_live p.Proc_id.node
    | Some _ | None -> ());
    Sim.emit t.sim (Event.Crash { proc = Proc_id.to_obs p })
  end

let set_partition t components =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun comp nodes -> List.iter (fun node -> Hashtbl.replace table node comp) nodes)
    components;
  (* Unmentioned nodes get a unique negative component — isolated. *)
  t.component <-
    (fun node ->
      match Hashtbl.find_opt table node with
      | Some c -> c
      | None -> -(node + 1));
  Sim.emit t.sim (Event.Partition { components })

let heal t =
  t.component <- (fun _ -> 0);
  Sim.emit t.sim Event.Heal

(* vslint: alloc-free *)
let connected t a b = a = b || t.component a = t.component b

(* The metering below runs on every send and every drop, whatever the
   observability level, so it sits under the zero-allocation contract: the
   bench asserts at runtime (word-exact Gc counters) and A1 proves at build
   time that these helpers allocate nothing. *)

(* vslint: alloc-free *)
let meter_send t ~bytes =
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes

(* vslint: alloc-free *)
let meter_dropped t = t.dropped <- t.dropped + 1

let sample_delay t ~bytes =
  Rng.uniform t.rng t.config.delay_min t.config.delay_max
  +. (t.config.byte_delay *. float_of_int bytes)

(* Per-message events are Full-level only, and every emission site guards on
   [Sim.obs_full] *before* constructing the event, so runs at Protocol/Off
   level allocate nothing extra on the send path (the bench harness asserts
   this).

   A payload may carry several application messages (a batch): Full-level
   sites emit one event per carried identity so lineage conservation stays
   per-payload, and a single identity-free event for control traffic —
   which is byte-identical to the pre-batching behaviour for every payload
   carrying zero or one identity. *)
let emit_each ids ~f =
  match ids with
  | [] -> f None ~first:true
  | ids -> List.iteri (fun i m -> f (Some m) ~first:(i = 0)) ids

let emit_drop t ~src ~dst ~payload ~reason =
  if Sim.obs_full t.sim then
    emit_each (t.idents payload) ~f:(fun msg ~first:_ ->
        Sim.emit t.sim
          (Event.Drop
             {
               src = Proc_id.to_obs src;
               dst = Proc_id.to_obs dst;
               kind = t.describe payload;
               reason;
               msg;
             }))

(* Delivery is re-checked at arrival time: the destination incarnation must
   still be live and the nodes still connected, so a partition installed
   while a message is in flight kills it — the asynchronous-link model the
   paper assumes. *)
let deliver_later ?(extra_copy = false) t env =
  let bytes = t.size_of env.payload in
  let deliver () =
    match Hashtbl.find_opt t.handlers env.dst with
    | Some handler when connected t env.src.Proc_id.node env.dst.Proc_id.node ->
        t.delivered <- t.delivered + 1;
        if Sim.obs_full t.sim then
          emit_each (t.idents env.payload) ~f:(fun msg ~first:_ ->
              Sim.emit t.sim
                (Event.Recv
                   {
                     src = Proc_id.to_obs env.src;
                     dst = Proc_id.to_obs env.dst;
                     kind = t.describe env.payload;
                     msg;
                   }));
        handler env
    | Some _ ->
        meter_dropped t;
        emit_drop t ~src:env.src ~dst:env.dst ~payload:env.payload
          ~reason:"partition-inflight"
    | None ->
        meter_dropped t;
        emit_drop t ~src:env.src ~dst:env.dst ~payload:env.payload
          ~reason:"dst-dead"
  in
  ignore (Sim.after t.sim (sample_delay t ~bytes) deliver);
  if extra_copy then begin
    t.duplicated <- t.duplicated + 1;
    if Sim.obs_full t.sim then
      emit_each (t.idents env.payload) ~f:(fun msg ~first:_ ->
          Sim.emit t.sim
            (Event.Dup
               {
                 src = Proc_id.to_obs env.src;
                 dst = Proc_id.to_obs env.dst;
                 kind = t.describe env.payload;
                 msg;
               }));
    ignore (Sim.after t.sim (sample_delay t ~bytes) deliver)
  end

let send_to t ~src ~dst payload =
  meter_send t ~bytes:(t.size_of payload);
  let self = Proc_id.equal src dst in
  if not (is_live t src) then begin
    meter_dropped t;
    emit_drop t ~src ~dst ~payload ~reason:"src-dead"
  end
  else if (not self) && not (connected t src.Proc_id.node dst.Proc_id.node)
  then begin
    meter_dropped t;
    emit_drop t ~src ~dst ~payload ~reason:"partition"
  end
  else if (not self) && Rng.bool t.rng t.config.drop_prob then begin
    meter_dropped t;
    emit_drop t ~src ~dst ~payload ~reason:"loss"
  end
  else begin
    if Sim.obs_full t.sim then
      emit_each (t.idents payload) ~f:(fun msg ~first ->
          (* A batch's bytes belong to the wire message, not each payload:
             the first event carries them all so byte sums stay honest. *)
          Sim.emit t.sim
            (Event.Send
               {
                 src = Proc_id.to_obs src;
                 dst = Proc_id.to_obs dst;
                 kind = t.describe payload;
                 bytes = (if first then t.size_of payload else 0);
                 msg;
               }));
    let env = { src; dst; sent_at = Sim.now t.sim; payload } in
    let extra_copy = (not self) && Rng.bool t.rng t.config.dup_prob in
    deliver_later ~extra_copy t env
  end

let send t ~src ~dst payload = send_to t ~src ~dst payload

let send_node t ~src ~dst_node payload =
  (* Address the node: resolve the live incarnation at delivery time by
     re-resolving through a fresh lookup when the message lands. We model it
     by resolving now and also accepting the case where a *newer* incarnation
     appears before arrival: resolve at delivery. *)
  meter_send t ~bytes:(t.size_of payload);
  (* Node-addressed drops render with the n<dst_node> pseudo-destination. *)
  let node_dst () = { Event.node = dst_node; inc = -1 } in
  let emit_node_drop reason =
    if Sim.obs_full t.sim then
      Sim.emit t.sim
        (Event.Drop
           {
             src = Proc_id.to_obs src;
             dst = node_dst ();
             kind = t.describe payload;
             reason;
             msg = t.ident payload;
           })
  in
  if not (is_live t src) then begin
    meter_dropped t;
    emit_node_drop "src-dead"
  end
  else if
    src.Proc_id.node <> dst_node && not (connected t src.Proc_id.node dst_node)
  then begin
    meter_dropped t;
    emit_node_drop "partition"
  end
  else if src.Proc_id.node <> dst_node && Rng.bool t.rng t.config.drop_prob
  then begin
    meter_dropped t;
    emit_node_drop "loss"
  end
  else begin
    let sent_at = Sim.now t.sim in
    let bytes = t.size_of payload in
    if Sim.obs_full t.sim then
      Sim.emit t.sim
        (Event.Send
           {
             src = Proc_id.to_obs src;
             dst = node_dst ();
             kind = t.describe payload;
             bytes;
             msg = t.ident payload;
           });
    let deliver () =
      match live_on_node t dst_node with
      | Some dst when connected t src.Proc_id.node dst_node -> (
          match Hashtbl.find_opt t.handlers dst with
          | Some handler ->
              t.delivered <- t.delivered + 1;
              if Sim.obs_full t.sim then
                Sim.emit t.sim
                  (Event.Recv
                     {
                       src = Proc_id.to_obs src;
                       dst = Proc_id.to_obs dst;
                       kind = t.describe payload;
                       msg = t.ident payload;
                     });
              handler { src; dst; sent_at; payload }
          | None ->
              meter_dropped t;
              emit_node_drop "dst-dead")
      | Some _ ->
          meter_dropped t;
          emit_node_drop "partition-inflight"
      | None ->
          meter_dropped t;
          emit_node_drop "dst-dead"
    in
    ignore (Sim.after t.sim (sample_delay t ~bytes) deliver);
    (* Same duplication model as [send_to]: self-sends exempt. *)
    if src.Proc_id.node <> dst_node && Rng.bool t.rng t.config.dup_prob then begin
      t.duplicated <- t.duplicated + 1;
      if Sim.obs_full t.sim then
        Sim.emit t.sim
          (Event.Dup
             {
               src = Proc_id.to_obs src;
               dst = node_dst ();
               kind = t.describe payload;
               msg = t.ident payload;
             });
      ignore (Sim.after t.sim (sample_delay t ~bytes) deliver)
    end
  end

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    bytes_sent = t.bytes_sent;
  }

let reset_stats t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  t.bytes_sent <- 0

(* The zero-allocation contract of the send fast path, as "path:function"
   entries.  The bench (bench/main.ml) asserts the runtime half — word-exact
   Gc counters at Protocol/Off observability — and exports this list into
   BENCH_obs.json next to those counts; vslint's A1 proves each body
   allocation-free and B1 proves this list and the annotated set name the
   same functions, so the two guards cannot silently diverge. *)
let zero_alloc_contract =
  [
    "lib/net/net.ml:is_live";
    "lib/net/net.ml:connected";
    "lib/net/net.ml:meter_send";
    "lib/net/net.ml:meter_dropped";
    "lib/sim/sim.ml:obs_full";
    "lib/obs/recorder.ml:full_on";
  ]
