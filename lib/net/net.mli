(** Simulated asynchronous point-to-point network.

    Models the paper's Section 2 environment: messages between live,
    connected processes arrive after an unpredictable (sampled) delay;
    messages to crashed incarnations or across a partition boundary are lost;
    links may drop or duplicate.  Self-addressed messages are exempt from
    loss and partitions but still go through the event queue, so a process
    never re-enters its own handlers synchronously.

    The network is polymorphic in the payload ['m]; the protocol stack
    defines one wire-message variant and instantiates a single ['m t] per
    simulation. *)

type 'm t

type 'm envelope = {
  src : Proc_id.t;
  dst : Proc_id.t;
  sent_at : float;
  payload : 'm;
}

type config = {
  delay_min : float;  (** lower bound of the uniform per-message delay *)
  delay_max : float;  (** upper bound *)
  drop_prob : float;  (** independent loss probability per message *)
  dup_prob : float;   (** probability a delivered message is duplicated *)
  byte_delay : float; (** serialization delay per byte (1 / bandwidth); the
                          per-message delay grows by [size_of msg] times
                          this, so bulk transfers cost what they should *)
}

val default_config : config
(** 1–10 ms delay, no loss, no duplication, infinite bandwidth. *)

val create :
  ?size_of:('m -> int) ->
  ?describe:('m -> string) ->
  ?ident:('m -> Vs_obs.Event.msg option) ->
  ?idents:('m -> Vs_obs.Event.msg list) ->
  Vs_sim.Sim.t ->
  config ->
  'm t
(** [?describe] names a payload's message kind for Full-level observability
    events (default ["msg"]); it is never called unless the run records at
    [Full] level.  [?ident] extracts the stable (origin, seq) correlation
    identity of the application message a payload carries, if any (default
    [fun _ -> None]); like [describe] it is only called under [Full]
    recording, so the off-path send cost is unchanged.  [?idents] is the
    batch-aware generalisation: every identity a payload carries (defaults
    to the singleton-or-empty list [?ident] yields).  Full-level
    Send/Recv/Drop/Dup events are emitted once per carried identity (bytes
    attributed to the first), so lineage conservation stays per-payload even
    when the protocol ships many application messages in one wire
    message. *)
(** [size_of] gives a nominal byte size per payload for traffic accounting
    (defaults to 1 per message). *)

(** {2 Process lifecycle} *)

val register : 'm t -> Proc_id.t -> ('m envelope -> unit) -> unit
(** Bring an incarnation online with its receive handler.  Raises
    [Invalid_argument] if a live incarnation already occupies the node or if
    this incarnation existed before. *)

val crash : 'm t -> Proc_id.t -> unit
(** Kill an incarnation: its handler is removed and in-flight messages to it
    are lost.  Idempotent. *)

val is_live : 'm t -> Proc_id.t -> bool

val live_on_node : 'm t -> int -> Proc_id.t option

val fresh_incarnation : 'm t -> int -> Proc_id.t
(** Next unused incarnation identifier for a node (does not register it). *)

(** {2 Partitions} *)

val set_partition : 'm t -> int list list -> unit
(** Install a connectivity oracle: each inner list is a component of node
    ids; unmentioned nodes become singletons.  Messages crossing component
    boundaries — checked both at send and at delivery time — are lost. *)

val heal : 'm t -> unit
(** Remove all partitions (single component). *)

val connected : 'm t -> int -> int -> bool

(** {2 Sending} *)

val send : 'm t -> src:Proc_id.t -> dst:Proc_id.t -> 'm -> unit
(** Fire-and-forget unicast to a specific incarnation. Silently dropped if
    the source is dead, the destination incarnation is not (or no longer)
    live at delivery time, or the nodes are disconnected. *)

val send_node : 'm t -> src:Proc_id.t -> dst_node:int -> 'm -> unit
(** Unicast to whatever incarnation is live on [dst_node] at delivery time —
    how heartbeats find recovered processes without knowing their new
    identifier. *)

(** {2 Accounting} *)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;      (** lost to links, partitions or dead endpoints *)
  duplicated : int;
  bytes_sent : int;
}

val stats : 'm t -> stats

val reset_stats : 'm t -> unit

(** The zero-allocation contract of the send fast path: "path:function"
    names of the guards that run on every send whatever the observability
    level.  Each named function carries the alloc-free annotation (vslint
    rule A1 proves the bodies are allocation-free; rule B1 proves this
    list and the annotated set agree), and the bench exports the list next
    to its word-exact Gc counters. *)
val zero_alloc_contract : string list
