type t = { node : int; inc : int } [@@deriving eq, ord, show]

let make ~node ~inc =
  if node < 0 || inc < 0 then invalid_arg "Proc_id.make: negative component";
  { node; inc }

let initial node = make ~node ~inc:0

(* Same order as the derived one, spelled out so callers (and vslint rule
   D5) see a typed comparator rather than Stdlib's polymorphic compare. *)
let compare a b =
  match Int.compare a.node b.node with 0 -> Int.compare a.inc b.inc | c -> c

let to_string t =
  if t.inc = 0 then Printf.sprintf "p%d" t.node
  else Printf.sprintf "p%d.%d" t.node t.inc

let to_obs t = { Vs_obs.Event.node = t.node; inc = t.inc }

let sort ids = Vs_util.Listx.sorted_set ~cmp:compare ids

let min_member = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left (fun acc p -> if compare p acc < 0 then p else acc)
           first rest)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
