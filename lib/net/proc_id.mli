(** Process identifiers.

    Following the paper's system model (Section 2), recovery of a crashed
    process is modelled by assigning it a new identifier: a process is a
    (node, incarnation) pair, and a recovered process — a higher incarnation
    on the same node — is a brand-new group member with no protocol state. *)

type t = { node : int; inc : int } [@@deriving eq, ord, show]

val make : node:int -> inc:int -> t

val initial : int -> t
(** First incarnation on a node. *)

val to_string : t -> string
(** Compact rendering, e.g. "p3.0" for node 3, incarnation 0. *)

val to_obs : t -> Vs_obs.Event.proc
(** Mirror into the observability schema (which sits below this library in
    the dependency order). *)

val sort : t list -> t list
(** Sorted duplicate-free list — the canonical representation of a
    membership. *)

val min_member : t list -> t option
(** The smallest identifier; used for coordinator election. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
