(* Regression diffing for the machine-readable BENCH_*.json artifacts.

   Two documents are flattened to dotted key paths (arrays of records keyed
   by their "id"/"name" field, so reordering arms or experiments does not
   produce spurious diffs), then every numeric leaf is judged against a
   per-key-class threshold:

   - exact keys (zero-alloc booleans, gates): any worsening is a
     regression, no tolerance;
   - counted-words keys (words_per_call): deterministic by construction,
     so any increase is a regression;
   - lower-is-better measurements (alloc bytes, overhead ratios, wall
     clock): regression when the relative increase exceeds the class
     threshold;
   - higher-is-better measurements (ops/s, speedups): mirrored;
   - everything else is informational — changes are reported but never
     gate.

   Wall-clock keys are inherently noisy; they get a wider threshold and
   callers that want a flake-free gate (the bench quick profile) can filter
   to [gating_classes] only.  The CLI [vscli bench diff] exits non-zero on
   any regression — that is the CI contract. *)

type cls =
  | Exact  (* no tolerance; bool false-ing or value change = regression *)
  | Lower of float  (* lower is better; threshold = relative tolerance *)
  | Higher of float  (* higher is better *)
  | Info  (* reported, never gates *)

type verdict = Ok | Improved | Regressed | Changed | Added | Removed

type row = {
  key : string;
  r_class : cls;
  r_old : Json.t option;
  r_new : Json.t option;
  r_verdict : verdict;
  r_note : string;
}

(* Substring match against the last path segment and the full path — the
   key namespaces in BENCH_*.json are flat enough that this is
   unambiguous. *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Default relative tolerance for measured (non-deterministic) keys. *)
let default_threshold = 0.20

(* Wall clock is the noisiest thing we record; median-of-3 (bench side)
   plus a wide tolerance keeps the gate meaningful without flaking. *)
let wall_factor = 2.5

let classify ?(threshold = default_threshold) key =
  let has sub = contains ~sub key in
  if has "zero_alloc_contract" then Info
  else if has "zero_alloc" || has "gate_" || has "consistent_with_stall" then
    Exact
  else if has "words_per_call" || has "findings" then Lower 0.
  (* vspath critical-path blocks: the straggler identity is churn, the
     per-kind seconds are sim-deterministic measurements (lower is
     better); only the consistency boolean above gates deterministically *)
  else if has "straggler" then Info
  else if has "critical_path" then Lower threshold
  (* higher-is-better first: "ops_per_wall_s" would otherwise be caught
     by the "wall_s" wall-clock rule below *)
  else if has "ops_per_wall_s" || has "speedup" then Higher threshold
  else if has "wall_ms" || has "wall_s" then Lower (wall_factor *. threshold)
  else if has "alloc_bytes" || has "overhead_ratio" then Lower threshold
  else Info

(* --- flattening ----------------------------------------------------------- *)

let id_of_arr_elem v =
  match Option.bind (Json.member "id" v) Json.to_string_opt with
  | Some s -> Some s
  | None -> Option.bind (Json.member "name" v) Json.to_string_opt

let flatten (doc : Json.t) =
  let acc = ref [] in
  let leaf path v = acc := (path, v) :: !acc in
  let join p k = if p = "" then k else p ^ "." ^ k in
  let rec go path (v : Json.t) =
    match v with
    | Json.Obj fields -> List.iter (fun (k, sub) -> go (join path k) sub) fields
    | Json.Arr elems
      when elems <> [] && List.for_all (fun e -> id_of_arr_elem e <> None) elems
      ->
        List.iter
          (fun e ->
            match id_of_arr_elem e with
            | Some id -> go (join path (Openmetrics.sanitize id)) e
            | None -> ())
          elems
    | Json.Arr _ | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
    | Json.Str _ ->
        leaf path v
  in
  go "" doc;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* --- judging one key ------------------------------------------------------ *)

let num v = Json.to_float_opt v

let pct delta = Printf.sprintf "%+.1f%%" (delta *. 100.)

let judge cls old_v new_v =
  let changed = Json.to_string old_v <> Json.to_string new_v in
  if not changed then (Ok, "=")
  else
    match cls with
    | Info -> (Changed, "changed")
    | Exact -> (
        match (old_v, new_v) with
        | Json.Bool true, Json.Bool false -> (Regressed, "true -> false")
        | Json.Bool false, Json.Bool true -> (Improved, "false -> true")
        | _ -> (Regressed, "exact key changed"))
    | Lower threshold | Higher threshold -> (
        match (num old_v, num new_v) with
        | Some o, Some n when o <> 0. ->
            let delta = (n -. o) /. Float.abs o in
            let worse =
              match cls with
              | Lower _ -> delta > threshold
              | _ -> delta < -.threshold
            in
            let better =
              match cls with
              | Lower _ -> delta < -.threshold
              | _ -> delta > threshold
            in
            if worse then (Regressed, pct delta)
            else if better then (Improved, pct delta)
            else (Ok, pct delta)
        | Some o, Some n ->
            (* old = 0: any nonzero new is a change; direction decides *)
            let worse =
              match cls with Lower _ -> n > o | _ -> n < o
            in
            if worse then (Regressed, "from 0") else (Improved, "from 0")
        | _ -> (Changed, "non-numeric"))

let diff ?threshold ~old_doc ~new_doc () =
  let olds = flatten old_doc and news = flatten new_doc in
  let rec merge olds news acc =
    match (olds, news) with
    | [], [] -> List.rev acc
    | (k, v) :: rest, [] ->
        merge rest []
          ({
             key = k;
             r_class = classify ?threshold k;
             r_old = Some v;
             r_new = None;
             r_verdict = Removed;
             r_note = "removed";
           }
          :: acc)
    | [], (k, v) :: rest ->
        merge [] rest
          ({
             key = k;
             r_class = classify ?threshold k;
             r_old = None;
             r_new = Some v;
             r_verdict = Added;
             r_note = "added";
           }
          :: acc)
    | (ko, vo) :: ro, (kn, vn) :: rn ->
        let c = String.compare ko kn in
        if c < 0 then
          merge ro news
            ({
               key = ko;
               r_class = classify ?threshold ko;
               r_old = Some vo;
               r_new = None;
               r_verdict = Removed;
               r_note = "removed";
             }
            :: acc)
        else if c > 0 then
          merge olds rn
            ({
               key = kn;
               r_class = classify ?threshold kn;
               r_old = None;
               r_new = Some vn;
               r_verdict = Added;
               r_note = "added";
             }
            :: acc)
        else
          let cls = classify ?threshold ko in
          let verdict, note = judge cls vo vn in
          merge ro rn
            ({
               key = ko;
               r_class = cls;
               r_old = Some vo;
               r_new = Some vn;
               r_verdict = verdict;
               r_note = note;
             }
            :: acc)
  in
  merge olds news []

let regressions rows =
  List.filter (fun r -> match r.r_verdict with Regressed -> true | _ -> false) rows

(* The deterministic subset — exact keys and zero-tolerance counts — safe
   to gate in CI without wall-clock flake. *)
let deterministic_regressions rows =
  List.filter
    (fun r ->
      match (r.r_verdict, r.r_class) with
      | Regressed, Exact | Regressed, Lower 0. -> true
      | _ -> false)
    rows

let exit_code rows = if regressions rows <> [] then 1 else 0

(* --- rendering ------------------------------------------------------------ *)

let value_repr = function
  | None -> "-"
  | Some v -> Json.to_string v

let to_table ?(all = false) rows =
  let shown =
    if all then rows
    else
      List.filter
        (fun r -> match r.r_verdict with Ok -> false | _ -> true)
        rows
  in
  let table =
    Vs_stats.Table.create
      ~title:
        (if all then "bench diff: all keys"
         else "bench diff: changed keys (regressions / improvements / churn)")
      ~columns:[ "key"; "old"; "new"; "delta"; "verdict" ]
  in
  let verdict_str = function
    | Ok -> "ok"
    | Improved -> "improved"
    | Regressed -> "REGRESSED"
    | Changed -> "changed"
    | Added -> "added"
    | Removed -> "removed"
  in
  List.iter
    (fun r ->
      Vs_stats.Table.add_row table
        [
          r.key;
          value_repr r.r_old;
          value_repr r.r_new;
          r.r_note;
          verdict_str r.r_verdict;
        ])
    shown;
  table

let summary rows =
  let count v =
    List.length
      (List.filter (fun r -> r.r_verdict = v) rows)
  in
  Printf.sprintf
    "bench diff: %d keys, %d regressed, %d improved, %d changed, %d \
     added, %d removed"
    (List.length rows) (count Regressed) (count Improved) (count Changed)
    (count Added) (count Removed)
