(** Regression diffing for the machine-readable [BENCH_*.json] artifacts.

    Flattens two documents to dotted key paths (arrays of records keyed by
    their ["id"]/["name"] field, so reordering produces no spurious diffs)
    and judges every leaf against a per-key-class threshold.  The CLI
    [vscli bench diff OLD NEW] exits with {!exit_code} — non-zero on any
    regression — which is the CI contract. *)

type cls =
  | Exact  (** no tolerance: bool false-ing or any change regresses *)
  | Lower of float  (** lower is better, relative tolerance *)
  | Higher of float  (** higher is better, relative tolerance *)
  | Info  (** reported, never gates *)

type verdict = Ok | Improved | Regressed | Changed | Added | Removed

type row = {
  key : string;
  r_class : cls;
  r_old : Json.t option;
  r_new : Json.t option;
  r_verdict : verdict;
  r_note : string;  (** relative delta or a short reason *)
}

val default_threshold : float
(** [0.20] — the relative tolerance for measured keys; wall-clock keys get
    {!wall_factor} times this. *)

val wall_factor : float

val classify : ?threshold:float -> string -> cls
(** Key-class rules: [zero_alloc*]/[gate_*] exact; [words_per_call]/
    [findings] zero-tolerance lower-better; [wall_*] wide-tolerance
    lower-better; [alloc_bytes]/[overhead_ratio] lower-better;
    [ops_per_wall_s]/[speedup] higher-better; all else informational. *)

val flatten : Json.t -> (string * Json.t) list
(** Dotted leaf paths, sorted. *)

val diff : ?threshold:float -> old_doc:Json.t -> new_doc:Json.t -> unit -> row list
(** Full keywise comparison, sorted by key. *)

val regressions : row list -> row list

val deterministic_regressions : row list -> row list
(** Regressions on [Exact] and zero-tolerance keys only — the flake-free
    subset the bench quick profile gates on. *)

val exit_code : row list -> int
(** [1] when any row regressed, else [0]. *)

val to_table : ?all:bool -> row list -> Vs_stats.Table.t
(** Changed keys only by default; [~all:true] includes unchanged rows. *)

val summary : row list -> string
