(* Happened-before DAG construction (see causal.mli for the edge model).

   One forward pass over the stream.  Matching state:

   - program order: last node id per process incarnation;
   - message edges: FIFO queue of unconsumed wire copies per
     (kind, src, dst node, identity) — [Send] and [Dup] push one copy,
     [Recv] and arrival-time [Drop]s pop one.  Destinations are keyed by
     node, not incarnation, because [send_node] records the pseudo-proc
     [n<dst>] (inc = -1) on the send side but the resolved incarnation on
     delivery;
   - barriers: the first [Propose] node and every [Flush] node per view id.

   All edges link an already-seen node to the current one, so the DAG is
   acyclic by construction; [validate] re-checks. *)

type edge_kind = Program | Message | Barrier

let edge_kind_to_string = function
  | Program -> "program"
  | Message -> "message"
  | Barrier -> "barrier"

type node = { id : int; time : float; event : Event.t }

type stats = {
  c_nodes : int;
  c_program_edges : int;
  c_message_edges : int;
  c_barrier_edges : int;
  c_orphan_recvs : int;
}

type t = {
  g_nodes : node array;
  g_preds : (int * edge_kind) list array;
  g_stats : stats;
  g_orphans : int list;
}

let nodes t = t.g_nodes

let preds t id = t.g_preds.(id)

let stats t = t.g_stats

let orphans t = t.g_orphans

(* The process whose program the event belongs to.  Environment events
   (partitions, healing, oracle verdicts, notes) belong to no program; an
   in-flight drop is nobody's action either — its causality is the message
   edge from the send that put the copy on the wire. *)
let actors (ev : Event.t) =
  match ev with
  | Event.Send { src; _ } | Event.Dup { src; _ } -> [ src ]
  | Event.Recv { dst; _ } -> [ dst ]
  | Event.Drop { src; reason; _ } ->
      (* Send-time drops are decided by (and charged to) the sender;
         arrival-time reasons have no acting process. *)
      if reason = "src-dead" || reason = "partition" || reason = "loss" then
        [ src ]
      else []
  | Event.Retransmit { proc; _ }
  | Event.Backoff { proc; _ }
  | Event.Suspect { proc; _ }
  | Event.Unsuspect { proc; _ }
  | Event.Propose { proc; _ }
  | Event.Flush { proc; _ }
  | Event.Install { proc; _ }
  | Event.Eview { proc; _ }
  | Event.Mode_change { proc; _ }
  | Event.Settle { proc; _ }
  | Event.Task_start { proc; _ }
  | Event.Task_done { proc; _ }
  | Event.Crash { proc }
  | Event.Corrupt { proc; _ } ->
      [ proc ]
  | Event.Partition _ | Event.Heal | Event.Quarantine _ | Event.Note _ -> []

let actor ev = match actors ev with p :: _ -> Some p | [] -> None

(* Wire-copy matching key.  [dst] by node (see header); identity rendered so
   the absent case ("-") cannot collide with a real [p0#3]. *)
let copy_key ~kind ~(src : Event.proc) ~dst_node ~(msg : Event.msg option) =
  let id = match msg with Some m -> Event.msg_to_string m | None -> "-" in
  String.concat "|"
    [ kind; Event.proc_to_string src; string_of_int dst_node; id ]

let of_entries (entries : Recorder.entry list) =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let g_nodes =
    Array.init n (fun i ->
        { id = i; time = arr.(i).Recorder.time; event = arr.(i).Recorder.event })
  in
  let g_preds = Array.make n [] in
  let p_edges = ref 0 and m_edges = ref 0 and b_edges = ref 0 in
  let add_edge kind src dst =
    g_preds.(dst) <- (src, kind) :: g_preds.(dst);
    match kind with
    | Program -> incr p_edges
    | Message -> incr m_edges
    | Barrier -> incr b_edges
  in
  (* last node per process incarnation *)
  let last_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* unconsumed wire copies per matching key, FIFO *)
  let pending : (string, int Queue.t) Hashtbl.t = Hashtbl.create 256 in
  (* first Propose node / all Flush nodes (reverse order) per vid *)
  let propose_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let flushes_of : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let rev_orphans = ref [] in
  let push_copy key i =
    let q =
      match Hashtbl.find_opt pending key with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace pending key q;
          q
    in
    Queue.push i q
  in
  let pop_copy key =
    match Hashtbl.find_opt pending key with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | Some _ | None -> None
  in
  Array.iteri
    (fun i (nd : node) ->
      (* program-order edge per acting process *)
      List.iter
        (fun p ->
          let k = Event.proc_to_string p in
          (match Hashtbl.find_opt last_of k with
          | Some j -> add_edge Program j i
          | None -> ());
          Hashtbl.replace last_of k i)
        (actors nd.event);
      match nd.event with
      | Event.Send { src; dst; kind; msg; _ } | Event.Dup { src; dst; kind; msg }
        ->
          push_copy (copy_key ~kind ~src ~dst_node:dst.Event.node ~msg) i
      | Event.Recv { src; dst; kind; msg } -> (
          match pop_copy (copy_key ~kind ~src ~dst_node:dst.Event.node ~msg) with
          | Some j -> add_edge Message j i
          | None -> rev_orphans := i :: !rev_orphans)
      | Event.Drop { src; dst; kind; reason; msg } ->
          (* Arrival-time drops consume the copy their send put on the wire;
             send-time drops never had one, and [pop_copy] returning [None]
             covers both a send-time reason and a truncated recording. *)
          if reason = "partition-inflight" || reason = "dst-dead" then (
            match pop_copy (copy_key ~kind ~src ~dst_node:dst.Event.node ~msg)
            with
            | Some j -> add_edge Message j i
            | None -> ())
      | Event.Propose { vid; _ } ->
          let vk = Event.vid_to_string vid in
          if not (Hashtbl.mem propose_of vk) then Hashtbl.replace propose_of vk i
      | Event.Flush { vid; _ } ->
          let vk = Event.vid_to_string vid in
          (match Hashtbl.find_opt propose_of vk with
          | Some j -> add_edge Barrier j i
          | None -> ());
          let prev =
            match Hashtbl.find_opt flushes_of vk with Some l -> l | None -> []
          in
          Hashtbl.replace flushes_of vk (i :: prev)
      | Event.Install { vid; _ } ->
          let vk = Event.vid_to_string vid in
          (match Hashtbl.find_opt propose_of vk with
          | Some j -> add_edge Barrier j i
          | None -> ());
          List.iter
            (fun j -> add_edge Barrier j i)
            (match Hashtbl.find_opt flushes_of vk with
            | Some l -> List.rev l
            | None -> [])
      | _ -> ())
    g_nodes;
  {
    g_nodes;
    g_preds;
    g_stats =
      {
        c_nodes = n;
        c_program_edges = !p_edges;
        c_message_edges = !m_edges;
        c_barrier_edges = !b_edges;
        c_orphan_recvs = List.length !rev_orphans;
      };
    g_orphans = List.rev !rev_orphans;
  }

let validate t =
  let n = Array.length t.g_nodes in
  let bad = ref None in
  Array.iteri
    (fun i ps ->
      List.iter
        (fun (j, _) ->
          if (j < 0 || j >= i) && !bad = None then bad := Some (j, i))
        ps)
    t.g_preds;
  match !bad with
  | Some (j, i) ->
      Error
        (Printf.sprintf "edge %d -> %d violates stream topological order" j i)
  | None ->
      (* Forward edges imply acyclicity, but re-verify with an explicit
         topological pass so the property holds even if construction ever
         changes: process ids in order, demanding every predecessor was
         already finished. *)
      let done_ = Array.make n false in
      let ok = ref true in
      for i = 0 to n - 1 do
        List.iter (fun (j, _) -> if not done_.(j) then ok := false) t.g_preds.(i);
        done_.(i) <- true
      done;
      if !ok then Ok () else Error "topological pass found an unfinished pred"

(* --- live collector ------------------------------------------------------- *)

type collector = { mutable rev : Recorder.entry list }

let collector () = { rev = [] }

let observe c ~time event = c.rev <- { Recorder.time; event } :: c.rev

let collector_entries c = List.rev c.rev

let of_collector c = of_entries (collector_entries c)
