(** Happened-before DAG over a recorded run — the causal half of vspath.

    Nodes are the recorded entries in stream order; edges are the three
    happened-before relations the paper's model admits:

    - {e program-order}: consecutive events of the same process (keyed by
      incarnation, so a rebirth starts a fresh chain);
    - {e message}: a wire [Send] (or its [Dup] extra copy) to the [Recv]
      that consumed that copy, matched FIFO per
      [(kind, src, dst node, (origin, seq))] — so retransmit payloads,
      [Wire.Batch] fan-out (one event per carried identity) and duplicated
      copies all resolve to distinct edges, and in-flight [Drop]s consume
      their copy like a delivery would;
    - {e barrier}: the view-install synchronisation — [Propose] to every
      [Flush] of the view, and every [Flush] (plus the [Propose]) to each
      [Install] of the view, mirroring "install waits for all flush-acks".

    Every edge points from an earlier stream index to a later one, so the
    graph is acyclic by construction; {!validate} re-checks the invariant
    and is what the property suite asserts. *)

type edge_kind = Program | Message | Barrier

val edge_kind_to_string : edge_kind -> string

type node = { id : int; time : float; event : Event.t }
(** [id] is the index in the recorded stream (0-based, oldest first). *)

type stats = {
  c_nodes : int;
  c_program_edges : int;
  c_message_edges : int;
  c_barrier_edges : int;
  c_orphan_recvs : int;
}

type t

val of_entries : Recorder.entry list -> t

val nodes : t -> node array

val preds : t -> int -> (int * edge_kind) list
(** Predecessors of node [id] (its happened-before frontier).  Order is not
    meaningful; consumers that need determinism pick by [(time, id)]. *)

val stats : t -> stats

val orphans : t -> int list
(** Node ids of [Recv] events with no matching send copy, in stream order.
    Empty on any complete Full-level recording — the no-orphan property the
    test suite checks under loss, duplication and batching. *)

val actor : Event.t -> Event.proc option
(** The process whose program the event belongs to — the sender of a wire
    event, the receiver of a delivery, the emitting process of a protocol
    event; [None] for environment events (partition, heal, oracle verdicts,
    notes) and in-flight drops. *)

val validate : t -> (unit, string) result
(** [Ok ()] iff every edge goes forward in stream order (which implies
    acyclicity, re-verified with a topological pass). *)

(** {2 Live collector}

    A {!Recorder.add_sink} tap that accumulates the stream as it is
    recorded, so a DAG can be built without re-reading the recorder (and so
    the bench can attach a causal collector while asserting the off-path
    send still allocates zero words). *)

type collector

val collector : unit -> collector

val observe : collector -> time:float -> Event.t -> unit
(** Shaped to pass directly to {!Recorder.add_sink}. *)

val collector_entries : collector -> Recorder.entry list
(** Everything observed so far, oldest first. *)

val of_collector : collector -> t
