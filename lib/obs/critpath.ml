(* Critical-path extraction (see critpath.mli for the model).

   The install decomposition is anchored on exactly the same scan as
   Stall.of_entries — first Propose per view, first own Flush per
   (proc, view), newest Flush per view, same clamping — so the
   flush-ack-wait and stability-wait components equal the vsmon stall
   attribution to the bit.  Only the propose phase [t_prop, t_self] is
   refined further, by the backward DAG walk. *)

module Hashtblx = Vs_util.Hashtblx

type seg_kind =
  | Local_compute
  | Network_flight
  | Retransmit_wait
  | Flush_ack_wait
  | Stability_wait
  | Suspect_timeout

let seg_kind_to_string = function
  | Local_compute -> "local-compute"
  | Network_flight -> "network-flight"
  | Retransmit_wait -> "retransmit-wait"
  | Flush_ack_wait -> "flush-ack-wait"
  | Stability_wait -> "stability-wait"
  | Suspect_timeout -> "suspect-timeout"

let all_seg_kinds =
  [
    Local_compute;
    Network_flight;
    Retransmit_wait;
    Flush_ack_wait;
    Stability_wait;
    Suspect_timeout;
  ]

let kind_index = function
  | Local_compute -> 0
  | Network_flight -> 1
  | Retransmit_wait -> 2
  | Flush_ack_wait -> 3
  | Stability_wait -> 4
  | Suspect_timeout -> 5

let n_kinds = List.length all_seg_kinds

type segment = {
  s_kind : seg_kind;
  s_from : float;
  s_until : float;
  s_proc : Event.proc;
  s_link : Event.proc option;
}

let seg_duration s = s.s_until -. s.s_from

let seg_owner s =
  match s.s_link with
  | None -> Event.proc_to_string s.s_proc
  | Some dst ->
      Event.proc_to_string s.s_proc ^ "->" ^ Event.proc_to_string dst

type install_path = {
  ip_proc : Event.proc;
  ip_vid : Event.vid;
  ip_install_time : float;
  ip_latency : float;
  ip_segments : segment list;
  ip_straggler : Event.proc option;
}

type view_row = {
  vr_vid : Event.vid;
  vr_installs : int;
  vr_latency : float;
  vr_kind_seconds : (seg_kind * float) list;
  vr_straggler : (Event.proc * float) option;
}

type op_stats = {
  o_ops : int;
  o_latency_total : float;
  o_latency_max : float;
  o_kind_seconds : (seg_kind * float) list;
  o_retransmit_delayed : int;
  o_slowest : (Event.msg * float) option;
}

type t = {
  installs : install_path list;
  views : view_row list;
  ops : op_stats;
  straggler : (Event.proc * float) option;
}

(* --- backward walk -------------------------------------------------------- *)

(* Latest-finishing predecessor: max time, ties to the max stream id —
   deterministic whatever order edges were registered in. *)
let best_pred dag cur =
  let nodes = Causal.nodes dag in
  List.fold_left
    (fun best (j, k) ->
      match best with
      | None -> Some (j, k)
      | Some (j', _) ->
          let c =
            Float.compare nodes.(j).Causal.time nodes.(j').Causal.time
          in
          if c > 0 || (c = 0 && j > j') then Some (j, k) else best)
    None (Causal.preds dag cur)

let classify dag ~cur ~pred ~edge ~s_from ~s_until ~fallback =
  let nodes = Causal.nodes dag in
  let owner_of ev =
    match Causal.actor ev with Some p -> p | None -> fallback
  in
  match (edge : Causal.edge_kind) with
  | Causal.Message -> (
      (* [cur] consumed a wire copy; the hop is charged to the sender. *)
      match nodes.(cur).Causal.event with
      | Event.Recv { src; dst; kind; _ } | Event.Drop { src; dst; kind; _ } ->
          let s_kind =
            if kind = "retransmit" then Retransmit_wait else Network_flight
          in
          { s_kind; s_from; s_until; s_proc = src; s_link = Some dst }
      | ev ->
          {
            s_kind = Network_flight;
            s_from;
            s_until;
            s_proc = owner_of ev;
            s_link = None;
          })
  | Causal.Barrier -> (
      match nodes.(pred).Causal.event with
      | Event.Flush { proc; _ } ->
          (* Waiting on [proc]'s flush-ack to clear the sync barrier. *)
          { s_kind = Flush_ack_wait; s_from; s_until; s_proc = proc; s_link = None }
      | ev ->
          (* Propose -> Flush: the member draining and flushing — its own
             work, not a wait on anyone else. *)
          ignore ev;
          {
            s_kind = Local_compute;
            s_from;
            s_until;
            s_proc = owner_of nodes.(cur).Causal.event;
            s_link = None;
          })
  | Causal.Program -> (
      match nodes.(pred).Causal.event with
      | Event.Suspect { proc; _ } ->
          (* The gap after a suspicion is the detector timeout driving the
             change. *)
          { s_kind = Suspect_timeout; s_from; s_until; s_proc = proc; s_link = None }
      | ev ->
          {
            s_kind = Local_compute;
            s_from;
            s_until;
            s_proc = owner_of ev;
            s_link = None;
          })

(* Chronological segments tiling [stop_time, time(start)] exactly: the
   recorded stream is time-ordered, so every predecessor's timestamp is <=
   the current node's and consecutive segments share their boundary. *)
let walk dag ~stop_time ~start ~fallback =
  let nodes = Causal.nodes dag in
  let rec go cur acc =
    let tcur = nodes.(cur).Causal.time in
    if tcur <= stop_time then acc
    else
      match best_pred dag cur with
      | None ->
          (* Frontier root inside the window: residual local work. *)
          let p =
            match Causal.actor nodes.(cur).Causal.event with
            | Some p -> p
            | None -> fallback
          in
          {
            s_kind = Local_compute;
            s_from = stop_time;
            s_until = tcur;
            s_proc = p;
            s_link = None;
          }
          :: acc
      | Some (j, edge) ->
          let tj = nodes.(j).Causal.time in
          let s_from = Float.max stop_time tj in
          let acc =
            if tcur > s_from then
              classify dag ~cur ~pred:j ~edge ~s_from ~s_until:tcur ~fallback
              :: acc
            else acc
          in
          go j acc
  in
  go start []

(* --- charge bookkeeping --------------------------------------------------- *)

let charge tbl (p : Event.proc) seconds =
  let prev =
    match Hashtbl.find_opt tbl p with Some c -> c | None -> 0.
  in
  Hashtbl.replace tbl p (prev +. seconds)

let charge_segments tbl segs =
  List.iter (fun s -> charge tbl s.s_proc (seg_duration s)) segs

(* Deterministic argmax: bindings sorted by proc, strict improvement keeps
   the smallest process on ties. *)
let top_charge tbl =
  List.fold_left
    (fun best (p, c) ->
      match best with
      | Some (_, c') when c <= c' -> best
      | _ -> Some (p, c))
    None
    (Hashtblx.sorted_bindings ~cmp:Event.compare_proc tbl)

let kind_sums segs =
  let a = Array.make n_kinds 0. in
  List.iter
    (fun s -> a.(kind_index s.s_kind) <- a.(kind_index s.s_kind) +. seg_duration s)
    segs;
  a

let kind_list a = List.map (fun k -> (k, a.(kind_index k))) all_seg_kinds

(* --- the full analysis ---------------------------------------------------- *)

let of_dag dag =
  let nodes = Causal.nodes dag in
  let n = Array.length nodes in
  (* Stall-identical anchors, plus the node ids the walks start from. *)
  let proposed : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let self_flush : (string, float * int) Hashtbl.t = Hashtbl.create 32 in
  let last_flush : (string, float * Event.proc) Hashtbl.t = Hashtbl.create 16 in
  (* per-op endpoints: first Send node, last Recv node *)
  let op_first : (Event.msg, float * int) Hashtbl.t = Hashtbl.create 256 in
  let op_last : (Event.msg, float * int) Hashtbl.t = Hashtbl.create 256 in
  let global_charges : (Event.proc, float) Hashtbl.t = Hashtbl.create 16 in
  let per_view : (Event.vid, view_row * (Event.proc, float) Hashtbl.t) Hashtbl.t
      =
    Hashtbl.create 16
  in
  let rev_installs = ref [] in
  for i = 0 to n - 1 do
    let time = nodes.(i).Causal.time in
    match nodes.(i).Causal.event with
    | Event.Propose { vid; _ } ->
        let vk = Event.vid_to_string vid in
        if not (Hashtbl.mem proposed vk) then Hashtbl.replace proposed vk time
    | Event.Flush { proc; vid; _ } ->
        let vk = Event.vid_to_string vid in
        let sk = Event.proc_to_string proc ^ "|" ^ vk in
        if not (Hashtbl.mem self_flush sk) then
          Hashtbl.replace self_flush sk (time, i);
        Hashtbl.replace last_flush vk (time, proc)
    | Event.Install { proc; vid; _ } -> (
        let vk = Event.vid_to_string vid in
        match Hashtbl.find_opt proposed vk with
        | None -> () (* truncated recording: no propose retained *)
        | Some t_prop ->
            let t_install = time in
            let sk = Event.proc_to_string proc ^ "|" ^ vk in
            let t_self_raw, flush_node =
              match Hashtbl.find_opt self_flush sk with
              | Some (t, j) -> (t, Some j)
              | None -> (t_prop, None)
            in
            let t_last_raw, last_proc =
              match Hashtbl.find_opt last_flush vk with
              | Some (t, p) -> (max t t_self_raw, Some p)
              | None -> (t_self_raw, None)
            in
            let clamp x = min t_install (max t_prop x) in
            let t_self = clamp t_self_raw in
            let t_last = max (clamp t_last_raw) t_self in
            (* propose phase: refined by the DAG walk from the installer's
               own flush-ack (single local segment when there is none or the
               clamp moved the anchor) *)
            let propose_segs =
              if t_self <= t_prop then []
              else
                match flush_node with
                | Some j when t_self = t_self_raw ->
                    walk dag ~stop_time:t_prop ~start:j ~fallback:proc
                | Some _ | None ->
                    [
                      {
                        s_kind = Local_compute;
                        s_from = t_prop;
                        s_until = t_self;
                        s_proc = proc;
                        s_link = None;
                      };
                    ]
            in
            let flush_segs =
              if t_last <= t_self then []
              else
                [
                  {
                    s_kind = Flush_ack_wait;
                    s_from = t_self;
                    s_until = t_last;
                    s_proc =
                      (match last_proc with Some p -> p | None -> proc);
                    s_link = None;
                  };
                ]
            in
            let stability_segs =
              if t_install <= t_last then []
              else
                [
                  {
                    s_kind = Stability_wait;
                    s_from = t_last;
                    s_until = t_install;
                    (* the coordinator's stability decision + install
                       delivery *)
                    s_proc = vid.Event.proposer;
                    s_link = None;
                  };
                ]
            in
            let segs = propose_segs @ flush_segs @ stability_segs in
            let charges : (Event.proc, float) Hashtbl.t = Hashtbl.create 8 in
            charge_segments charges segs;
            charge_segments global_charges segs;
            let ip =
              {
                ip_proc = proc;
                ip_vid = vid;
                ip_install_time = t_install;
                ip_latency = t_install -. t_prop;
                ip_segments = segs;
                ip_straggler =
                  (match top_charge charges with
                  | Some (p, _) -> Some p
                  | None -> None);
              }
            in
            rev_installs := ip :: !rev_installs;
            let row, vcharges =
              match Hashtbl.find_opt per_view vid with
              | Some rc -> rc
              | None ->
                  ( {
                      vr_vid = vid;
                      vr_installs = 0;
                      vr_latency = 0.;
                      vr_kind_seconds = [];
                      vr_straggler = None;
                    },
                    Hashtbl.create 8 )
            in
            charge_segments vcharges segs;
            let sums = kind_sums segs in
            let merged =
              match row.vr_kind_seconds with
              | [] -> kind_list sums
              | prev ->
                  List.map2
                    (fun (k, v) (_, v') -> (k, v +. v'))
                    prev (kind_list sums)
            in
            Hashtbl.replace per_view vid
              ( {
                  row with
                  vr_installs = row.vr_installs + 1;
                  vr_latency = row.vr_latency +. ip.ip_latency;
                  vr_kind_seconds = merged;
                },
                vcharges ))
    | Event.Send { msg = Some m; _ } ->
        if not (Hashtbl.mem op_first m) then Hashtbl.replace op_first m (time, i)
    | Event.Recv { msg = Some m; _ } -> Hashtbl.replace op_last m (time, i)
    | _ -> ()
  done;
  let installs = List.rev !rev_installs in
  let views =
    List.map
      (fun (_, (row, vcharges)) ->
        { row with vr_straggler = top_charge vcharges })
      (Hashtblx.sorted_bindings ~cmp:Event.compare_vid per_view)
  in
  (* per-op walks, aggregated in identity order *)
  let op_kind = Array.make n_kinds 0. in
  let o_ops = ref 0 in
  let o_total = ref 0. in
  let o_max = ref 0. in
  let o_retrans = ref 0 in
  let o_slowest = ref None in
  List.iter
    (fun (m, (t_send, _)) ->
      match Hashtbl.find_opt op_last m with
      | None -> () (* never delivered: no applied op to attribute *)
      | Some (t_recv, last_node) ->
          let latency = t_recv -. t_send in
          let segs =
            walk dag ~stop_time:t_send ~start:last_node
              ~fallback:m.Event.origin
          in
          let sums = kind_sums segs in
          Array.iteri (fun k v -> op_kind.(k) <- op_kind.(k) +. v) sums;
          incr o_ops;
          o_total := !o_total +. latency;
          if sums.(kind_index Retransmit_wait) > 0. then incr o_retrans;
          if latency > !o_max then begin
            o_max := latency;
            o_slowest := Some (m, latency)
          end)
    (Hashtblx.sorted_bindings ~cmp:Event.compare_msg op_first);
  {
    installs;
    views;
    ops =
      {
        o_ops = !o_ops;
        o_latency_total = !o_total;
        o_latency_max = !o_max;
        o_kind_seconds = kind_list op_kind;
        o_retransmit_delayed = !o_retrans;
        o_slowest = !o_slowest;
      };
    straggler = top_charge global_charges;
  }

let of_entries entries = of_dag (Causal.of_entries entries)

let path_sum ip =
  List.fold_left (fun acc s -> acc +. seg_duration s) 0. ip.ip_segments

(* Segment sums are telescoping float sums, so "exact" means within a
   relative 1e-9 — the same tolerance the test suite asserts with. *)
let default_tol = 1e-9

let close ~tol a b =
  Float.abs (a -. b)
  <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let kind_seconds t =
  let a = Array.make n_kinds 0. in
  List.iter
    (fun ip ->
      List.iter
        (fun s ->
          a.(kind_index s.s_kind) <- a.(kind_index s.s_kind) +. seg_duration s)
        ip.ip_segments)
    t.installs;
  kind_list a

let consistent_with_stall ?(tol = default_tol) t attrs =
  let sums_ok =
    List.for_all (fun ip -> close ~tol (path_sum ip) ip.ip_latency) t.installs
  in
  let kind k =
    List.fold_left
      (fun acc (k', v) -> if k' = k then acc +. v else acc)
      0. (kind_seconds t)
  in
  let flush_attr, stab_attr =
    List.fold_left
      (fun (f, s) (a : Stall.attr) ->
        (f +. a.Stall.a_flush_wait, s +. a.Stall.a_stability_wait))
      (0., 0.) attrs
  in
  sums_ok
  && close ~tol (kind Flush_ack_wait) flush_attr
  && close ~tol (kind Stability_wait) stab_attr

(* --- rendering ------------------------------------------------------------ *)

let straggler_repr = function
  | None -> "-"
  | Some (p, c) ->
      Printf.sprintf "%s (%.4fs)" (Event.proc_to_string p) c

let to_table t =
  let table =
    Vs_stats.Table.create
      ~title:
        "critical path: per-view install latency decomposition (seconds on \
         the path)"
      ~columns:
        ([ "view"; "installs"; "latency (s)" ]
        @ List.map seg_kind_to_string all_seg_kinds
        @ [ "straggler" ])
  in
  List.iter
    (fun vr ->
      Vs_stats.Table.add_row table
        ([
           Event.vid_to_string vr.vr_vid;
           Vs_stats.Table.fint vr.vr_installs;
           Vs_stats.Table.ffloat ~decimals:4 vr.vr_latency;
         ]
        @ List.map
            (fun (_, v) -> Vs_stats.Table.ffloat ~decimals:4 v)
            vr.vr_kind_seconds
        @ [ straggler_repr vr.vr_straggler ]))
    t.views;
  table

let kind_fields sums =
  List.map
    (fun (k, v) -> (seg_kind_to_string k, Json.Float v))
    sums

let segment_json s =
  Json.Obj
    [
      ("kind", Json.Str (seg_kind_to_string s.s_kind));
      ("from", Json.Float s.s_from);
      ("until", Json.Float s.s_until);
      ("seconds", Json.Float (seg_duration s));
      ("owner", Json.Str (seg_owner s));
    ]

let install_json ip =
  Json.Obj
    [
      ("proc", Json.Str (Event.proc_to_string ip.ip_proc));
      ("view", Json.Str (Event.vid_to_string ip.ip_vid));
      ("time", Json.Float ip.ip_install_time);
      ("latency_s", Json.Float ip.ip_latency);
      ( "straggler",
        match ip.ip_straggler with
        | Some p -> Json.Str (Event.proc_to_string p)
        | None -> Json.Null );
      ("segments", Json.Arr (List.map segment_json ip.ip_segments));
    ]

let view_json vr =
  Json.Obj
    ([
       ("id", Json.Str (Event.vid_to_string vr.vr_vid));
       ("installs", Json.Int vr.vr_installs);
       ("latency_s", Json.Float vr.vr_latency);
     ]
    @ kind_fields vr.vr_kind_seconds
    @ [
        ( "straggler",
          match vr.vr_straggler with
          | Some (p, _) -> Json.Str (Event.proc_to_string p)
          | None -> Json.Null );
        ( "straggler_s",
          match vr.vr_straggler with
          | Some (_, c) -> Json.Float c
          | None -> Json.Null );
      ])

let ops_json o =
  Json.Obj
    ([
       ("ops", Json.Int o.o_ops);
       ("latency_total_s", Json.Float o.o_latency_total);
       ("latency_max_s", Json.Float o.o_latency_max);
       ("retransmit_delayed", Json.Int o.o_retransmit_delayed);
       ( "slowest",
         match o.o_slowest with
         | Some (m, _) -> Json.Str (Event.msg_to_string m)
         | None -> Json.Null );
     ]
    @ kind_fields o.o_kind_seconds)

let to_json t =
  Json.Obj
    [
      ("views", Json.Arr (List.map view_json t.views));
      ("installs", Json.Arr (List.map install_json t.installs));
      ("ops", ops_json t.ops);
      ( "straggler",
        match t.straggler with
        | Some (p, _) -> Json.Str (Event.proc_to_string p)
        | None -> Json.Null );
      ( "straggler_s",
        match t.straggler with
        | Some (_, c) -> Json.Float c
        | None -> Json.Null );
    ]
