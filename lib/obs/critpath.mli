(** Critical-path extraction over the happened-before DAG (vspath).

    For every [Install] the view's latency window [t_propose, t_install] is
    decomposed into typed, contiguous segments by walking the DAG backwards
    from the installer's own flush-ack, always following the
    latest-finishing predecessor — the classic critical-path rule.  The
    flush-ack-wait and stability-wait phases reuse the exact anchors of
    {!Stall.of_entries} (same clamping), so the per-phase components agree
    with the vsmon stall attribution on the same recording by construction.

    Applied ops get the same treatment: for each [(origin, seq)] identity
    the walk runs backwards from its last delivery to its first wire send,
    and the per-op results are aggregated (the per-op paths are too many to
    keep, the distribution is what matters).

    Every segment is charged to a process (local work, waits) or a link
    (wire flight, charged to the sender); the per-view {e straggler} is the
    process with the largest summed charge across that view's install
    paths — the process whose removal would shorten the path most. *)

type seg_kind =
  | Local_compute
  | Network_flight
  | Retransmit_wait
  | Flush_ack_wait
  | Stability_wait
  | Suspect_timeout

val seg_kind_to_string : seg_kind -> string
(** ["local-compute"], ["network-flight"], ["retransmit-wait"],
    ["flush-ack-wait"], ["stability-wait"], ["suspect-timeout"]. *)

val all_seg_kinds : seg_kind list

type segment = {
  s_kind : seg_kind;
  s_from : float;
  s_until : float;
  s_proc : Event.proc;  (** the charged process *)
  s_link : Event.proc option;
      (** [Some dst] when the segment is a wire hop [s_proc -> dst] *)
}

val seg_duration : segment -> float

val seg_owner : segment -> string
(** ["p2"] or ["p0->p2"]. *)

type install_path = {
  ip_proc : Event.proc;
  ip_vid : Event.vid;
  ip_install_time : float;
  ip_latency : float;  (** [t_install - t_propose] *)
  ip_segments : segment list;
      (** chronological and contiguous over the latency window, so segment
          durations sum to [ip_latency] (up to float telescoping) *)
  ip_straggler : Event.proc option;
      (** largest summed charge on this install's path *)
}

type view_row = {
  vr_vid : Event.vid;
  vr_installs : int;
  vr_latency : float;  (** summed across installs *)
  vr_kind_seconds : (seg_kind * float) list;  (** every kind, fixed order *)
  vr_straggler : (Event.proc * float) option;
      (** process, summed charged seconds *)
}

type op_stats = {
  o_ops : int;  (** identities with at least one delivery *)
  o_latency_total : float;  (** sum of (last recv - first send) *)
  o_latency_max : float;
  o_kind_seconds : (seg_kind * float) list;
  o_retransmit_delayed : int;
      (** ops whose critical path crossed a retransmit hop *)
  o_slowest : (Event.msg * float) option;
}

type t = {
  installs : install_path list;  (** install-time order *)
  views : view_row list;  (** sorted by view id *)
  ops : op_stats;
  straggler : (Event.proc * float) option;  (** across all install paths *)
}

val of_dag : Causal.t -> t

val of_entries : Recorder.entry list -> t

val kind_seconds : t -> (seg_kind * float) list
(** Summed across all install paths, every kind present, fixed order. *)

val path_sum : install_path -> float
(** Summed segment durations — equals [ip_latency] up to float
    telescoping. *)

val default_tol : float
(** The relative tolerance absorbing float telescoping (1e-9). *)

val close : tol:float -> float -> float -> bool
(** Relative closeness at [tol] (absolute below 1.0) — the comparison
    {!consistent_with_stall} and the property suite share. *)

val consistent_with_stall : ?tol:float -> t -> Stall.attr list -> bool
(** The cross-check the bench gate and the property suite assert: every
    install path's segments sum to its latency, and the summed
    flush-ack-wait / stability-wait components equal the {!Stall}
    attribution of the same recording.  [tol] (default 1e-9) is the
    relative tolerance absorbing float telescoping. *)

val to_table : t -> Vs_stats.Table.t
(** Per-view decomposition table. *)

val to_json : t -> Json.t
