(* The typed event schema.  Sits below lib/sim in the dependency order, so
   processes and view identifiers are mirrored as plain records here; the
   protocol layers convert with Proc_id.to_obs / View.Id.to_obs at the
   emission site. *)

type proc = { node : int; inc : int }

type vid = { epoch : int; proposer : proc }

let proc_to_string p =
  if p.inc < 0 then Printf.sprintf "n%d" p.node
  else if p.inc = 0 then Printf.sprintf "p%d" p.node
  else Printf.sprintf "p%d.%d" p.node p.inc

let proc_of_string s =
  let len = String.length s in
  if len < 2 then None
  else
    let rest = String.sub s 1 (len - 1) in
    match s.[0] with
    | 'n' ->
        Option.map (fun node -> { node; inc = -1 }) (int_of_string_opt rest)
    | 'p' -> (
        match String.index_opt rest '.' with
        | None -> Option.map (fun node -> { node; inc = 0 }) (int_of_string_opt rest)
        | Some i -> (
            let node_s = String.sub rest 0 i in
            let inc_s = String.sub rest (i + 1) (String.length rest - i - 1) in
            match (int_of_string_opt node_s, int_of_string_opt inc_s) with
            | Some node, Some inc when inc >= 0 -> Some { node; inc }
            | _ -> None))
    | _ -> None

let vid_to_string v =
  Printf.sprintf "v%d@%s" v.epoch (proc_to_string v.proposer)

let vid_of_string s =
  let len = String.length s in
  if len < 2 || s.[0] <> 'v' then None
  else
    match String.index_opt s '@' with
    | None -> None
    | Some i -> (
        let epoch_s = String.sub s 1 (i - 1) in
        let proc_s = String.sub s (i + 1) (len - i - 1) in
        match (int_of_string_opt epoch_s, proc_of_string proc_s) with
        | Some epoch, Some proposer -> Some { epoch; proposer }
        | _ -> None)

type msg = { origin : proc; mseq : int }

let msg_to_string m = Printf.sprintf "%s#%d" (proc_to_string m.origin) m.mseq

let msg_of_string s =
  match String.index_opt s '#' with
  | None -> None
  | Some i -> (
      let proc_s = String.sub s 0 i in
      let seq_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (proc_of_string proc_s, int_of_string_opt seq_s) with
      | Some origin, Some mseq when mseq >= 0 -> Some { origin; mseq }
      | _ -> None)

let compare_proc a b =
  match Int.compare a.node b.node with
  | 0 -> Int.compare a.inc b.inc
  | c -> c

let compare_vid a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> compare_proc a.proposer b.proposer
  | c -> c

let compare_msg a b =
  match compare_proc a.origin b.origin with
  | 0 -> Int.compare a.mseq b.mseq
  | c -> c

type t =
  | Send of {
      src : proc;
      dst : proc;
      kind : string;
      bytes : int;
      msg : msg option;
    }
  | Recv of { src : proc; dst : proc; kind : string; msg : msg option }
  | Drop of {
      src : proc;
      dst : proc;
      kind : string;
      reason : string;
      msg : msg option;
    }
  | Dup of { src : proc; dst : proc; kind : string; msg : msg option }
  | Retransmit of { proc : proc; origin : proc; count : int; peer : bool }
  | Backoff of { proc : proc; dst : proc; attempt : int; delay : float }
  | Suspect of { proc : proc; peer : proc }
  | Unsuspect of { proc : proc; peer : proc }
  | Propose of { proc : proc; vid : vid; members : proc list }
  | Flush of { proc : proc; vid : vid; seen : int }
  | Install of { proc : proc; vid : vid; members : proc list; sync : int }
  | Eview of {
      proc : proc;
      vid : vid;
      eseq : int;
      cause : string;
      subviews : int;
      svsets : int;
    }
  | Mode_change of {
      proc : proc;
      from_mode : string;
      into_mode : string;
      cause : string;
    }
  | Settle of {
      proc : proc;
      vid : vid;
      transfer : bool;
      creation : string;
      merging : bool;
      clusters : int;
    }
  | Task_start of { proc : proc; task : string; vid : vid }
  | Task_done of { proc : proc; task : string; vid : vid }
  | Crash of { proc : proc }
  | Partition of { components : int list list }
  | Heal
  | Corrupt of { proc : proc; field : string; detail : string }
  | Quarantine of {
      bound : int;
      opened : float;
      cut : float;
      views : int;
      quarantined : int;
    }
  | Note of { component : string; message : string }

let component = function
  | Send _ | Recv _ | Drop _ | Dup _ | Crash _ | Partition _ | Heal
  | Corrupt _ ->
      "net"
  | Quarantine _ -> "harness"
  | Retransmit _ | Backoff _ -> "vsync"
  | Suspect _ | Unsuspect _ -> "fd"
  | Propose _ | Flush _ | Install _ -> "gms"
  | Eview _ -> "evs"
  | Mode_change _ | Settle _ -> "mode"
  | Task_start _ | Task_done _ -> "app"
  | Note { component = c; _ } -> c

let type_name = function
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Drop _ -> "drop"
  | Dup _ -> "dup"
  | Retransmit _ -> "retransmit"
  | Backoff _ -> "backoff"
  | Suspect _ -> "suspect"
  | Unsuspect _ -> "unsuspect"
  | Propose _ -> "propose"
  | Flush _ -> "flush"
  | Install _ -> "install"
  | Eview _ -> "eview"
  | Mode_change _ -> "mode"
  | Settle _ -> "settle"
  | Task_start _ -> "task-start"
  | Task_done _ -> "task-done"
  | Crash _ -> "crash"
  | Partition _ -> "partition"
  | Heal -> "heal"
  | Corrupt _ -> "corrupt"
  | Quarantine _ -> "quarantine"
  | Note _ -> "note"

let all_type_names =
  [
    "send"; "recv"; "drop"; "dup"; "retransmit"; "backoff"; "suspect";
    "unsuspect"; "propose"; "flush"; "install"; "eview"; "mode"; "settle";
    "task-start"; "task-done"; "crash"; "partition"; "heal"; "corrupt";
    "quarantine"; "note";
  ]

let members_to_string ms = String.concat "," (List.map proc_to_string ms)

(* " [p0#3]" when the payload carries a correlation identity, "" otherwise. *)
let msg_suffix = function
  | None -> ""
  | Some m -> " [" ^ msg_to_string m ^ "]"

let render = function
  | Send { src; dst; kind; bytes; msg } ->
      Printf.sprintf "send %s -> %s %s (%dB)%s" (proc_to_string src)
        (proc_to_string dst) kind bytes (msg_suffix msg)
  | Recv { src; dst; kind; msg } ->
      Printf.sprintf "recv %s -> %s %s%s" (proc_to_string src)
        (proc_to_string dst) kind (msg_suffix msg)
  | Drop { src; dst; kind; reason; msg } ->
      Printf.sprintf "drop %s -> %s %s (%s)%s" (proc_to_string src)
        (proc_to_string dst) kind reason (msg_suffix msg)
  | Dup { src; dst; kind; msg } ->
      Printf.sprintf "dup %s -> %s %s%s" (proc_to_string src)
        (proc_to_string dst) kind (msg_suffix msg)
  | Retransmit { proc; origin; count; peer } ->
      Printf.sprintf "%s retransmit %d of %s's stream%s" (proc_to_string proc)
        count (proc_to_string origin)
        (if peer then " (peer-served)" else "")
  | Backoff { proc; dst; attempt; delay } ->
      Printf.sprintf "%s retry -> %s attempt %d after %.4f"
        (proc_to_string proc) (proc_to_string dst) attempt delay
  | Suspect { proc; peer } ->
      Printf.sprintf "%s suspects %s" (proc_to_string proc)
        (proc_to_string peer)
  | Unsuspect { proc; peer } ->
      Printf.sprintf "%s trusts %s" (proc_to_string proc) (proc_to_string peer)
  | Propose { proc; vid; members } ->
      Printf.sprintf "%s propose %s {%s}" (proc_to_string proc)
        (vid_to_string vid) (members_to_string members)
  | Flush { proc; vid; seen } ->
      Printf.sprintf "%s flush-ack %s (%d seen)" (proc_to_string proc)
        (vid_to_string vid) seen
  | Install { proc; vid; members; sync } ->
      Printf.sprintf "%s install %s{%s} (+%d sync)" (proc_to_string proc)
        (vid_to_string vid) (members_to_string members) sync
  | Eview { proc; vid; eseq; cause; subviews; svsets } ->
      Printf.sprintf "%s eview %s#%d %s (%d subviews, %d sv-sets)"
        (proc_to_string proc) (vid_to_string vid) eseq cause subviews svsets
  | Mode_change { proc; from_mode; into_mode; cause } ->
      Printf.sprintf "%s %s: %s -> %s" (proc_to_string proc) cause from_mode
        into_mode
  | Settle { proc; vid; transfer; creation; merging; clusters } ->
      Printf.sprintf
        "%s settling in %s: transfer=%b creation=%s merging=%b clusters=%d"
        (proc_to_string proc) (vid_to_string vid) transfer creation merging
        clusters
  | Task_start { proc; task; vid } ->
      Printf.sprintf "%s %s start in %s" (proc_to_string proc) task
        (vid_to_string vid)
  | Task_done { proc; task; vid } ->
      Printf.sprintf "%s %s done in %s" (proc_to_string proc) task
        (vid_to_string vid)
  | Crash { proc } -> "crash " ^ proc_to_string proc
  | Partition { components } ->
      Printf.sprintf "partition [%s]"
        (String.concat " | "
           (List.map
              (fun nodes -> String.concat "," (List.map string_of_int nodes))
              components))
  | Heal -> "heal"
  | Corrupt { proc; field; detail } ->
      Printf.sprintf "corrupt %s %s (%s)" (proc_to_string proc) field detail
  | Quarantine { bound; opened; cut; views; quarantined } ->
      if cut < 0. then
        Printf.sprintf
          "quarantine open: %d/%d recovery views after transient faults \
           (opened t=%.3f, %d violation(s) quarantined)"
          views bound opened quarantined
      else
        Printf.sprintf
          "quarantine [%.3f, %.3f): %d views (bound %d), %d violation(s) \
           quarantined"
          opened cut views bound quarantined
  | Note { message; _ } -> message

(* Structural accessors for the read side (query / lineage / explain): every
   process, view and message identity an event mentions, in the order the
   payload states them. *)

let procs = function
  | Send { src; dst; _ } | Recv { src; dst; _ } | Drop { src; dst; _ }
  | Dup { src; dst; _ } ->
      [ src; dst ]
  | Retransmit { proc; origin; _ } -> [ proc; origin ]
  | Backoff { proc; dst; _ } -> [ proc; dst ]
  | Suspect { proc; peer } | Unsuspect { proc; peer } -> [ proc; peer ]
  | Propose { proc; members; _ } | Install { proc; members; _ } ->
      proc :: members
  | Flush { proc; _ } | Eview { proc; _ } | Mode_change { proc; _ }
  | Settle { proc; _ } | Task_start { proc; _ } | Task_done { proc; _ }
  | Crash { proc } | Corrupt { proc; _ } ->
      [ proc ]
  | Partition _ | Heal | Quarantine _ | Note _ -> []

let vids = function
  | Propose { vid; _ } | Flush { vid; _ } | Install { vid; _ }
  | Eview { vid; _ } | Settle { vid; _ } | Task_start { vid; _ }
  | Task_done { vid; _ } ->
      [ vid ]
  | Send _ | Recv _ | Drop _ | Dup _ | Retransmit _ | Backoff _ | Suspect _
  | Unsuspect _ | Mode_change _ | Crash _ | Partition _ | Heal | Corrupt _
  | Quarantine _ | Note _ ->
      []

let msg_of = function
  | Send { msg; _ } | Recv { msg; _ } | Drop { msg; _ } | Dup { msg; _ } -> msg
  | Retransmit _ | Backoff _ | Suspect _ | Unsuspect _ | Propose _ | Flush _
  | Install _ | Eview _ | Mode_change _ | Settle _ | Task_start _
  | Task_done _ | Crash _ | Partition _ | Heal | Corrupt _ | Quarantine _
  | Note _ ->
      None
