(** The typed observability event schema.

    This module sits {e below} [lib/sim] in the dependency order, so process
    and view identifiers are mirrored here as plain records ([proc], [vid]);
    the protocol layers convert at the emission site via [Proc_id.to_obs] and
    [View.Id.to_obs].  Every variant carries only immediate data — no
    closures, no views — so recording stays allocation-light and exporters
    can serialize without reaching back into protocol state. *)

type proc = { node : int; inc : int }
(** Mirror of [Proc_id.t].  [inc = -1] encodes a node-addressed destination
    (a [send_node] target whose live incarnation is resolved at delivery). *)

type vid = { epoch : int; proposer : proc }
(** Mirror of [View.Id.t]. *)

val proc_to_string : proc -> string
(** ["p3"], ["p3.1"], or ["n3"] for a node-addressed destination. *)

val proc_of_string : string -> proc option

val vid_to_string : vid -> string
(** ["v4@p2.1"]. *)

val vid_of_string : string -> vid option

type msg = { origin : proc; mseq : int }
(** Stable correlation identity of an application message: the original
    sender and its per-sender multicast index — the (origin, seq) pair the
    oracle also keys on.  Carried by data-path events whose payload wraps an
    application message, so one message can be followed through relays,
    retries, drops and duplicates. *)

val msg_to_string : msg -> string
(** ["p0#3"]. *)

val msg_of_string : string -> msg option

val compare_proc : proc -> proc -> int

val compare_vid : vid -> vid -> int

val compare_msg : msg -> msg -> int

type t =
  | Send of {
      src : proc;
      dst : proc;
      kind : string;
      bytes : int;
      msg : msg option;
    }
  | Recv of { src : proc; dst : proc; kind : string; msg : msg option }
  | Drop of {
      src : proc;
      dst : proc;
      kind : string;
      reason : string;
      msg : msg option;
    }
      (** [reason] is one of ["src-dead"], ["dst-dead"], ["partition"],
          ["loss"] (all decided at send time) or ["partition-inflight"],
          ["dst-dead"] at arrival time — a message already on the wire killed
          by a partition installed, or a crash happening, while it was in
          flight. *)
  | Dup of { src : proc; dst : proc; kind : string; msg : msg option }
  | Retransmit of { proc : proc; origin : proc; count : int; peer : bool }
      (** [proc] re-sent [count] messages of [origin]'s stream; [peer] when
          served by a peer rather than the original sender. *)
  | Backoff of { proc : proc; dst : proc; attempt : int; delay : float }
      (** Control-plane retry with exponential backoff. *)
  | Suspect of { proc : proc; peer : proc }
  | Unsuspect of { proc : proc; peer : proc }
  | Propose of { proc : proc; vid : vid; members : proc list }
  | Flush of { proc : proc; vid : vid; seen : int }
      (** Flush-ack sent while installing [vid]; [seen] is the size of the
          stability vector reported. *)
  | Install of { proc : proc; vid : vid; members : proc list; sync : int }
      (** View installation; [sync] counts messages delivered during the
          closing flush (the view-synchrony sync barrier). *)
  | Eview of {
      proc : proc;
      vid : vid;
      eseq : int;
      cause : string;
      subviews : int;
      svsets : int;
    }  (** EVS extended-view installation (Section 6). *)
  | Mode_change of {
      proc : proc;
      from_mode : string;
      into_mode : string;
      cause : string;
    }  (** NORMAL/REDUCED/SETTLING transition (Figure 1). *)
  | Settle of {
      proc : proc;
      vid : vid;
      transfer : bool;
      creation : string;
      merging : bool;
      clusters : int;
    }
      (** Section 4 classification at a settling view: state transfer needed,
          creation kind (["none"], ["rebirth"], ["in-progress"]), merging,
          and the S_R cluster count. *)
  | Task_start of { proc : proc; task : string; vid : vid }
  | Task_done of { proc : proc; task : string; vid : vid }
      (** State transfer / merge / creation work items. *)
  | Crash of { proc : proc }
  | Partition of { components : int list list }
  | Heal
  | Corrupt of { proc : proc; field : string; detail : string }
      (** Transient state corruption injected into [proc]: [field] is the
          stable name of the corrupted protocol field (["send_seq"],
          ["stable_vectors"], ["acked"], ["stream.next"]), [detail] the
          before/after rendering of the mutation. *)
  | Quarantine of {
      bound : int;
      opened : float;
      cut : float;
      views : int;
      quarantined : int;
    }
      (** Stabilization-oracle verdict window: violations between [opened]
          (the first transient fault) and [cut] (the first installation of
          the [bound]-th new view after the last fault) are quarantined as
          recovery noise; [cut = -1] means fewer than [bound] fresh views
          were installed.  [views] counts the fresh views, [quarantined]
          the violations attributed to the window. *)
  | Note of { component : string; message : string }
      (** Untyped escape hatch; carries legacy [Trace.record] calls. *)

val component : t -> string
(** The legacy trace component this event renders under ("net", "vsync",
    "fd", "gms", "evs", "mode", "app", "harness", or the [Note]
    component). *)

val type_name : t -> string
(** Stable wire name used by the JSONL schema. *)

val all_type_names : string list
(** Every value [type_name] can return; the @trace-schema guard checks the
    committed sample covers all of them. *)

val render : t -> string
(** Human-readable one-liner (no timestamp/component prefix). *)

(** {2 Structural accessors}

    Used by the read side ([Query] / [Lineage] / [Explain]) to slice a stream
    without matching on every variant. *)

val procs : t -> proc list
(** Every process the event mentions, in payload order (members included for
    [Propose]/[Install]). *)

val vids : t -> vid list
(** Every view identifier the event mentions. *)

val msg_of : t -> msg option
(** The correlation identity, for the data-path events that carry one. *)
