(* Failure attribution: turn a structured oracle violation into a minimal
   causal slice of the event stream plus derived lineage notes, rendered as
   deterministic text and canonical JSON.  Everything here is a pure function
   of (violation, stream), so explanations are byte-stable across runs —
   the @explain-corpus alias pins that down. *)

type property =
  | Agreement
  | Uniqueness
  | Integrity
  | Fifo
  | Total_order
  | Evs_total_order
  | Evs_structure
  | Evs_invariant
  | Stabilization

let property_key = function
  | Agreement -> "agreement"
  | Uniqueness -> "uniqueness"
  | Integrity -> "integrity"
  | Fifo -> "fifo"
  | Total_order -> "total-order"
  | Evs_total_order -> "evs-total-order"
  | Evs_structure -> "evs-structure"
  | Evs_invariant -> "evs-invariant"
  | Stabilization -> "stabilization"

let property_title = function
  | Agreement -> "agreement (Property 2.1)"
  | Uniqueness -> "uniqueness (Property 2.2)"
  | Integrity -> "integrity (Property 2.3)"
  | Fifo -> "per-sender fifo order"
  | Total_order -> "total order"
  | Evs_total_order -> "EVS total order (Property 6.1)"
  | Evs_structure -> "EVS view structure (Property 6.3)"
  | Evs_invariant -> "EVS run invariant"
  | Stabilization -> "stabilization (bounded recovery from transient faults)"

type violation = {
  property : property;
  msg : Event.msg option;
  procs : Event.proc list;
  vids : Event.vid list;
  detail : string;
}

type explanation = {
  violation : violation;
  notes : string list;
  slice : Recorder.entry list;
}

(* The slice: every data-path event of the offending message, the membership
   protocol traffic of the views involved, the view-protocol activity of the
   processes involved, and any fault events inside the window those events
   span.  This is the evidence set the oracle's verdict is a function of. *)
let slice_of ~entries (v : violation) =
  let open Query in
  let msg_q =
    match v.msg with Some m -> about_msg m | None -> none
  in
  let membership_q =
    any (List.map mentions_vid v.vids)
    &&& any (List.map of_type [ "propose"; "flush"; "install"; "settle"; "eview" ])
  in
  let proc_q =
    any (List.map mentions_proc v.procs)
    &&& any (List.map of_type [ "install"; "mode"; "crash" ])
  in
  let core = msg_q ||| membership_q ||| proc_q in
  let relevant = run core entries in
  match relevant with
  | [] -> []
  | first :: _ ->
      let t0 = first.Recorder.time in
      let t1 =
        List.fold_left (fun acc e -> Float.max acc e.Recorder.time) t0 relevant
      in
      let faults_q =
        any (List.map of_type [ "crash"; "partition"; "heal"; "corrupt" ])
        &&& between ~t0 ~t1
      in
      run (core ||| faults_q) entries

let notes_of ~(lineage : Lineage.t) (v : violation) =
  let msg_notes =
    match v.msg with
    | None -> []
    | Some m -> (
        match Lineage.lifecycle lineage m with
        | Some l -> [ Lineage.lifecycle_summary l ]
        | None ->
            [
              Printf.sprintf
                "%s: no data-path events recorded (stream below Full level?)"
                (Event.msg_to_string m);
            ])
  in
  let vid_notes =
    List.filter_map
      (fun vid ->
        List.find_opt
          (fun (n : Lineage.vnode) -> Event.compare_vid n.n_vid vid = 0)
          lineage.graph.vnodes
        |> Option.map (fun (n : Lineage.vnode) ->
               Printf.sprintf "%s: members {%s}, installed by {%s} from %.4f%s"
                 (Event.vid_to_string vid)
                 (String.concat ","
                    (List.map Event.proc_to_string n.n_members))
                 (String.concat ","
                    (List.map Event.proc_to_string n.n_installers))
                 n.n_first_install
                 (if n.n_clusters > 1 then
                    Printf.sprintf " (settled with %d clusters)" n.n_clusters
                  else "")))
      v.vids
  in
  let proc_notes =
    List.filter_map
      (fun p ->
        match Lineage.timeline lineage p with
        | None -> None
        | Some tl ->
            let views =
              match tl.Lineage.tl_views with
              | [] -> "no views installed"
              | vs ->
                  Printf.sprintf "views %s"
                    (String.concat " -> "
                       (List.map
                          (fun (sp : Lineage.view_span) ->
                            Event.vid_to_string sp.vs_vid)
                          vs))
            in
            let crash =
              match tl.Lineage.tl_crashed_at with
              | Some t -> Printf.sprintf ", crashed at %.4f" t
              | None -> ""
            in
            Some
              (Printf.sprintf "%s: %s%s" (Event.proc_to_string p) views crash))
      v.procs
  in
  msg_notes @ vid_notes @ proc_notes

let explain ~lineage ~entries v =
  { violation = v; notes = notes_of ~lineage v; slice = slice_of ~entries v }

(* ---------- rendering ---------- *)

let violation_header (v : violation) =
  let parts =
    [ Printf.sprintf "violated: %s" (property_title v.property) ]
    @ (match v.msg with
      | Some m -> [ Printf.sprintf "message: %s" (Event.msg_to_string m) ]
      | None -> [])
    @ (match v.procs with
      | [] -> []
      | ps ->
          [
            Printf.sprintf "processes: %s"
              (String.concat ", " (List.map Event.proc_to_string ps));
          ])
    @
    match v.vids with
    | [] -> []
    | vs ->
        [
          Printf.sprintf "views: %s"
            (String.concat ", " (List.map Event.vid_to_string vs));
        ]
  in
  String.concat "\n  " parts

let to_text (e : explanation) =
  let b = Buffer.create 512 in
  Buffer.add_string b (violation_header e.violation);
  Buffer.add_string b (Printf.sprintf "\n  detail: %s\n" e.violation.detail);
  List.iter (fun n -> Buffer.add_string b ("  note: " ^ n ^ "\n")) e.notes;
  Buffer.add_string b
    (Printf.sprintf "  causal slice (%d events):\n" (List.length e.slice));
  List.iter
    (fun (en : Recorder.entry) ->
      Buffer.add_string b
        (Printf.sprintf "    %.4f %-5s %s\n" en.time
           (Event.component en.event)
           (Event.render en.event)))
    e.slice;
  Buffer.contents b

let violation_json (v : violation) =
  Json.Obj
    ([
       ("property", Json.Str (property_key v.property));
       ("title", Json.Str (property_title v.property));
     ]
    @ (match v.msg with
      | Some m -> [ ("msg", Json.Str (Event.msg_to_string m)) ]
      | None -> [])
    @ [
        ( "procs",
          Json.Arr
            (List.map (fun p -> Json.Str (Event.proc_to_string p)) v.procs) );
        ( "vids",
          Json.Arr
            (List.map (fun v -> Json.Str (Event.vid_to_string v)) v.vids) );
        ("detail", Json.Str v.detail);
      ])

let to_json (e : explanation) =
  Json.Obj
    [
      ("violation", violation_json e.violation);
      ("notes", Json.Arr (List.map (fun n -> Json.Str n) e.notes));
      ( "slice",
        Json.Arr
          (List.map
             (fun (en : Recorder.entry) ->
               Json.Obj
                 (("t", Json.Float en.time)
                 :: ("c", Json.Str (Event.component en.event))
                 :: ("ev", Json.Str (Event.type_name en.event))
                 :: Export.fields_of_event en.event))
             e.slice) );
    ]
