(** Failure attribution over the event stream.

    An oracle produces structured {!violation}s (which property broke, for
    which message, which processes, which views); {!explain} pairs one with
    the minimal causal slice of the recorded stream — the data-path events
    of the offending message, the membership traffic of the views involved,
    and the faults inside that window — plus derived lineage notes.  Both
    renderings are deterministic functions of (violation, stream). *)

type property =
  | Agreement  (** Property 2.1 *)
  | Uniqueness  (** Property 2.2 *)
  | Integrity  (** Property 2.3 *)
  | Fifo
  | Total_order
  | Evs_total_order  (** Property 6.1 *)
  | Evs_structure  (** Property 6.3, [E_view.validate], well-formedness *)
  | Evs_invariant  (** harness-level EVS structural invariants *)
  | Stabilization
      (** bounded recovery from transient state corruption: a violation that
          persists after the stabilization oracle's recovery bound, or a run
          that never re-converges at all *)

val property_key : property -> string
(** Stable machine name (["agreement"], ["evs-structure"], …). *)

val property_title : property -> string
(** Human title naming the paper property (["agreement (Property 2.1)"]). *)

type violation = {
  property : property;
  msg : Event.msg option;  (** the offending message, when one exists *)
  procs : Event.proc list;  (** processes the verdict names *)
  vids : Event.vid list;  (** views the verdict names *)
  detail : string;  (** the oracle's one-line verdict, unchanged *)
}

type explanation = {
  violation : violation;
  notes : string list;
      (** derived facts: the message's lifecycle summary, the views'
          membership/installers, the processes' view sequences and crashes *)
  slice : Recorder.entry list;  (** chronological causal slice *)
}

val explain :
  lineage:Lineage.t -> entries:Recorder.entry list -> violation -> explanation

val to_text : explanation -> string
(** Multi-line indented block, newline-terminated. *)

val to_json : explanation -> Json.t
(** Canonical object: [violation], [notes], [slice] (schema-format events). *)

val violation_json : violation -> Json.t
