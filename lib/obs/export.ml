(* Exporters over a recorded event stream: deterministic JSONL (one object per
   line, fixed key order), Chrome trace_event JSON for Perfetto, and the
   parser used by the @trace-schema round-trip guard. *)

let proc_json p = Json.Str (Event.proc_to_string p)

let vid_json v = Json.Str (Event.vid_to_string v)

let members_json ms = Json.Arr (List.map proc_json ms)

(* The optional correlation identity always renders last, and only when
   present, so pre-identity streams stay byte-identical. *)
let with_msg fields = function
  | None -> fields
  | Some m -> fields @ [ ("msg", Json.Str (Event.msg_to_string m)) ]

(* Payload fields, in the fixed order the schema guarantees. *)
let fields_of_event (ev : Event.t) : (string * Json.t) list =
  match ev with
  | Send { src; dst; kind; bytes; msg } ->
      with_msg
        [
          ("src", proc_json src); ("dst", proc_json dst);
          ("kind", Json.Str kind); ("bytes", Json.Int bytes);
        ]
        msg
  | Recv { src; dst; kind; msg } ->
      with_msg
        [ ("src", proc_json src); ("dst", proc_json dst); ("kind", Json.Str kind) ]
        msg
  | Drop { src; dst; kind; reason; msg } ->
      with_msg
        [
          ("src", proc_json src); ("dst", proc_json dst);
          ("kind", Json.Str kind); ("reason", Json.Str reason);
        ]
        msg
  | Dup { src; dst; kind; msg } ->
      with_msg
        [ ("src", proc_json src); ("dst", proc_json dst); ("kind", Json.Str kind) ]
        msg
  | Retransmit { proc; origin; count; peer } ->
      [
        ("proc", proc_json proc); ("origin", proc_json origin);
        ("count", Json.Int count); ("peer", Json.Bool peer);
      ]
  | Backoff { proc; dst; attempt; delay } ->
      [
        ("proc", proc_json proc); ("dst", proc_json dst);
        ("attempt", Json.Int attempt); ("delay", Json.Float delay);
      ]
  | Suspect { proc; peer } ->
      [ ("proc", proc_json proc); ("peer", proc_json peer) ]
  | Unsuspect { proc; peer } ->
      [ ("proc", proc_json proc); ("peer", proc_json peer) ]
  | Propose { proc; vid; members } ->
      [
        ("proc", proc_json proc); ("vid", vid_json vid);
        ("members", members_json members);
      ]
  | Flush { proc; vid; seen } ->
      [ ("proc", proc_json proc); ("vid", vid_json vid); ("seen", Json.Int seen) ]
  | Install { proc; vid; members; sync } ->
      [
        ("proc", proc_json proc); ("vid", vid_json vid);
        ("members", members_json members); ("sync", Json.Int sync);
      ]
  | Eview { proc; vid; eseq; cause; subviews; svsets } ->
      [
        ("proc", proc_json proc); ("vid", vid_json vid);
        ("eseq", Json.Int eseq); ("cause", Json.Str cause);
        ("subviews", Json.Int subviews); ("svsets", Json.Int svsets);
      ]
  | Mode_change { proc; from_mode; into_mode; cause } ->
      [
        ("proc", proc_json proc); ("from", Json.Str from_mode);
        ("to", Json.Str into_mode); ("cause", Json.Str cause);
      ]
  | Settle { proc; vid; transfer; creation; merging; clusters } ->
      [
        ("proc", proc_json proc); ("vid", vid_json vid);
        ("transfer", Json.Bool transfer); ("creation", Json.Str creation);
        ("merging", Json.Bool merging); ("clusters", Json.Int clusters);
      ]
  | Task_start { proc; task; vid } ->
      [ ("proc", proc_json proc); ("task", Json.Str task); ("vid", vid_json vid) ]
  | Task_done { proc; task; vid } ->
      [ ("proc", proc_json proc); ("task", Json.Str task); ("vid", vid_json vid) ]
  | Crash { proc } -> [ ("proc", proc_json proc) ]
  | Partition { components } ->
      [
        ( "components",
          Json.Arr
            (List.map
               (fun nodes -> Json.Arr (List.map (fun n -> Json.Int n) nodes))
               components) );
      ]
  | Heal -> []
  | Corrupt { proc; field; detail } ->
      [
        ("proc", proc_json proc); ("field", Json.Str field);
        ("detail", Json.Str detail);
      ]
  | Quarantine { bound; opened; cut; views; quarantined } ->
      [
        ("bound", Json.Int bound); ("opened", Json.Float opened);
        ("cut", Json.Float cut); ("views", Json.Int views);
        ("quarantined", Json.Int quarantined);
      ]
  | Note { message; _ } -> [ ("msg", Json.Str message) ]

exception Decode of string

let get fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> raise (Decode ("missing field " ^ key))

let get_str fields key =
  match Json.to_string_opt (get fields key) with
  | Some s -> s
  | None -> raise (Decode ("field " ^ key ^ " not a string"))

let get_int fields key =
  match Json.to_int_opt (get fields key) with
  | Some i -> i
  | None -> raise (Decode ("field " ^ key ^ " not an int"))

let get_float fields key =
  match Json.to_float_opt (get fields key) with
  | Some f -> f
  | None -> raise (Decode ("field " ^ key ^ " not a number"))

let get_bool fields key =
  match Json.to_bool_opt (get fields key) with
  | Some b -> b
  | None -> raise (Decode ("field " ^ key ^ " not a bool"))

let get_proc fields key =
  match Event.proc_of_string (get_str fields key) with
  | Some p -> p
  | None -> raise (Decode ("field " ^ key ^ " not a process id"))

let get_vid fields key =
  match Event.vid_of_string (get_str fields key) with
  | Some v -> v
  | None -> raise (Decode ("field " ^ key ^ " not a view id"))

let get_msg_opt fields =
  match List.assoc_opt "msg" fields with
  | None -> None
  | Some j -> (
      match Option.bind (Json.to_string_opt j) Event.msg_of_string with
      | Some m -> Some m
      | None -> raise (Decode "field msg not a message id"))

let get_members fields key =
  match Json.to_list_opt (get fields key) with
  | None -> raise (Decode ("field " ^ key ^ " not a list"))
  | Some items ->
      List.map
        (fun item ->
          match Json.to_string_opt item with
          | None -> raise (Decode "member not a string")
          | Some s -> (
              match Event.proc_of_string s with
              | Some p -> p
              | None -> raise (Decode "member not a process id")))
        items

let event_of_fields ~type_name ~component fields : Event.t =
  match type_name with
  | "send" ->
      Send
        {
          src = get_proc fields "src"; dst = get_proc fields "dst";
          kind = get_str fields "kind"; bytes = get_int fields "bytes";
          msg = get_msg_opt fields;
        }
  | "recv" ->
      Recv
        {
          src = get_proc fields "src"; dst = get_proc fields "dst";
          kind = get_str fields "kind"; msg = get_msg_opt fields;
        }
  | "drop" ->
      Drop
        {
          src = get_proc fields "src"; dst = get_proc fields "dst";
          kind = get_str fields "kind"; reason = get_str fields "reason";
          msg = get_msg_opt fields;
        }
  | "dup" ->
      Dup
        {
          src = get_proc fields "src"; dst = get_proc fields "dst";
          kind = get_str fields "kind"; msg = get_msg_opt fields;
        }
  | "retransmit" ->
      Retransmit
        {
          proc = get_proc fields "proc"; origin = get_proc fields "origin";
          count = get_int fields "count"; peer = get_bool fields "peer";
        }
  | "backoff" ->
      Backoff
        {
          proc = get_proc fields "proc"; dst = get_proc fields "dst";
          attempt = get_int fields "attempt"; delay = get_float fields "delay";
        }
  | "suspect" ->
      Suspect { proc = get_proc fields "proc"; peer = get_proc fields "peer" }
  | "unsuspect" ->
      Unsuspect { proc = get_proc fields "proc"; peer = get_proc fields "peer" }
  | "propose" ->
      Propose
        {
          proc = get_proc fields "proc"; vid = get_vid fields "vid";
          members = get_members fields "members";
        }
  | "flush" ->
      Flush
        {
          proc = get_proc fields "proc"; vid = get_vid fields "vid";
          seen = get_int fields "seen";
        }
  | "install" ->
      Install
        {
          proc = get_proc fields "proc"; vid = get_vid fields "vid";
          members = get_members fields "members"; sync = get_int fields "sync";
        }
  | "eview" ->
      Eview
        {
          proc = get_proc fields "proc"; vid = get_vid fields "vid";
          eseq = get_int fields "eseq"; cause = get_str fields "cause";
          subviews = get_int fields "subviews"; svsets = get_int fields "svsets";
        }
  | "mode" ->
      Mode_change
        {
          proc = get_proc fields "proc"; from_mode = get_str fields "from";
          into_mode = get_str fields "to"; cause = get_str fields "cause";
        }
  | "settle" ->
      Settle
        {
          proc = get_proc fields "proc"; vid = get_vid fields "vid";
          transfer = get_bool fields "transfer";
          creation = get_str fields "creation";
          merging = get_bool fields "merging";
          clusters = get_int fields "clusters";
        }
  | "task-start" ->
      Task_start
        {
          proc = get_proc fields "proc"; task = get_str fields "task";
          vid = get_vid fields "vid";
        }
  | "task-done" ->
      Task_done
        {
          proc = get_proc fields "proc"; task = get_str fields "task";
          vid = get_vid fields "vid";
        }
  | "crash" -> Crash { proc = get_proc fields "proc" }
  | "partition" -> (
      match Json.to_list_opt (get fields "components") with
      | None -> raise (Decode "components not a list")
      | Some comps ->
          Partition
            {
              components =
                List.map
                  (fun comp ->
                    match Json.to_list_opt comp with
                    | None -> raise (Decode "component not a list")
                    | Some nodes ->
                        List.map
                          (fun n ->
                            match Json.to_int_opt n with
                            | Some i -> i
                            | None -> raise (Decode "node not an int"))
                          nodes)
                  comps;
            })
  | "heal" -> Heal
  | "corrupt" ->
      Corrupt
        {
          proc = get_proc fields "proc"; field = get_str fields "field";
          detail = get_str fields "detail";
        }
  | "quarantine" ->
      Quarantine
        {
          bound = get_int fields "bound"; opened = get_float fields "opened";
          cut = get_float fields "cut"; views = get_int fields "views";
          quarantined = get_int fields "quarantined";
        }
  | "note" -> Note { component; message = get_str fields "msg" }
  | other -> raise (Decode ("unknown event type " ^ other))

(* --- JSONL --------------------------------------------------------------- *)

let jsonl_of_entry (e : Recorder.entry) =
  Json.to_string
    (Json.Obj
       (("t", Json.Float e.time)
       :: ("c", Json.Str (Event.component e.event))
       :: ("ev", Json.Str (Event.type_name e.event))
       :: fields_of_event e.event))

let jsonl_of_entries entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (jsonl_of_entry e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let entry_of_jsonl line : (Recorder.entry, string) result =
  match Json.of_string line with
  | Error msg -> Error msg
  | Ok json -> (
      match json with
      | Json.Obj fields -> (
          try
            let time = get_float fields "t" in
            let component = get_str fields "c" in
            let type_name = get_str fields "ev" in
            let event = event_of_fields ~type_name ~component fields in
            Ok { Recorder.time; event }
          with Decode msg -> Error msg)
      | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
      | Json.Arr _ ->
          Error "line is not a JSON object")

let entries_of_jsonl text : (Recorder.entry list, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go acc idx = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.length (String.trim line) = 0 then go acc (idx + 1) rest
        else (
          match entry_of_jsonl line with
          | Ok e -> go (e :: acc) (idx + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" idx msg))
  in
  go [] 1 lines

(* --- Chrome trace_event -------------------------------------------------- *)

(* One pid for the whole cluster, one tid lane per node.  View installs,
   e-views, mode changes, suspicions, and faults render as instants; state
   transfer tasks and the flush->install window render as complete spans.
   Raw send/recv traffic is deliberately left out of the Chrome view (it
   drowns the lanes); use the JSONL stream for packet-level digging. *)
let chrome_of_entries ?(extra = []) entries =
  let us t = Json.Float (t *. 1e6) in
  let out = ref [] in
  let push ev = out := ev :: !out in
  let seen_nodes = Hashtbl.create 16 in
  let note_node (p : Event.proc) =
    if not (Hashtbl.mem seen_nodes p.node) then
      Hashtbl.replace seen_nodes p.node ()
  in
  let instant ~time ~(proc : Event.proc) ~name ~cat =
    note_node proc;
    push
      (Json.Obj
         [
           ("name", Json.Str name); ("cat", Json.Str cat); ("ph", Json.Str "i");
           ("ts", us time); ("pid", Json.Int 1); ("tid", Json.Int proc.node);
           ("s", Json.Str "t");
         ])
  in
  let span ~start ~stop ~(proc : Event.proc) ~name ~cat =
    note_node proc;
    push
      (Json.Obj
         [
           ("name", Json.Str name); ("cat", Json.Str cat); ("ph", Json.Str "X");
           ("ts", us start); ("dur", Json.Float ((stop -. start) *. 1e6));
           ("pid", Json.Int 1); ("tid", Json.Int proc.node);
         ])
  in
  let cluster_tid = 999 in
  let cluster_instant ~time ~name =
    push
      (Json.Obj
         [
           ("name", Json.Str name); ("cat", Json.Str "fault");
           ("ph", Json.Str "i"); ("ts", us time); ("pid", Json.Int 1);
           ("tid", Json.Int cluster_tid); ("s", Json.Str "p");
         ])
  in
  (* open flush windows keyed by "proc|vid", open tasks keyed by "proc|task" *)
  let open_flush : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let open_task : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Recorder.entry) ->
      let time = e.time in
      match e.event with
      | Event.Install { proc; vid; sync; _ } ->
          let key = Event.proc_to_string proc ^ "|" ^ Event.vid_to_string vid in
          (match Hashtbl.find_opt open_flush key with
          | Some start ->
              Hashtbl.remove open_flush key;
              span ~start ~stop:time ~proc
                ~name:("flush " ^ Event.vid_to_string vid)
                ~cat:"gms"
          | None -> ());
          instant ~time ~proc
            ~name:
              (Printf.sprintf "install %s (+%d sync)" (Event.vid_to_string vid)
                 sync)
            ~cat:"gms"
      | Event.Flush { proc; vid; _ } ->
          let key = Event.proc_to_string proc ^ "|" ^ Event.vid_to_string vid in
          if not (Hashtbl.mem open_flush key) then
            Hashtbl.replace open_flush key time
      | Event.Propose { proc; vid; _ } ->
          instant ~time ~proc
            ~name:("propose " ^ Event.vid_to_string vid)
            ~cat:"gms"
      | Event.Eview { proc; vid; eseq; cause; _ } ->
          instant ~time ~proc
            ~name:
              (Printf.sprintf "eview %s#%d %s" (Event.vid_to_string vid) eseq
                 cause)
            ~cat:"evs"
      | Event.Mode_change { proc; from_mode; into_mode; cause } ->
          instant ~time ~proc
            ~name:(Printf.sprintf "mode %s->%s (%s)" from_mode into_mode cause)
            ~cat:"mode"
      | Event.Settle { proc; vid; clusters; _ } ->
          instant ~time ~proc
            ~name:
              (Printf.sprintf "settle %s clusters=%d" (Event.vid_to_string vid)
                 clusters)
            ~cat:"mode"
      | Event.Task_start { proc; task; _ } ->
          let key = Event.proc_to_string proc ^ "|" ^ task in
          if not (Hashtbl.mem open_task key) then
            Hashtbl.replace open_task key time
      | Event.Task_done { proc; task; vid } ->
          let key = Event.proc_to_string proc ^ "|" ^ task in
          (match Hashtbl.find_opt open_task key with
          | Some start ->
              Hashtbl.remove open_task key;
              span ~start ~stop:time ~proc
                ~name:(Printf.sprintf "%s %s" task (Event.vid_to_string vid))
                ~cat:"app"
          | None ->
              instant ~time ~proc
                ~name:(Printf.sprintf "%s done" task)
                ~cat:"app")
      | Event.Suspect { proc; peer } ->
          instant ~time ~proc
            ~name:("suspect " ^ Event.proc_to_string peer)
            ~cat:"fd"
      | Event.Unsuspect { proc; peer } ->
          instant ~time ~proc
            ~name:("trust " ^ Event.proc_to_string peer)
            ~cat:"fd"
      | Event.Crash { proc } ->
          instant ~time ~proc
            ~name:("crash " ^ Event.proc_to_string proc)
            ~cat:"fault"
      | Event.Partition _ -> cluster_instant ~time ~name:(Event.render e.event)
      | Event.Heal -> cluster_instant ~time ~name:"heal"
      | Event.Corrupt { proc; field; _ } ->
          instant ~time ~proc ~name:("corrupt " ^ field) ~cat:"fault"
      | Event.Quarantine _ -> cluster_instant ~time ~name:(Event.render e.event)
      | Event.Retransmit { proc; count; _ } ->
          instant ~time ~proc
            ~name:(Printf.sprintf "retransmit x%d" count)
            ~cat:"vsync"
      | Event.Send _ | Event.Recv _ | Event.Drop _ | Event.Dup _
      | Event.Backoff _ | Event.Note _ ->
          ())
    entries;
  (* Unclosed task spans: surface their start as instants so they are not
     silently invisible.  Sorted for determinism (D2). *)
  List.iter
    (fun (key, start) ->
      match String.index_opt key '|' with
      | None -> ()
      | Some i -> (
          let proc_s = String.sub key 0 i in
          let task = String.sub key (i + 1) (String.length key - i - 1) in
          match Event.proc_of_string proc_s with
          | Some proc ->
              instant ~time:start ~proc ~name:(task ^ " start (unfinished)")
                ~cat:"app"
          | None -> ()))
    (Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare open_task);
  (* Metadata lanes, one per node plus the cluster lane. *)
  let meta =
    List.concat_map
      (fun node ->
        [
          Json.Obj
            [
              ("name", Json.Str "thread_name"); ("ph", Json.Str "M");
              ("pid", Json.Int 1); ("tid", Json.Int node);
              ( "args",
                Json.Obj [ ("name", Json.Str (Printf.sprintf "node %d" node)) ]
              );
            ];
        ])
      (Vs_util.Hashtblx.sorted_keys ~cmp:Int.compare seen_nodes)
    @ [
        Json.Obj
          [
            ("name", Json.Str "thread_name"); ("ph", Json.Str "M");
            ("pid", Json.Int 1); ("tid", Json.Int cluster_tid);
            ("args", Json.Obj [ ("name", Json.Str "cluster") ]);
          ];
        Json.Obj
          [
            ("name", Json.Str "process_name"); ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("args", Json.Obj [ ("name", Json.Str "vs cluster") ]);
          ];
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (meta @ List.rev !out @ extra));
         ("displayTimeUnit", Json.Str "ms");
       ])
