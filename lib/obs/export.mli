(** Exporters over a recorded event stream.

    Formats:
    - JSONL: one canonical JSON object per line with fixed key order
      [{"t":…,"c":…,"ev":…,…payload}] — deterministic, parseable back via
      {!entry_of_jsonl} (the @trace-schema drift guard round-trips a
      committed sample).
    - Chrome [trace_event] JSON: one pid for the cluster, one tid lane per
      node; installs/e-views/modes/faults as instants, state-transfer tasks
      and flush->install windows as complete spans.  Loads in Perfetto or
      chrome://tracing. *)

val fields_of_event : Event.t -> (string * Json.t) list
(** The payload fields of one event, in the fixed schema order (no
    [t]/[c]/[ev] envelope) — reused by {!Explain} to embed slices. *)

val jsonl_of_entry : Recorder.entry -> string
(** One line, no trailing newline. *)

val jsonl_of_entries : Recorder.entry list -> string
(** Newline-terminated lines. *)

val entry_of_jsonl : string -> (Recorder.entry, string) result

val entries_of_jsonl : string -> (Recorder.entry list, string) result
(** Parses a whole stream; blank lines are skipped; errors carry the 1-based
    line number. *)

val chrome_of_entries : ?extra:Json.t list -> Recorder.entry list -> string
(** A complete [{"traceEvents":[...]}] document.  [?extra] appends
    caller-built trace events after the generated ones (how [Flame] layers
    the critical-path lanes in); omitted, the output is byte-identical to
    the historical exporter. *)
