(* Folded-stack and Perfetto rendering of critical paths (see flame.mli). *)

module Hashtblx = Vs_util.Hashtblx

(* Stack frames: view id, segment kind, owner ("p2" or "p0->p2").  Values
   are summed per stack across every install path of the view, then printed
   as integer microseconds in sorted line order — byte-deterministic. *)
let folded (cp : Critpath.t) =
  let sums : (string, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ip : Critpath.install_path) ->
      List.iter
        (fun (s : Critpath.segment) ->
          let stack =
            String.concat ";"
              [
                Event.vid_to_string ip.Critpath.ip_vid;
                Critpath.seg_kind_to_string s.Critpath.s_kind;
                Critpath.seg_owner s;
              ]
          in
          let prev =
            match Hashtbl.find_opt sums stack with Some v -> v | None -> 0.
          in
          Hashtbl.replace sums stack (prev +. Critpath.seg_duration s))
        ip.Critpath.ip_segments)
    cp.Critpath.installs;
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, seconds) ->
      let us = int_of_float ((seconds *. 1e6) +. 0.5) in
      if us > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    (Hashtblx.sorted_bindings ~cmp:String.compare sums);
  Buffer.contents buf

(* One complete-span event per critical-path segment on a dedicated pid so
   Perfetto shows the causal decomposition as its own process, lanes keyed
   by the installing node. *)
let critpath_pid = 2

let critpath_spans (cp : Critpath.t) =
  let seen_nodes : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let spans =
    List.concat_map
      (fun (ip : Critpath.install_path) ->
        let tid = ip.Critpath.ip_proc.Event.node in
        Hashtbl.replace seen_nodes tid ();
        List.filter_map
          (fun (s : Critpath.segment) ->
            let dur = Critpath.seg_duration s in
            if dur <= 0. then None
            else
              Some
                (Json.Obj
                   [
                     ( "name",
                       Json.Str
                         (Printf.sprintf "%s %s [%s]"
                            (Critpath.seg_kind_to_string s.Critpath.s_kind)
                            (Critpath.seg_owner s)
                            (Event.vid_to_string ip.Critpath.ip_vid)) );
                     ("cat", Json.Str "critpath");
                     ("ph", Json.Str "X");
                     ("ts", Json.Float (s.Critpath.s_from *. 1e6));
                     ("dur", Json.Float (dur *. 1e6));
                     ("pid", Json.Int critpath_pid);
                     ("tid", Json.Int tid);
                   ]))
          ip.Critpath.ip_segments)
      cp.Critpath.installs
  in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int critpath_pid);
        ("args", Json.Obj [ ("name", Json.Str "critical path") ]);
      ]
    :: List.map
         (fun node ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int critpath_pid);
               ("tid", Json.Int node);
               ( "args",
                 Json.Obj
                   [ ("name", Json.Str (Printf.sprintf "install @ node %d" node)) ]
               );
             ])
         (Hashtblx.sorted_keys ~cmp:Int.compare seen_nodes)
  in
  meta @ spans

let chrome_of_entries entries =
  let cp = Critpath.of_entries entries in
  Export.chrome_of_entries ~extra:(critpath_spans cp) entries
