(** Flamegraph and Perfetto rendering of critical-path decompositions.

    Two outputs over a {!Critpath.t}:

    - {!folded}: the classic folded-stack format
      ([view;segment-kind;owner <microseconds>] lines) that
      [flamegraph.pl] / [inferno-flamegraph] consume directly.  Values are
      integer microseconds summed per stack; lines are sorted, so the
      output is byte-deterministic on identically-seeded runs (the
      @critpath-schema guard pins a committed sample).
    - {!critpath_spans}: Chrome [trace_event] span objects on a dedicated
      "critical path" process (pid 2, one lane per installing node), shaped
      to pass to [Export.chrome_of_entries ~extra] — which
      {!chrome_of_entries} does, layering the causal decomposition next to
      the protocol lanes in Perfetto. *)

val folded : Critpath.t -> string
(** Newline-terminated folded stacks; empty string when no view was ever
    installed. *)

val critpath_spans : Critpath.t -> Json.t list
(** Span + metadata events for the critical-path lanes, in deterministic
    order. *)

val chrome_of_entries : Recorder.entry list -> string
(** [Export.chrome_of_entries] with the critical-path lanes layered on. *)
