(* Fixed-memory log-bucketed histogram — the continuous-telemetry
   replacement for the grow-forever sample lists of [Vs_stats.Summary].

   Values land in geometric buckets: bucket k covers
   (lowest·g^k, lowest·g^(k+1)] with growth factor g = 1 + error, plus a
   dedicated bucket for exact zero / negatives, an underflow bucket
   (0, lowest], and an overflow bucket above [highest].  Every quantile
   reported is the upper bound of the bucket holding the exact quantile's
   sample, so for in-range values

       exact <= reported < exact * (1 + error)

   — the bucket-error contract the test-suite pins against the exact
   [Vs_stats.Summary] on random vectors.

   Memory is fixed at creation (one int array, one float array; ~2.8k
   buckets at the defaults) and the record path allocates nothing: no float
   arithmetic, no float constants, no closures — only comparisons against
   precomputed boundaries and integer increments.  vslint rule A1 proves
   this statically (the alloc-free annotations below), rule B1 ties the
   [zero_alloc_contract] list to those annotations, and the bench asserts
   the runtime half with word-exact Gc counters. *)

type t = {
  bounds : float array;
      (* bounds.(k) = upper bound of log bucket k; strictly increasing *)
  counts : int array;
      (* length = Array.length bounds + 3:
         0               exact zero and negatives (representative 0)
         1               underflow: 0 < v <= lowest (representative lowest)
         2 + k           log bucket k (representative bounds.(k))
         length - 1      overflow: v > bounds.(last) *)
  mutable n : int;
  lowest : float;  (* smallest value resolved to its own bucket *)
  top : float;  (* bounds.(last), cached for the record fast path *)
  over_rep : float;  (* representative of the overflow bucket *)
  zero : float;  (* 0.0, stored so [record] needs no float literal *)
  err : float;  (* growth - 1 *)
  over : int;  (* index of the overflow bucket, cached *)
}

let default_lowest = 1e-6

let default_highest = 1e6

let default_error = 0.01

let create ?(lowest = default_lowest) ?(highest = default_highest)
    ?(error = default_error) () =
  if not (lowest > 0.) then invalid_arg "Hdr.create: lowest must be > 0";
  if not (highest > lowest) then
    invalid_arg "Hdr.create: highest must exceed lowest";
  if not (error > 0. && error < 1.) then
    invalid_arg "Hdr.create: error must be in (0, 1)";
  let growth = 1. +. error in
  let m =
    let needed = log (highest /. lowest) /. log growth in
    max 1 (int_of_float (ceil needed))
  in
  let bounds = Array.init m (fun k -> lowest *. (growth ** float_of_int (k + 1))) in
  {
    bounds;
    counts = Array.make (m + 3) 0;
    n = 0;
    lowest;
    top = bounds.(m - 1);
    over_rep = bounds.(m - 1) *. growth;
    zero = 0.;
    err = error;
    over = m + 2;
  }

(* Smallest k in [lo, hi] with v <= bounds.(k).  The caller guarantees
   lowest < v <= bounds.(hi), so the invariant "answer in [lo, hi]" holds
   throughout.  Recursion instead of a [ref] loop keeps the body free of
   allocating constructs. *)
(* vslint: alloc-free *)
let rec bucket_index (bounds : float array) (v : float) lo hi =
  if lo >= hi then lo
  else begin
    let mid = (lo + hi) / 2 in
    if v <= bounds.(mid) then bucket_index bounds v lo mid
    else bucket_index bounds v (mid + 1) hi
  end

(* vslint: alloc-free *)
let record t v =
  t.n <- t.n + 1;
  if v <= t.zero then t.counts.(0) <- t.counts.(0) + 1
  else if v <= t.lowest then t.counts.(1) <- t.counts.(1) + 1
  else if v > t.top then t.counts.(t.over) <- t.counts.(t.over) + 1
  else begin
    let k = bucket_index t.bounds v 0 (t.over - 3) in
    t.counts.(2 + k) <- t.counts.(2 + k) + 1
  end

(* The static half of the no-allocation guarantee, in the same
   "path:function" shape as [Net.zero_alloc_contract]: rule A1 proves each
   body allocation-free, rule B1 pins this list to the annotated set, and
   the bench exports it next to its runtime word counts. *)
let zero_alloc_contract =
  [ "lib/obs/hdr.ml:bucket_index"; "lib/obs/hdr.ml:record" ]

let count t = t.n

let error t = t.err

let bucket_count t = Array.length t.counts

(* Representative value of occupied slot [i]: the value every sample in the
   bucket is rounded up to. *)
let rep t i =
  if i = 0 then 0.
  else if i = 1 then t.lowest
  else if i = t.over then t.over_rep
  else t.bounds.(i - 2)

(* Lower edge of slot [i] — used for [min_value], where rounding down is the
   conservative direction. *)
let low_edge t i =
  if i = 0 then 0.
  else if i = 1 then 0.
  else if i = 2 then t.lowest
  else if i = t.over then t.top
  else t.bounds.(i - 3)

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let slots = Array.length t.counts in
    let rec find i acc =
      if i >= slots then rep t (slots - 1)
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then rep t i else find (i + 1) acc
      end
    in
    find 0 0
  end

let max_value t =
  if t.n = 0 then neg_infinity
  else begin
    let rec find i = if i < 0 then 0. else if t.counts.(i) > 0 then rep t i else find (i - 1) in
    find (Array.length t.counts - 1)
  end

let min_value t =
  if t.n = 0 then infinity
  else begin
    let slots = Array.length t.counts in
    let rec find i =
      if i >= slots then 0. else if t.counts.(i) > 0 then low_edge t i else find (i + 1)
    in
    find 0
  end

let approx_sum t =
  let acc = ref 0. in
  Array.iteri
    (fun i c -> if c > 0 then acc := !acc +. (float_of_int c *. rep t i))
    t.counts;
  !acc

let mean t = if t.n = 0 then 0. else approx_sum t /. float_of_int t.n

(* Occupied buckets as (upper bound, count), in value order — the compact
   representation the series snapshots and the OpenMetrics exposition
   consume.  Empty buckets are skipped, so the list length tracks the
   distinct magnitudes observed, not the configured resolution. *)
let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (rep t i, t.counts.(i)) :: !acc
  done;
  !acc

(* Cumulative variant: (upper bound, running count); the running count of
   the last element equals [count t]. *)
let cumulative t =
  let acc = ref [] and running = ref 0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        running := !running + c;
        acc := (rep t i, !running) :: !acc
      end)
    t.counts;
  List.rev !acc

let clear t =
  t.n <- 0;
  Array.fill t.counts 0 (Array.length t.counts) 0
