(** Fixed-memory log-bucketed (HDR-style) histogram.

    Replaces the grow-forever sample lists of {!Vs_stats.Summary} on the
    continuous-telemetry path: memory is fixed at {!create} time and
    {!record} performs no allocation (certified statically by vslint rule
    A1 via the [alloc-free] annotations, pinned by {!zero_alloc_contract},
    and asserted at runtime by the bench's word-exact Gc counters).

    Quantiles are reported as the upper bound of the bucket holding the
    exact quantile's sample, so for values inside [(lowest, highest)]:

    {v exact <= reported < exact * (1 + error) v} *)

type t

val create : ?lowest:float -> ?highest:float -> ?error:float -> unit -> t
(** [create ()] builds an empty histogram resolving values in
    [(lowest, highest)] (defaults [1e-6] and [1e6]) into geometric buckets
    with relative width [error] (default [0.01], i.e. 1%).  Values at or
    below zero, in [(0, lowest]], and above [highest] land in dedicated
    under/overflow buckets.  Raises [Invalid_argument] on a non-positive
    [lowest], [highest <= lowest], or [error] outside [(0, 1)]. *)

val record : t -> float -> unit
(** [record t v] adds one sample.  Allocation-free: integer increments and
    float comparisons only (A1-certified). *)

val count : t -> int
(** Total number of recorded samples. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 1\]]: upper bound of the bucket
    holding the sample of rank [ceil (p * n)] (clamped to [\[1, n\]]) — the
    same rank rule as {!Vs_stats.Summary.percentile}.  [0.] when empty. *)

val max_value : t -> float
(** Upper bound of the highest occupied bucket; [neg_infinity] when
    empty. *)

val min_value : t -> float
(** Lower edge of the lowest occupied bucket (rounding down, the
    conservative direction for a minimum); [infinity] when empty. *)

val mean : t -> float
(** Bucket-representative mean ([approx_sum / count]); [0.] when empty. *)

val approx_sum : t -> float
(** Sum of bucket representatives weighted by count — within a factor
    [1 + error] of the exact sum for in-range samples. *)

val buckets : t -> (float * int) list
(** Occupied buckets as [(upper_bound, count)] in increasing value order. *)

val cumulative : t -> (float * int) list
(** Occupied buckets as [(upper_bound, running_count)]; the last running
    count equals {!count}.  This is the [le]-labelled series the
    OpenMetrics exposition renders. *)

val error : t -> float
(** The relative bucket width the histogram was created with. *)

val bucket_count : t -> int
(** Number of bucket slots allocated (fixed at creation). *)

val clear : t -> unit
(** Reset all counts to zero, keeping the bucket layout. *)

val zero_alloc_contract : string list
(** The ["path:function"] entries whose bodies vslint rule A1 must prove
    allocation-free (see {!Net.zero_alloc_contract} for the pattern). *)
