(* A minimal deterministic JSON value type, printer, and parser.  Used by the
   JSONL / Chrome exporters and the @trace-schema round-trip guard.  Kept
   dependency-free on purpose: the container has no JSON library baked in. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Shortest float representation that survives a parse round-trip, so that
   re-emitting a parsed stream is byte-identical to the original. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    match float_of_string_opt s with
    | Some f' when Float.equal f' f -> s
    | Some _ | None -> Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when Char.equal x ch -> advance c
  | Some _ | None -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.equal (String.sub c.src c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  fail c "truncated \\u escape"
                else begin
                  let hex = String.sub c.src c.pos 4 in
                  match int_of_string_opt ("0x" ^ hex) with
                  | None -> fail c "bad \\u escape"
                  | Some code ->
                      c.pos <- c.pos + 4;
                      if code < 0x80 then Buffer.add_char buf (Char.chr code)
                      else if code < 0x800 then begin
                        Buffer.add_char buf
                          (Char.chr (0xC0 lor (code lsr 6)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor (code land 0x3F)))
                      end
                      else begin
                        Buffer.add_char buf
                          (Char.chr (0xE0 lor (code lsr 12)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor (code land 0x3F)))
                      end
                end
            | _ -> fail c "bad escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let token = String.sub c.src start (c.pos - start) in
  let has_float_syntax =
    String.exists (fun ch -> Char.equal ch '.' || Char.equal ch 'e' || Char.equal ch 'E') token
  in
  if has_float_syntax then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if (match peek c with Some '}' -> true | Some _ | None -> false) then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | Some _ | None -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if (match peek c with Some ']' -> true | Some _ | None -> false) then begin
        advance c;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | Some _ | None -> fail c "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v else Error "trailing garbage"
  | exception Parse_error msg -> Error msg

(* --- typed accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ | Arr _ | Obj _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Null | Bool _ | Float _ | Str _ | Arr _ | Obj _ -> None

let to_string_opt = function
  | Str s -> Some s
  | Null | Bool _ | Int _ | Float _ | Arr _ | Obj _ -> None

let to_bool_opt = function
  | Bool b -> Some b
  | Null | Int _ | Float _ | Str _ | Arr _ | Obj _ -> None

let to_list_opt = function
  | Arr items -> Some items
  | Null | Bool _ | Int _ | Float _ | Str _ | Obj _ -> None
