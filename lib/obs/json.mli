(** Minimal deterministic JSON: value type, canonical printer, parser.

    The printer is canonical — fixed field order (whatever the caller
    builds), no whitespace, shortest round-trippable float repr — so
    identical event streams serialize byte-identically, and parsing then
    re-printing a canonical document reproduces it exactly (the property the
    @trace-schema guard checks). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val float_repr : float -> string

val to_string : t -> string

val of_string : string -> (t, string) result

(** {2 Accessors} *)

val member : string -> t -> t option

val to_float_opt : t -> float option
(** Accepts [Int] too. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
