(* The lineage fold: one pass over a materialized event stream producing
   per-message lifecycles, per-process view/mode timelines, and the view
   graph.  Everything is keyed and sorted by the typed comparators of
   [Event], so two identical streams produce identical lineages. *)

module Hashtblx = Vs_util.Hashtblx
module Listx = Vs_util.Listx

(* ---------- per-message lifecycles ---------- *)

type what = Sent | Received | Dropped of string | Duplicated

type hop = {
  h_time : float;
  h_src : Event.proc;
  h_dst : Event.proc;
  h_kind : string;
  h_what : what;
}

type delivery = { d_proc : Event.proc; d_time : float; d_vid : Event.vid option }

(* Send-time drops ("src-dead", "partition", "loss") kill an attempt before
   it reaches the wire — no Send event is emitted for them.  Arrival drops
   ("dst-dead", "partition-inflight") kill a copy that a Send or Dup already
   put on the wire.  The split makes conservation exact:

     in_flight = copies - received - dropped_in_flight  >= 0           *)
let send_time_reason = function
  | "src-dead" | "partition" | "loss" -> true
  | _ -> false

type lifecycle = {
  l_msg : Event.msg;
  l_hops : hop list;  (* chronological *)
  l_copies : int;  (* envelopes put on the wire: sends + dups *)
  l_received : int;
  l_dups : int;
  l_predrops : (string * int) list;  (* reason -> count, sorted *)
  l_inflight_drops : (string * int) list;
  l_in_flight : int;
  l_deliveries : delivery list;  (* network arrivals, chronological *)
}

(* ---------- per-process timelines ---------- *)

type view_span = {
  vs_vid : Event.vid;
  vs_from : float;
  vs_until : float option;  (* next install or crash; None while open *)
  vs_members : Event.proc list;
}

type mode_span = {
  ms_mode : string;
  ms_from : float;
  ms_until : float option;
  ms_cause : string;  (* cause of the transition that entered this mode *)
}

type timeline = {
  tl_proc : Event.proc;
  tl_views : view_span list;  (* chronological *)
  tl_modes : mode_span list;
  tl_crashed_at : float option;
}

let view_at tl time =
  let rec go best = function
    | [] -> best
    | (sp : view_span) :: rest ->
        if sp.vs_from <= time then go (Some sp) rest else best
  in
  Option.map (fun sp -> sp.vs_vid) (go None tl.tl_views)

(* ---------- the view graph ---------- *)

type vnode = {
  n_vid : Event.vid;
  n_members : Event.proc list;  (* from the first install observed *)
  n_installers : Event.proc list;  (* sorted *)
  n_first_install : float;
  n_transfer : bool;  (* any Settle reported state transfer *)
  n_creation : string;  (* "none" unless a Settle reported otherwise *)
  n_merging : bool;
  n_clusters : int;  (* max S_R cluster count over Settle events *)
  n_eviews : int;  (* EVS e-view changes observed within the view *)
  n_max_subviews : int;
}

type vedge = {
  e_from : Event.vid;
  e_to : Event.vid;
  e_procs : Event.proc list;  (* survivors that made the transition *)
}

type graph = { vnodes : vnode list; vedges : vedge list }

let successors g vid =
  List.filter_map
    (fun e ->
      if Event.compare_vid e.e_from vid = 0 then Some e.e_to else None)
    g.vedges

let predecessors g vid =
  List.filter_map
    (fun e -> if Event.compare_vid e.e_to vid = 0 then Some e.e_from else None)
    g.vedges

let splits g =
  List.filter_map
    (fun n ->
      match successors g n.n_vid with
      | [] | [ _ ] -> None
      | vs -> Some (n.n_vid, vs))
    g.vnodes

let merges g =
  List.filter_map
    (fun n ->
      match predecessors g n.n_vid with
      | [] | [ _ ] -> None
      | vs -> Some (n.n_vid, vs))
    g.vnodes

(* ---------- the fold ---------- *)

type t = {
  lifecycles : lifecycle list;  (* sorted by message identity *)
  timelines : timeline list;  (* sorted by process *)
  graph : graph;
  events : int;
}

let lifecycle t m =
  List.find_opt (fun l -> Event.compare_msg l.l_msg m = 0) t.lifecycles

let timeline t p =
  List.find_opt (fun tl -> Event.compare_proc tl.tl_proc p = 0) t.timelines

let proc_view_at t p time =
  match timeline t p with None -> None | Some tl -> view_at tl time

(* Mutable per-view aggregate while folding. *)
type view_agg = {
  mutable a_members : Event.proc list;
  mutable a_installers : Event.proc list;
  mutable a_first : float;
  mutable a_transfer : bool;
  mutable a_creation : string;
  mutable a_merging : bool;
  mutable a_clusters : int;
  mutable a_eviews : int;
  mutable a_subviews : int;
}

let of_entries entries =
  let hops : (Event.msg, hop list ref) Hashtbl.t = Hashtbl.create 256 in
  let installs : (Event.proc, (float * Event.vid * Event.proc list) list ref)
      Hashtbl.t =
    Hashtbl.create 32
  in
  let modes : (Event.proc, (float * string * string * string) list ref)
      Hashtbl.t =
    Hashtbl.create 32
  in
  let crashes : (Event.proc, float) Hashtbl.t = Hashtbl.create 16 in
  let views : (Event.vid, view_agg) Hashtbl.t = Hashtbl.create 32 in
  let bucket tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add tbl key r;
        r
  in
  let view_agg vid time =
    match Hashtbl.find_opt views vid with
    | Some a -> a
    | None ->
        let a =
          {
            a_members = [];
            a_installers = [];
            a_first = time;
            a_transfer = false;
            a_creation = "none";
            a_merging = false;
            a_clusters = 0;
            a_eviews = 0;
            a_subviews = 0;
          }
        in
        Hashtbl.add views vid a;
        a
  in
  let hop time src dst kind what = function
    | None -> ()
    | Some m ->
        let r = bucket hops m in
        r := { h_time = time; h_src = src; h_dst = dst; h_kind = kind; h_what = what } :: !r
  in
  List.iter
    (fun (e : Recorder.entry) ->
      let time = e.time in
      match e.event with
      | Event.Send { src; dst; kind; msg; _ } -> hop time src dst kind Sent msg
      | Event.Recv { src; dst; kind; msg } -> hop time src dst kind Received msg
      | Event.Drop { src; dst; kind; reason; msg } ->
          hop time src dst kind (Dropped reason) msg
      | Event.Dup { src; dst; kind; msg } -> hop time src dst kind Duplicated msg
      | Event.Install { proc; vid; members; _ } ->
          let r = bucket installs proc in
          r := (time, vid, members) :: !r;
          let a = view_agg vid time in
          if a.a_members = [] then a.a_members <- members;
          if
            not
              (List.exists
                 (fun p -> Event.compare_proc p proc = 0)
                 a.a_installers)
          then a.a_installers <- proc :: a.a_installers;
          if time < a.a_first then a.a_first <- time
      | Event.Mode_change { proc; from_mode; into_mode; cause } ->
          let r = bucket modes proc in
          r := (time, from_mode, into_mode, cause) :: !r
      | Event.Crash { proc } ->
          if not (Hashtbl.mem crashes proc) then Hashtbl.replace crashes proc time
      | Event.Settle { vid; transfer; creation; merging; clusters; _ } ->
          let a = view_agg vid time in
          a.a_transfer <- a.a_transfer || transfer;
          if not (String.equal creation "none") then a.a_creation <- creation;
          a.a_merging <- a.a_merging || merging;
          if clusters > a.a_clusters then a.a_clusters <- clusters
      | Event.Eview { vid; subviews; _ } ->
          let a = view_agg vid time in
          a.a_eviews <- a.a_eviews + 1;
          if subviews > a.a_subviews then a.a_subviews <- subviews
      | Event.Retransmit _ | Event.Backoff _ | Event.Suspect _
      | Event.Unsuspect _ | Event.Propose _ | Event.Flush _
      | Event.Task_start _ | Event.Task_done _ | Event.Partition _
      | Event.Heal | Event.Corrupt _ | Event.Quarantine _ | Event.Note _ ->
          ())
    entries;
  (* Timelines first: lifecycles need view_at for delivery views. *)
  let timelines =
    Hashtblx.sorted_bindings ~cmp:Event.compare_proc installs
    |> List.map (fun (proc, r) -> (proc, List.rev !r))
    |> List.map (fun (proc, inst) ->
           let crashed_at = Hashtbl.find_opt crashes proc in
           let rec spans = function
             | [] -> []
             | (t0, vid, members) :: rest ->
                 let until =
                   match rest with
                   | (t1, _, _) :: _ -> Some t1
                   | [] -> crashed_at
                 in
                 { vs_vid = vid; vs_from = t0; vs_until = until;
                   vs_members = members }
                 :: spans rest
           in
           let mode_list =
             match Hashtbl.find_opt modes proc with
             | Some r -> List.rev !r
             | None -> []
           in
           let rec mode_spans = function
             | [] -> []
             | (t0, _, into, cause) :: rest ->
                 let until =
                   match rest with
                   | (t1, _, _, _) :: _ -> Some t1
                   | [] -> crashed_at
                 in
                 { ms_mode = into; ms_from = t0; ms_until = until;
                   ms_cause = cause }
                 :: mode_spans rest
           in
           {
             tl_proc = proc;
             tl_views = spans inst;
             tl_modes = mode_spans mode_list;
             tl_crashed_at = crashed_at;
           })
  in
  (* Processes that only ever crashed (no installs recorded) still deserve a
     timeline so explain can say when they died. *)
  let timelines =
    let covered p =
      List.exists (fun tl -> Event.compare_proc tl.tl_proc p = 0) timelines
    in
    timelines
    @ (Hashtblx.sorted_bindings ~cmp:Event.compare_proc crashes
      |> List.filter_map (fun (p, time) ->
             if covered p then None
             else
               Some
                 {
                   tl_proc = p;
                   tl_views = [];
                   tl_modes = [];
                   tl_crashed_at = Some time;
                 }))
    |> List.sort (fun a b -> Event.compare_proc a.tl_proc b.tl_proc)
  in
  let timeline_of p =
    List.find_opt (fun tl -> Event.compare_proc tl.tl_proc p = 0) timelines
  in
  let bump assoc reason =
    let n = match List.assoc_opt reason assoc with Some n -> n | None -> 0 in
    (reason, n + 1) :: List.remove_assoc reason assoc
  in
  let lifecycles =
    Hashtblx.sorted_bindings ~cmp:Event.compare_msg hops
    |> List.map (fun (m, r) ->
           let hs = List.rev !r in
           let copies, received, dups, predrops, inflight, deliveries =
             List.fold_left
               (fun (c, rc, d, pre, infl, dels) h ->
                 match h.h_what with
                 | Sent -> (c + 1, rc, d, pre, infl, dels)
                 | Duplicated -> (c + 1, rc, d + 1, pre, infl, dels)
                 | Received ->
                     let vid =
                       match timeline_of h.h_dst with
                       | Some tl -> view_at tl h.h_time
                       | None -> None
                     in
                     ( c, rc + 1, d, pre, infl,
                       { d_proc = h.h_dst; d_time = h.h_time; d_vid = vid }
                       :: dels )
                 | Dropped reason ->
                     if send_time_reason reason then
                       (c, rc, d, bump pre reason, infl, dels)
                     else (c, rc, d, pre, bump infl reason, dels))
               (0, 0, 0, [], [], []) hs
           in
           let sort_counts l =
             List.sort (fun (a, _) (b, _) -> String.compare a b) l
           in
           {
             l_msg = m;
             l_hops = hs;
             l_copies = copies;
             l_received = received;
             l_dups = dups;
             l_predrops = sort_counts predrops;
             l_inflight_drops = sort_counts inflight;
             l_in_flight =
               copies - received
               - List.fold_left (fun a (_, n) -> a + n) 0 inflight;
             l_deliveries = List.rev deliveries;
           })
  in
  (* Edges: consecutive installs per process, survivors unioned per edge. *)
  let edge_tbl : (string, (Event.vid * Event.vid * Event.proc list ref))
      Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun tl ->
      let rec go = function
        | a :: (b :: _ as rest) ->
            let key =
              Event.vid_to_string a.vs_vid ^ ">" ^ Event.vid_to_string b.vs_vid
            in
            (match Hashtbl.find_opt edge_tbl key with
            | Some (_, _, procs) -> procs := tl.tl_proc :: !procs
            | None ->
                Hashtbl.add edge_tbl key
                  (a.vs_vid, b.vs_vid, ref [ tl.tl_proc ]));
            go rest
        | [ _ ] | [] -> ()
      in
      go tl.tl_views)
    timelines;
  let vedges =
    Hashtblx.sorted_bindings ~cmp:String.compare edge_tbl
    |> List.map (fun (_, (f, t_, procs)) ->
           {
             e_from = f;
             e_to = t_;
             e_procs = Listx.sorted_set ~cmp:Event.compare_proc !procs;
           })
    |> List.sort (fun a b ->
           match Event.compare_vid a.e_from b.e_from with
           | 0 -> Event.compare_vid a.e_to b.e_to
           | c -> c)
  in
  let vnodes =
    Hashtblx.sorted_bindings ~cmp:Event.compare_vid views
    |> List.map (fun (vid, a) ->
           {
             n_vid = vid;
             n_members = a.a_members;
             n_installers =
               Listx.sorted_set ~cmp:Event.compare_proc a.a_installers;
             n_first_install = a.a_first;
             n_transfer = a.a_transfer;
             n_creation = a.a_creation;
             n_merging = a.a_merging;
             n_clusters = a.a_clusters;
             n_eviews = a.a_eviews;
             n_max_subviews = a.a_subviews;
           })
  in
  {
    lifecycles;
    timelines;
    graph = { vnodes; vedges };
    events = List.length entries;
  }

(* ---------- rendering ---------- *)

let counts_to_string l =
  String.concat ", "
    (List.map (fun (reason, n) -> Printf.sprintf "%s x%d" reason n) l)

let lifecycle_summary l =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d on wire (%d send + %d dup), %d received"
       (Event.msg_to_string l.l_msg) l.l_copies (l.l_copies - l.l_dups)
       l.l_dups l.l_received);
  if l.l_inflight_drops <> [] then
    Buffer.add_string b
      (Printf.sprintf ", lost in flight: %s" (counts_to_string l.l_inflight_drops));
  if l.l_predrops <> [] then
    Buffer.add_string b
      (Printf.sprintf ", killed at send: %s" (counts_to_string l.l_predrops));
  Buffer.add_string b (Printf.sprintf ", %d in flight at end" l.l_in_flight);
  (match l.l_deliveries with
  | [] -> ()
  | ds ->
      Buffer.add_string b "; arrived at ";
      Buffer.add_string b
        (String.concat ", "
           (List.map
              (fun d ->
                Printf.sprintf "%s@%s"
                  (Event.proc_to_string d.d_proc)
                  (match d.d_vid with
                  | Some v -> Event.vid_to_string v
                  | None -> "?"))
              ds)));
  Buffer.contents b

(* Graph exports.  Node identifiers are sanitized vid strings; labels carry
   the Section 4 settle classification and Section 6 subview structure. *)

let node_id vid =
  String.map
    (fun c -> match c with '@' | '.' -> '_' | c -> c)
    (Event.vid_to_string vid)

let node_label n =
  let base =
    Printf.sprintf "%s {%s}"
      (Event.vid_to_string n.n_vid)
      (String.concat "," (List.map Event.proc_to_string n.n_members))
  in
  let marks =
    (if n.n_transfer then [ "transfer" ] else [])
    @ (if String.equal n.n_creation "none" then [] else [ n.n_creation ])
    @ (if n.n_merging then [ "merging" ] else [])
    @ (if n.n_clusters > 1 then
         [ Printf.sprintf "clusters=%d" n.n_clusters ]
       else [])
    @
    if n.n_eviews > 0 then
      [ Printf.sprintf "eviews=%d sv<=%d" n.n_eviews n.n_max_subviews ]
    else []
  in
  match marks with
  | [] -> base
  | _ -> base ^ " [" ^ String.concat " " marks ^ "]"

let edge_label e =
  String.concat "," (List.map Event.proc_to_string e.e_procs)

let to_mermaid g =
  let b = Buffer.create 512 in
  Buffer.add_string b "graph TD\n";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  %s[\"%s\"]\n" (node_id n.n_vid) (node_label n)))
    g.vnodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %s -->|%s| %s\n" (node_id e.e_from) (edge_label e)
           (node_id e.e_to)))
    g.vedges;
  Buffer.contents b

let to_dot g =
  let b = Buffer.create 512 in
  Buffer.add_string b "digraph views {\n  rankdir=TB;\n  node [shape=box];\n";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" [label=\"%s\"];\n" (node_id n.n_vid)
           (node_label n)))
    g.vnodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n"
           (node_id e.e_from) (node_id e.e_to) (edge_label e)))
    g.vedges;
  Buffer.add_string b "}\n";
  Buffer.contents b
