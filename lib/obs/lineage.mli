(** Message lineage, process timelines and the view graph, folded from one
    recorded event stream.

    The fold is purely structural: it never consults protocol state, only
    the typed events, and every output list is sorted by the typed
    comparators of {!Event}, so identical streams produce identical
    lineages (the property the @explain-corpus alias pins down).

    Requires a [Full]-level stream for message lifecycles; view/mode
    timelines and the view graph also work on [Protocol]-level streams. *)

(** {2 Per-message lifecycles} *)

type what = Sent | Received | Dropped of string | Duplicated

type hop = {
  h_time : float;
  h_src : Event.proc;
  h_dst : Event.proc;
  h_kind : string;  (** wire kind: ["data"], ["relay"], ["to-request"], … *)
  h_what : what;
}

type delivery = {
  d_proc : Event.proc;
  d_time : float;
  d_vid : Event.vid option;
      (** the view the receiver had installed at arrival time, when known *)
}

type lifecycle = {
  l_msg : Event.msg;
  l_hops : hop list;  (** chronological *)
  l_copies : int;  (** envelopes put on the wire: sends + dups *)
  l_received : int;
  l_dups : int;
  l_predrops : (string * int) list;
      (** attempts killed before the wire ("src-dead", "partition", "loss"),
          reason -> count, sorted by reason *)
  l_inflight_drops : (string * int) list;
      (** copies killed in flight ("dst-dead", "partition-inflight") *)
  l_in_flight : int;
      (** [copies - received - inflight drops]; in a conserved stream this
          is >= 0 and counts envelopes pending at shutdown *)
  l_deliveries : delivery list;  (** network arrivals, chronological *)
}

val send_time_reason : string -> bool
(** Whether a drop reason classifies as a send-time kill (no envelope ever
    went on the wire) as opposed to an in-flight loss. *)

(** {2 Per-process timelines} *)

type view_span = {
  vs_vid : Event.vid;
  vs_from : float;
  vs_until : float option;  (** next install or crash; [None] while open *)
  vs_members : Event.proc list;
}

type mode_span = {
  ms_mode : string;
  ms_from : float;
  ms_until : float option;
  ms_cause : string;
}

type timeline = {
  tl_proc : Event.proc;
  tl_views : view_span list;  (** chronological *)
  tl_modes : mode_span list;
  tl_crashed_at : float option;
}

val view_at : timeline -> float -> Event.vid option
(** The view installed at or before the given time. *)

(** {2 The view graph} *)

type vnode = {
  n_vid : Event.vid;
  n_members : Event.proc list;
  n_installers : Event.proc list;
  n_first_install : float;
  n_transfer : bool;  (** some member needed state transfer (Section 4) *)
  n_creation : string;  (** ["none"], ["rebirth"], ["in-progress"] *)
  n_merging : bool;
  n_clusters : int;  (** max S_R cluster count reported at settle *)
  n_eviews : int;  (** EVS e-view changes within the view (Section 6) *)
  n_max_subviews : int;
}

type vedge = {
  e_from : Event.vid;
  e_to : Event.vid;
  e_procs : Event.proc list;  (** survivors that made the transition *)
}

type graph = { vnodes : vnode list; vedges : vedge list }

val successors : graph -> Event.vid -> Event.vid list

val predecessors : graph -> Event.vid -> Event.vid list

val splits : graph -> (Event.vid * Event.vid list) list
(** Views whose survivors installed more than one distinct successor. *)

val merges : graph -> (Event.vid * Event.vid list) list
(** Views reached from more than one distinct predecessor. *)

(** {2 The fold} *)

type t = {
  lifecycles : lifecycle list;  (** sorted by message identity *)
  timelines : timeline list;  (** sorted by process *)
  graph : graph;
  events : int;  (** stream length folded *)
}

val of_entries : Recorder.entry list -> t

val lifecycle : t -> Event.msg -> lifecycle option

val timeline : t -> Event.proc -> timeline option

val proc_view_at : t -> Event.proc -> float -> Event.vid option

(** {2 Rendering} *)

val lifecycle_summary : lifecycle -> string
(** One deterministic line: copies/receipts/drops/in-flight and arrival
    views. *)

val to_mermaid : graph -> string
(** Mermaid [graph TD] document; node labels carry membership, settle
    classification and subview structure, edge labels the survivors. *)

val to_dot : graph -> string
(** Graphviz digraph with the same labels. *)
