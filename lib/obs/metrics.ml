(* Metrics registry plus the derivation pass that folds a recorded event
   stream into counters / gauges / simulated-time histograms.  All
   enumeration is sorted so two identically-seeded runs render byte-identical
   summaries.

   Histograms are fixed-memory [Hdr] instances (1% log buckets), so a
   registry's footprint is bounded no matter how long the run: the vsmon
   series layer scrapes a live registry on every window without the cost
   growing with the number of recorded samples. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hdr.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some h -> Hdr.record h v
  | None ->
      let h = Hdr.create () in
      Hdr.record h v;
      Hashtbl.replace t.hists name h

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let hist t name = Hashtbl.find_opt t.hists name

let counters t =
  List.map
    (fun (k, r) -> (k, !r))
    (Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.counters)

let gauges t =
  List.map
    (fun (k, r) -> (k, !r))
    (Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.gauges)

let hists t = Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.hists

(* --- derivation from an event stream ------------------------------------- *)

(* Incremental derivation state.  [step] consumes one timestamped event and
   updates the registry in place, so the same fold serves both the
   end-of-run [of_entries] pass and the vsmon series sink, which feeds
   events as the simulation emits them. *)
type deriv = {
  metrics : t;
  (* current app mode per node, for the messages-per-mode split *)
  node_mode : (int, string) Hashtbl.t;
  (* first propose time per view id, for install latency *)
  proposed : (string, float) Hashtbl.t;
  (* first flush-ack per (proc, view id), for flush stall *)
  flushed : (string, float) Hashtbl.t;
  (* open tasks per (proc, task kind) *)
  tasks : (string, float) Hashtbl.t;
}

let deriv_create () =
  {
    metrics = create ();
    node_mode = Hashtbl.create 8;
    proposed = Hashtbl.create 16;
    flushed = Hashtbl.create 32;
    tasks = Hashtbl.create 8;
  }

let deriv_metrics d = d.metrics

let step d ~time (event : Event.t) =
  let m = d.metrics in
  let mode_of (p : Event.proc) =
    match Hashtbl.find_opt d.node_mode p.node with Some s -> s | None -> "N"
  in
  set_gauge m "run.last-event-time" time;
  match event with
  | Event.Send { src; _ } ->
      incr m "net.sends";
      incr m ("net.sends.mode." ^ mode_of src)
  | Event.Recv _ -> incr m "net.recvs"
  | Event.Drop { reason; _ } ->
      incr m "net.drops";
      incr m ("net.drops." ^ reason)
  | Event.Dup _ -> incr m "net.dups"
  | Event.Retransmit { count; peer; _ } ->
      incr ~by:count m "vsync.retransmits";
      if peer then incr ~by:count m "vsync.retransmits.peer"
  | Event.Backoff _ -> incr m "vsync.backoffs"
  | Event.Suspect _ -> incr m "fd.suspects"
  | Event.Unsuspect _ -> incr m "fd.unsuspects"
  | Event.Propose { vid; _ } ->
      incr m "gms.proposes";
      let key = Event.vid_to_string vid in
      if not (Hashtbl.mem d.proposed key) then
        Hashtbl.replace d.proposed key time
  | Event.Flush { proc; vid; _ } ->
      incr m "gms.flushes";
      let key = Event.proc_to_string proc ^ "|" ^ Event.vid_to_string vid in
      if not (Hashtbl.mem d.flushed key) then Hashtbl.replace d.flushed key time
  | Event.Install { proc; vid; sync; _ } ->
      incr m "gms.installs";
      observe m "view.sync-deliveries" (float_of_int sync);
      let vkey = Event.vid_to_string vid in
      (match Hashtbl.find_opt d.proposed vkey with
      | Some t0 -> observe m "view.install-latency" (time -. t0)
      | None -> ());
      let fkey = Event.proc_to_string proc ^ "|" ^ vkey in
      (match Hashtbl.find_opt d.flushed fkey with
      | Some t0 ->
          Hashtbl.remove d.flushed fkey;
          observe m "view.flush-stall" (time -. t0)
      | None -> ())
  | Event.Eview _ -> incr m "evs.eviews"
  | Event.Mode_change { proc; into_mode; cause; _ } ->
      incr m ("mode.transitions." ^ cause);
      Hashtbl.replace d.node_mode proc.node into_mode
  | Event.Settle _ -> incr m "app.settles"
  | Event.Task_start { proc; task; _ } ->
      let key = Event.proc_to_string proc ^ "|" ^ task in
      if not (Hashtbl.mem d.tasks key) then Hashtbl.replace d.tasks key time
  | Event.Task_done { proc; task; _ } ->
      let key = Event.proc_to_string proc ^ "|" ^ task in
      (match Hashtbl.find_opt d.tasks key with
      | Some t0 ->
          Hashtbl.remove d.tasks key;
          observe m ("task." ^ task) (time -. t0)
      | None -> ())
  | Event.Crash _ -> incr m "faults.crashes"
  | Event.Partition _ -> incr m "faults.partitions"
  | Event.Heal -> incr m "faults.heals"
  | Event.Corrupt _ -> incr m "faults.corruptions"
  | Event.Quarantine _ -> ()
  | Event.Note _ -> ()

let of_entries (entries : Recorder.entry list) =
  let d = deriv_create () in
  List.iter (fun (e : Recorder.entry) -> step d ~time:e.time e.event) entries;
  d.metrics

(* --- rendering ----------------------------------------------------------- *)

let to_tables t =
  let acc = ref [] in
  let cs = counters t in
  if cs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: counters"
        ~columns:[ "metric"; "count" ]
    in
    List.iter
      (fun (k, v) -> Vs_stats.Table.add_row tbl [ k; Vs_stats.Table.fint v ])
      cs;
    acc := tbl :: !acc
  end;
  let gs = gauges t in
  if gs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: gauges"
        ~columns:[ "metric"; "value" ]
    in
    List.iter
      (fun (k, v) ->
        Vs_stats.Table.add_row tbl [ k; Vs_stats.Table.ffloat ~decimals:4 v ])
      gs;
    acc := tbl :: !acc
  end;
  let hs = hists t in
  if hs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: histograms (simulated time)"
        ~columns:[ "metric"; "n"; "p50"; "p95"; "p99"; "max" ]
    in
    List.iter
      (fun (k, h) ->
        Vs_stats.Table.add_row tbl
          [
            k;
            Vs_stats.Table.fint (Hdr.count h);
            Vs_stats.Table.ffloat ~decimals:4 (Hdr.percentile h 0.5);
            Vs_stats.Table.ffloat ~decimals:4 (Hdr.percentile h 0.95);
            Vs_stats.Table.ffloat ~decimals:4 (Hdr.percentile h 0.99);
            Vs_stats.Table.ffloat ~decimals:4 (Hdr.max_value h);
          ])
      hs;
    acc := tbl :: !acc
  end;
  List.rev !acc

let to_text t =
  String.concat "\n" (List.map Vs_stats.Table.to_string (to_tables t))

let to_json t =
  let hist_json h =
    Json.Obj
      [
        ("n", Json.Int (Hdr.count h));
        ("p50", Json.Float (Hdr.percentile h 0.5));
        ("p95", Json.Float (Hdr.percentile h 0.95));
        ("p99", Json.Float (Hdr.percentile h 0.99));
        ("max", Json.Float (Hdr.max_value h));
        ("mean", Json.Float (Hdr.mean h));
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (hists t)) );
    ]
