(* Metrics registry plus the derivation pass that folds a recorded event
   stream into counters / gauges / simulated-time histograms.  All
   enumeration is sorted so two identically-seeded runs render byte-identical
   summaries. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Vs_stats.Summary.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some s -> Vs_stats.Summary.add s v
  | None ->
      let s = Vs_stats.Summary.create () in
      Vs_stats.Summary.add s v;
      Hashtbl.replace t.hists name s

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let hist t name = Hashtbl.find_opt t.hists name

let counters t =
  List.map
    (fun (k, r) -> (k, !r))
    (Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.counters)

let gauges t =
  List.map
    (fun (k, r) -> (k, !r))
    (Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.gauges)

let hists t = Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare t.hists

(* --- derivation from an event stream ------------------------------------- *)

let of_entries (entries : Recorder.entry list) =
  let m = create () in
  (* current app mode per node, for the messages-per-mode split *)
  let node_mode : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let mode_of (p : Event.proc) =
    match Hashtbl.find_opt node_mode p.node with Some s -> s | None -> "N"
  in
  (* first propose time per view id, for install latency *)
  let proposed : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* first flush-ack per (proc, view id), for flush stall *)
  let flushed : (string, float) Hashtbl.t = Hashtbl.create 32 in
  (* open tasks per (proc, task kind) *)
  let tasks : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Recorder.entry) ->
      let time = e.time in
      set_gauge m "run.last-event-time" time;
      match e.event with
      | Event.Send { src; _ } ->
          incr m "net.sends";
          incr m ("net.sends.mode." ^ mode_of src)
      | Event.Recv _ -> incr m "net.recvs"
      | Event.Drop { reason; _ } ->
          incr m "net.drops";
          incr m ("net.drops." ^ reason)
      | Event.Dup _ -> incr m "net.dups"
      | Event.Retransmit { count; peer; _ } ->
          incr ~by:count m "vsync.retransmits";
          if peer then incr ~by:count m "vsync.retransmits.peer"
      | Event.Backoff _ -> incr m "vsync.backoffs"
      | Event.Suspect _ -> incr m "fd.suspects"
      | Event.Unsuspect _ -> incr m "fd.unsuspects"
      | Event.Propose { vid; _ } ->
          incr m "gms.proposes";
          let key = Event.vid_to_string vid in
          if not (Hashtbl.mem proposed key) then Hashtbl.replace proposed key time
      | Event.Flush { proc; vid; _ } ->
          incr m "gms.flushes";
          let key =
            Event.proc_to_string proc ^ "|" ^ Event.vid_to_string vid
          in
          if not (Hashtbl.mem flushed key) then Hashtbl.replace flushed key time
      | Event.Install { proc; vid; sync; _ } ->
          incr m "gms.installs";
          observe m "view.sync-deliveries" (float_of_int sync);
          let vkey = Event.vid_to_string vid in
          (match Hashtbl.find_opt proposed vkey with
          | Some t0 -> observe m "view.install-latency" (time -. t0)
          | None -> ());
          let fkey = Event.proc_to_string proc ^ "|" ^ vkey in
          (match Hashtbl.find_opt flushed fkey with
          | Some t0 ->
              Hashtbl.remove flushed fkey;
              observe m "view.flush-stall" (time -. t0)
          | None -> ())
      | Event.Eview _ -> incr m "evs.eviews"
      | Event.Mode_change { proc; into_mode; cause; _ } ->
          incr m ("mode.transitions." ^ cause);
          Hashtbl.replace node_mode proc.node into_mode
      | Event.Settle _ -> incr m "app.settles"
      | Event.Task_start { proc; task; _ } ->
          let key = Event.proc_to_string proc ^ "|" ^ task in
          if not (Hashtbl.mem tasks key) then Hashtbl.replace tasks key time
      | Event.Task_done { proc; task; _ } ->
          let key = Event.proc_to_string proc ^ "|" ^ task in
          (match Hashtbl.find_opt tasks key with
          | Some t0 ->
              Hashtbl.remove tasks key;
              observe m ("task." ^ task) (time -. t0)
          | None -> ())
      | Event.Crash _ -> incr m "faults.crashes"
      | Event.Partition _ -> incr m "faults.partitions"
      | Event.Heal -> incr m "faults.heals"
      | Event.Corrupt _ -> incr m "faults.corruptions"
      | Event.Quarantine _ -> ()
      | Event.Note _ -> ())
    entries;
  m

(* --- rendering ----------------------------------------------------------- *)

let to_tables t =
  let acc = ref [] in
  let cs = counters t in
  if cs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: counters"
        ~columns:[ "metric"; "count" ]
    in
    List.iter
      (fun (k, v) -> Vs_stats.Table.add_row tbl [ k; Vs_stats.Table.fint v ])
      cs;
    acc := tbl :: !acc
  end;
  let gs = gauges t in
  if gs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: gauges"
        ~columns:[ "metric"; "value" ]
    in
    List.iter
      (fun (k, v) ->
        Vs_stats.Table.add_row tbl [ k; Vs_stats.Table.ffloat ~decimals:4 v ])
      gs;
    acc := tbl :: !acc
  end;
  let hs = hists t in
  if hs <> [] then begin
    let tbl =
      Vs_stats.Table.create ~title:"metrics: histograms (simulated time)"
        ~columns:[ "metric"; "n"; "p50"; "p95"; "max" ]
    in
    List.iter
      (fun (k, s) ->
        Vs_stats.Table.add_row tbl
          [
            k;
            Vs_stats.Table.fint (Vs_stats.Summary.count s);
            Vs_stats.Table.ffloat ~decimals:4 (Vs_stats.Summary.percentile s 0.5);
            Vs_stats.Table.ffloat ~decimals:4
              (Vs_stats.Summary.percentile s 0.95);
            Vs_stats.Table.ffloat ~decimals:4 (Vs_stats.Summary.max_value s);
          ])
      hs;
    acc := tbl :: !acc
  end;
  List.rev !acc

let to_text t =
  String.concat "\n" (List.map Vs_stats.Table.to_string (to_tables t))
