(** Metrics registry: counters, gauges, and simulated-time histograms.

    {!of_entries} folds a recorded event stream into the derived metrics the
    paper's analysis calls for: per-view installation latency (first propose
    to each install), flush stall time (a member's flush-ack to its install),
    sync-barrier delivery counts, retransmit totals, and message counts split
    by the sender's NORMAL/REDUCED/SETTLING mode.  All enumeration is sorted,
    so identically-seeded runs render byte-identical summaries. *)

type t

val create : unit -> t

(** {2 Registry} *)

val incr : ?by:int -> t -> string -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float option

val hist : t -> string -> Vs_stats.Summary.t option

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val hists : t -> (string * Vs_stats.Summary.t) list

(** {2 Derivation and rendering} *)

val of_entries : Recorder.entry list -> t

val to_tables : t -> Vs_stats.Table.t list

val to_text : t -> string
