(** Metrics registry: counters, gauges, and simulated-time histograms.

    {!of_entries} folds a recorded event stream into the derived metrics the
    paper's analysis calls for: per-view installation latency (first propose
    to each install), flush stall time (a member's flush-ack to its install),
    sync-barrier delivery counts, retransmit totals, and message counts split
    by the sender's NORMAL/REDUCED/SETTLING mode.  The same fold is exposed
    incrementally ({!deriv_create} / {!step}) so the vsmon series layer can
    keep a registry live as events are emitted.  Histograms are fixed-memory
    {!Hdr} instances, so a registry's footprint is bounded for arbitrarily
    long runs.  All enumeration is sorted, so identically-seeded runs render
    byte-identical summaries. *)

type t

val create : unit -> t

(** {2 Registry} *)

val incr : ?by:int -> t -> string -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float option

val hist : t -> string -> Hdr.t option

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val hists : t -> (string * Hdr.t) list

(** {2 Derivation} *)

type deriv
(** Incremental derivation state: a registry plus the cross-event context
    (per-node mode, open proposes/flushes/tasks) the fold needs. *)

val deriv_create : unit -> deriv

val deriv_metrics : deriv -> t
(** The live registry the fold updates — safe to read at any point. *)

val step : deriv -> time:float -> Event.t -> unit
(** Fold one timestamped event into the registry. *)

val of_entries : Recorder.entry list -> t
(** [deriv_create] + [step] over a completed recording. *)

(** {2 Rendering} *)

val to_tables : t -> Vs_stats.Table.t list

val to_text : t -> string

val to_json : t -> Json.t
(** Canonical JSON: sorted [counters] / [gauges] / [histograms] objects,
    histograms summarized as [n]/[p50]/[p95]/[p99]/[max]/[mean]. *)
