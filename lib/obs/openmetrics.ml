(* Deterministic OpenMetrics / Prometheus text exposition.

   The output is canonical the same way [Json] is: metric families sorted
   by name (inherited from the registry's sorted enumeration), label order
   fixed ([le] is the only generated label), floats in the shortest
   round-trippable repr ([Json.float_repr]), LF line endings, and a final
   [# EOF] terminator per the OpenMetrics spec.  Two identically-seeded
   runs therefore expose byte-identical text — the property the
   @openmetrics-schema guard pins with a committed sample.

   Mapping from the registry namespace:
   - counter  [net.sends]            -> [vs_net_sends_total]
   - gauge    [run.last-event-time]  -> [vs_run_last_event_time]
   - histogram [view.install-latency] -> [vs_view_install_latency_bucket
     {le="..."}] over the occupied HDR buckets (cumulative), plus
     [+Inf] / [_sum] / [_count].

   Only [a-zA-Z0-9_:] survive in metric names; every other character
   becomes ['_']. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let float_repr = Json.float_repr

(* OpenMetrics spells infinities and NaN differently from JSON-adjacent
   shortest-repr: +Inf / -Inf / NaN. *)
let sample_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else float_repr v

let default_prefix = "vs_"

let buf_family b ~name ~mtype = Printf.bprintf b "# TYPE %s %s\n" name mtype

let of_metrics ?(prefix = default_prefix) m =
  let b = Buffer.create 4096 in
  List.iter
    (fun (k, v) ->
      let name = prefix ^ sanitize k in
      buf_family b ~name ~mtype:"counter";
      Printf.bprintf b "%s_total %d\n" name v)
    (Metrics.counters m);
  List.iter
    (fun (k, v) ->
      let name = prefix ^ sanitize k in
      buf_family b ~name ~mtype:"gauge";
      Printf.bprintf b "%s %s\n" name (sample_value v))
    (Metrics.gauges m);
  List.iter
    (fun (k, h) ->
      let name = prefix ^ sanitize k in
      buf_family b ~name ~mtype:"histogram";
      List.iter
        (fun (le, cum) ->
          Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name (sample_value le)
            cum)
        (Hdr.cumulative h);
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name (Hdr.count h);
      Printf.bprintf b "%s_sum %s\n" name (sample_value (Hdr.approx_sum h));
      Printf.bprintf b "%s_count %d\n" name (Hdr.count h))
    (Metrics.hists m);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
