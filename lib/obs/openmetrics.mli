(** Deterministic OpenMetrics / Prometheus text exposition of a
    {!Metrics} registry.

    Canonical like {!Json}: families sorted by metric name, fixed label
    order ([le] only), floats in shortest round-trippable repr, LF line
    endings, trailing [# EOF].  Identically-seeded runs expose
    byte-identical text — pinned by the @openmetrics-schema guard. *)

val of_metrics : ?prefix:string -> Metrics.t -> string
(** Render the registry.  Counters become [<prefix><name>_total], gauges
    [<prefix><name>], histograms a cumulative [_bucket{le="..."}] series
    over the occupied HDR buckets plus [+Inf], [_sum], [_count].  Names
    are sanitized to [[a-zA-Z0-9_:]]; [prefix] defaults to ["vs_"]. *)

val sanitize : string -> string
(** Replace every character outside [[a-zA-Z0-9_:]] with ['_']. *)

val sample_value : float -> string
(** OpenMetrics float spelling: shortest round-trippable repr, with
    [+Inf] / [-Inf] / [NaN] for the non-finite values. *)

val default_prefix : string
