(* Composable predicates over a materialized event stream.  A query is just
   [entry -> bool]; combinators build slices without re-walking protocol
   state, and [run] preserves stream order, so any result is as deterministic
   as the stream it filters. *)

type t = Recorder.entry -> bool

let all : t = fun _ -> true

let none : t = fun _ -> false

let ( &&& ) (f : t) (g : t) : t = fun e -> f e && g e

let ( ||| ) (f : t) (g : t) : t = fun e -> f e || g e

let negate (f : t) : t = fun e -> not (f e)

let any fs : t = fun e -> List.exists (fun f -> f e) fs

let mentions_proc p : t =
 fun e ->
  List.exists (fun q -> Event.compare_proc p q = 0) (Event.procs e.event)

let on_node node : t =
 fun e -> List.exists (fun q -> q.Event.node = node) (Event.procs e.event)

let mentions_vid v : t =
 fun e -> List.exists (fun w -> Event.compare_vid v w = 0) (Event.vids e.event)

let about_msg m : t =
 fun e ->
  match Event.msg_of e.event with
  | Some m' -> Event.compare_msg m m' = 0
  | None -> false

let carries_msg : t = fun e -> Event.msg_of e.event <> None

let of_type name : t = fun e -> String.equal (Event.type_name e.event) name

let of_component c : t = fun e -> String.equal (Event.component e.event) c

let between ~t0 ~t1 : t = fun e -> e.time >= t0 && e.time <= t1

let run (q : t) entries = List.filter q entries

let count (q : t) entries =
  List.fold_left (fun n e -> if q e then n + 1 else n) 0 entries
