(** Composable filters over a recorded event stream.

    A query is a predicate on {!Recorder.entry}; the combinators compose
    predicates and {!run} applies one while preserving stream order.  All
    identity matching goes through the typed comparators of {!Event}, so a
    query never depends on rendering. *)

type t = Recorder.entry -> bool

val all : t

val none : t

val ( &&& ) : t -> t -> t
(** Conjunction. *)

val ( ||| ) : t -> t -> t
(** Disjunction. *)

val negate : t -> t

val any : t list -> t
(** Disjunction of a list ([none] when empty). *)

val mentions_proc : Event.proc -> t
(** The event's {!Event.procs} include the given process (members of
    [Propose]/[Install] count). *)

val on_node : int -> t
(** Any mentioned process lives on the node, whatever its incarnation. *)

val mentions_vid : Event.vid -> t

val about_msg : Event.msg -> t
(** Data-path events carrying exactly this (origin, seq) identity. *)

val carries_msg : t
(** Data-path events carrying any correlation identity. *)

val of_type : string -> t
(** Match on {!Event.type_name} (["send"], ["install"], …). *)

val of_component : string -> t
(** Match on {!Event.component} (["net"], ["gms"], …). *)

val between : t0:float -> t1:float -> t
(** Inclusive sim-time window. *)

val run : t -> Recorder.entry list -> Recorder.entry list
(** Filter, preserving stream order. *)

val count : t -> Recorder.entry list -> int
