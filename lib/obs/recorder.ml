type level = Off | Protocol | Full

let level_to_string = function
  | Off -> "off"
  | Protocol -> "protocol"
  | Full -> "full"

let all_level_names = [ "off"; "protocol"; "full" ]

let level_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Some Off
  | "protocol" -> Some Protocol
  | "full" -> Some Full
  | _ -> None

type entry = { time : float; event : Event.t }

(* Storage is either the classic unbounded reversed list or — when
   [?capacity] is given — a circular buffer retaining only the newest
   [capacity] entries.  [count] always counts every emission, truncated or
   not, and doubles as the cache generation stamp. *)
type t = {
  mutable level : level;
  capacity : int option;
  mutable rev_entries : entry list; (* unbounded mode *)
  ring : entry array; (* ring mode; length = capacity, else empty *)
  mutable ring_pos : int; (* next write index *)
  (* Materialized chronological view, rebuilt lazily when [count] moves past
     [cache_count].  Every reader (entries, by_component, tail renderers)
     shares one materialization instead of paying for its own. *)
  mutable count : int;
  mutable cache : entry list;
  mutable cache_count : int;
  (* Live taps: each is called with every recorded event, after storage.
     This is how the vsmon series layer and the vspath causal collector
     observe a run without a second emission path — the empty list (the
     default) leaves [emit] byte-identical to a sink-less recorder.  Sinks
     are keyed by a monotone id so [remove_sink] detaches exactly the
     handle it was given; notification order is registration order. *)
  mutable sinks : (int * (time:float -> Event.t -> unit)) list;
  mutable next_sink : int;
}

let default = ref Protocol

let set_default_level l = default := l

let default_level () = !default

let dummy_entry = { time = 0.; event = Event.Heal }

let create ?capacity ?level () =
  let level = match level with Some l -> l | None -> !default in
  (match capacity with
  | Some n when n <= 0 -> invalid_arg "Recorder.create: capacity must be > 0"
  | Some _ | None -> ());
  let ring =
    match capacity with
    | Some n -> Array.make n dummy_entry
    | None -> [||]
  in
  {
    level;
    capacity;
    rev_entries = [];
    ring;
    ring_pos = 0;
    count = 0;
    cache = [];
    cache_count = -1;
    sinks = [];
    next_sink = 0;
  }

type sink_handle = int

let add_sink t f =
  let id = t.next_sink in
  t.next_sink <- id + 1;
  (* Append keeps notification order = registration order without paying a
     reversal on the hot path. *)
  t.sinks <- t.sinks @ [ (id, f) ];
  id

let remove_sink t handle =
  t.sinks <- List.filter (fun (id, _) -> id <> handle) t.sinks

let level t = t.level

let set_level t l = t.level <- l

let capacity t = t.capacity

let protocol_on t = match t.level with Off -> false | Protocol | Full -> true

(* vslint: alloc-free *)
let full_on t = match t.level with Full -> true | Off | Protocol -> false

(* Tail-recursive sink walk; lifted out of [emit] so the no-sink fast path
   allocates nothing (no closure for the loop). *)
let rec notify_sinks sinks ~time event =
  match sinks with
  | [] -> ()
  | (_, f) :: rest ->
      f ~time event;
      notify_sinks rest ~time event

let emit t ~time event =
  match t.level with
  | Off -> ()
  | Protocol | Full -> (
      (match t.capacity with
      | None ->
          t.rev_entries <- { time; event } :: t.rev_entries;
          t.count <- t.count + 1
      | Some n ->
          t.ring.(t.ring_pos) <- { time; event };
          t.ring_pos <- (t.ring_pos + 1) mod n;
          t.count <- t.count + 1);
      match t.sinks with
      | [] -> ()
      | sinks -> notify_sinks sinks ~time event)

let count t = t.count

let retained t =
  match t.capacity with None -> t.count | Some n -> min t.count n

let ring_entries t ~limit =
  let n = Array.length t.ring in
  let stored = min (retained t) limit in
  (* Oldest-first: walk back [stored] slots from the write position. *)
  let start = ((t.ring_pos - stored) mod n + n) mod n in
  List.init stored (fun i -> t.ring.((start + i) mod n))

let entries t =
  if t.cache_count <> t.count then begin
    (t.cache <-
       (match t.capacity with
       | None -> List.rev t.rev_entries
       | Some _ -> ring_entries t ~limit:t.count));
    t.cache_count <- t.count
  end;
  t.cache

let tail ?(limit = 30) t =
  match t.capacity with
  | Some _ -> ring_entries t ~limit
  | None ->
      let rec take n acc = function
        | [] -> acc
        | e :: rest -> if n <= 0 then acc else take (n - 1) (e :: acc) rest
      in
      take limit [] t.rev_entries

let clear t =
  t.rev_entries <- [];
  t.ring_pos <- 0;
  t.count <- 0;
  t.cache <- [];
  t.cache_count <- -1
