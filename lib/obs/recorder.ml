type level = Off | Protocol | Full

let level_to_string = function
  | Off -> "off"
  | Protocol -> "protocol"
  | Full -> "full"

let level_of_string = function
  | "off" -> Some Off
  | "protocol" -> Some Protocol
  | "full" -> Some Full
  | _ -> None

type entry = { time : float; event : Event.t }

type t = {
  mutable level : level;
  mutable rev_entries : entry list;
  mutable count : int;
  (* Materialized chronological view, rebuilt lazily when [count] moves past
     [cache_count].  Every reader (entries, by_component, tail renderers)
     shares one List.rev instead of paying for its own. *)
  mutable cache : entry list;
  mutable cache_count : int;
}

let default = ref Protocol

let set_default_level l = default := l

let default_level () = !default

let create ?level () =
  let level = match level with Some l -> l | None -> !default in
  { level; rev_entries = []; count = 0; cache = []; cache_count = 0 }

let level t = t.level

let set_level t l = t.level <- l

let protocol_on t = match t.level with Off -> false | Protocol | Full -> true

let full_on t = match t.level with Full -> true | Off | Protocol -> false

let emit t ~time event =
  match t.level with
  | Off -> ()
  | Protocol | Full ->
      t.rev_entries <- { time; event } :: t.rev_entries;
      t.count <- t.count + 1

let count t = t.count

let entries t =
  if t.cache_count <> t.count then begin
    t.cache <- List.rev t.rev_entries;
    t.cache_count <- t.count
  end;
  t.cache

let tail ?(limit = 30) t =
  let rec take n acc = function
    | [] -> acc
    | e :: rest -> if n <= 0 then acc else take (n - 1) (e :: acc) rest
  in
  take limit [] t.rev_entries

let clear t =
  t.rev_entries <- [];
  t.count <- 0;
  t.cache <- [];
  t.cache_count <- 0
