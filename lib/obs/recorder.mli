(** Per-run event recorder.

    One recorder is threaded through a simulation (via [Sim.create ?obs]) and
    every protocol layer emits typed {!Event.t} values onto it.  Recording is
    a cons onto a reversed list — no formatting, no sorting — and readers
    share one materialized chronological view. *)

type level =
  | Off  (** record nothing; emission sites still run their guards *)
  | Protocol
      (** protocol-level events (views, modes, faults, retries) — the
          default *)
  | Full  (** additionally record per-message send/recv/drop/dup traffic *)

val level_to_string : level -> string

val level_of_string : string -> level option
(** Case-insensitive: ["Full"], ["FULL"] and ["full"] all parse. *)

val all_level_names : string list
(** The valid spellings, lowercase — for CLI error messages. *)

type entry = { time : float; event : Event.t }

type t

val create : ?capacity:int -> ?level:level -> unit -> t
(** Level defaults to the process-wide {!default_level}.  [?capacity] bounds
    the recorder to a ring buffer retaining only the newest [capacity]
    entries (raises [Invalid_argument] when [<= 0]); omitted means
    unbounded.  {!count} always reports the total ever emitted, so
    [count t > capacity] signals that truncation happened. *)

val level : t -> level

val set_level : t -> level -> unit

val protocol_on : t -> bool
(** [level >= Protocol]. *)

val full_on : t -> bool
(** [level = Full].  Hot data-path sites guard on this so that non-[Full]
    runs pay zero allocations per send. *)

val emit : t -> time:float -> Event.t -> unit
(** No-op at [Off].  When {!add_sink} taps are installed, every recorded
    event is also passed to each of them in registration order (after
    storage); [Off] emissions never reach the sinks. *)

type sink_handle

val add_sink : t -> (time:float -> Event.t -> unit) -> sink_handle
(** Install a live tap on the recorded stream and return a handle for
    {!remove_sink}.  Multiple sinks coexist (the vsmon series tap and the
    vspath causal collector can watch the same run); with no sinks
    installed — the default — {!emit} is byte-identical to a sink-less
    recorder and allocates nothing beyond storage. *)

val remove_sink : t -> sink_handle -> unit
(** Detach the tap registered under [handle].  Unknown or already-removed
    handles are ignored. *)

val count : t -> int
(** Total events ever emitted — including any a bounded recorder has since
    evicted. *)

val capacity : t -> int option

val entries : t -> entry list
(** All retained entries, oldest first.  On a bounded recorder this is at
    most [capacity] entries — the newest ones; older entries are gone.  The
    chronological list is materialized once per generation and shared by all
    readers. *)

val tail : ?limit:int -> t -> entry list
(** Last [limit] (default 30) retained entries, oldest first, without
    materializing the full view. *)

val clear : t -> unit

val set_default_level : level -> unit
(** Process-wide default used by [create] when [?level] is omitted; lets the
    bench harness toggle instrumentation without re-plumbing every
    constructor.  Deterministic: set once at startup, never from protocol
    code. *)

val default_level : unit -> level
