(* Cross-run structural diff (see rundiff.mli for the alignment model). *)

type divergence = {
  dv_index : int;
  dv_time_a : float option;
  dv_time_b : float option;
  dv_a : string option;
  dv_b : string option;
  dv_field : string option;
}

type phase_delta = {
  pd_phase : string;
  pd_a : float;
  pd_b : float;
  pd_delta : float;
}

type t = {
  d_events_a : int;
  d_events_b : int;
  d_installs_a : int;
  d_installs_b : int;
  d_views_a : int;
  d_views_b : int;
  d_shared_views : int;
  d_first_view_diff : (string option * string option) option;
  d_ops_a : int;
  d_ops_b : int;
  d_ops_only_a : int;
  d_ops_only_b : int;
  d_first_op_diff : string option;
  d_divergence : divergence option;
  d_phases : phase_delta list;
}

(* Timestamp-free identity of an event: latency jitter is not causal
   divergence, reordered payloads are. *)
let signature (ev : Event.t) = Event.type_name ev ^ " " ^ Event.render ev

let corrupt_field (ev : Event.t) =
  match ev with Event.Corrupt { field; _ } -> Some field | _ -> None

(* First stream position where the causal signatures differ; [None] when one
   stream is a prefix of the other only if it is a *proper* prefix (equal
   streams yield no divergence). *)
let first_divergence (a : Recorder.entry list) (b : Recorder.entry list) =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | ea :: _, [] ->
        Some
          {
            dv_index = i;
            dv_time_a = Some ea.Recorder.time;
            dv_time_b = None;
            dv_a = Some (signature ea.Recorder.event);
            dv_b = None;
            dv_field = corrupt_field ea.Recorder.event;
          }
    | [], eb :: _ ->
        Some
          {
            dv_index = i;
            dv_time_a = None;
            dv_time_b = Some eb.Recorder.time;
            dv_a = None;
            dv_b = Some (signature eb.Recorder.event);
            dv_field = corrupt_field eb.Recorder.event;
          }
    | ea :: ra, eb :: rb ->
        let sa = signature ea.Recorder.event
        and sb = signature eb.Recorder.event in
        if String.equal sa sb then go (i + 1) ra rb
        else
          Some
            {
              dv_index = i;
              dv_time_a = Some ea.Recorder.time;
              dv_time_b = Some eb.Recorder.time;
              dv_a = Some sa;
              dv_b = Some sb;
              dv_field =
                (match corrupt_field eb.Recorder.event with
                | Some f -> Some f
                | None -> corrupt_field ea.Recorder.event);
            }
  in
  go 0 a b

(* Distinct installed views in first-install order. *)
let install_chain entries =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rev = ref [] in
  List.iter
    (fun (e : Recorder.entry) ->
      match e.Recorder.event with
      | Event.Install { vid; _ } ->
          let k = Event.vid_to_string vid in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            rev := k :: !rev
          end
      | _ -> ())
    entries;
  List.rev !rev

let count_installs entries =
  List.fold_left
    (fun n (e : Recorder.entry) ->
      match e.Recorder.event with Event.Install _ -> n + 1 | _ -> n)
    0 entries

let align_chains a b =
  let rec go shared a b =
    match (a, b) with
    | [], [] -> (shared, None)
    | x :: _, [] -> (shared, Some (Some x, None))
    | [], y :: _ -> (shared, Some (None, Some y))
    | x :: ra, y :: rb ->
        if String.equal x y then go (shared + 1) ra rb
        else (shared, Some (Some x, Some y))
  in
  go 0 a b

(* Message identities, sorted; symmetric-difference stats via merge. *)
let op_idents entries =
  let lin = Lineage.of_entries entries in
  List.map (fun l -> l.Lineage.l_msg) lin.Lineage.lifecycles

let op_alignment a b =
  let rec go only_a only_b first a b =
    match (a, b) with
    | [], [] -> (only_a, only_b, first)
    | x :: ra, [] ->
        go (only_a + 1) only_b
          (match first with
          | Some _ -> first
          | None -> Some (Event.msg_to_string x))
          ra []
    | [], y :: rb ->
        go only_a (only_b + 1)
          (match first with
          | Some _ -> first
          | None -> Some (Event.msg_to_string y))
          [] rb
    | x :: ra, y :: rb ->
        let c = Event.compare_msg x y in
        if c = 0 then go only_a only_b first ra rb
        else if c < 0 then
          go (only_a + 1) only_b
            (match first with
            | Some _ -> first
            | None -> Some (Event.msg_to_string x))
            ra b
        else
          go only_a (only_b + 1)
            (match first with
            | Some _ -> first
            | None -> Some (Event.msg_to_string y))
            a rb
  in
  go 0 0 None a b

(* Per-phase decomposition: the three stall phases, then the six
   critical-path segment kinds, then the total install latency. *)
let phases entries =
  let attrs = Stall.of_entries entries in
  let stall_sums =
    List.fold_left
      (fun (p, f, s) a ->
        ( p +. a.Stall.a_propose_wait,
          f +. a.Stall.a_flush_wait,
          s +. a.Stall.a_stability_wait ))
      (0., 0., 0.) attrs
  in
  let p, f, s = stall_sums in
  let cp = Critpath.of_entries entries in
  let total =
    List.fold_left
      (fun acc ip -> acc +. ip.Critpath.ip_latency)
      0. cp.Critpath.installs
  in
  [ ("install-latency", total); ("propose-wait", p); ("flush-ack-wait", f);
    ("stability-wait", s) ]
  @ List.map
      (fun (k, v) -> ("critpath." ^ Critpath.seg_kind_to_string k, v))
      (Critpath.kind_seconds cp)

(* The first transient-corruption injection at or after stream index [idx]
   — the harness emits a Note announcing the script action immediately
   before the protocol's [Corrupt] record, so the event *at* the divergence
   is usually the note and the field lives one entry later. *)
let first_corrupt_from idx entries =
  let rec go i = function
    | [] -> None
    | (e : Recorder.entry) :: rest ->
        if i >= idx then
          match corrupt_field e.Recorder.event with
          | Some f -> Some f
          | None -> go (i + 1) rest
        else go (i + 1) rest
  in
  go 0 entries

let diff ~(a : Recorder.entry list) ~(b : Recorder.entry list) =
  let chain_a = install_chain a and chain_b = install_chain b in
  let shared, first_view_diff = align_chains chain_a chain_b in
  let ops_a = op_idents a and ops_b = op_idents b in
  let only_a, only_b, first_op = op_alignment ops_a ops_b in
  let pa = phases a and pb = phases b in
  {
    d_events_a = List.length a;
    d_events_b = List.length b;
    d_installs_a = count_installs a;
    d_installs_b = count_installs b;
    d_views_a = List.length chain_a;
    d_views_b = List.length chain_b;
    d_shared_views = shared;
    d_first_view_diff = first_view_diff;
    d_ops_a = List.length ops_a;
    d_ops_b = List.length ops_b;
    d_ops_only_a = only_a;
    d_ops_only_b = only_b;
    d_first_op_diff = first_op;
    d_divergence =
      Option.map
        (fun dv ->
          match dv.dv_field with
          | Some _ -> dv
          | None ->
              {
                dv with
                dv_field =
                  (match first_corrupt_from dv.dv_index b with
                  | Some f -> Some f
                  | None -> first_corrupt_from dv.dv_index a);
              })
        (first_divergence a b);
    d_phases =
      List.map2
        (fun (name, va) (_, vb) ->
          { pd_phase = name; pd_a = va; pd_b = vb; pd_delta = vb -. va })
        pa pb;
  }

(* --- rendering ------------------------------------------------------------ *)

let opt_repr = function None -> "-" | Some s -> s

let opt_time = function
  | None -> "-"
  | Some t -> Printf.sprintf "t=%.6f" t

let to_text t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match t.d_divergence with
  | None ->
      line "runs are causally identical (%d events, %d installs)" t.d_events_a
        t.d_installs_a
  | Some dv ->
      line "first causal divergence at event %d:" dv.dv_index;
      line "  A: %s  (%s)" (opt_repr dv.dv_a) (opt_time dv.dv_time_a);
      line "  B: %s  (%s)" (opt_repr dv.dv_b) (opt_time dv.dv_time_b);
      (match dv.dv_field with
      | Some f -> line "  corrupted field: %s" f
      | None -> ()));
  line "events: A=%d B=%d; installs: A=%d B=%d" t.d_events_a t.d_events_b
    t.d_installs_a t.d_installs_b;
  line "view chains: A=%d B=%d, shared prefix %d%s" t.d_views_a t.d_views_b
    t.d_shared_views
    (match t.d_first_view_diff with
    | None -> ""
    | Some (x, y) ->
        Printf.sprintf ", first difference %s vs %s" (opt_repr x) (opt_repr y));
  line "ops: A=%d B=%d, only-A %d, only-B %d%s" t.d_ops_a t.d_ops_b
    t.d_ops_only_a t.d_ops_only_b
    (match t.d_first_op_diff with
    | None -> ""
    | Some m -> Printf.sprintf ", first unshared %s" m);
  let table =
    Vs_stats.Table.create ~title:"per-phase latency deltas (summed seconds)"
      ~columns:[ "phase"; "A"; "B"; "delta" ]
  in
  List.iter
    (fun pd ->
      Vs_stats.Table.add_row table
        [
          pd.pd_phase;
          Vs_stats.Table.ffloat ~decimals:6 pd.pd_a;
          Vs_stats.Table.ffloat ~decimals:6 pd.pd_b;
          Vs_stats.Table.ffloat ~decimals:6 pd.pd_delta;
        ])
    t.d_phases;
  Buffer.add_string buf (Vs_stats.Table.to_string table);
  Buffer.contents buf

let opt_json f = function None -> Json.Null | Some v -> f v

let to_json t =
  Json.Obj
    [
      ("events_a", Json.Int t.d_events_a);
      ("events_b", Json.Int t.d_events_b);
      ("installs_a", Json.Int t.d_installs_a);
      ("installs_b", Json.Int t.d_installs_b);
      ("views_a", Json.Int t.d_views_a);
      ("views_b", Json.Int t.d_views_b);
      ("shared_views", Json.Int t.d_shared_views);
      ( "first_view_diff",
        match t.d_first_view_diff with
        | None -> Json.Null
        | Some (x, y) ->
            Json.Obj
              [
                ("a", opt_json (fun s -> Json.Str s) x);
                ("b", opt_json (fun s -> Json.Str s) y);
              ] );
      ("ops_a", Json.Int t.d_ops_a);
      ("ops_b", Json.Int t.d_ops_b);
      ("ops_only_a", Json.Int t.d_ops_only_a);
      ("ops_only_b", Json.Int t.d_ops_only_b);
      ("first_op_diff", opt_json (fun s -> Json.Str s) t.d_first_op_diff);
      ( "divergence",
        match t.d_divergence with
        | None -> Json.Null
        | Some dv ->
            Json.Obj
              [
                ("index", Json.Int dv.dv_index);
                ("time_a", opt_json (fun f -> Json.Float f) dv.dv_time_a);
                ("time_b", opt_json (fun f -> Json.Float f) dv.dv_time_b);
                ("a", opt_json (fun s -> Json.Str s) dv.dv_a);
                ("b", opt_json (fun s -> Json.Str s) dv.dv_b);
                ("corrupted_field", opt_json (fun s -> Json.Str s) dv.dv_field);
              ] );
      ( "phases",
        Json.Arr
          (List.map
             (fun pd ->
               Json.Obj
                 [
                   ("phase", Json.Str pd.pd_phase);
                   ("a", Json.Float pd.pd_a);
                   ("b", Json.Float pd.pd_b);
                   ("delta", Json.Float pd.pd_delta);
                 ])
             t.d_phases) );
    ]
