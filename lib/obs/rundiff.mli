(** Structural diff of two recorded runs (vspath's cross-run half).

    The two streams are aligned on structure, not wall-clock: the causal
    signature of an event is its type plus rendered payload (no timestamp),
    so two identically-seeded runs diff as identical even though their
    in-memory recorders were distinct, and the {e first causal divergence}
    of a perturbed replay (say, a transient corruption of one protocol
    field) is the first stream position where the signatures differ — for
    an injected [Corrupt] event the report names the corrupted field
    directly.

    On top of the event-level alignment the diff compares the view graphs
    (the chains of distinct installed view ids), the [(origin, seq)]
    message lineages (identities only one run carried), and the per-phase
    latency decomposition (the three stall phases and the six
    critical-path segment kinds, summed per run).

    Output is byte-deterministic: every list is sorted by the typed
    comparators, and rendering goes through the canonical JSON printer. *)

type divergence = {
  dv_index : int;  (** 0-based position in the aligned streams *)
  dv_time_a : float option;  (** [None] when that side's stream ended *)
  dv_time_b : float option;
  dv_a : string option;  (** causal signature on side A *)
  dv_b : string option;
  dv_field : string option;
      (** the corrupted protocol field: from the diverging event itself when
          it is a [Corrupt], else from the first [Corrupt] at or after the
          divergence (the harness notes the script action one entry before
          the protocol's corruption record) — B's stream preferred *)
}

type phase_delta = {
  pd_phase : string;
  pd_a : float;  (** summed seconds in run A *)
  pd_b : float;
  pd_delta : float;  (** [pd_b -. pd_a] *)
}

type t = {
  d_events_a : int;
  d_events_b : int;
  d_installs_a : int;
  d_installs_b : int;
  d_views_a : int;  (** distinct installed views *)
  d_views_b : int;
  d_shared_views : int;  (** shared prefix of the first-install chains *)
  d_first_view_diff : (string option * string option) option;
      (** first position where the chains differ; [None] side = exhausted *)
  d_ops_a : int;  (** distinct message identities on the wire *)
  d_ops_b : int;
  d_ops_only_a : int;
  d_ops_only_b : int;
  d_first_op_diff : string option;
      (** smallest identity present in exactly one run *)
  d_divergence : divergence option;  (** [None]: causally identical *)
  d_phases : phase_delta list;
}

val diff : a:Recorder.entry list -> b:Recorder.entry list -> t

val to_text : t -> string
(** Human-readable report: verdict line, divergence detail, view/lineage
    alignment, phase table. *)

val to_json : t -> Json.t
