(* Windowed time series over a recorded run — the continuous half of the
   telemetry plane.

   A series folds every observed event into a live [Metrics.deriv] registry
   and, each time an event's timestamp crosses a window boundary, scrapes
   the registry into an immutable snapshot.  Windows are half-open spans of
   simulated time [kΔ, (k+1)Δ); snapshots are cumulative-at-close, so
   per-window deltas fall out by subtracting consecutive snapshots
   ({!delta_counter}).

   Window closing is driven lazily by observed event times rather than by a
   recurring simulator timer: a timer would perturb the event schedule
   (quiescence-based runs would never go idle) and make scrape-on runs
   diverge from scrape-off runs.  With lazy closing the simulation schedule
   is untouched — attaching a series changes no event, no RNG draw, no
   timestamp — and the snapshot sequence is a pure function of the recorded
   stream, hence byte-deterministic across identically-seeded runs.  The
   cost is that a window only closes when a later event (or {!finish})
   proves the stream has moved past it, which is the right semantics for a
   discrete-event world: nothing happened in between.

   Snapshots live in a fixed ring (default 1024): long runs keep the newest
   windows, and [count] exceeding [capacity] signals truncation — the same
   contract as [Recorder]. *)

type hist_scrape = {
  h_n : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
  h_mean : float;
}

type snapshot = {
  window : int;  (* index k: the span [kΔ, (k+1)Δ) *)
  t_start : float;
  t_end : float;
  counters : (string * int) list;  (* cumulative at window close, sorted *)
  gauges : (string * float) list;
  hists : (string * hist_scrape) list;
}

type t = {
  interval : float;
  deriv : Metrics.deriv;
  ring : snapshot option array;
  mutable ring_pos : int;  (* next write index *)
  mutable count : int;  (* snapshots ever taken *)
  mutable window : int;  (* index of the window currently accumulating *)
  mutable events : int;  (* events observed, for the idle fast path *)
  mutable finished : bool;
}

let default_interval = 0.5

let default_capacity = 1024

let create ?(capacity = default_capacity) ?(interval = default_interval) () =
  if not (interval > 0.) then
    invalid_arg "Series.create: interval must be > 0";
  if capacity <= 0 then invalid_arg "Series.create: capacity must be > 0";
  {
    interval;
    deriv = Metrics.deriv_create ();
    ring = Array.make capacity None;
    ring_pos = 0;
    count = 0;
    window = 0;
    events = 0;
    finished = false;
  }

let interval t = t.interval

let capacity t = Array.length t.ring

let count t = t.count

let metrics t = Metrics.deriv_metrics t.deriv

let events_observed t = t.events

let scrape_hist h =
  {
    h_n = Hdr.count h;
    h_p50 = Hdr.percentile h 0.5;
    h_p95 = Hdr.percentile h 0.95;
    h_p99 = Hdr.percentile h 0.99;
    h_max = Hdr.max_value h;
    h_mean = Hdr.mean h;
  }

let scrape t ~window =
  let m = metrics t in
  {
    window;
    t_start = float_of_int window *. t.interval;
    t_end = float_of_int (window + 1) *. t.interval;
    counters = Metrics.counters m;
    gauges = Metrics.gauges m;
    hists = List.map (fun (k, h) -> (k, scrape_hist h)) (Metrics.hists m);
  }

let push t snap =
  t.ring.(t.ring_pos) <- Some snap;
  t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
  t.count <- t.count + 1

let window_of t time = int_of_float (floor (time /. t.interval))

(* Close every window strictly before [upto]: each closes with the registry
   exactly as the events before its end boundary left it (events arrive in
   non-decreasing time order). *)
let close_until t ~upto =
  while t.window < upto do
    push t (scrape t ~window:t.window);
    t.window <- t.window + 1
  done

let observe t ~time event =
  if not t.finished then begin
    let w = window_of t time in
    if w > t.window then close_until t ~upto:w;
    t.events <- t.events + 1;
    Metrics.step t.deriv ~time event
  end

let finish t ~now =
  if not t.finished then begin
    t.finished <- true;
    (* Close through the window containing [now], so the final partial
       window's activity is captured at its full logical boundary. *)
    if t.events > 0 || now > 0. then close_until t ~upto:(window_of t now + 1)
  end

let snapshots t =
  let cap = Array.length t.ring in
  let stored = min t.count cap in
  let start = ((t.ring_pos - stored) mod cap + cap) mod cap in
  List.filter_map
    (fun i -> t.ring.((start + i) mod cap))
    (List.init stored (fun i -> i))

(* Per-window delta of a cumulative counter: this window's close minus the
   previous window's ([prev = None] means the first retained window, where
   the cumulative value is the delta). *)
let delta_counter ~prev snap name =
  let get s =
    match List.assoc_opt name s.counters with Some v -> v | None -> 0
  in
  get snap - match prev with Some p -> get p | None -> 0

let hist_of snap name = List.assoc_opt name snap.hists

(* --- rendering ----------------------------------------------------------- *)

let snapshot_to_json (s : snapshot) =
  let hist_json h =
    Json.Obj
      [
        ("n", Json.Int h.h_n);
        ("p50", Json.Float h.h_p50);
        ("p95", Json.Float h.h_p95);
        ("p99", Json.Float h.h_p99);
        ("max", Json.Float h.h_max);
        ("mean", Json.Float h.h_mean);
      ]
  in
  Json.Obj
    [
      ("window", Json.Int s.window);
      ("t_start", Json.Float s.t_start);
      ("t_end", Json.Float s.t_end);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.hists) );
    ]

let to_json t =
  Json.Obj
    [
      ("interval", Json.Float t.interval);
      ("windows", Json.Int t.count);
      ("truncated", Json.Bool (t.count > Array.length t.ring));
      ("snapshots", Json.Arr (List.map snapshot_to_json (snapshots t)));
    ]

(* The default per-window table: protocol activity deltas plus the paper's
   cost-model percentiles, one row per retained window.  [counters] picks
   the delta columns. *)
let default_columns =
  [ "net.sends"; "gms.proposes"; "gms.installs"; "vsync.retransmits" ]

let to_table ?(counters = default_columns) t =
  let table =
    Vs_stats.Table.create
      ~title:
        (Printf.sprintf "series: per-window telemetry (interval %g s)"
           t.interval)
      ~columns:
        ([ "window"; "span (s)" ]
        @ List.map (fun c -> "Δ " ^ c) counters
        @ [ "install p99"; "stall p99" ])
  in
  let pct name s =
    match hist_of s name with
    | Some h when h.h_n > 0 -> Vs_stats.Table.ffloat ~decimals:4 h.h_p99
    | Some _ | None -> "-"
  in
  let rec rows prev = function
    | [] -> ()
    | (s : snapshot) :: rest ->
        Vs_stats.Table.add_row table
          ([
             Vs_stats.Table.fint s.window;
             Printf.sprintf "%g-%g" s.t_start s.t_end;
           ]
          @ List.map
              (fun c -> Vs_stats.Table.fint (delta_counter ~prev s c))
              counters
          @ [ pct "view.install-latency" s; pct "view.flush-stall" s ]);
        rows (Some s) rest
  in
  rows None (snapshots t);
  table

let to_text t = Vs_stats.Table.to_string (to_table t)
