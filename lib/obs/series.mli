(** Windowed time series over a recorded run — the continuous half of the
    telemetry plane (vsmon).

    Attach via [Sim.create ?series] (which installs it as a
    {!Recorder.add_sink} tap).  Every observed event folds into a live
    {!Metrics.deriv} registry; each time an event's timestamp crosses a
    window boundary the registry is scraped into an immutable cumulative
    snapshot.  Windows close {e lazily} — driven by observed event times,
    never by simulator timers — so attaching a series changes no event, no
    RNG draw, no timestamp: the run schedule with scraping on is identical
    to the run schedule with scraping off, and the snapshot sequence is
    byte-deterministic across identically-seeded runs. *)

type hist_scrape = {
  h_n : int;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
  h_mean : float;
}

type snapshot = {
  window : int;  (** index [k]: the simulated-time span [kΔ, (k+1)Δ) *)
  t_start : float;
  t_end : float;
  counters : (string * int) list;
      (** cumulative values at window close, sorted by name *)
  gauges : (string * float) list;
  hists : (string * hist_scrape) list;
}

type t

val create : ?capacity:int -> ?interval:float -> unit -> t
(** [create ()] — windows of [interval] simulated seconds (default [0.5]),
    newest [capacity] snapshots retained (default [1024]).  Raises
    [Invalid_argument] on a non-positive interval or capacity. *)

val default_interval : float

val observe : t -> time:float -> Event.t -> unit
(** The sink: fold one event, closing any windows its timestamp has moved
    past.  Events must arrive in non-decreasing time order (the recorder
    guarantees this).  Ignored after {!finish}. *)

val finish : t -> now:float -> unit
(** Close windows through the one containing [now] — call once at the end
    of a run so the final partial window is captured.  Idempotent. *)

val interval : t -> float

val capacity : t -> int

val count : t -> int
(** Snapshots ever taken; [count t > capacity t] signals ring
    truncation. *)

val events_observed : t -> int

val metrics : t -> Metrics.t
(** The live registry the fold maintains — end-of-run totals. *)

val snapshots : t -> snapshot list
(** Retained snapshots, oldest first. *)

val delta_counter : prev:snapshot option -> snapshot -> string -> int
(** Per-window counter delta between consecutive snapshots; [prev = None]
    treats the cumulative value as the delta (first window). *)

val hist_of : snapshot -> string -> hist_scrape option

val snapshot_to_json : snapshot -> Json.t

val to_json : t -> Json.t
(** Canonical JSON ([interval] / [windows] / [truncated] / [snapshots]) —
    byte-deterministic across identically-seeded runs. *)

val to_table : ?counters:string list -> t -> Vs_stats.Table.t
(** One row per retained window: span, per-window deltas of [counters]
    (default: sends, proposes, installs, retransmits), and the p99
    install-latency / flush-stall costs. *)

val to_text : t -> string
