(* Flush-stall attribution — splitting each view installation's latency into
   the three waits of the paper's cost model (Sections 2 and 6):

   - propose-wait:    first Propose of the view until this member's own
                      flush-ack — the member is draining and flushing its
                      unstable messages;
   - flush-ack-wait:  this member's flush-ack until the last flush-ack of
                      the view it had to hear — waiting on the slowest peer
                      to reach the sync barrier;
   - stability-wait:  last flush-ack until this member's install — the
                      coordinator's stability decision and the install
                      delivery itself.

   The segments are reconstructed from the recorded Propose / Flush /
   Install events alone (one forward pass, events in time order), so the
   report works on any Protocol-level recording — live runs, corpus repros,
   replayed traces — with no extra instrumentation in the protocol. *)

type attr = {
  a_proc : Event.proc;
  a_vid : Event.vid;
  a_time : float;  (* install time *)
  a_propose_wait : float;
  a_flush_wait : float;
  a_stability_wait : float;
}

let total a = a.a_propose_wait +. a.a_flush_wait +. a.a_stability_wait

let of_entries (entries : Recorder.entry list) =
  (* first propose time per vid *)
  let proposed : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* this member's first flush-ack per (proc, vid) *)
  let self_flush : (string, float) Hashtbl.t = Hashtbl.create 32 in
  (* newest flush-ack seen so far per vid — at an Install event this is by
     construction the last flush at or before the install *)
  let last_flush : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun (e : Recorder.entry) ->
      match e.event with
      | Event.Propose { vid; _ } ->
          let key = Event.vid_to_string vid in
          if not (Hashtbl.mem proposed key) then
            Hashtbl.replace proposed key e.time
      | Event.Flush { proc; vid; _ } ->
          let vkey = Event.vid_to_string vid in
          let skey = Event.proc_to_string proc ^ "|" ^ vkey in
          if not (Hashtbl.mem self_flush skey) then
            Hashtbl.replace self_flush skey e.time;
          Hashtbl.replace last_flush vkey e.time
      | Event.Install { proc; vid; _ } -> (
          let vkey = Event.vid_to_string vid in
          match Hashtbl.find_opt proposed vkey with
          | None -> ()  (* truncated recording: no propose retained *)
          | Some t_prop ->
              let t_install = e.time in
              let skey = Event.proc_to_string proc ^ "|" ^ vkey in
              let t_self =
                match Hashtbl.find_opt self_flush skey with
                | Some t -> t
                | None -> t_prop  (* no own flush: joined mid-change *)
              in
              let t_last =
                match Hashtbl.find_opt last_flush vkey with
                | Some t -> max t t_self
                | None -> t_self
              in
              (* Clamp each boundary into [t_prop, t_install] so segments
                 stay non-negative even on reordered/partial recordings. *)
              let clamp x = min t_install (max t_prop x) in
              let t_self = clamp t_self and t_last = clamp t_last in
              let t_last = max t_last t_self in
              acc :=
                {
                  a_proc = proc;
                  a_vid = vid;
                  a_time = t_install;
                  a_propose_wait = t_self -. t_prop;
                  a_flush_wait = t_last -. t_self;
                  a_stability_wait = t_install -. t_last;
                }
                :: !acc)
      | _ -> ())
    entries;
  List.rev !acc

(* --- per-window aggregation ---------------------------------------------- *)

type window_row = {
  w_index : int;
  w_installs : int;
  w_propose : float;  (* summed seconds per segment *)
  w_flush : float;
  w_stability : float;
}

let windows ~interval attrs =
  if not (interval > 0.) then invalid_arg "Stall.windows: interval must be > 0";
  (* Attrs arrive in install-time order, so consecutive grouping suffices —
     no hashtable enumeration, deterministic output order. *)
  let close acc = function
    | None -> acc
    | Some row -> row :: acc
  in
  let step (acc, current) a =
    let idx = int_of_float (floor (a.a_time /. interval)) in
    let acc, row =
      match current with
      | Some r when r.w_index = idx -> (acc, r)
      | (Some _ | None) as prev ->
          ( close acc prev,
            {
              w_index = idx;
              w_installs = 0;
              w_propose = 0.;
              w_flush = 0.;
              w_stability = 0.;
            } )
    in
    ( acc,
      Some
        {
          row with
          w_installs = row.w_installs + 1;
          w_propose = row.w_propose +. a.a_propose_wait;
          w_flush = row.w_flush +. a.a_flush_wait;
          w_stability = row.w_stability +. a.a_stability_wait;
        } )
  in
  let acc, current = List.fold_left step ([], None) attrs in
  List.rev (close acc current)

let window_total r = r.w_propose +. r.w_flush +. r.w_stability

(* --- rendering ----------------------------------------------------------- *)

let to_table ~interval attrs =
  let table =
    Vs_stats.Table.create
      ~title:
        (Printf.sprintf
           "stall attribution: install latency split per %g s window \
            (propose-wait / flush-ack-wait / stability-wait)"
           interval)
      ~columns:
        [
          "window";
          "installs";
          "propose (s)";
          "flush-ack (s)";
          "stability (s)";
          "dominant";
        ]
  in
  List.iter
    (fun r ->
      let dominant =
        if r.w_propose >= r.w_flush && r.w_propose >= r.w_stability then
          "propose"
        else if r.w_flush >= r.w_stability then "flush-ack"
        else "stability"
      in
      Vs_stats.Table.add_row table
        [
          Vs_stats.Table.fint r.w_index;
          Vs_stats.Table.fint r.w_installs;
          Vs_stats.Table.ffloat ~decimals:4 r.w_propose;
          Vs_stats.Table.ffloat ~decimals:4 r.w_flush;
          Vs_stats.Table.ffloat ~decimals:4 r.w_stability;
          dominant;
        ])
    (windows ~interval attrs);
  table

let to_json ~interval attrs =
  let row r =
    Json.Obj
      [
        ("window", Json.Int r.w_index);
        ("installs", Json.Int r.w_installs);
        ("propose_wait", Json.Float r.w_propose);
        ("flush_ack_wait", Json.Float r.w_flush);
        ("stability_wait", Json.Float r.w_stability);
      ]
  in
  Json.Obj
    [
      ("interval", Json.Float interval);
      ("windows", Json.Arr (List.map row (windows ~interval attrs)));
    ]
