(** Flush-stall attribution: split each view installation's latency into
    the paper's three cost-model waits, reconstructed from recorded
    Propose / Flush / Install events alone.

    For an install of view [v] at member [p]:

    - {b propose-wait} — first [Propose] of [v] to [p]'s own [Flush]: the
      member draining and flushing its unstable messages;
    - {b flush-ack-wait} — [p]'s [Flush] to the last [Flush] of [v] before
      the install: waiting on the slowest peer to reach the sync barrier;
    - {b stability-wait} — last [Flush] to [p]'s [Install]: the stability
      decision and install delivery.

    The three segments sum to the install latency that
    [Metrics] records as [view.install-latency]. *)

type attr = {
  a_proc : Event.proc;
  a_vid : Event.vid;
  a_time : float;  (** install time *)
  a_propose_wait : float;
  a_flush_wait : float;
  a_stability_wait : float;
}

val total : attr -> float
(** Sum of the three segments = the install's latency. *)

val of_entries : Recorder.entry list -> attr list
(** One forward pass; result in install order.  Installs whose [Propose]
    was not retained (truncated ring recordings) are skipped; segments are
    clamped non-negative on partial recordings. *)

type window_row = {
  w_index : int;
  w_installs : int;
  w_propose : float;  (** summed seconds per segment over the window *)
  w_flush : float;
  w_stability : float;
}

val windows : interval:float -> attr list -> window_row list
(** Group attributions into [interval]-second windows of install time,
    ascending, windows with no installs omitted.  Raises
    [Invalid_argument] on a non-positive interval. *)

val window_total : window_row -> float

val to_table : interval:float -> attr list -> Vs_stats.Table.t

val to_json : interval:float -> attr list -> Json.t
