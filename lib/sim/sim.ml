module Rng = Vs_util.Rng
module Heap = Vs_util.Heap

type handle = {
  fire_at : float;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
  owner : t;
}

and t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable live : int;  (* scheduled and not yet fired or cancelled *)
  queue : handle Heap.t;
  root_rng : Rng.t;
  obs : Vs_obs.Recorder.t;
  series : Vs_obs.Series.t option;
  tracer : Trace.t;
}

let compare_handle a b =
  let c = Float.compare a.fire_at b.fire_at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) ?obs ?series () =
  let obs =
    match obs with Some r -> r | None -> Vs_obs.Recorder.create ()
  in
  (* The vsmon series taps the recorded stream via the recorder sink: off
     (None) by default, and when on it only reads timestamps already chosen
     by the schedule — no timers, no RNG draws — so attaching it leaves the
     run byte-identical. *)
  (match series with
  | None -> ()
  | Some s ->
      ignore
        (Vs_obs.Recorder.add_sink obs (Vs_obs.Series.observe s)
          : Vs_obs.Recorder.sink_handle));
  {
    clock = 0.;
    next_seq = 0;
    processed = 0;
    live = 0;
    queue = Heap.create ~cmp:compare_handle;
    root_rng = Rng.create seed;
    obs;
    series;
    tracer = Trace.of_recorder obs;
  }

let now t = t.clock

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let trace t = t.tracer

let obs t = t.obs

let series t = t.series

let finish_series t =
  match t.series with
  | None -> ()
  | Some s -> Vs_obs.Series.finish s ~now:t.clock

let emit t event = Vs_obs.Recorder.emit t.obs ~time:t.clock event

let obs_on t = Vs_obs.Recorder.protocol_on t.obs

(* vslint: alloc-free *)
let obs_full t = Vs_obs.Recorder.full_on t.obs

let record t ~component message =
  Trace.record t.tracer ~time:t.clock ~component message

let at t fire_at thunk =
  if fire_at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" fire_at t.clock);
  let h = { fire_at; seq = t.next_seq; thunk; cancelled = false; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue h;
  h

let after t delay thunk =
  if delay < 0. then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) thunk

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    h.owner.live <- h.owner.live - 1
  end

(* Cancelled entries are skipped lazily on pop; the live count is maintained
   eagerly on push/cancel/fire so this is O(1). *)
let pending t = t.live

let events_processed t = t.processed

type stop_reason = Quiescent | Reached_until | Event_budget

let step t =
  let rec pop () =
    match Heap.pop t.queue with
    | None -> None
    | Some h when h.cancelled -> pop ()
    | Some h -> Some h
  in
  match pop () with
  | None -> false
  | Some h ->
      t.clock <- h.fire_at;
      t.processed <- t.processed + 1;
      t.live <- t.live - 1;
      h.thunk ();
      true

let run ?until ?max_events t =
  let budget = match max_events with Some n -> n | None -> max_int in
  let horizon = match until with Some u -> u | None -> infinity in
  let rec loop remaining =
    if remaining <= 0 then Event_budget
    else
      let next_time =
        let rec peek () =
          match Heap.peek t.queue with
          | Some h when h.cancelled ->
              ignore (Heap.pop t.queue);
              peek ()
          | Some h -> Some h.fire_at
          | None -> None
        in
        peek ()
      in
      match next_time with
      | None -> Quiescent
      | Some ft when ft > horizon ->
          t.clock <- max t.clock horizon;
          Reached_until
      | Some _ ->
          ignore (step t);
          loop (remaining - 1)
  in
  loop budget
