(** Deterministic discrete-event simulator.

    The whole stack — network, failure detector, membership, view synchrony,
    applications — runs as callbacks scheduled on one of these engines.
    Events with equal timestamps fire in scheduling order, and all randomness
    flows from the engine's seeded {!Rng}, so two runs with the same seed are
    bit-identical. *)

type t

type handle
(** A scheduled event; can be cancelled before it fires. *)

val create :
  ?seed:int64 -> ?obs:Vs_obs.Recorder.t -> ?series:Vs_obs.Series.t -> unit -> t
(** [create ?seed ()] makes an engine at virtual time 0. Default seed 1.
    [?obs] supplies the per-run event recorder; a fresh one at the
    process-wide default level is created when omitted.  [?series] attaches
    a vsmon windowed time series as the recorder's sink — off by default,
    and byte-invisible to the run when on (the series never schedules
    timers or draws randomness; call {!finish_series} at end of run to
    close the last partial window). *)

val now : t -> float
(** Current virtual time (seconds). *)

val rng : t -> Vs_util.Rng.t
(** The engine's root generator. *)

val fork_rng : t -> Vs_util.Rng.t
(** An independent generator split off the root — give one to each component
    that needs private randomness. *)

val trace : t -> Trace.t

val obs : t -> Vs_obs.Recorder.t
(** The engine's event recorder. *)

val series : t -> Vs_obs.Series.t option
(** The attached vsmon series, if any. *)

val finish_series : t -> unit
(** Close the series' final partial window at the current virtual time —
    no-op when no series is attached (idempotent otherwise). *)

val emit : t -> Vs_obs.Event.t -> unit
(** Emit a typed event at the current virtual time (no-op when recording is
    off). *)

val obs_on : t -> bool
(** Recording at [Protocol] level or above. *)

val obs_full : t -> bool
(** Recording at [Full] level — guards per-message data-path events so that
    non-[Full] runs pay zero allocations per send. *)

val record : t -> component:string -> string -> unit
(** Record a trace entry at the current virtual time.
    @deprecated prefer [emit] with a typed event. *)

val after : t -> float -> (unit -> unit) -> handle
(** [after t d f] schedules [f] at [now t +. d]. [d] must be >= 0. *)

val at : t -> float -> (unit -> unit) -> handle
(** Schedule at an absolute time, which must not lie in the past. *)

val cancel : handle -> unit
(** Prevent a pending event from firing; no-op if already fired/cancelled. *)

val pending : t -> int
(** Number of scheduled, uncancelled events.  O(1): the count is maintained
    on schedule/cancel/fire rather than recomputed from the queue. *)

val events_processed : t -> int

type stop_reason =
  | Quiescent      (** no more events *)
  | Reached_until  (** hit the [until] horizon *)
  | Event_budget   (** processed [max_events] events *)

val run : ?until:float -> ?max_events:int -> t -> stop_reason
(** Process events in timestamp order. With [until], stops (without advancing
    the clock past [until]) once the next event is later than [until]. *)

val step : t -> bool
(** Process a single event; [false] if none pending. *)
