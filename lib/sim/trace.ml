(* Compatibility shim over Vs_obs.

   The historical trace was untyped (time, component, message) triples.  The
   observability layer (lib/obs) now owns the event stream; this module
   renders it back into the old shape for existing readers.  [record] turns
   into a typed [Note] event, and [entries] materializes the rendered view
   once per recorder generation — [by_component] reuses it instead of paying
   a full List.rev per query. *)

module Recorder = Vs_obs.Recorder
module Event = Vs_obs.Event

type entry = { time : float; component : string; message : string }

type t = {
  recorder : Recorder.t;
  mutable cache : entry list;
  mutable cache_count : int;
}

let of_recorder recorder = { recorder; cache = []; cache_count = 0 }

let create () = of_recorder (Recorder.create ())

let recorder t = t.recorder

let record t ~time ~component message =
  Recorder.emit t.recorder ~time (Event.Note { component; message })

let render_entry (e : Recorder.entry) =
  {
    time = e.time;
    component = Event.component e.event;
    message = Event.render e.event;
  }

let entries t =
  let count = Recorder.count t.recorder in
  if t.cache_count <> count then begin
    t.cache <- List.map render_entry (Recorder.entries t.recorder);
    t.cache_count <- count
  end;
  t.cache

let by_component t component =
  List.filter (fun e -> String.equal e.component component) (entries t)

let length t = Recorder.count t.recorder

let clear t =
  Recorder.clear t.recorder;
  t.cache <- [];
  t.cache_count <- 0

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f] %-8s %s" e.time e.component e.message
