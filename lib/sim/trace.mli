(** Legacy trace view — a thin compatibility shim over [Vs_obs].

    @deprecated New code should emit typed events via [Sim.emit] /
    [Vs_obs.Recorder] and read them back with [Vs_obs.Recorder.entries];
    this module merely renders that stream into the historical
    (time, component, message) triples for existing readers.  [record]
    becomes a typed [Note] event on the underlying recorder. *)

type entry = {
  time : float;        (** virtual time of the event *)
  component : string;  (** e.g. "vsync", "fd", "net" *)
  message : string;
}

type t

val create : unit -> t

val of_recorder : Vs_obs.Recorder.t -> t
(** Wrap an existing recorder; entries recorded on either side are visible
    through both. *)

val recorder : t -> Vs_obs.Recorder.t

val record : t -> time:float -> component:string -> string -> unit

val entries : t -> entry list
(** All entries rendered oldest first.  The rendered list is materialized
    once per recorder generation and shared by all readers (including
    {!by_component}). *)

val by_component : t -> string -> entry list

val length : t -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
