type t = { mutable rev_samples : float list; mutable n : int; mutable sum : float }

let create () = { rev_samples = []; n = 0; sum = 0. }

let add t x =
  t.rev_samples <- x :: t.rev_samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let min_value t = List.fold_left min infinity t.rev_samples

let max_value t = List.fold_left max neg_infinity t.rev_samples

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let sorted = List.sort Float.compare t.rev_samples in
    let rank =
      int_of_float (ceil (p *. float_of_int t.n)) - 1
      |> max 0
      |> min (t.n - 1)
    in
    List.nth sorted rank
  end

let stddev t =
  if t.n < 2 then 0.
  else begin
    let m = mean t in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. t.rev_samples in
    sqrt (sq /. float_of_int (t.n - 1))
  end

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t
