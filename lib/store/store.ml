type t = (int * string, string) Hashtbl.t

let create () : t = Hashtbl.create 64

let put t ~node ~key value = Hashtbl.replace t (node, key) value

let get t ~node ~key = Hashtbl.find_opt t (node, key)

let delete t ~node ~key = Hashtbl.remove t (node, key)

let keys t ~node =
  (* vslint: allow D2 — key projection; the result is sorted by String.compare below *)
  Hashtbl.fold (fun (n, k) _ acc -> if n = node then k :: acc else acc) t []
  |> List.sort_uniq String.compare

let wipe_node t ~node =
  List.iter (fun key -> delete t ~node ~key) (keys t ~node)
