(* Deterministic views of Hashtbl contents.

   Hashtbl enumeration order is a function of hash-bucket layout, not of
   anything the protocol reasons about, so vslint (rule D2) rejects raw
   iter/fold sites.  These helpers are the sanctioned escape hatch: they
   enumerate once and immediately impose the caller's total order, so the
   result is independent of insertion history. *)

let sorted_bindings ~cmp tbl =
  (* vslint: allow D2 — the fold's result is sorted by [cmp] before anyone sees it *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, _) (kb, _) -> cmp ka kb)

let sorted_keys ~cmp tbl =
  (* vslint: allow D2 — the fold's result is sorted by [cmp] before anyone sees it *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort cmp
