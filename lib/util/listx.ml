let rec dedup_sorted ~cmp = function
  | a :: b :: rest when cmp a b = 0 -> dedup_sorted ~cmp (b :: rest)
  | a :: rest -> a :: dedup_sorted ~cmp rest
  | [] -> []

let sorted_set ~cmp xs = dedup_sorted ~cmp (List.sort cmp xs)

let rec union ~cmp a b =
  match (a, b) with
  | [], ys -> ys
  | xs, [] -> xs
  | x :: xs, y :: ys ->
      let c = cmp x y in
      if c < 0 then x :: union ~cmp xs (y :: ys)
      else if c > 0 then y :: union ~cmp (x :: xs) ys
      else x :: union ~cmp xs ys

let rec inter ~cmp a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      let c = cmp x y in
      if c < 0 then inter ~cmp xs (y :: ys)
      else if c > 0 then inter ~cmp (x :: xs) ys
      else x :: inter ~cmp xs ys

let rec diff ~cmp a b =
  match (a, b) with
  | [], _ -> []
  | xs, [] -> xs
  | x :: xs, y :: ys ->
      let c = cmp x y in
      if c < 0 then x :: diff ~cmp xs (y :: ys)
      else if c > 0 then diff ~cmp (x :: xs) ys
      else diff ~cmp xs ys

let subset ~cmp a b = diff ~cmp a b = []

let equal_set ~cmp a b = List.compare cmp a b = 0

let rec mem ~cmp x = function
  | [] -> false
  | y :: ys ->
      let c = cmp x y in
      if c = 0 then true else if c < 0 then false else mem ~cmp x ys

let group_by ~key ~cmp_key xs =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.add tbl (key x) (i, x)) xs;
  let keys =
    sorted_set ~cmp:cmp_key (List.map key xs)
  in
  let group k =
    Hashtbl.find_all tbl k
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    |> List.map snd
  in
  List.map (fun k -> (k, group k)) keys

let init = List.init

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs
