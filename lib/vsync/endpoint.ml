module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module Fd = Vs_fd.Fd
module View = Vs_gms.View
module Estimator = Vs_gms.Estimator
module Listx = Vs_util.Listx
module Rng = Vs_util.Rng
module Hashtblx = Vs_util.Hashtblx

type order = Fifo | Total | Causal

type config = {
  fd : Fd.config;
  stability : float;
  nag_period : float;
  flush_timeout : float;
  nack_delay : float;
  one_at_a_time : bool;
  stability_interval : float option;
  retry_backoff : float;
  retry_backoff_max : float;
  retry_jitter : float;
  retry_limit : int;
  batching : bool;
  batch_window : float;
  batch_max : int;
  pipeline_depth : int;
}

let default_config =
  {
    fd = Fd.default_config;
    stability = 0.150;
    nag_period = 0.200;
    flush_timeout = 0.300;
    nack_delay = 0.025;
    one_at_a_time = false;
    stability_interval = Some 0.050;
    retry_backoff = 0.040;
    retry_backoff_max = 0.400;
    retry_jitter = 0.25;
    retry_limit = 8;
    batching = false;
    batch_window = 0.002;
    batch_max = 64;
    pipeline_depth = 1;
  }

type 'ann view_event = {
  view : View.t;
  annotations : (Proc_id.t * 'ann option) list;
  priors : (Proc_id.t * View.Id.t) list;
}

type ('a, 'ann) callbacks = {
  on_view : 'ann view_event -> unit;
  on_message : sender:Proc_id.t -> 'a -> unit;
}

type stats = {
  views_installed : int;
  proposals_started : int;
  data_sent : int;
  delivered : int;
  sync_delivered : int;
  stale_dropped : int;
  to_dropped : int;
  nacks_sent : int;
  retransmits : int;
  peer_retransmits : int;
  stabilized : int;
  ctl_retries : int;
  ctl_abandoned : int;
  batches_sent : int;
}

(* Per-sender incoming stream within the current view.  [log] keeps every
   data message seen (delivered or not): it is what the flush reports.
   [next] is the lowest undelivered sequence number.  [trimmed] is the
   stability watermark: every seq below it has already been removed from
   [log], so trimming on a new stability floor walks only [trimmed, floor)
   instead of snapshotting and sorting the whole log per gossip report. *)
type 'a stream = {
  mutable next : int;
  buffer : (int, 'a Wire.data) Hashtbl.t;
  log : (int, 'a Wire.data) Hashtbl.t;
  mutable trimmed : int;
  mutable nack_armed : bool;
  mutable nack_round : int;
      (* how many NACK rounds the current gap has survived; selects the
         retransmission target — round 0 asks the original sender, later
         rounds rotate over the other members (peer-served recovery) *)
}

(* What a member reported in its flush ack: the view it comes from, its
   annotation, and every data message of that view it has seen. *)
type ('a, 'ann) ack = {
  a_from : View.Id.t;
  a_ann : 'ann option;
  a_seen : 'a Wire.data list;
}

type ('a, 'ann) proposal = {
  p_vid : View.Id.t;
  p_members : Proc_id.t list;
  p_acks : (Proc_id.t, ('a, 'ann) ack) Hashtbl.t;
  mutable p_timer : Sim.handle option;
}

type phase = Active | Flushing of View.Id.t

(* One unacked control-plane send awaiting retry.  The payload and the
   supersession test live in the retry closure; the entry itself is what
   {!Ctl_ack} and {!stop_stack} need to cancel it. *)
type ctl_pending = {
  c_dst : Proc_id.t;
  mutable c_attempts : int;
  mutable c_delay : float;
  mutable c_timer : Sim.handle option;
}

type ('a, 'ann) t = {
  sim : Sim.t;
  net : ('a, 'ann) Wire.t Net.t;
  me : Proc_id.t;
  config : config;
  rng : Rng.t;
  mutable callbacks : ('a, 'ann) callbacks;
  mutable view : View.t;
  mutable phase : phase;
  mutable acked : View.Id.t;  (* highest proposal acked / view installed *)
  mutable max_epoch : int;
  mutable send_seq : int;
  mutable to_seq : int;  (* my next total-order request number *)
  (* coordinator side: per-origin relay sequencing *)
  to_streams : (Proc_id.t, int ref * (int, 'a) Hashtbl.t) Hashtbl.t;
  streams : (Proc_id.t, 'a stream) Hashtbl.t;
  pending_out : (order * 'a) Queue.t;  (* queued while flushing *)
  (* reliable control plane: unacked Propose/Flush_ack/Install/To_request *)
  mutable ctl_rid : int;
  ctl_pending : (int, ctl_pending) Hashtbl.t;
  mutable stash : 'a Wire.data list;
      (* data for the view being installed that raced ahead of the Install *)
  stash_to : (Proc_id.t * int * 'a) Queue.t;
      (* total-order requests for the view being installed that reached us —
         its future coordinator — before our own Install.  A queue: relay
         order is arrival order, and stashing must stay O(1) per request
         even when hundreds arrive during one long flush *)
  mutable ann : 'ann option;
  mutable proposal : ('a, 'ann) proposal option;
  mutable fd : Fd.t option;
  mutable est : Estimator.t option;
  mutable alive : bool;
  (* stability tracking: each member's latest delivered-prefix vector,
     keyed by sender for O(1) lookup inside the floor fold *)
  stable_vectors : (Proc_id.t, (Proc_id.t, int) Hashtbl.t) Hashtbl.t;
  (* NACK retransmission targets: the current view's members minus me, in
     member order, cached per view so round-robin target selection does not
     rebuild (and index into) a list on every armed gap *)
  mutable nack_peers : Proc_id.t array;
  (* batched data plane (config.batching): outgoing data buffered per
     flush round, newest first; sequence numbers were assigned at multicast
     time so identity is independent of when the batch ships *)
  mutable batch_rev : 'a Wire.data list;
  mutable batch_len : int;
  mutable batch_timer : Sim.handle option;
  mutable batch_round : int;
  rounds_inflight : (int * int) Queue.t;
      (* (round, last seq) of shipped but not-yet-stable rounds; bounded by
         config.pipeline_depth when stability gossip is on *)
  mutable to_batch_rev : 'a list;
  mutable to_batch_len : int;
  mutable to_batch_rseq0 : int;
  mutable to_batch_timer : Sim.handle option;
  (* stats *)
  mutable s_views : int;
  mutable s_proposals : int;
  mutable s_data_sent : int;
  mutable s_delivered : int;
  mutable s_sync_delivered : int;
  mutable s_stale : int;
  mutable s_to_dropped : int;
  mutable s_nacks : int;
  mutable s_retransmits : int;
  mutable s_peer_retransmits : int;
  mutable s_stabilized : int;
  mutable s_ctl_retries : int;
  mutable s_ctl_abandoned : int;
  mutable s_batches : int;
}

let me t = t.me

let view t = t.view

let is_blocked t = match t.phase with Flushing _ -> true | Active -> false

let is_alive t = t.alive

let stats t =
  {
    views_installed = t.s_views;
    proposals_started = t.s_proposals;
    data_sent = t.s_data_sent;
    delivered = t.s_delivered;
    sync_delivered = t.s_sync_delivered;
    stale_dropped = t.s_stale;
    to_dropped = t.s_to_dropped;
    nacks_sent = t.s_nacks;
    retransmits = t.s_retransmits;
    peer_retransmits = t.s_peer_retransmits;
    stabilized = t.s_stabilized;
    ctl_retries = t.s_ctl_retries;
    ctl_abandoned = t.s_ctl_abandoned;
    batches_sent = t.s_batches;
  }

let set_annotation t ann = t.ann <- ann

let log_event t msg =
  Sim.record t.sim ~component:"vsync"
    (Printf.sprintf "%s %s" (Proc_id.to_string t.me) msg)

let obs_me t = Proc_id.to_obs t.me

let unicast t dst payload = Net.send t.net ~src:t.me ~dst payload

(* ---------- reliable control plane ----------

   Membership traffic (Propose, Flush_ack, Install) and total-order requests
   are each sent exactly once by the base protocol, so any loss either stalls
   view installation until [flush_timeout] or silently drops a message.  The
   reliable layer wraps such sends in {!Wire.Reliable}: the receiver acks
   every copy, and the sender re-sends with exponential backoff and jitter
   until acked, superseded (the [is_done] test — e.g. a higher view id got
   accepted), the failure detector stops listing the peer, or [retry_limit]
   is exhausted.  Inner payloads are idempotent on the receiving side, so
   duplicated deliveries (lost acks) are harmless. *)

let ctl_peer_listed t dst =
  Proc_id.equal dst t.me
  ||
  match t.fd with
  | Some fd -> List.exists (Proc_id.equal dst) (Fd.reachable fd)
  | None -> true

let ctl_cancel entry =
  match entry.c_timer with Some h -> Sim.cancel h | None -> ()

let rec ctl_arm t rid entry payload ~is_done =
  let jitter = Rng.uniform t.rng (-.t.config.retry_jitter) t.config.retry_jitter in
  let delay = entry.c_delay *. (1.0 +. jitter) in
  entry.c_timer <-
    Some
      (Sim.after t.sim delay (fun () ->
           entry.c_timer <- None;
           if t.alive && Hashtbl.mem t.ctl_pending rid then begin
             if is_done () then Hashtbl.remove t.ctl_pending rid
             else if
               entry.c_attempts >= t.config.retry_limit
               || not (ctl_peer_listed t entry.c_dst)
             then begin
               t.s_ctl_abandoned <- t.s_ctl_abandoned + 1;
               Hashtbl.remove t.ctl_pending rid
             end
             else begin
               entry.c_attempts <- entry.c_attempts + 1;
               entry.c_delay <-
                 Float.min t.config.retry_backoff_max (entry.c_delay *. 2.0);
               t.s_ctl_retries <- t.s_ctl_retries + 1;
               Sim.emit t.sim
                 (Vs_obs.Event.Backoff
                    {
                      proc = obs_me t;
                      dst = Proc_id.to_obs entry.c_dst;
                      attempt = entry.c_attempts;
                      delay = entry.c_delay;
                    });
               unicast t entry.c_dst (Wire.Reliable { rid; payload });
               ctl_arm t rid entry payload ~is_done
             end
           end))

(* Send [payload] to [dst], retrying until acked or moot.  [is_done] is
   re-evaluated before each retry: it must return [true] once protocol
   progress has made the send irrelevant.  Self-sends bypass the machinery —
   the simulated network never drops them. *)
let ctl_send t dst payload ~is_done =
  if Proc_id.equal dst t.me then unicast t dst payload
  else begin
    let rid = t.ctl_rid in
    t.ctl_rid <- t.ctl_rid + 1;
    let entry =
      {
        c_dst = dst;
        c_attempts = 0;
        c_delay = t.config.retry_backoff;
        c_timer = None;
      }
    in
    Hashtbl.replace t.ctl_pending rid entry;
    unicast t dst (Wire.Reliable { rid; payload });
    ctl_arm t rid entry payload ~is_done
  end

let ctl_acked t rid =
  match Hashtbl.find_opt t.ctl_pending rid with
  | Some entry ->
      ctl_cancel entry;
      Hashtbl.remove t.ctl_pending rid
  | None -> ()

let ctl_reset t =
  (* vslint: allow D2 — cancel-only sweep; timer cancellation commutes *)
  Hashtbl.iter (fun _ entry -> ctl_cancel entry) t.ctl_pending;
  Hashtbl.reset t.ctl_pending

let stream_for t sender =
  match Hashtbl.find_opt t.streams sender with
  | Some s -> s
  | None ->
      let s =
        {
          next = 0;
          buffer = Hashtbl.create 8;
          log = Hashtbl.create 8;
          trimmed = 0;
          nack_armed = false;
          nack_round = 0;
        }
      in
      Hashtbl.add t.streams sender s;
      s

(* The view's stability floor for a sender: the minimum delivered prefix
   reported by every current member (0 until everyone has reported).
   Messages below it are delivered everywhere, so flush reports can omit
   them and logs can drop them.  Vectors are stored as per-member hash
   tables so the fold is O(members), not O(members * senders) as the old
   assoc-list scan was — the floor is recomputed per sender on every
   stability tick, which made the scan quadratic on the gossip hot path. *)
let floor_from_tables tables members sender =
  List.fold_left
    (fun floor member ->
      let reported =
        match Hashtbl.find_opt tables member with
        | Some (table : (Proc_id.t, int) Hashtbl.t) -> (
            match Hashtbl.find_opt table sender with Some n -> n | None -> 0)
        | None -> 0
      in
      min floor reported)
    max_int members

let stability_floor t sender =
  floor_from_tables t.stable_vectors t.view.View.members sender

(* Test hook: the floor as computed from raw (member, vector) assoc lists,
   through the same table-based fold the endpoint uses — lets tests pin the
   rewrite against an independent reference without building an endpoint. *)
let stability_floor_of ~vectors ~members ~sender =
  let tables = Hashtbl.create (List.length vectors) in
  List.iter
    (fun (member, vector) ->
      let table = Hashtbl.create (List.length vector) in
      List.iter (fun (s, n) -> Hashtbl.replace table s n) vector;
      Hashtbl.replace tables member table)
    vectors;
  floor_from_tables tables members sender

(* Everything this process has seen (delivered or buffered) in the current
   view above the stability floor, in canonical (sender, seq) order — the
   flush report. *)
let all_seen t =
  Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.streams
  |> List.concat_map (fun (sender, s) ->
         let floor =
           match t.config.stability_interval with
           | Some _ -> stability_floor t sender
           | None -> 0
         in
         Hashtblx.sorted_bindings ~cmp:Int.compare s.log
         |> List.filter_map (fun (seq, d) ->
                if seq >= floor then Some d else None))
  |> List.sort Wire.compare_data

let deliver_user t (d : 'a Wire.data) =
  t.s_delivered <- t.s_delivered + 1;
  match d.body with
  | Wire.User u -> t.callbacks.on_message ~sender:d.sender u
  | Wire.Relay { orig; user } -> t.callbacks.on_message ~sender:orig user
  | Wire.Causal { user; _ } -> t.callbacks.on_message ~sender:d.sender user

(* A causal message is deliverable once this process's delivered prefixes
   dominate the sender's at multicast time. *)
let causally_ready t (d : 'a Wire.data) =
  match d.Wire.body with
  | Wire.User _ | Wire.Relay _ -> true
  | Wire.Causal { deps; _ } ->
      List.for_all
        (fun (q, n) ->
          Proc_id.equal q d.Wire.sender
          ||
          match Hashtbl.find_opt t.streams q with
          | Some s -> s.next >= n
          | None -> n <= 0)
        deps

(* Deliver buffered messages in FIFO order per stream while contiguous and
   causally ready; a delivery can unblock other streams, so iterate to a
   fixpoint. *)
let drain_all t =
  let progress = ref true in
  while !progress do
    progress := false;
    (* Snapshot the streams in Proc_id order each pass: cross-stream
       delivery order must not depend on hash-bucket layout, and the app's
       on_message callback is free to multicast (which must not observe a
       table mid-iteration). *)
    List.iter
      (fun (_, s) ->
        let continue_stream = ref true in
        while !continue_stream do
          match Hashtbl.find_opt s.buffer s.next with
          | Some d when causally_ready t d ->
              Hashtbl.remove s.buffer s.next;
              s.next <- s.next + 1;
              deliver_user t d;
              progress := true
          | Some _ | None -> continue_stream := false
        done)
      (Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.streams)
  done

(* Where to send the [round]-th NACK for a gap in [sender]'s stream: the
   original sender first, then round-robin over the other view members —
   any member that logged the messages can serve them, so a crashed
   sender's tail stays recoverable until the flush.  The peer list is
   cached as an array per installed view: rebuilding it (and List.nth-ing
   into it) on every NACK round was O(members) per gap check, and the
   rotation must not pay that on a hot recovery path.  Array order is the
   view's member order, so targets are byte-identical to the old
   list-based selection. *)
let live_peers_array ~me ~members =
  Array.of_list (List.filter (fun m -> not (Proc_id.equal m me)) members)

let nack_target_in ~peers ~sender round =
  if round = 0 then sender
  else
    let n = Array.length peers in
    if n = 0 then sender else peers.(round mod n)

let nack_target t sender round =
  nack_target_in ~peers:t.nack_peers ~sender round

(* Test hook: the first [rounds] targets for a gap in [sender]'s stream as
   seen by [me] in a view with [members] — pins the cached-array rotation
   against the old list-based reference. *)
let nack_targets_of ~me ~members ~sender ~rounds =
  let peers = live_peers_array ~me ~members in
  List.init rounds (fun round -> nack_target_in ~peers ~sender round)

let rec arm_nack t sender s =
  if (not s.nack_armed) && Hashtbl.length s.buffer > 0 then begin
    s.nack_armed <- true;
    let vid_at_arm = t.view.View.id in
    ignore
      (Sim.after t.sim t.config.nack_delay (fun () ->
           s.nack_armed <- false;
           if
             t.alive
             && View.Id.equal t.view.View.id vid_at_arm
             && Hashtbl.length s.buffer > 0
           then begin
             let max_buffered =
               (* vslint: allow D2 — commutative fold (max) *)
               Hashtbl.fold (fun seq _ acc -> max seq acc) s.buffer (-1)
             in
             let missing = ref [] in
             for seq = max_buffered - 1 downto s.next do
               if not (Hashtbl.mem s.log seq) then missing := seq :: !missing
             done;
             if !missing <> [] then begin
               t.s_nacks <- t.s_nacks + 1;
               unicast t
                 (nack_target t sender s.nack_round)
                 (Wire.Nack { vid = vid_at_arm; sender; missing = !missing });
               s.nack_round <- s.nack_round + 1
             end;
             arm_nack t sender s
           end
           else if Hashtbl.length s.buffer = 0 then s.nack_round <- 0))
  end

let members_iter t f = List.iter f t.view.View.members

(* ---------- batched data plane ----------

   With [config.batching], outgoing data messages are buffered and shipped
   as one {!Wire.Batch} per view member per *flush round*: a round closes
   when it reaches [batch_max] messages or [batch_window] elapses since the
   first buffered message.  Sequence numbers (and therefore identity,
   ordering, flush reports and NACK recovery) were already assigned at
   multicast time, so batching changes only how many wire messages carry
   the stream — never what the stream is.

   Rounds are numbered and *pipelined*: when stability gossip is on and
   [pipeline_depth > 0], at most that many shipped rounds may be awaiting
   stability (everyone has delivered our stream past the round's last
   sequence number) before the next round may ship.  [pipeline_depth = 1]
   is classic stop-and-wait flush; larger depths keep the pipe full;
   [pipeline_depth = 0] (or no stability gossip) means open-loop — the
   window/size thresholds alone pace the sender. *)

let pipeline_bounded t =
  t.config.pipeline_depth > 0 && t.config.stability_interval <> None

let pipeline_open t =
  (not (pipeline_bounded t))
  || Queue.length t.rounds_inflight < t.config.pipeline_depth

let cancel_batch_timer t =
  (match t.batch_timer with Some h -> Sim.cancel h | None -> ());
  t.batch_timer <- None

let rec arm_batch_timer t =
  if t.batch_timer = None then begin
    let vid_at_arm = t.view.View.id in
    t.batch_timer <-
      Some
        (Sim.after t.sim t.config.batch_window (fun () ->
             t.batch_timer <- None;
             if t.alive && View.Id.equal t.view.View.id vid_at_arm then
               batch_try_flush t ~force:false))
  end

(* Ship the buffered round if allowed.  [force] overrides flow control —
   used at view changes, where everything buffered must reach the wire
   before we block (it is stamped with the old view id and must be in
   flight for the flush protocol to account for it). *)
and batch_try_flush t ~force =
  if t.batch_len > 0 then begin
    if force || pipeline_open t then begin
      let last_seq =
        match t.batch_rev with
        | d :: _ -> d.Wire.seq
        | [] -> assert false
      in
      let ds = List.rev t.batch_rev in
      t.batch_rev <- [];
      t.batch_len <- 0;
      cancel_batch_timer t;
      t.s_batches <- t.s_batches + 1;
      if pipeline_bounded t then
        Queue.add (t.batch_round, last_seq) t.rounds_inflight;
      t.batch_round <- t.batch_round + 1;
      let msg = Wire.Batch ds in
      members_iter t (fun dst -> unicast t dst msg)
    end
    else
      (* Flow control closed: hold the round.  Stability reports retire
         rounds and re-attempt; the timer re-arms as a backstop. *)
      arm_batch_timer t
  end

let batch_add t d =
  t.batch_rev <- d :: t.batch_rev;
  t.batch_len <- t.batch_len + 1;
  if t.batch_len >= t.config.batch_max then batch_try_flush t ~force:false
  else arm_batch_timer t

(* Pop every in-flight round whose last message is now below our own
   stream's stability floor — delivered by every member — then see whether
   a held round may ship.  Called from {!handle_stable_report}. *)
let retire_rounds t =
  if t.config.batching && pipeline_bounded t then begin
    let floor = stability_floor t t.me in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt t.rounds_inflight with
      | Some (_, last_seq) when last_seq < floor ->
          ignore (Queue.pop t.rounds_inflight)
      | Some _ | None -> continue := false
    done;
    batch_try_flush t ~force:false
  end

(* Total-order requests batch the same way: contiguous request sequence
   numbers from [to_batch_rseq0] travel in one reliable {!Wire.To_batch}
   envelope to the coordinator, which relays element [i] exactly as a
   {!Wire.To_request} with rseq [rseq0 + i] — one control-plane round trip
   (and one retry timer) per batch instead of per operation. *)
let to_batch_flush t =
  if t.to_batch_len > 0 then begin
    let users = List.rev t.to_batch_rev in
    let rseq0 = t.to_batch_rseq0 in
    t.to_batch_rev <- [];
    t.to_batch_len <- 0;
    (match t.to_batch_timer with Some h -> Sim.cancel h | None -> ());
    t.to_batch_timer <- None;
    let vid = t.view.View.id in
    let coord = View.coordinator t.view in
    ctl_send t coord
      (Wire.To_batch { vid; rseq0; users })
      ~is_done:(fun () -> not (View.Id.equal t.view.View.id vid))
  end

let to_batch_add t payload =
  if t.to_batch_len = 0 then t.to_batch_rseq0 <- t.to_seq;
  t.to_batch_rev <- payload :: t.to_batch_rev;
  t.to_batch_len <- t.to_batch_len + 1;
  t.to_seq <- t.to_seq + 1;
  if t.to_batch_len >= t.config.batch_max then to_batch_flush t
  else if t.to_batch_timer = None then begin
    let vid_at_arm = t.view.View.id in
    t.to_batch_timer <-
      Some
        (Sim.after t.sim t.config.batch_window (fun () ->
             t.to_batch_timer <- None;
             if t.alive && View.Id.equal t.view.View.id vid_at_arm then
               to_batch_flush t))
  end

let send_data t body =
  let d =
    { Wire.vid = t.view.View.id; sender = t.me; seq = t.send_seq; body }
  in
  t.send_seq <- t.send_seq + 1;
  t.s_data_sent <- t.s_data_sent + 1;
  if t.config.batching then batch_add t d
  else members_iter t (fun dst -> unicast t dst (Wire.Data d))

let rec multicast t ?(order = Fifo) payload =
  if t.alive then
    match t.phase with
    | Flushing _ -> Queue.add (order, payload) t.pending_out
    | Active -> (
        match order with
        | Fifo -> send_data t (Wire.User payload)
        | Causal ->
            (* Dependency vector in Proc_id order: consumers are
               order-insensitive (List.for_all), but the wire image feeds
               traces and byte-identical replay. *)
            let deps =
              Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.streams
              |> List.filter_map (fun (sender, s) ->
                     if s.next > 0 then Some (sender, s.next) else None)
            in
            send_data t (Wire.Causal { deps; user = payload })
        | Total ->
            if t.config.batching then to_batch_add t payload
            else begin
              let coord = View.coordinator t.view in
              let vid = t.view.View.id in
              let rseq = t.to_seq in
              t.to_seq <- t.to_seq + 1;
              ctl_send t coord (Wire.To_request { vid; rseq; user = payload })
                ~is_done:(fun () -> not (View.Id.equal t.view.View.id vid))
            end)

and flush_pending t =
  let queued = Queue.create () in
  Queue.transfer t.pending_out queued;
  Queue.iter (fun (order, payload) -> multicast t ~order payload) queued

(* ---------- membership protocol ---------- *)

let cancel_proposal_timer p =
  match p.p_timer with Some h -> Sim.cancel h | None -> ()

let abandon_proposal t =
  match t.proposal with
  | Some p ->
      cancel_proposal_timer p;
      t.proposal <- None
  | None -> ()

let send_flush_ack t pvid coordinator =
  let seen = all_seen t in
  Sim.emit t.sim
    (Vs_obs.Event.Flush
       {
         proc = obs_me t;
         vid = View.Id.to_obs pvid;
         seen = List.length seen;
       });
  (* Moot once this flush is over: either the Install for [pvid] arrived
     (phase Active) or a higher proposal superseded it. *)
  ctl_send t coordinator
    (Wire.Flush_ack { pvid; from_view = t.view.View.id; seen; ann = t.ann })
    ~is_done:(fun () ->
      match t.phase with
      | Flushing fvid -> not (View.Id.equal fvid pvid)
      | Active -> true)

let rec handle_target t target =
  if t.alive then begin
    let target = Proc_id.sort target in
    let current = t.view.View.members in
    if Listx.equal_set ~cmp:Proc_id.compare target current then
      (* Membership is already right; drop any proposal in flight. *)
      abandon_proposal t
    else
      match Proc_id.min_member target with
      | Some coord when Proc_id.equal coord t.me -> consider_propose t target
      | Some _ | None -> ()
  end

and consider_propose t target =
  let members =
    if t.config.one_at_a_time then begin
      let stay = Listx.inter ~cmp:Proc_id.compare t.view.View.members target in
      let newcomers = Listx.diff ~cmp:Proc_id.compare target t.view.View.members in
      let admitted = match newcomers with [] -> [] | first :: _ -> [ first ] in
      Proc_id.sort (t.me :: (stay @ admitted))
    end
    else target
  in
  let already_proposing =
    match t.proposal with
    | Some p -> Listx.equal_set ~cmp:Proc_id.compare p.p_members members
    | None -> false
  in
  if (not already_proposing)
     && not (Listx.equal_set ~cmp:Proc_id.compare members t.view.View.members)
  then start_proposal t members

and start_proposal t members =
  abandon_proposal t;
  t.max_epoch <- t.max_epoch + 1;
  let pvid = View.Id.make ~epoch:t.max_epoch ~proposer:t.me in
  let p = { p_vid = pvid; p_members = members; p_acks = Hashtbl.create 8; p_timer = None } in
  t.proposal <- Some p;
  t.s_proposals <- t.s_proposals + 1;
  Sim.emit t.sim
    (Vs_obs.Event.Propose
       {
         proc = obs_me t;
         vid = View.Id.to_obs pvid;
         members = List.map Proc_id.to_obs members;
       });
  p.p_timer <-
    Some
      (Sim.after t.sim t.config.flush_timeout (fun () ->
           match t.proposal with
           | Some p' when View.Id.equal p'.p_vid pvid ->
               (* Flush stalled: drop it and retry from the latest target. *)
               t.proposal <- None;
               (match t.est with
               | Some est -> (
                   match Estimator.target est with
                   | Some target -> handle_target t target
                   | None -> ())
               | None -> ())
           | Some _ | None -> ()));
  (* Retried until the member's Flush_ack lands in [p_acks], or this
     proposal is no longer the one in flight. *)
  List.iter
    (fun dst ->
      ctl_send t dst (Wire.Propose { pvid; members })
        ~is_done:(fun () ->
          match t.proposal with
          | Some p when View.Id.equal p.p_vid pvid -> Hashtbl.mem p.p_acks dst
          | Some _ | None -> true))
    members

and handle_propose t ~pvid ~members =
  if
    t.alive
    && List.exists (Proc_id.equal t.me) members
    && View.Id.compare pvid t.acked <= 0
  then
    (* Stale proposal (e.g. a freshly recovered proposer with a low epoch):
       tell it what we have accepted so it can outbid immediately instead
       of crawling up one epoch per flush timeout. *)
    unicast t pvid.View.Id.proposer
      (Wire.Propose_reject { pvid; max_vid = t.acked })
  else if
    t.alive
    && List.exists (Proc_id.equal t.me) members
    && View.Id.compare pvid t.acked > 0
  then begin
    t.max_epoch <- max t.max_epoch pvid.View.Id.epoch;
    (* Buffered batches belong to the old view: force them onto the wire
       before blocking, so they are in flight (stamped with the old vid)
       and the flush protocol accounts for them like any other send. *)
    if t.config.batching then begin
      batch_try_flush t ~force:true;
      to_batch_flush t
    end;
    t.acked <- pvid;
    t.phase <- Flushing pvid;
    t.stash <- [];
    Queue.clear t.stash_to;
    (* A competing lower proposal of ours is now dead. *)
    (match t.proposal with
    | Some p when View.Id.compare p.p_vid pvid < 0 -> abandon_proposal t
    | Some _ | None -> ());
    send_flush_ack t pvid pvid.View.Id.proposer
  end

and handle_propose_reject t ~pvid ~max_vid =
  match t.proposal with
  | Some p
    when View.Id.equal p.p_vid pvid && View.Id.compare max_vid p.p_vid > 0 ->
      t.max_epoch <- max t.max_epoch max_vid.View.Id.epoch;
      let members = p.p_members in
      start_proposal t members
  | Some _ | None -> t.max_epoch <- max t.max_epoch max_vid.View.Id.epoch

and handle_flush_ack t ~src ~pvid ~from_view ~seen ~ann =
  match t.proposal with
  | Some p when View.Id.equal p.p_vid pvid && not (Hashtbl.mem p.p_acks src) ->
      Hashtbl.replace p.p_acks src { a_from = from_view; a_ann = ann; a_seen = seen };
      if List.for_all (fun m -> Hashtbl.mem p.p_acks m) p.p_members then
        finalize_proposal t p
  | Some _ | None -> ()

and finalize_proposal t p =
  cancel_proposal_timer p;
  t.proposal <- None;
  let acks =
    List.map
      (fun m ->
        match Hashtbl.find_opt p.p_acks m with
        | Some a -> (m, a)
        | None ->
            invalid_arg
              "Endpoint.finalize_proposal: finalized without a flush ack from \
               every member")
      p.p_members
  in
  (* Per prior view, the union of messages seen by its survivors. *)
  let by_prior =
    Listx.group_by
      ~key:(fun (_, a) -> a.a_from)
      ~cmp_key:View.Id.compare acks
  in
  let sync =
    List.map
      (fun (prior_vid, group) ->
        let union =
          List.concat_map (fun (_, a) -> a.a_seen) group
          |> List.sort_uniq Wire.compare_data
        in
        (prior_vid, union))
      by_prior
  in
  let anns = List.map (fun (m, a) -> (m, a.a_ann)) acks in
  let priors = List.map (fun (m, a) -> (m, a.a_from)) acks in
  let new_view = View.make p.p_vid p.p_members in
  let install = Wire.Install { pvid = p.p_vid; view = new_view; sync; anns; priors } in
  (* Retried until acked: the receiver acks on delivery even if it has
     already moved on.  Superseded once something beyond [p_vid] has been
     accepted here (a competing proposal won). *)
  List.iter
    (fun dst ->
      ctl_send t dst install
        ~is_done:(fun () -> View.Id.compare t.acked p.p_vid > 0))
    p.p_members

and handle_install t ~pvid ~view:new_view ~sync ~anns ~priors =
  match t.phase with
  | Flushing fvid when View.Id.equal fvid pvid && t.alive ->
      (* Synchronisation deliveries: everything the survivors of my prior
         view saw that I have not delivered yet, in canonical (sender, seq)
         order.  Messages I received after acking the flush but that no
         survivor reported are skipped — nobody delivered them (Agreement).
      *)
      let my_sync =
        match List.find_opt (fun (vid, _) -> View.Id.equal vid t.view.View.id) sync with
        | Some (_, ds) -> ds
        | None -> []
      in
      let delivered_now = ref 0 in
      let deliver_sync (d : 'a Wire.data) =
        let s = stream_for t d.Wire.sender in
        Hashtbl.replace s.log d.Wire.seq d;
        Hashtbl.remove s.buffer d.Wire.seq;
        s.next <- d.Wire.seq + 1;
        incr delivered_now;
        t.s_sync_delivered <- t.s_sync_delivered + 1;
        deliver_user t d
      in
      (* Deliver in passes: per-sender order always, and causal messages
         only once their dependencies are in — a causal message's
         dependencies are necessarily in the synchronisation set (whoever
         reported it had delivered them first), so the passes terminate. *)
      let remaining =
        ref
          (List.filter
             (fun (d : 'a Wire.data) ->
               d.Wire.seq >= (stream_for t d.Wire.sender).next)
             my_sync)
      in
      let progress = ref true in
      while !progress && !remaining <> [] do
        progress := false;
        let blocked = Hashtbl.create 4 in
        remaining :=
          List.filter
            (fun (d : 'a Wire.data) ->
              if Hashtbl.mem blocked d.Wire.sender then true
              else if causally_ready t d then begin
                deliver_sync d;
                progress := true;
                false
              end
              else begin
                Hashtbl.replace blocked d.Wire.sender ();
                true
              end)
            !remaining
      done;
      (* Robustness only — unreachable in correct runs. *)
      List.iter deliver_sync !remaining;
      (* Install the new view. *)
      t.view <- new_view;
      t.phase <- Active;
      t.acked <- new_view.View.id;
      t.max_epoch <- max t.max_epoch new_view.View.id.View.Id.epoch;
      t.send_seq <- 0;
      t.to_seq <- 0;
      Hashtbl.reset t.streams;
      Hashtbl.reset t.to_streams;
      Hashtbl.reset t.stable_vectors;
      t.nack_peers <-
        live_peers_array ~me:t.me ~members:new_view.View.members;
      (* Batch buffers are empty here (forced out at handle_propose;
         multicasts during the flush went to pending_out); the round
         pipeline restarts with the fresh stream. *)
      t.batch_round <- 0;
      Queue.clear t.rounds_inflight;
      t.s_views <- t.s_views + 1;
      Sim.emit t.sim
        (Vs_obs.Event.Install
           {
             proc = obs_me t;
             vid = View.Id.to_obs new_view.View.id;
             members = List.map Proc_id.to_obs new_view.View.members;
             sync = !delivered_now;
           });
      flush_pending t;
      t.callbacks.on_view { view = new_view; annotations = anns; priors };
      (* Messages of the new view that raced ahead of the Install. *)
      let stashed = t.stash in
      t.stash <- [];
      List.iter (fun d -> handle_data t d) stashed;
      let stashed_to = Queue.create () in
      Queue.transfer t.stash_to stashed_to;
      Queue.iter
        (fun (orig, rseq, user) -> handle_to_request t ~orig ~rseq ~user)
        stashed_to
  | Flushing _ | Active -> ()

(* ---------- data path ---------- *)

and handle_data t (d : 'a Wire.data) =
  if not (View.Id.equal d.Wire.vid t.view.View.id) then begin
    match t.phase with
    | Flushing pvid when View.Id.equal d.Wire.vid pvid ->
        (* Sent in the view we are about to install; replayed after. *)
        t.stash <- d :: t.stash
    | Flushing _ | Active -> t.s_stale <- t.s_stale + 1
  end
  else begin
    let s = stream_for t d.Wire.sender in
    if d.Wire.seq < s.next || Hashtbl.mem s.log d.Wire.seq then ()
      (* duplicate: already delivered or logged *)
    else begin
      Hashtbl.replace s.log d.Wire.seq d;
      Hashtbl.replace s.buffer d.Wire.seq d;
      match t.phase with
      | Active ->
          drain_all t;
          if Hashtbl.length s.buffer > 0 then arm_nack t d.Wire.sender s
      | Flushing _ -> ()
      (* logged only: it will be re-reported if the flush restarts, and
         synchronised by the install otherwise *)
    end
  end

and handle_to_request t ~orig ~rseq ~user =
  match t.phase with
  | Active when Proc_id.equal (View.coordinator t.view) t.me ->
      (* Relay in per-origin request order: requests race on the wire, so
         buffer out-of-order arrivals — Total stays FIFO per origin. *)
      let next, pending =
        match Hashtbl.find_opt t.to_streams orig with
        | Some entry -> entry
        | None ->
            let entry = (ref 0, Hashtbl.create 4) in
            Hashtbl.replace t.to_streams orig entry;
            entry
      in
      if rseq >= !next then begin
        Hashtbl.replace pending rseq user;
        let contiguous = ref true in
        while !contiguous do
          match Hashtbl.find_opt pending !next with
          | Some u ->
              Hashtbl.remove pending !next;
              incr next;
              send_data t (Wire.Relay { orig; user = u })
          | None -> contiguous := false
        done
      end
  | Active | Flushing _ -> t.s_to_dropped <- t.s_to_dropped + 1

(* Record a peer's delivered-prefix vector; then drop every log entry
   below the new floor — those messages are delivered everywhere and no
   flush will ever need them again. *)
let handle_stable_report t ~src ~vid ~vector =
  if View.Id.equal vid t.view.View.id then begin
    (* Index the reporter's vector once; the floor fold then looks senders
       up in O(1) instead of scanning an assoc list per (member, sender). *)
    let table =
      match Hashtbl.find_opt t.stable_vectors src with
      | Some table ->
          Hashtbl.reset table;
          table
      | None ->
          let table = Hashtbl.create (List.length vector) in
          Hashtbl.replace t.stable_vectors src table;
          table
    in
    List.iter (fun (sender, n) -> Hashtbl.replace table sender n) vector;
    (* Trim each stream's log up to its new stability floor.  The [trimmed]
       watermark makes this incremental: the old code snapshotted and sorted
       every log on every gossip report — O(streams × log size) of pure
       allocation per report even when no floor had moved — which dominated
       the data plane under sustained load.  Sequences below the floor are
       delivered everywhere, so they can never re-enter the log; walking
       [trimmed, floor) visits each stable entry exactly once over the
       stream's lifetime. *)
    (* vslint: allow D2 — removal-only sweep over independent streams; trimming commutes *)
    Hashtbl.iter
      (fun sender s ->
        let floor = stability_floor t sender in
        if floor > s.trimmed then begin
          for seq = s.trimmed to floor - 1 do
            if Hashtbl.mem s.log seq then begin
              Hashtbl.remove s.log seq;
              t.s_stabilized <- t.s_stabilized + 1
            end
          done;
          s.trimmed <- floor
        end)
      t.streams;
    retire_rounds t
  end

let rec stability_tick t interval () =
  if t.alive then begin
    (match t.phase with
    | Active when View.size t.view > 1 ->
        (* The delivered-prefix vector travels on the wire: emit it in
           Proc_id order so identically-seeded runs produce byte-identical
           messages and traces. *)
        let vector =
          Hashtblx.sorted_bindings ~cmp:Proc_id.compare t.streams
          |> List.map (fun (sender, s) -> (sender, s.next))
        in
        let report =
          Wire.Stable_report { vid = t.view.View.id; vector }
        in
        members_iter t (fun dst ->
            if not (Proc_id.equal dst t.me) then unicast t dst report);
        (* our own vector participates directly *)
        handle_stable_report t ~src:t.me ~vid:t.view.View.id ~vector
    | Active | Flushing _ -> ());
    ignore (Sim.after t.sim interval (stability_tick t interval))
  end

(* Serve a retransmission request for [sender]'s stream from our own log of
   it — whoever we are.  Peer-served gaps are what keep a crashed sender's
   tail recoverable before the next flush. *)
let handle_nack t ~src ~vid ~sender ~missing =
  if View.Id.equal vid t.view.View.id then begin
    match Hashtbl.find_opt t.streams sender with
    | None -> ()
    | Some s ->
        let found =
          List.filter_map (fun seq -> Hashtbl.find_opt s.log seq) missing
        in
        if found <> [] then begin
          let n = List.length found in
          let peer = not (Proc_id.equal sender t.me) in
          t.s_retransmits <- t.s_retransmits + n;
          if peer then t.s_peer_retransmits <- t.s_peer_retransmits + n;
          Sim.emit t.sim
            (Vs_obs.Event.Retransmit
               {
                 proc = obs_me t;
                 origin = Proc_id.to_obs sender;
                 count = n;
                 peer;
               });
          unicast t src (Wire.Retransmit found)
        end
  end

(* A batch is one sender's consecutive data messages of one view: apply the
   stale/stash decision once, ingest every element into the stream, then
   drain *once*.  The single drain is the receive-side win — unbatched, every
   data message pays a full [drain_all] pass (a sorted snapshot of all
   streams); batched, that cost is amortised over the whole round. *)
let handle_batch t (ds : 'a Wire.data list) =
  match ds with
  | [] -> ()
  | first :: _ ->
      if not (View.Id.equal first.Wire.vid t.view.View.id) then begin
        match t.phase with
        | Flushing pvid when View.Id.equal first.Wire.vid pvid ->
            (* Sent in the view we are about to install; replayed after. *)
            List.iter (fun d -> t.stash <- d :: t.stash) ds
        | Flushing _ | Active -> t.s_stale <- t.s_stale + List.length ds
      end
      else begin
        let s = stream_for t first.Wire.sender in
        let active = match t.phase with Active -> true | Flushing _ -> false in
        let ingested = ref false in
        List.iter
          (fun (d : 'a Wire.data) ->
            if active && d.Wire.seq = s.next && causally_ready t d then begin
              (* In-order fast path — the common case for a batch, since a
                 round is one sender's consecutive sequences: log and
                 deliver directly, skipping the buffer round-trip.  [seq =
                 next] cannot be a duplicate (delivery bumps [next] past
                 it), and delivering here is exactly what [drain_all] would
                 do first for this stream, so the order is unchanged. *)
              Hashtbl.replace s.log d.Wire.seq d;
              s.next <- s.next + 1;
              deliver_user t d;
              ingested := true
            end
            else if d.Wire.seq < s.next || Hashtbl.mem s.log d.Wire.seq then ()
              (* duplicate: already delivered or logged *)
            else begin
              Hashtbl.replace s.log d.Wire.seq d;
              Hashtbl.replace s.buffer d.Wire.seq d;
              ingested := true
            end)
          ds;
        if active && !ingested then begin
          (* One residual drain per batch: fast-path deliveries may have
             unblocked buffered messages (this stream's backlog, or causal
             waiters on other streams). *)
          drain_all t;
          if Hashtbl.length s.buffer > 0 then arm_nack t first.Wire.sender s
        end
      end

(* ---------- wiring ---------- *)

let rec handle_payload t ~src payload =
  match payload with
  | Wire.Reliable { rid; payload } ->
      (* Ack every copy — the sender stops once one ack survives the wire —
         then process the inner payload, which is idempotent. *)
      unicast t src (Wire.Ctl_ack { rid });
      handle_payload t ~src payload
  | Wire.Ctl_ack { rid } -> ctl_acked t rid
  | Wire.Heartbeat -> (
      match t.fd with
      | Some fd -> Fd.heartbeat_received fd ~from:src
      | None -> ())
  | Wire.Leave_announce -> (
      match t.fd with Some fd -> Fd.forget fd src | None -> ())
  | Wire.Data d -> handle_data t d
  | Wire.Batch ds -> handle_batch t ds
  | Wire.To_request { vid; rseq; user } -> (
      if View.Id.equal vid t.view.View.id then
        handle_to_request t ~orig:src ~rseq ~user
      else
        match t.phase with
        | Flushing pvid when View.Id.equal vid pvid ->
            (* For the view we are about to install: relay it once we
               have, if we turn out to be its coordinator. *)
            Queue.add (src, rseq, user) t.stash_to
        | Flushing _ | Active -> t.s_to_dropped <- t.s_to_dropped + 1)
  | Wire.To_batch { vid; rseq0; users } -> (
      (* Element [i] is exactly a To_request with rseq [rseq0 + i]; the
         coordinator's per-origin relay sequencing does the rest. *)
      if View.Id.equal vid t.view.View.id then
        List.iteri
          (fun i user -> handle_to_request t ~orig:src ~rseq:(rseq0 + i) ~user)
          users
      else
        match t.phase with
        | Flushing pvid when View.Id.equal vid pvid ->
            List.iteri
              (fun i user -> Queue.add (src, rseq0 + i, user) t.stash_to)
              users
        | Flushing _ | Active ->
            t.s_to_dropped <- t.s_to_dropped + List.length users)
  | Wire.Nack { vid; sender; missing } -> handle_nack t ~src ~vid ~sender ~missing
  | Wire.Stable_report { vid; vector } ->
      handle_stable_report t ~src ~vid ~vector
  | Wire.Retransmit ds -> List.iter (handle_data t) ds
  | Wire.Propose { pvid; members } -> handle_propose t ~pvid ~members
  | Wire.Propose_reject { pvid; max_vid } ->
      handle_propose_reject t ~pvid ~max_vid
  | Wire.Flush_ack { pvid; from_view; seen; ann } ->
      handle_flush_ack t ~src ~pvid ~from_view ~seen ~ann
  | Wire.Install { pvid; view; sync; anns; priors } ->
      handle_install t ~pvid ~view ~sync ~anns ~priors

let handle_envelope t (env : ('a, 'ann) Wire.t Net.envelope) =
  if t.alive then handle_payload t ~src:env.Net.src env.Net.payload

let create sim net ~me:me_ ~universe ~config ~callbacks =
  let t =
    {
      sim;
      net;
      me = me_;
      config;
      rng = Sim.fork_rng sim;
      callbacks;
      view = View.singleton me_;
      phase = Active;
      acked = View.Id.initial me_;
      max_epoch = 0;
      send_seq = 0;
      to_seq = 0;
      to_streams = Hashtbl.create 8;
      streams = Hashtbl.create 16;
      pending_out = Queue.create ();
      ctl_rid = 0;
      ctl_pending = Hashtbl.create 16;
      stash = [];
      stash_to = Queue.create ();
      ann = None;
      proposal = None;
      fd = None;
      est = None;
      alive = true;
      stable_vectors = Hashtbl.create 8;
      nack_peers = [||]; (* singleton initial view: no peers *)
      batch_rev = [];
      batch_len = 0;
      batch_timer = None;
      batch_round = 0;
      rounds_inflight = Queue.create ();
      to_batch_rev = [];
      to_batch_len = 0;
      to_batch_rseq0 = 0;
      to_batch_timer = None;
      s_views = 0;
      s_proposals = 0;
      s_data_sent = 0;
      s_delivered = 0;
      s_sync_delivered = 0;
      s_stale = 0;
      s_to_dropped = 0;
      s_nacks = 0;
      s_retransmits = 0;
      s_peer_retransmits = 0;
      s_stabilized = 0;
      s_ctl_retries = 0;
      s_ctl_abandoned = 0;
      s_batches = 0;
    }
  in
  Net.register net me_ (fun env -> handle_envelope t env);
  let est =
    Estimator.create sim ~stability:config.stability
      ~nag_period:config.nag_period
      ~achieved:(fun () -> t.view.View.members)
      ~on_target:(fun target -> handle_target t target)
  in
  let fd =
    Fd.create sim ~me:me_ ~universe ~config:config.fd
      ~send_heartbeat:(fun ~dst_node ->
        Net.send_node net ~src:me_ ~dst_node Wire.Heartbeat)
      ~on_change:(fun reachable -> Estimator.update est reachable)
  in
  t.fd <- Some fd;
  t.est <- Some est;
  (match config.stability_interval with
  | Some interval when interval > 0. ->
      ignore (Sim.after sim interval (stability_tick t interval))
  | Some _ | None -> ());
  (* The paper: the first event of a process's history is the view event of
     its initial (singleton) view. *)
  ignore
    (Sim.after sim 0. (fun () ->
         if t.alive then begin
           t.s_views <- t.s_views + 1;
           t.callbacks.on_view
             {
               view = t.view;
               annotations = [ (me_, t.ann) ];
               priors = [ (me_, t.view.View.id) ];
             }
         end));
  t

let stop_stack t =
  t.alive <- false;
  (match t.fd with Some fd -> Fd.stop fd | None -> ());
  (match t.est with Some est -> Estimator.stop est | None -> ());
  cancel_batch_timer t;
  (match t.to_batch_timer with Some h -> Sim.cancel h | None -> ());
  t.to_batch_timer <- None;
  ctl_reset t;
  abandon_proposal t

let leave t =
  if t.alive then begin
    List.iter
      (fun (dst : Proc_id.t) ->
        if not (Proc_id.equal dst t.me) then
          unicast t dst Wire.Leave_announce)
      t.view.View.members;
    log_event t "leave";
    stop_stack t;
    Net.crash t.net t.me
  end

let kill t =
  if t.alive then begin
    log_event t "kill";
    stop_stack t;
    Net.crash t.net t.me
  end

(* ---------- transient state corruption (harness-injected) ----------

   A small typed API for the self-stabilization harness: each kind smashes
   one named field of this endpoint's protocol state, deterministically.
   Every kind is recoverable because [handle_install] rebuilds the per-view
   state (sequence counters, streams, stability vectors) and a corrupted
   [acked] is outbid away by [Propose_reject] — the stabilization oracle
   checks that this recovery actually happens within its view bound. *)

type corruption =
  | Seq_skew of int  (** send_seq += k (clamped at 0) *)
  | Stability_smear of int * int
      (** (member node, amount): member's reported prefix for my stream
          += amount (clamped at 0) *)
  | View_skew of int  (** acked view-id epoch += k (clamped at 0) *)
  | Deps_truncate of int * int
      (** (sender node, k): sender's delivered-prefix cursor -= k
          (clamped at 0), forgetting causal dependencies already met *)

let corruption_field = function
  | Seq_skew _ -> "send_seq"
  | Stability_smear _ -> "stable_vectors"
  | View_skew _ -> "acked"
  | Deps_truncate _ -> "stream.next"

(* Corruption targets protocol state held *about* some member; a node number
   that is not in the current view still has to corrupt something
   deterministic, so it falls back to the endpoint itself. *)
let member_for_node t node =
  match
    List.find_opt
      (fun (p : Proc_id.t) -> p.Proc_id.node = node)
      t.view.View.members
  with
  | Some p -> p
  | None -> t.me

let corrupt t (c : corruption) =
  let field = corruption_field c in
  if t.alive then begin
    let detail =
      match c with
      | Seq_skew k ->
          let before = t.send_seq in
          t.send_seq <- max 0 (t.send_seq + k);
          Printf.sprintf "%d -> %d" before t.send_seq
      | Stability_smear (node, amount) ->
          let member = member_for_node t node in
          let table =
            match Hashtbl.find_opt t.stable_vectors member with
            | Some table -> table
            | None ->
                let table = Hashtbl.create 8 in
                Hashtbl.replace t.stable_vectors member table;
                table
          in
          let before =
            match Hashtbl.find_opt table t.me with Some n -> n | None -> 0
          in
          let after = max 0 (before + amount) in
          Hashtbl.replace table t.me after;
          Printf.sprintf "[%s][%s] %d -> %d"
            (Proc_id.to_string member) (Proc_id.to_string t.me) before after
      | View_skew k ->
          let before = t.acked in
          let epoch = max 0 (before.View.Id.epoch + k) in
          t.acked <- View.Id.make ~epoch ~proposer:before.View.Id.proposer;
          Printf.sprintf "%s -> %s"
            (View.Id.to_string before)
            (View.Id.to_string t.acked)
      | Deps_truncate (node, k) ->
          let sender = member_for_node t node in
          let s = stream_for t sender in
          let before = s.next in
          s.next <- max 0 (s.next - k);
          Printf.sprintf "[%s] %d -> %d" (Proc_id.to_string sender) before
            s.next
    in
    Sim.emit t.sim (Vs_obs.Event.Corrupt { proc = obs_me t; field; detail });
    log_event t (Printf.sprintf "corrupt %s %s" field detail)
  end;
  field
