(** View-synchronous endpoint: one per process.

    Integrates the failure detector, membership estimation and reliable
    multicast into the abstraction of Section 2 of the paper:

    - processes deliver a totally-ordered-per-process sequence of message
      and view events, starting with their initial singleton view;
    - {e Agreement} (Property 2.1): processes surviving from a view [v] to
      the same next view deliver the same set of messages in [v] — enforced
      by the flush protocol, which synchronises survivors on the union of
      messages seen in each prior view before installing the next;
    - {e Uniqueness} (Property 2.2): a message is delivered only in the view
      it was multicast in;
    - {e Integrity} (Property 2.3): at-most-once delivery of actually-sent
      messages.

    Multicasts issued while a flush is in progress are queued and sent in the
    next view.  Each endpoint may attach an opaque {e annotation} that is
    collected during the flush and handed to every member with the new view —
    the hook on which enriched view synchrony (lib/core) and state-transfer
    negotiation are built. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type order = Fifo | Total | Causal
(** [Fifo]: per-sender FIFO.  [Total]: relayed through the view coordinator,
    totally ordered within the view (and still FIFO per origin).  [Causal]:
    delivered only after everything the sender had delivered when it
    multicast — causal order within the view, carried as a dependency
    vector on the message (across views, causality follows from the flush
    cut). *)

type config = {
  fd : Vs_fd.Fd.config;
  stability : float;      (** membership estimator settle time *)
  nag_period : float;     (** estimator retry period *)
  flush_timeout : float;  (** coordinator restarts a stalled flush after this *)
  nack_delay : float;     (** gap age before requesting retransmission *)
  one_at_a_time : bool;
      (** Isis-style admission throttle: a proposed view may contain at most
          one process that was not in the proposer's current view (Section 5
          discussion; used by experiment E4). *)
  stability_interval : float option;
      (** with [Some dt], members gossip their delivered prefixes every
          [dt]; messages below the view's stability floor (delivered by
          every member) are trimmed from flush reports and logs, bounding
          the synchronisation cost of view changes.  [None] disables
          stability tracking (the E10 ablation). *)
  retry_backoff : float;
      (** initial re-send delay for unacked control-plane messages
          (Propose, Flush_ack, Install, To_request) *)
  retry_backoff_max : float;  (** backoff doubles per attempt up to this *)
  retry_jitter : float;
      (** each retry delay is scaled by a uniform factor in
          [1 - retry_jitter, 1 + retry_jitter] to de-synchronise senders *)
  retry_limit : int;
      (** re-sends per message before giving up (the failure detector and
          flush timeout own recovery beyond that) *)
  batching : bool;
      (** ship outgoing data as one {!Wire.Batch} per member per flush
          round instead of one wire message per multicast, and total-order
          requests as {!Wire.To_batch} envelopes.  Off by default: the
          unbatched wire format (and the byte-identical traces of existing
          seeded repros) is preserved exactly. *)
  batch_window : float;
      (** a flush round closes this long after its first buffered message *)
  batch_max : int;  (** ... or as soon as it holds this many messages *)
  pipeline_depth : int;
      (** maximum shipped-but-not-yet-stable flush rounds before the next
          round is held back (requires [stability_interval]).  [1] is
          stop-and-wait; larger keeps the pipe full; [0] disables flow
          control (open loop). *)
}

val default_config : config

type 'ann view_event = {
  view : View.t;
  annotations : (Proc_id.t * 'ann option) list;
      (** each member's annotation at flush time *)
  priors : (Proc_id.t * View.Id.t) list;
      (** the view each member came from *)
}

type ('a, 'ann) callbacks = {
  on_view : 'ann view_event -> unit;
  on_message : sender:Proc_id.t -> 'a -> unit;
}

type ('a, 'ann) t

val create :
  Vs_sim.Sim.t ->
  (('a, 'ann) Wire.t) Vs_net.Net.t ->
  me:Proc_id.t ->
  universe:int list ->
  config:config ->
  callbacks:('a, 'ann) callbacks ->
  ('a, 'ann) t
(** Registers [me] on the network and starts the stack.  The initial
    singleton view is delivered through the event queue, so it arrives after
    the caller finishes wiring up. *)

val me : ('a, 'ann) t -> Proc_id.t

val view : ('a, 'ann) t -> View.t
(** Currently installed view. *)

val is_blocked : ('a, 'ann) t -> bool
(** [true] while a flush is in progress (multicasts are being queued). *)

val is_alive : ('a, 'ann) t -> bool

val multicast : ('a, 'ann) t -> ?order:order -> 'a -> unit
(** Multicast to the current view.  Queued if a flush is in progress.
    [Total] messages requested while the coordinator is flushing, or that
    race with a view change, may be lost (at-most-once); FIFO messages are
    reliable within the view and across changes via the flush protocol. *)

val set_annotation : ('a, 'ann) t -> 'ann option -> unit
(** Annotation reported with this process's next flush. *)

val leave : ('a, 'ann) t -> unit
(** Graceful departure: announce, stop the stack, release the node. *)

val kill : ('a, 'ann) t -> unit
(** Crash the process (no announcement).  The harness pairs this with
    network-level crash semantics automatically. *)

(** {2 Transient state corruption}

    A typed fault-injection API for the self-stabilization harness: each
    kind smashes one named field of the endpoint's protocol state,
    deterministically.  Node numbers are resolved against the current view
    (falling back to the endpoint itself), so injections replay from a seed
    regardless of membership at injection time. *)

type corruption =
  | Seq_skew of int  (** [send_seq += k] (clamped at 0) *)
  | Stability_smear of int * int
      (** [(member node, amount)]: that member's reported stable prefix for
          this endpoint's stream [+= amount] (clamped at 0) *)
  | View_skew of int
      (** [acked] view-id epoch [+= k] (clamped at 0) — a regressed value
          is outbid away by [Propose_reject], a bumped one stalls proposals
          until a higher bid wins *)
  | Deps_truncate of int * int
      (** [(sender node, k)]: that sender's delivered-prefix cursor
          [-= k] (clamped at 0), forgetting already-met causal
          dependencies *)

val corruption_field : corruption -> string
(** Stable field name of the state a kind targets: ["send_seq"],
    ["stable_vectors"], ["acked"], ["stream.next"]. *)

val corrupt : ('a, 'ann) t -> corruption -> string
(** Apply the corruption to a live endpoint (no-op when dead), emitting a
    [Corrupt] observability event with a before/after detail.  Returns
    {!corruption_field}. *)

type stats = {
  views_installed : int;
  proposals_started : int;
  data_sent : int;
  delivered : int;
  sync_delivered : int;  (** deliveries forced by the flush protocol *)
  stale_dropped : int;   (** data for a view other than the current one *)
  to_dropped : int;      (** total-order requests lost to view changes *)
  nacks_sent : int;
  retransmits : int;     (** data messages served in answer to NACKs *)
  peer_retransmits : int;
      (** of [retransmits], those served for another sender's stream —
          the peer-served recovery path *)
  stabilized : int;      (** log entries trimmed as stable *)
  ctl_retries : int;
      (** control-plane re-sends by the reliable-delivery layer *)
  ctl_abandoned : int;
      (** reliable sends given up on (peer dead or [retry_limit] hit) *)
  batches_sent : int;
      (** {!Wire.Batch} rounds shipped (0 unless [config.batching]) *)
}

val stats : ('a, 'ann) t -> stats

(** {2 Test hooks}

    Pure re-exports of internal hot-path computations, so tests can pin the
    optimised implementations against independent references without
    standing up an endpoint. *)

val stability_floor_of :
  vectors:(Proc_id.t * (Proc_id.t * int) list) list ->
  members:Proc_id.t list ->
  sender:Proc_id.t ->
  int
(** The view's stability floor for [sender] given each member's reported
    delivered-prefix vector — the member-wise minimum, 0 for members that
    have not reported (and [max_int] with no members, as internally). *)

val nack_targets_of :
  me:Proc_id.t ->
  members:Proc_id.t list ->
  sender:Proc_id.t ->
  rounds:int ->
  Proc_id.t list
(** The first [rounds] NACK retransmission targets for a gap in [sender]'s
    stream as seen by [me]: the sender first, then round-robin over the
    other members in member order. *)
