module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View

type 'a body =
  | User of 'a
  | Relay of { orig : Proc_id.t; user : 'a }
  | Causal of { deps : (Proc_id.t * int) list; user : 'a }

type 'a data = {
  vid : View.Id.t;
  sender : Proc_id.t;
  seq : int;
  body : 'a body;
}

type ('a, 'ann) t =
  | Heartbeat
  | Leave_announce
  | Data of 'a data
  | To_request of { vid : View.Id.t; rseq : int; user : 'a }
  | Batch of 'a data list
  | To_batch of { vid : View.Id.t; rseq0 : int; users : 'a list }
  | Nack of { vid : View.Id.t; sender : Proc_id.t; missing : int list }
  | Stable_report of { vid : View.Id.t; vector : (Proc_id.t * int) list }
  | Retransmit of 'a data list
  | Reliable of { rid : int; payload : ('a, 'ann) t }
  | Ctl_ack of { rid : int }
  | Propose of { pvid : View.Id.t; members : Proc_id.t list }
  | Propose_reject of { pvid : View.Id.t; max_vid : View.Id.t }
  | Flush_ack of {
      pvid : View.Id.t;
      from_view : View.Id.t;
      seen : 'a data list;
      ann : 'ann option;
    }
  | Install of {
      pvid : View.Id.t;
      view : View.t;
      sync : (View.Id.t * 'a data list) list;
      anns : (Proc_id.t * 'ann option) list;
      priors : (Proc_id.t * View.Id.t) list;
    }

let data_key d = (d.sender, d.seq)

let compare_data a b =
  match Proc_id.compare a.sender b.sender with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

(* Nominal sizes: identifiers 8 bytes, headers 16, plus payload sizes.  Only
   relative magnitudes matter for the overhead experiments. *)
let id_size = 8
let header = 16

let size_of_body ~user = function
  | User u -> user u
  | Relay { user = u; _ } -> id_size + user u
  | Causal { deps; user = u } -> (12 * List.length deps) + user u

let size_of_data ~user d = header + id_size + size_of_body ~user d.body

let rec size_of ~user ~ann = function
  | Heartbeat -> header
  | Leave_announce -> header
  | Data d -> size_of_data ~user d
  | To_request { user = u; _ } -> header + id_size + user u
  | Batch ds ->
      List.fold_left (fun acc d -> acc + size_of_data ~user d) header ds
  | To_batch { users; _ } ->
      List.fold_left (fun acc u -> acc + 4 + user u) (header + id_size) users
  | Nack { missing; _ } -> header + (2 * id_size) + (4 * List.length missing)
  | Stable_report { vector; _ } ->
      header + id_size + (12 * List.length vector)
  | Retransmit ds ->
      List.fold_left (fun acc d -> acc + size_of_data ~user d) header ds
  | Reliable { payload; _ } -> 4 + size_of ~user ~ann payload
  | Ctl_ack _ -> header + 4
  | Propose { members; _ } ->
      header + id_size + (id_size * List.length members)
  | Propose_reject _ -> header + (2 * id_size)
  | Flush_ack { seen; ann = a; _ } ->
      let ann_size = match a with Some x -> ann x | None -> 0 in
      List.fold_left
        (fun acc d -> acc + size_of_data ~user d)
        (header + (2 * id_size) + ann_size)
        seen
  | Install { view; sync; anns; priors; _ } ->
      let sync_size =
        List.fold_left
          (fun acc (_, ds) ->
            List.fold_left (fun a d -> a + size_of_data ~user d) (acc + id_size) ds)
          0 sync
      in
      let ann_size =
        List.fold_left
          (fun acc (_, a) ->
            acc + id_size + match a with Some x -> ann x | None -> 0)
          0 anns
      in
      header + id_size
      + (id_size * View.size view)
      + sync_size + ann_size
      + (2 * id_size * List.length priors)

let body_user = function
  | User u -> u
  | Relay { user = u; _ } -> u
  | Causal { user = u; _ } -> u

(* The single application message a wire message carries, if any — used to
   thread the (origin, seq) correlation identity into observability events.
   [Retransmit] batches carry many, so they report none (the typed
   [Event.Retransmit] covers them); control traffic carries none. *)
let rec ident ~user = function
  | Data d -> user (body_user d.body)
  | To_request { user = u; _ } -> user u
  | Reliable { payload; _ } -> ident ~user payload
  | Heartbeat | Leave_announce | Batch _ | To_batch _ | Nack _
  | Stable_report _ | Retransmit _ | Ctl_ack _ | Propose _ | Propose_reject _
  | Flush_ack _ | Install _ ->
      None

(* Every application message a wire message carries: the per-payload version
   of [ident], for batch-aware lineage accounting.  [Batch]/[To_batch] report
   one identity per carried payload so Full-level Send/Recv/Drop/Dup events
   stay per-payload and conservation holds; [Retransmit] still reports none
   (the typed [Event.Retransmit] covers re-sends, and counting them as fresh
   copies would double-book the originals). *)
let rec idents ~user = function
  | Batch ds -> List.filter_map (fun d -> user (body_user d.body)) ds
  | To_batch { users; _ } -> List.filter_map user users
  | Reliable { payload; _ } -> idents ~user payload
  | (Data _ | To_request _) as w -> (
      match ident ~user w with Some x -> [ x ] | None -> [])
  | Heartbeat | Leave_announce | Nack _ | Stable_report _ | Retransmit _
  | Ctl_ack _ | Propose _ | Propose_reject _ | Flush_ack _ | Install _ ->
      []

let rec kind = function
  | Heartbeat -> "heartbeat"
  | Leave_announce -> "leave"
  | Data { body = User _; _ } -> "data"
  | Data { body = Relay _; _ } -> "relay"
  | Data { body = Causal _; _ } -> "causal"
  | To_request _ -> "to-request"
  | Batch _ -> "batch"
  | To_batch _ -> "to-batch"
  | Nack _ -> "nack"
  | Stable_report _ -> "stable"
  | Retransmit _ -> "retransmit"
  | Reliable { payload; _ } -> kind payload
  | Ctl_ack _ -> "ctl-ack"
  | Propose _ -> "propose"
  | Propose_reject _ -> "propose-reject"
  | Flush_ack _ -> "flush-ack"
  | Install _ -> "install"
