(** Wire messages of the view-synchrony protocol.

    One variant covers the whole stack: failure-detector heartbeats, the data
    path (FIFO streams plus coordinator-relayed total order), negative
    acknowledgements, and the propose / flush / install membership protocol.
    ['a] is the application payload; ['ann] the opaque view-change annotation
    (the hook enriched view synchrony is built on). *)

type 'a body =
  | User of 'a
  | Relay of { orig : Vs_net.Proc_id.t; user : 'a }
      (** A totally-ordered message: relayed on the coordinator's FIFO
          stream, delivered as coming from [orig]. *)
  | Causal of { deps : (Vs_net.Proc_id.t * int) list; user : 'a }
      (** A causally-ordered message: [deps] is the sender's delivered
          prefix per stream at multicast time; receivers hold the message
          until their own prefixes dominate it. *)

type 'a data = {
  vid : Vs_gms.View.Id.t;  (** view the message belongs to *)
  sender : Vs_net.Proc_id.t;
  seq : int;               (** per-sender sequence number within [vid] *)
  body : 'a body;
}

type ('a, 'ann) t =
  | Heartbeat
  | Leave_announce
  | Data of 'a data
  | To_request of { vid : Vs_gms.View.Id.t; rseq : int; user : 'a }
      (** Ask the view coordinator to relay [user] in total order; [rseq]
          sequences the origin's requests so the relay preserves per-origin
          FIFO even when requests race on the wire. *)
  | Batch of 'a data list
      (** Several data messages of one sender's stream, shipped in one wire
          message — the batched data plane.  All elements share [sender] and
          [vid]; sequence numbers were assigned at multicast time, so each
          payload keeps its identity for flush reports, NACK recovery and the
          oracle.  Receivers ingest every element and drain once. *)
  | To_batch of { vid : Vs_gms.View.Id.t; rseq0 : int; users : 'a list }
      (** Several total-order requests from one origin in one reliable
          envelope: element [i] carries request sequence number
          [rseq0 + i].  The coordinator relays them exactly as if they had
          arrived as individual {!To_request}s. *)
  | Nack of {
      vid : Vs_gms.View.Id.t;
      sender : Vs_net.Proc_id.t;
      missing : int list;
    }  (** Request retransmission of [sender]'s sequence numbers.  Any
           member that logged them may serve the gap from its own copy of
           the stream — recovery does not depend on the original sender
           staying alive. *)
  | Stable_report of {
      vid : Vs_gms.View.Id.t;
      vector : (Vs_net.Proc_id.t * int) list;
          (** per sender, the reporter's contiguously-delivered prefix;
              the member-wise minimum is the view's stability floor, below
              which flush reports need not carry messages *)
    }
  | Retransmit of 'a data list
  | Reliable of { rid : int; payload : ('a, 'ann) t }
      (** Retried control-plane envelope: the sender re-sends [payload]
          (with exponential backoff) until it receives [Ctl_ack rid], the
          send is superseded by protocol progress, or the peer is declared
          dead.  [rid] is unique per sender; receivers ack every copy, so
          duplicate delivery of the inner payload must be (and is)
          idempotent. *)
  | Ctl_ack of { rid : int }
      (** Acknowledges receipt of [Reliable { rid; _ }] from the acker. *)
  | Propose of { pvid : Vs_gms.View.Id.t; members : Vs_net.Proc_id.t list }
  | Propose_reject of { pvid : Vs_gms.View.Id.t; max_vid : Vs_gms.View.Id.t }
      (** The receiver has already accepted [max_vid] >= [pvid]; lets a
          proposer with a stale epoch (e.g. freshly recovered) catch up
          without waiting out its flush timeout. *)
  | Flush_ack of {
      pvid : Vs_gms.View.Id.t;
      from_view : Vs_gms.View.Id.t;
      seen : 'a data list;  (** every data message of [from_view] this
                                process has received (delivered or not) *)
      ann : 'ann option;
    }
  | Install of {
      pvid : Vs_gms.View.Id.t;
      view : Vs_gms.View.t;
      sync : (Vs_gms.View.Id.t * 'a data list) list;
          (** per prior view: the union of messages seen by its survivors —
              delivered by each survivor before installing [view] *)
      anns : (Vs_net.Proc_id.t * 'ann option) list;
      priors : (Vs_net.Proc_id.t * Vs_gms.View.Id.t) list;
    }

val data_key : 'a data -> Vs_net.Proc_id.t * int
(** Identity of a data message within its view. *)

val compare_data : 'a data -> 'a data -> int
(** Order by (sender, seq) — the canonical synchronisation-delivery order. *)

val size_of : user:('a -> int) -> ann:('ann -> int) -> ('a, 'ann) t -> int
(** Nominal encoded size in bytes, for traffic accounting (E9/E10). *)

val kind : ('a, 'ann) t -> string
(** Stable message-kind name for observability ([Reliable] reports its inner
    payload's kind — the wrapper is transport, not protocol). *)

val ident : user:('a -> 'b option) -> ('a, 'ann) t -> 'b option
(** The identity of the single application message this wire message
    carries, as extracted from its payload by [user]: [Data] (through
    [Relay]/[Causal] bodies), [To_request], and [Reliable] recursively;
    [None] for control traffic, [Batch]/[To_batch] (which carry many — see
    {!idents}) and [Retransmit] batches.  Used to thread the (origin, seq)
    correlation identity into Full-level observability events. *)

val idents : user:('a -> 'b option) -> ('a, 'ann) t -> 'b list
(** Every application-message identity this wire message carries: singleton
    (or empty) wherever {!ident} applies, one entry per payload for
    [Batch]/[To_batch], and [] for [Retransmit] (re-sends are covered by the
    typed [Event.Retransmit], not counted as fresh copies).  The batch-aware
    generalisation the network layer uses to emit per-payload Full-level
    events, keeping lineage conservation per-payload. *)
