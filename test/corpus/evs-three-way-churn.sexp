; Sentinel artifact: three-way partition churn with a mid-partition crash
; over enriched view synchrony — the shape of schedule that stresses the
; Section 6 subview/sv-set invariants (split identities meeting again in
; one view).  Replayed by the corpus suite on every build.
((seed 202)
 (protocol evs)
 (nodes 5)
 (loss 0.05)
 (dup 0)
 (delay-min 0.001)
 (delay-max 0.015)
 (traffic-gap 0.04)
 (traffic-until 5)
 (horizon 10)
 (script ((1 (partition (0 1) (2 3) (4)))
          (1.8 (crash 1))
          (2.5 (heal))
          (3.2 (partition (0 2) (1 3 4)))
          (4 (heal))
          (4.01 (recover 1)))))
