; Sentinel artifact: a hand-minimized lossy crash+partition schedule that
; once exercised the reliable control plane's worst paths (PR 1).  Kept as a
; permanent regression schedule; the corpus suite replays every file here
; and fails if any property violation reappears.
((seed 101)
 (protocol vsync)
 (nodes 3)
 (loss 0.2)
 (dup 0.1)
 (delay-min 0.001)
 (delay-max 0.01)
 (traffic-gap 0.03)
 (traffic-until 4)
 (horizon 9)
 (script ((1.5 (crash 2))
          (2.2 (partition (0) (1)))
          (3 (heal))
          (3.01 (recover 2)))))
